"""Reproduce every table and figure of the paper in one run.

Runs the three-application campaign (PPLive, SopCast, TVAnts profiles on a
shared synthetic Internet), prints Tables I–IV and Figures 1–2 in the
paper's layout, and evaluates the qualitative shape checks against the
published findings.

Run:  python examples/campaign_tables.py [duration_seconds]

The default 300 s keeps the run a few minutes long; the indices are stable
well before the paper's 1-hour captures.
"""

import sys

from repro.experiments import (
    CampaignConfig,
    build_figure1,
    build_figure2,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    run_campaign,
)
from repro.report.compare import check_campaign_shape, render_checks
from repro.report.figures import render_figure1, render_figure2
from repro.report.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 300.0
    print(f"running the 3-application campaign ({duration:.0f}s per app)...")
    campaign = run_campaign(CampaignConfig(duration_s=duration, seed=42))

    for block in (
        render_table1(build_table1(campaign.testbed)),
        render_table2(build_table2(campaign)),
        render_table3(build_table3(campaign)),
        render_table4(build_table4(campaign)),
        render_figure1(build_figure1(campaign)),
        render_figure2(build_figure2(campaign)),
        render_checks(check_campaign_shape(campaign)),
    ):
        print()
        print(block)


if __name__ == "__main__":
    main()
