"""Trace sharing workflow: capture, save, reload, re-analyse.

The NAPA-WINE project distributed its packet traces to the community on
request; this example shows the equivalent workflow here — a simulation's
probe-side capture is saved as a self-contained ``.npz`` bundle that any
third party can re-analyse without re-running (or even having) the
simulator configuration.

Run:  python examples/trace_roundtrip.py
"""

import tempfile
from pathlib import Path

from repro import IpRegistry, run_experiment
from repro.core import AwarenessAnalyzer
from repro.trace.flows import build_flow_table
from repro.trace.store import (
    TraceBundle,
    load_trace_bundle,
    rebuild_world,
    save_trace_bundle,
)


def main() -> None:
    # --- the measurement side: run an experiment and publish the trace.
    result = run_experiment("sopcast", duration_s=90.0, seed=9)
    bundle = TraceBundle.from_result(result)
    out = Path(tempfile.mkdtemp()) / "sopcast-experiment.npz"
    path = save_trace_bundle(out, bundle)
    print(f"published {path} ({path.stat().st_size / 1e6:.2f} MB)")

    # --- the community side: load and analyse, nothing else needed.
    loaded = load_trace_bundle(path)
    print(f"loaded bundle: {loaded.meta}")
    world = rebuild_world(loaded)
    flows = build_flow_table(
        loaded.transfers, loaded.signaling, loaded.hosts, world.paths
    )
    registry = IpRegistry.from_hosts(loaded.hosts)
    report = AwarenessAnalyzer(registry).analyze(flows)

    bw, as_ = report["BW"].download, report["AS"].download
    print(f"\nBW : B={bw.B:5.1f}%  P={bw.P:5.1f}%   (strong bandwidth bias)")
    print(f"AS : B={as_.B:5.1f}%  P={as_.P:5.1f}%   (SopCast is location-blind)")

    # Determinism check: analysing the shared bundle gives exactly the
    # numbers the original measurement produced.
    flows_orig = build_flow_table(
        result.transfers, result.signaling, result.hosts, result.world.paths
    )
    report_orig = AwarenessAnalyzer(
        IpRegistry.from_world(result.world)
    ).analyze(flows_orig)
    assert abs(report_orig["BW"].download.B - bw.B) < 1e-9
    print("\nround-trip analysis matches the in-process analysis exactly.")


if __name__ == "__main__":
    main()
