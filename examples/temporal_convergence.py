"""Temporal evolution: how fast do the preference indices converge?

The paper aggregates 1-hour captures; with a simulator we can ask how
much capture time the indices actually need.  This example computes the
byte-wise BW and AS preferences in 20 s windows over a 4-minute TVAnts
run and reports when each series settles near its final value — relevant
both for measurement planning and for trusting the short captures used in
this repository's benchmarks.

Run:  python examples/temporal_convergence.py
"""

from repro import IpRegistry, flow_table_of, run_experiment
from repro.core.partitions import ASPartition, BWPartition
from repro.core.timeseries import windowed_from_flows

WINDOW_S = 20.0
DURATION_S = 240.0


def main() -> None:
    result = run_experiment("tvants", duration_s=DURATION_S, seed=2)
    flows = flow_table_of(result)
    registry = IpRegistry.from_world(result.world)

    for name, partition in (("BW", BWPartition()), ("AS", ASPartition(registry))):
        scores = windowed_from_flows(
            flows, partition, window_s=WINDOW_S, t_end=DURATION_S
        )
        series = "  ".join(
            f"{b:5.1f}" if b == b else "    -" for b in scores.byte_percent
        )
        settle = scores.stabilisation_window(tolerance=5.0)
        when = f"window {settle} (t={settle * WINDOW_S:.0f}s)" if settle is not None else "never"
        print(f"{name}: byte-preference per {WINDOW_S:.0f}s window")
        print(f"    {series}")
        print(f"    settles within ±5 points of the final value at {when}\n")

    print(
        "The indices stabilise within the first few minutes — which is why"
        "\nshort simulated captures reproduce the hour-long campaign's shape."
    )


if __name__ == "__main__":
    main()
