"""Quickstart: simulate one P2P-TV experiment and measure its awareness.

Runs a short TVAnts-profile experiment on the synthetic Internet with the
paper's 46-probe NAPA-WINE testbed, applies the black-box methodology, and
prints the peer-wise / byte-wise preference indices (one application's
slice of the paper's Table IV).

Run:  python examples/quickstart.py
"""

from repro import analyze_experiment, run_experiment


def main() -> None:
    # One 2-minute capture with the TVAnts behaviour profile.
    result = run_experiment("tvants", duration_s=120.0, seed=1)
    print(
        f"simulated {result.duration_s:.0f}s of '{result.profile.name}': "
        f"{len(result.transfers)} transfers across "
        f"{len(result.testbed)} probes and {result.profile.swarm_size} remote peers"
    )

    # The analysis never sees the simulator's selection weights: it infers
    # preferences from addresses, TTLs, packet gaps and byte counts alone.
    report = analyze_experiment(result)

    print("\nmetric  direction   P (peer-wise %)   B (byte-wise %)")
    for metric in report.metric_names:
        scores = report[metric]
        for label, s in (("download", scores.download), ("upload", scores.upload)):
            print(f"{metric:>6}  {label:<9}   {s.P:15.1f}   {s.B:15.1f}")

    bw = report["BW"].download
    print(
        f"\nReading the BW row like the paper does: {bw.P:.0f}% of contributing"
        f" peers are high-bandwidth, and they supply {bw.B:.0f}% of the bytes"
        " — bandwidth awareness is clearly embedded."
    )
    as_ = report["AS"].download
    print(
        f"AS row: B'={as_.B_prime:.1f}% of non-probe bytes come from just"
        f" P'={as_.P_prime:.1f}% of non-probe contributors in the same AS"
        " — TVAnts also prefers AS-local peers."
    )


if __name__ == "__main__":
    main()
