"""Extending the framework with a new network property.

The paper's framework is deliberately generic: any property that (a) the
application could plausibly observe and (b) an analyst can recover from
traces can be plugged in as a new preferential partition.  Here we add two:

* ``REGION``  — peer on the probe's continent (coarser than CC), resolved
  through the registry like AS/CC;
* ``RTT``     — a latency proxy: peers whose estimated one-way delay (from
  hop counts) is below a threshold.

Both reuse only public analyzer machinery; nothing in :mod:`repro.core`
needs changing.

Run:  python examples/custom_metric.py
"""

import numpy as np

from repro import IpRegistry, run_experiment, flow_table_of
from repro.core import AwarenessAnalyzer, default_partitions
from repro.core.partitions import PreferentialPartition
from repro.core.views import DirectionalView
from repro.heuristics.hops import hops_from_ttl
from repro.topology.geography import WORLD


class RegionPartition(PreferentialPartition):
    """Peer in the same coarse region (continent) as the probe."""

    name = "REGION"

    def __init__(self, registry: IpRegistry) -> None:
        self.registry = registry
        self._region = {c.code: c.region for c in WORLD}

    def _regions(self, ips: np.ndarray) -> np.ndarray:
        codes = self.registry.country_of(ips)
        return np.array([self._region.get(str(c), "?") for c in codes])

    def indicator(self, view: DirectionalView) -> np.ndarray:
        return self._regions(view.peer_ip) == self._regions(view.probe_ip)


class RttPartition(PreferentialPartition):
    """Peers with an estimated one-way delay below a threshold.

    The delay estimate is derived from the TTL-inferred hop count with a
    nominal 2 ms/hop forwarding budget — the kind of proxy an analyst uses
    when active RTT measurement is impossible (paper §III: RTT "is very
    hard to infer passively").
    """

    name = "RTT"

    def __init__(self, threshold_ms: float = 40.0, ms_per_hop: float = 2.0) -> None:
        self.threshold_ms = threshold_ms
        self.ms_per_hop = ms_per_hop

    def indicator(self, view: DirectionalView) -> np.ndarray:
        seen = np.isfinite(view.ttl)
        out = np.zeros(len(view), dtype=bool)
        if seen.any():
            hops = hops_from_ttl(view.ttl[seen].astype(np.int64))
            out[seen] = hops * self.ms_per_hop < self.threshold_ms
        return out


def main() -> None:
    result = run_experiment("tvants", duration_s=120.0, seed=3)
    flows = flow_table_of(result)
    registry = IpRegistry.from_world(result.world)

    partitions = default_partitions(registry) + [
        RegionPartition(registry),
        RttPartition(threshold_ms=40.0),
    ]
    report = AwarenessAnalyzer(registry, partitions=partitions).analyze(flows)

    print("metric   B'_D     P'_D     verdict")
    for metric in ("AS", "REGION", "RTT"):
        s = report[metric].download
        biased = s.B_prime > 1.5 * max(s.P_prime, 1e-9)
        print(
            f"{metric:>6}  {s.B_prime:6.1f}%  {s.P_prime:6.1f}%  "
            f"{'byte-bias beyond peer share' if biased else 'no preference beyond discovery'}"
        )


if __name__ == "__main__":
    main()
