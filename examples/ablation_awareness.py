"""Ablation: the framework recovers ground-truth awareness it never sees.

This is the validation the original paper could not run: because our
"applications" are simulated, the selection-policy weights are known.  We
sweep the per-chunk AS weight of a synthetic profile from 0 (oblivious) to
strong, and show that the measured byte-wise preference B′ rises
monotonically while a weight of zero yields B′ ≈ P′ (no false positives).

Run:  python examples/ablation_awareness.py
"""

from dataclasses import replace

from repro import analyze_experiment
from repro.streaming import SelectionWeights, get_profile, simulate


def main() -> None:
    base = get_profile("random")
    print("ground-truth AS weight → measured AS preference (download, non-probe)")
    print(" w_as    B'_D%    P'_D%    B'/P'")
    for w_as in (0.0, 0.8, 1.6, 2.4, 3.2):
        profile = replace(
            base,
            name=f"ablation-as-{w_as}",
            partner_weights=SelectionWeights(bw=1.8, as_=w_as / 2),
            provider_weights=SelectionWeights(bw=2.2, as_=w_as),
            discovery_as_bias=2.0 if w_as else 0.0,
        )
        result = simulate(profile, duration_s=150.0, seed=21)
        scores = analyze_experiment(result)["AS"].download
        ratio = scores.B_prime / scores.P_prime if scores.P_prime else float("nan")
        print(
            f" {w_as:4.1f}  {scores.B_prime:7.2f}  {scores.P_prime:7.2f}  {ratio:7.2f}"
        )
    print(
        "\nA rising B'/P' with the hidden weight — and ≈1 at weight 0 — is the"
        "\nframework behaving exactly as the paper claims it does."
    )


if __name__ == "__main__":
    main()
