"""Beyond Table IV: overlay structure, peer stability, active probing.

The paper's related work measures overlay degrees [7] and peer stability
[8], and notes active RTT measurement is easy where passive inference is
hard.  This example runs all three complementary analyses on one
simulated experiment:

1. the observed exchange graph and its degree statistics;
2. the stable-peer byte concentration;
3. active ping/traceroute cross-validated against the passive TTL-based
   hop estimates the framework relies on.

Run:  python examples/swarm_survey.py
"""

import numpy as np

from repro import flow_table_of, run_experiment
from repro.active import ActiveProber
from repro.heuristics.hops import hops_from_ttl
from repro.swarm import build_overlay, stability_report


def main() -> None:
    result = run_experiment("tvants", duration_s=120.0, seed=4)
    flows = flow_table_of(result)

    # 1. Overlay structure.
    overlay = build_overlay(flows)
    stats = overlay.degree_stats()
    print(
        f"overlay: {stats.n_nodes} peers, {stats.n_edges} exchange edges\n"
        f"  mean degree {stats.mean_degree:.1f} (median {stats.median_degree:.0f}, "
        f"max {stats.max_degree}), probes average {stats.probe_mean_degree:.1f}\n"
        f"  same-AS edges: {100 * overlay.same_as_edge_fraction():.1f}%"
    )

    # 2. Stability.
    rep = stability_report(flows, result.duration_s)
    print(
        f"\nstability: {rep.n_stable}/{rep.n_peers} peers active ≥60% of the "
        f"capture\n  they carry {100 * rep.stable_byte_share:.0f}% of the bytes "
        f"({rep.concentration:.1f}× their peer share)"
    )

    # 3. Active vs passive distance measurement.
    probe = result.testbed.host("PoliTO-1").endpoint
    prober = ActiveProber(result.world, probe, seed=1)
    targets = ["PoliTO-2", "UniTN-1", "BME-1", "ENST-1", "WUT-9"]
    peers = [result.testbed.host(label).endpoint for label in targets]
    print("\nactive vs passive (per target): traceroute hops vs 128−TTL")
    agreements = 0
    for target in peers:
        active_hops = len(prober.traceroute(target))
        ttl = result.world.paths.ttl_at_receiver(target, probe)
        passive_hops = int(hops_from_ttl(np.array([ttl]))[0])
        # Passive measures the reverse path; agreement is within the
        # path-asymmetry jitter.
        agreements += abs(active_hops - passive_hops) <= 2
        rtt = prober.ping(target, count=5)
        print(
            f"  {target.ip:>10d}: active {active_hops:2d} hops "
            f"(rtt {1000 * rtt.rtt_min_s:5.1f} ms), passive {passive_hops:2d} hops"
        )
    print(f"\n{agreements}/{len(peers)} targets agree within path asymmetry.")


if __name__ == "__main__":
    main()
