"""Deterministic integer hashing used for reproducible per-pair jitter.

Path properties (router-hop jitter, asymmetry) must be *stable*: every
packet of a flow must see the same path, and re-running an experiment with
the same seed must regenerate identical traces.  Drawing from a stateful RNG
inside the packet path would break both, so instead we derive pseudo-random
values from a stateless splitmix64-style hash of (src, dst, seed).

All functions operate on numpy ``uint64`` arrays (C wrap-around semantics)
and accept scalars transparently.
"""

from __future__ import annotations

import numpy as np

_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def mix64(x: np.ndarray | int) -> np.ndarray:
    """The splitmix64 finaliser: a high-quality 64-bit bijective mixer."""
    x = np.asarray(x, dtype=np.uint64).copy()
    x ^= x >> np.uint64(30)
    x *= _M1
    x ^= x >> np.uint64(27)
    x *= _M2
    x ^= x >> np.uint64(31)
    return x


def pair_hash(a: np.ndarray | int, b: np.ndarray | int, seed: int = 0) -> np.ndarray:
    """Hash an ordered pair of 32-bit values (plus a seed) to 64 bits.

    Ordered: ``pair_hash(a, b) != pair_hash(b, a)`` in general, which is what
    models forward/reverse path asymmetry.
    """
    a64 = np.asarray(a, dtype=np.uint64)
    b64 = np.asarray(b, dtype=np.uint64)
    key = (a64 << np.uint64(32)) | (b64 & np.uint64(0xFFFFFFFF))
    # Fold the seed in Python-int space (explicit wrap) to avoid numpy's
    # scalar-overflow warning; array ops below wrap silently by design.
    folded = (int(seed) + int(_GOLDEN)) & 0xFFFFFFFFFFFFFFFF
    return mix64(key ^ mix64(np.uint64(folded)))


def pair_uniform(
    a: np.ndarray | int, b: np.ndarray | int, seed: int = 0
) -> np.ndarray:
    """Deterministic uniform(0, 1) values derived from ordered pairs."""
    h = pair_hash(a, b, seed)
    # 53 significant bits, like random.random().
    return (h >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def pair_randint(
    a: np.ndarray | int, b: np.ndarray | int, bound: int, seed: int = 0
) -> np.ndarray:
    """Deterministic integers in ``[0, bound)`` derived from ordered pairs."""
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    return (pair_hash(a, b, seed) % np.uint64(bound)).astype(np.int64)
