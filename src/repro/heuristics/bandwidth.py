"""Capacity inference from packet-train dispersion (min inter-packet gap).

Paper §III-B: video chunks are sent as bursts of packets ("packet
trains"); consecutive packets act as packet-pairs whose spacing at the
receiver equals the serialisation time of one packet at the path
bottleneck.  Measuring the *minimum* IPG over a flow and comparing it to
1 ms — the transmission time of a 1250 B packet at 10 Mb/s — classifies
the sender as high- or low-bandwidth:

    ``BW(e, p) > 10 Mb/s  ⇔  min IPG(e → p) < 1 ms``
"""

from __future__ import annotations

import numpy as np

from repro.units import BITS_PER_BYTE, MBPS

#: The paper's reference packet size (bytes).
REFERENCE_PACKET_BYTES = 1250

#: The paper's capacity threshold and the equivalent IPG threshold.
HIGH_BW_CAPACITY_BPS = 10 * MBPS
HIGH_BW_IPG_THRESHOLD_S = REFERENCE_PACKET_BYTES * BITS_PER_BYTE / HIGH_BW_CAPACITY_BPS


def classify_high_bandwidth(
    min_ipg_s: np.ndarray,
    threshold_s: float = HIGH_BW_IPG_THRESHOLD_S,
    *,
    telemetry=None,
) -> np.ndarray:
    """High-bandwidth indicator per flow from min inter-packet gaps.

    Flows that never carried a multi-packet train have ``min_ipg = +inf``
    and classify as low-bandwidth — the conservative choice (no evidence
    of a fast path is treated as absence).  ``telemetry`` (optional
    :class:`~repro.obs.telemetry.Telemetry`) tallies high/low verdicts.
    """
    mask = np.asarray(min_ipg_s) < threshold_s
    if telemetry is not None:
        telemetry.count("heuristics/bw_classified", int(mask.size))
        telemetry.count("heuristics/bw_high", int(mask.sum()))
    return mask


def estimate_capacity_bps(
    min_ipg_s: np.ndarray, packet_bytes: int = REFERENCE_PACKET_BYTES
) -> np.ndarray:
    """Point estimate of the bottleneck capacity from the min IPG.

    ``capacity = packet_size / min_ipg``; +inf gaps give a 0 b/s estimate
    (no train ⇒ no information, not an infinite-capacity path).
    """
    gaps = np.asarray(min_ipg_s, dtype=np.float64)
    with np.errstate(divide="ignore"):
        est = packet_bytes * BITS_PER_BYTE / gaps
    return np.where(np.isfinite(gaps), est, 0.0)
