"""IP → AS / country / subnet resolution (the whois/GeoIP step).

The paper maps peer addresses to Autonomous Systems and countries with
public registry data.  Our equivalent is built from the synthetic world's
prefix allocations — the same information a routing registry would
publish — and offers vectorised longest-prefix-match lookups.

It can also be built from a :class:`HostTable`'s *public view* (per-host
AS/CC rows), which models a GeoIP database keyed by exact addresses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RegistryError
from repro.topology.ip import subnet_key
from repro.trace.hosts import HostTable


class IpRegistry:
    """Prefix-based address resolver with vectorised lookups."""

    def __init__(
        self,
        networks: np.ndarray,
        prefix_sizes: np.ndarray,
        asns: np.ndarray,
        country_codes: np.ndarray,
        subnet_prefixlen: int = 24,
    ) -> None:
        """
        Parameters
        ----------
        networks / prefix_sizes:
            Aligned arrays: prefix network addresses and their address-span
            sizes (``2**(32-prefixlen)``).  Prefixes must be disjoint.
        asns / country_codes:
            Owner AS numbers and country codes, aligned with the prefixes.
        subnet_prefixlen:
            Granularity of the NET ("same subnet") relation.
        """
        order = np.argsort(networks, kind="stable")
        self._networks = np.asarray(networks, dtype=np.uint64)[order]
        self._sizes = np.asarray(prefix_sizes, dtype=np.uint64)[order]
        self._asns = np.asarray(asns, dtype=np.int64)[order]
        self._ccs = np.asarray(country_codes, dtype="U2")[order]
        self.subnet_prefixlen = subnet_prefixlen
        ends = self._networks + self._sizes
        if np.any(self._networks[1:] < ends[:-1]):
            raise RegistryError("registry prefixes overlap")

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_world(cls, world) -> "IpRegistry":
        """Build from a :class:`~repro.topology.world.World`'s allocations."""
        networks, sizes, asns, ccs = [], [], [], []
        for asys in world.registry:
            for prefix in asys.prefixes:
                networks.append(prefix.network)
                sizes.append(prefix.num_addresses)
                asns.append(asys.asn)
                ccs.append(asys.country_code)
        if not networks:
            raise RegistryError("world has no allocated prefixes")
        return cls(
            np.array(networks, dtype=np.uint64),
            np.array(sizes, dtype=np.uint64),
            np.array(asns, dtype=np.int64),
            np.array(ccs, dtype="U2"),
            subnet_prefixlen=world.config.subnet_prefixlen,
        )

    @classmethod
    def from_hosts(cls, hosts: HostTable, subnet_prefixlen: int = 24) -> "IpRegistry":
        """Build from per-host records (a GeoIP-style exact-address DB)."""
        rows = hosts.rows
        if len(rows) == 0:
            raise RegistryError("empty host table")
        return cls(
            rows["ip"].astype(np.uint64),
            np.ones(len(rows), dtype=np.uint64),
            rows["asn"].astype(np.int64),
            rows["cc"],
            subnet_prefixlen=subnet_prefixlen,
        )

    # --------------------------------------------------------------- lookups
    def _indices(self, ips: np.ndarray) -> np.ndarray:
        ips64 = np.asarray(ips, dtype=np.uint64)
        idx = np.searchsorted(self._networks, ips64, side="right") - 1
        valid = idx >= 0
        idx_c = np.maximum(idx, 0)
        inside = valid & (ips64 < self._networks[idx_c] + self._sizes[idx_c])
        if not np.all(inside):
            bad = np.asarray(ips)[~inside]
            raise RegistryError(f"unresolvable addresses (first few): {bad[:5]}")
        return idx_c

    def asn_of(self, ips: np.ndarray) -> np.ndarray:
        """AS numbers for an address array."""
        return self._asns[self._indices(ips)]

    def country_of(self, ips: np.ndarray) -> np.ndarray:
        """Country codes for an address array."""
        return self._ccs[self._indices(ips)]

    def subnet_of(self, ips: np.ndarray) -> np.ndarray:
        """Subnet identifiers (masked network addresses)."""
        return subnet_key(np.asarray(ips, dtype=np.uint32), self.subnet_prefixlen)

    def resolve(self, ip: int) -> tuple[int, str]:
        """Scalar convenience: ``(asn, country_code)`` for one address."""
        idx = self._indices(np.array([ip]))
        return int(self._asns[idx[0]]), str(self._ccs[idx[0]])

    def __len__(self) -> int:
        return len(self._networks)
