"""Contributor identification: separating video exchange from signaling.

The paper counts as *contributing peers* those "with whom some video
segment has been exchanged", identified with the heuristic of the
NAPA-WINE technical report [14] ("accurate and conservative").  The report
is not public, but the signal it exploits is standard: video payload
travels in near-MTU packets and in volume, while signaling is small
datagrams.  A flow is classified as contributing when it moved enough
large-packet payload.

Two equivalent implementations are provided: one over flow records (mean
packet size — the fast path) and one over raw packets (per-packet size
thresholding — the pcap-analyst path).  Both are validated against the
simulator's ground-truth ``video_bytes`` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.trace.records import FLOW_DTYPE, PACKET_DTYPE


@dataclass(frozen=True, slots=True)
class ContributorCriteria:
    """Thresholds of the contributor heuristic.

    Parameters
    ----------
    payload_packet_bytes:
        Packets at least this large count as video payload.
    min_payload_bytes:
        Minimum payload volume for a flow to count as contributing
        (conservative: more than one full packet, i.e. at least one
        unmistakable video segment).
    min_mean_packet_bytes:
        Flow-level proxy: flows whose mean packet size is below this are
        signaling-only regardless of volume.
    """

    payload_packet_bytes: int = 1000
    min_payload_bytes: int = 2500
    min_mean_packet_bytes: int = 400

    def __post_init__(self) -> None:
        if self.payload_packet_bytes <= 0 or self.min_payload_bytes <= 0:
            raise AnalysisError("contributor thresholds must be positive")


def contributor_mask(
    flows: np.ndarray,
    criteria: ContributorCriteria | None = None,
    *,
    telemetry=None,
) -> np.ndarray:
    """Contributing-flow indicator over a flow table (fast path).

    Uses only analyst-observable columns (bytes, pkts) — *not* the
    simulator's ground-truth ``video_bytes``.  ``telemetry`` (optional
    :class:`~repro.obs.telemetry.Telemetry`) tallies flows classified
    and contributors found.
    """
    if flows.dtype != FLOW_DTYPE:
        raise AnalysisError("contributor_mask() wants a FLOW_DTYPE array")
    crit = criteria or ContributorCriteria()
    if len(flows) == 0:
        return np.zeros(0, dtype=bool)
    pkts = np.maximum(flows["pkts"], 1)
    mean_size = flows["bytes"] / pkts
    mask = (mean_size >= crit.min_mean_packet_bytes) & (
        flows["bytes"] >= crit.min_payload_bytes
    )
    if telemetry is not None:
        telemetry.count("heuristics/flows_classified", len(flows))
        telemetry.count("heuristics/contributors", int(mask.sum()))
    return mask


def contributor_mask_packets(
    packets: np.ndarray, criteria: ContributorCriteria | None = None
) -> dict[tuple[int, int], bool]:
    """Per-(src, dst) contributor classification from raw packets.

    The pcap-analyst implementation: count bytes carried in large packets
    per directed pair; pairs moving at least ``min_payload_bytes`` that
    way are contributors.  Returns a dict keyed by ``(src, dst)``.
    """
    if packets.dtype != PACKET_DTYPE:
        raise AnalysisError("contributor_mask_packets() wants PACKET_DTYPE")
    crit = criteria or ContributorCriteria()
    out: dict[tuple[int, int], bool] = {}
    if len(packets) == 0:
        return out
    large = packets["size"] >= crit.payload_packet_bytes
    keys = (packets["src"].astype(np.uint64) << np.uint64(32)) | packets["dst"].astype(
        np.uint64
    )
    uniq, inverse = np.unique(keys, return_inverse=True)
    payload = np.bincount(
        inverse, weights=packets["size"] * large, minlength=len(uniq)
    )
    for key, vol in zip(uniq, payload):
        src = int(key >> np.uint64(32))
        dst = int(key & np.uint64(0xFFFFFFFF))
        out[(src, dst)] = bool(vol >= crit.min_payload_bytes)
    return out
