"""Hop-count inference from received TTLs.

Paper §III-B: ``HOP(e, p)`` is evaluated as ``128 − TTL`` of received
packets, 128 being the Windows default initial TTL (the measured clients
were Windows applications).  A small share of senders run stacks with
initial TTL 64 or 255; the standard trick — also implemented here — is to
round the received TTL up to the nearest common initial value, since real
paths are far shorter than the gaps between 64, 128 and 255.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError

#: Common initial TTLs, ascending.
COMMON_INITIAL_TTLS = (64, 128, 255)


def infer_initial_ttl(ttl: np.ndarray) -> np.ndarray:
    """Most plausible initial TTL for each received TTL value."""
    ttl = np.asarray(ttl, dtype=np.int64)
    if np.any(ttl <= 0) or np.any(ttl > 255):
        raise AnalysisError("received TTLs must be in [1, 255]")
    out = np.full(ttl.shape, COMMON_INITIAL_TTLS[-1], dtype=np.int64)
    for initial in reversed(COMMON_INITIAL_TTLS):
        out = np.where(ttl <= initial, initial, out)
    return out


def hops_from_ttl(ttl: np.ndarray, assume_initial: int | None = None) -> np.ndarray:
    """Router-hop estimate per received TTL.

    Parameters
    ----------
    ttl:
        Received TTL values.
    assume_initial:
        Fix the initial TTL (the paper assumes 128 throughout).  When
        None, the initial TTL is inferred per packet — more robust when
        a minority of peers run non-Windows stacks.
    """
    ttl = np.asarray(ttl, dtype=np.int64)
    if assume_initial is not None:
        if assume_initial not in COMMON_INITIAL_TTLS:
            raise AnalysisError(f"implausible initial TTL {assume_initial}")
        initial = np.full(ttl.shape, assume_initial, dtype=np.int64)
    else:
        initial = infer_initial_ttl(ttl)
    hops = initial - ttl
    # A fixed wrong assumption can go negative (e.g. TTL 250 under 128);
    # clamp at 0, the conservative "same subnet" estimate.
    return np.maximum(hops, 0)
