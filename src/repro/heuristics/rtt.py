"""Passive RTT estimation from request/response timing.

The paper notes RTT is "very hard to infer passively" and leaves it out;
this module implements the standard passive trick anyway, as a framework
extension: pair each outgoing chunk request (small control datagram
p → e) with the first video packet flowing back (e → p) and take the
*minimum* delay per peer — queues only ever add delay, so the minimum
over many exchanges approaches propagation + serialisation.

The estimate conflates the provider's request-processing and
serialisation time with path latency (a real limitation of passive RTT),
so tests validate it as an upper bound that ranks peers correctly rather
than as an exact recovery.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError
from repro.trace.records import PACKET_DTYPE, TRANSFER_DTYPE, PacketKind


def estimate_rtt_from_transfers(
    transfers: np.ndarray, probe_ip: int, max_match_s: float = 5.0
) -> dict[int, float]:
    """Per-peer minimum request→first-data delay for one probe.

    Parameters
    ----------
    transfers:
        A transfer log (the flow-level view of the capture).
    probe_ip:
        The vantage point whose outgoing requests are matched.
    max_match_s:
        Responses later than this are treated as unrelated.

    Returns
    -------
    dict
        peer ip → minimum observed delay (seconds).  Peers that never
        answered a request are absent.
    """
    if transfers.dtype != TRANSFER_DTYPE:
        raise AnalysisError("estimate_rtt_from_transfers() wants TRANSFER_DTYPE")
    probe = np.uint32(probe_ip)
    requests = transfers[
        (transfers["src"] == probe) & (transfers["kind"] == int(PacketKind.CONTROL))
    ]
    data = transfers[
        (transfers["dst"] == probe) & (transfers["kind"] == int(PacketKind.VIDEO))
    ]
    out: dict[int, float] = {}
    if len(requests) == 0 or len(data) == 0:
        return out

    # Match per peer: for each request, the first data record at or after
    # it (both arrays are time-sorted by construction).
    for peer in np.unique(requests["dst"]):
        req_ts = requests["ts"][requests["dst"] == peer]
        dat_ts = data["ts"][data["src"] == peer]
        if len(dat_ts) == 0:
            continue
        idx = np.searchsorted(dat_ts, req_ts)
        valid = idx < len(dat_ts)
        if not valid.any():
            continue
        delays = dat_ts[idx[valid]] - req_ts[valid]
        delays = delays[(delays >= 0) & (delays <= max_match_s)]
        if len(delays):
            out[int(peer)] = float(delays.min())
    return out


def estimate_rtt_from_packets(
    packets: np.ndarray, probe_ip: int, max_match_s: float = 5.0
) -> dict[int, float]:
    """Packet-trace variant of :func:`estimate_rtt_from_transfers`."""
    if packets.dtype != PACKET_DTYPE:
        raise AnalysisError("estimate_rtt_from_packets() wants PACKET_DTYPE")
    probe = np.uint32(probe_ip)
    requests = packets[
        (packets["src"] == probe) & (packets["kind"] == int(PacketKind.CONTROL))
    ]
    data = packets[
        (packets["dst"] == probe) & (packets["kind"] == int(PacketKind.VIDEO))
    ]
    out: dict[int, float] = {}
    for peer in np.unique(requests["dst"]):
        req_ts = np.sort(requests["ts"][requests["dst"] == peer])
        dat_ts = np.sort(data["ts"][data["src"] == peer])
        if len(dat_ts) == 0:
            continue
        idx = np.searchsorted(dat_ts, req_ts)
        valid = idx < len(dat_ts)
        if not valid.any():
            continue
        delays = dat_ts[idx[valid]] - req_ts[valid]
        delays = delays[(delays >= 0) & (delays <= max_match_s)]
        if len(delays):
            out[int(peer)] = float(delays.min())
    return out
