"""Black-box measurement heuristics — what an analyst can infer from traces.

The paper's methodology deliberately uses only what passive probe-side
captures reveal:

* :mod:`repro.heuristics.contributors` — which peers actually exchanged
  video (vs signaling-only contacts), from packet sizes and volumes;
* :mod:`repro.heuristics.bandwidth` — path-capacity classification from
  minimum inter-packet gaps (packet-pair dispersion);
* :mod:`repro.heuristics.hops` — router-hop distance from received TTLs,
  including initial-TTL detection;
* :mod:`repro.heuristics.registry` — IP → AS / country / subnet lookup
  (the whois/GeoIP step).

Each heuristic is validated in the test suite against the simulator's
ground truth, which the real paper could not do.
"""

from repro.heuristics.bandwidth import (
    HIGH_BW_IPG_THRESHOLD_S,
    classify_high_bandwidth,
    estimate_capacity_bps,
)
from repro.heuristics.contributors import (
    ContributorCriteria,
    contributor_mask,
    contributor_mask_packets,
)
from repro.heuristics.hops import hops_from_ttl, infer_initial_ttl
from repro.heuristics.registry import IpRegistry
from repro.heuristics.rtt import (
    estimate_rtt_from_packets,
    estimate_rtt_from_transfers,
)

__all__ = [
    "HIGH_BW_IPG_THRESHOLD_S",
    "classify_high_bandwidth",
    "estimate_capacity_bps",
    "ContributorCriteria",
    "contributor_mask",
    "contributor_mask_packets",
    "hops_from_ttl",
    "infer_initial_ttl",
    "IpRegistry",
    "estimate_rtt_from_packets",
    "estimate_rtt_from_transfers",
]
