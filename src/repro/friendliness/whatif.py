"""What-if evaluation: how much would awareness help?

Runs two application profiles on identically-seeded worlds and compares
network cost *and* user-side streaming quality, answering the paper's
closing question quantitatively: a next-generation client should localise
traffic **without** degrading the stream.

Quality proxy: the per-probe received video rate relative to the nominal
stream rate (a probe receiving the full stream plays it; the simulator
has no player, so rate sufficiency is the observable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.friendliness.cost import TrafficCost, traffic_cost
from repro.streaming.engine import EngineConfig, simulate
from repro.streaming.profiles import AppProfile
from repro.trace.flows import build_flow_table
from repro.trace.records import PacketKind
from repro.units import BITS_PER_BYTE


@dataclass(frozen=True, slots=True)
class RunSummary:
    """One profile's cost + quality numbers."""

    profile: str
    cost: TrafficCost
    mean_rx_rate_bps: float
    rate_sufficiency: float  # mean RX rate / nominal stream rate


@dataclass(frozen=True, slots=True)
class WhatIfOutcome:
    """Side-by-side comparison of a baseline and a candidate profile."""

    baseline: RunSummary
    candidate: RunSummary

    @property
    def hop_reduction(self) -> float:
        """Relative reduction in mean hops per byte (positive = better)."""
        b = self.baseline.cost.mean_hops_per_byte
        c = self.candidate.cost.mean_hops_per_byte
        return (b - c) / b if b else float("nan")

    @property
    def transit_reduction(self) -> float:
        """Relative reduction in transit (inter-AS) byte share."""
        b = self.baseline.cost.transit_fraction
        c = self.candidate.cost.transit_fraction
        return (b - c) / b if b else float("nan")

    @property
    def quality_preserved(self) -> bool:
        """Candidate keeps ≥ 90 % of the baseline's rate sufficiency."""
        return self.candidate.rate_sufficiency >= 0.9 * self.baseline.rate_sufficiency


def _summarise(profile: AppProfile, duration_s: float, seed: int) -> RunSummary:
    result = simulate(
        profile, engine_config=EngineConfig(duration_s=duration_s, seed=seed)
    )
    flows = build_flow_table(
        result.transfers, result.signaling, result.hosts, result.world.paths
    )
    cost = traffic_cost(flows, result.world.paths)

    video = result.transfers[result.transfers["kind"] == int(PacketKind.VIDEO)]
    probes = result.probe_ips
    rates = []
    for ip in probes:
        nbytes = video["bytes"][video["dst"] == ip].sum()
        rates.append(nbytes * BITS_PER_BYTE / duration_s)
    mean_rate = float(np.mean(rates))
    return RunSummary(
        profile=profile.name,
        cost=cost,
        mean_rx_rate_bps=mean_rate,
        rate_sufficiency=mean_rate / profile.video.rate_bps,
    )


def compare_profiles(
    baseline: AppProfile,
    candidate: AppProfile,
    *,
    duration_s: float = 180.0,
    seed: int = 23,
) -> WhatIfOutcome:
    """Run both profiles under identical conditions and compare.

    Both runs use the same engine seed, so world, population, churn and
    demand realisations match; only the application behaviour differs.
    """
    return WhatIfOutcome(
        baseline=_summarise(baseline, duration_s, seed),
        candidate=_summarise(candidate, duration_s, seed),
    )
