"""Network-friendliness analysis — the paper's forward-looking question.

The paper concludes that P2P-TV systems "definitively need to improve the
level of network-awareness, so to better localize the traffic in the
network".  This subpackage quantifies exactly that:

* :mod:`repro.friendliness.cost` — how much work the network performs to
  carry an experiment's traffic: byte×hop volume, transit-link load,
  intra-AS / intra-country localization indices;
* :mod:`repro.friendliness.whatif` — what-if evaluation: re-run a system
  with increased awareness (e.g. the :func:`repro.streaming.profiles
  .napa_wine` next-generation profile) and measure the localisation gain
  at equal streaming quality.
"""

from repro.friendliness.cost import TrafficCost, traffic_cost
from repro.friendliness.whatif import WhatIfOutcome, compare_profiles

__all__ = [
    "TrafficCost",
    "traffic_cost",
    "WhatIfOutcome",
    "compare_profiles",
]
