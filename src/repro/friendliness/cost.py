"""Network-cost accounting for an experiment's probe-visible traffic.

A byte that crosses 20 routers costs the network twenty times the
forwarding work of a byte that stays on a campus LAN.  The metrics here
put numbers on the paper's concluding complaint (traffic is not
localised):

* **byte-hops** — Σ bytes × router hops, the total forwarding work;
* **mean hops per byte** — byte-hops / bytes (how far the average byte
  travels);
* **localization indices** — the fraction of bytes that stay inside the
  sender's subnet / AS / country;
* **transit bytes** — bytes that leave their origin AS and load
  inter-provider links (what ISPs pay for).

All metrics are computed from the flow table plus ground-truth paths,
vectorised.  They accept an optional video-only restriction since
signaling volume is negligible but flow counts are not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.trace.flows import FlowTable


@dataclass(frozen=True, slots=True)
class TrafficCost:
    """Network-cost summary of one experiment's traffic."""

    total_bytes: int
    byte_hops: float
    intra_subnet_bytes: int
    intra_as_bytes: int
    intra_cc_bytes: int
    transit_bytes: int

    @property
    def mean_hops_per_byte(self) -> float:
        """Average router hops travelled by one byte."""
        if self.total_bytes == 0:
            return float("nan")
        return self.byte_hops / self.total_bytes

    @property
    def subnet_localization(self) -> float:
        """Fraction of bytes that never left the sender's subnet."""
        return self._frac(self.intra_subnet_bytes)

    @property
    def as_localization(self) -> float:
        """Fraction of bytes that never left the sender's AS."""
        return self._frac(self.intra_as_bytes)

    @property
    def cc_localization(self) -> float:
        """Fraction of bytes that never left the sender's country."""
        return self._frac(self.intra_cc_bytes)

    @property
    def transit_fraction(self) -> float:
        """Fraction of bytes loading inter-AS (transit/peering) links."""
        return self._frac(self.transit_bytes)

    def _frac(self, part: int) -> float:
        if self.total_bytes == 0:
            return float("nan")
        return part / self.total_bytes


def traffic_cost(
    table: FlowTable,
    paths,
    *,
    video_only: bool = True,
) -> TrafficCost:
    """Compute the :class:`TrafficCost` of a flow table.

    Parameters
    ----------
    table:
        Probe-visible flows with the ground-truth host table attached.
    paths:
        The world's :class:`~repro.topology.paths.PathModel`.
    video_only:
        Restrict to video payload bytes (default): the localisation
        question is about the stream, not keepalives.
    """
    flows = table.flows
    hosts = table.hosts
    if len(flows) == 0:
        return TrafficCost(0, 0.0, 0, 0, 0, 0)

    nbytes = (flows["video_bytes"] if video_only else flows["bytes"]).astype(
        np.float64
    )
    src, dst = flows["src"], flows["dst"]
    hops = paths.hops_many(
        src, hosts.gather(src, "asn"), hosts.gather(src, "subnet"),
        hosts.gather(src, "access_depth"),
        dst, hosts.gather(dst, "asn"), hosts.gather(dst, "subnet"),
        hosts.gather(dst, "access_depth"),
    ).astype(np.float64)

    same_subnet = hosts.gather(src, "subnet") == hosts.gather(dst, "subnet")
    same_as = hosts.gather(src, "asn") == hosts.gather(dst, "asn")
    same_cc = hosts.gather(src, "cc") == hosts.gather(dst, "cc")

    total = nbytes.sum()
    return TrafficCost(
        total_bytes=int(total),
        byte_hops=float((nbytes * hops).sum()),
        intra_subnet_bytes=int(nbytes[same_subnet].sum()),
        intra_as_bytes=int(nbytes[same_as].sum()),
        intra_cc_bytes=int(nbytes[same_cc].sum()),
        transit_bytes=int(nbytes[~same_as].sum()),
    )


def cost_comparison_rows(costs: dict[str, TrafficCost]) -> list[list[str]]:
    """Tabular rows (app, hops/byte, localisation …) for reporting."""
    if not costs:
        raise AnalysisError("no costs to compare")
    rows = []
    for name, c in costs.items():
        rows.append(
            [
                name,
                f"{c.mean_hops_per_byte:.1f}",
                f"{100 * c.as_localization:.1f}",
                f"{100 * c.cc_localization:.1f}",
                f"{100 * c.transit_fraction:.1f}",
                f"{c.total_bytes / 1e6:.1f}",
            ]
        )
    return rows
