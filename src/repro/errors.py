"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid parameters."""


class TopologyError(ReproError):
    """The synthetic network topology is inconsistent or was misused."""


class AddressError(TopologyError):
    """An IPv4 address or prefix is malformed or out of allocation range."""


class AllocationError(TopologyError):
    """Address/subnet space is exhausted or an allocation request is invalid."""


class SimulationError(ReproError):
    """The discrete-event streaming engine hit an inconsistent state."""


class TraceError(ReproError):
    """A packet/flow trace is malformed, truncated or incompatible."""


class AnalysisError(ReproError):
    """The awareness-analysis framework was invoked on unusable inputs."""


class RegistryError(AnalysisError):
    """An IP could not be resolved by the AS/CC/subnet registry."""
