"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid parameters."""


class TopologyError(ReproError):
    """The synthetic network topology is inconsistent or was misused."""


class AddressError(TopologyError):
    """An IPv4 address or prefix is malformed or out of allocation range."""


class AllocationError(TopologyError):
    """Address/subnet space is exhausted or an allocation request is invalid."""


class SimulationError(ReproError):
    """The discrete-event streaming engine hit an inconsistent state."""


class TraceError(ReproError):
    """A packet/flow trace is malformed, truncated or incompatible."""


class TraceWarning(UserWarning):
    """A trace was salvaged in degraded (``strict=False``) mode.

    Emitted via :mod:`warnings` when a loader recovers the intact prefix
    of a truncated file instead of raising :class:`TraceError`.
    """


class ExecutorError(ReproError):
    """A shard executor failed at the infrastructure level.

    Raised by the *unsupervised* process backend when a worker dies or a
    payload cannot cross the process boundary; the supervised runtime
    (:mod:`repro.exec.supervisor`) traps the same conditions into failed
    shard outcomes instead.
    """


class ChaosError(ReproError):
    """A fault injected by the execution-layer chaos harness."""


class FaultInjectionError(ReproError):
    """An impairment plan is inconsistent or could not be applied."""


class AnalysisError(ReproError):
    """The awareness-analysis framework was invoked on unusable inputs."""


class RegistryError(AnalysisError):
    """An IP could not be resolved by the AS/CC/subnet registry."""
