"""Per-probe sniffer outages: capture-gap windows on the transfer log.

The paper's probes ran tcpdump for an hour straight; in practice sniffers
die — disks fill, rings overflow, machines reboot.  A capture gap removes
everything a probe's sniffer would have recorded during its outage
window.  Applied *post hoc* to the merged transfer log: the simulation's
physics is untouched, only the evidence goes missing — exactly what a
real capture gap does.

A record between two probes survives as long as at least one of its
probe endpoints was capturing at that instant (the merged campaign
dataset contains every probe's own capture).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultInjectionError


@dataclass(frozen=True, slots=True)
class CaptureOutageConfig:
    """How sniffer outages are drawn.

    Each probe independently suffers one outage with probability
    ``outage_prob``; its start is uniform over the capture and its length
    exponential with mean ``mean_outage_s`` (clipped to the horizon).
    """

    outage_prob: float = 0.25
    mean_outage_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.outage_prob <= 1.0:
            raise FaultInjectionError("outage_prob must be a probability")
        if self.mean_outage_s <= 0:
            raise FaultInjectionError("mean_outage_s must be positive")


@dataclass(frozen=True, slots=True)
class CaptureGap:
    """One probe's sniffer outage window ``[start_s, stop_s)``."""

    probe_ip: int
    start_s: float
    stop_s: float

    def __post_init__(self) -> None:
        if self.stop_s <= self.start_s:
            raise FaultInjectionError("capture gap must have positive length")


def draw_capture_gaps(
    probe_ips: np.ndarray,
    duration_s: float,
    config: CaptureOutageConfig,
    rng: np.random.Generator,
) -> tuple[CaptureGap, ...]:
    """Sample outage windows for a probe set."""
    gaps: list[CaptureGap] = []
    for ip in np.asarray(probe_ips, dtype=np.uint32):
        if rng.random() >= config.outage_prob:
            continue
        start = float(rng.uniform(0.0, duration_s))
        stop = min(start + float(rng.exponential(config.mean_outage_s)), duration_s)
        if stop > start:
            gaps.append(CaptureGap(probe_ip=int(ip), start_s=start, stop_s=stop))
    return tuple(gaps)


def apply_capture_gaps(
    records: np.ndarray,
    probe_ips: np.ndarray,
    gaps: tuple[CaptureGap, ...],
) -> np.ndarray:
    """Drop records no capturing probe saw; returns a filtered copy.

    ``records`` is any structured array with ``ts``/``src``/``dst``
    columns (transfer logs and packet traces both qualify).
    """
    if not gaps or len(records) == 0:
        return records.copy()
    probe_ips = np.asarray(probe_ips, dtype=np.uint32)
    starts = {g.probe_ip: g.start_s for g in gaps}
    stops = {g.probe_ip: g.stop_s for g in gaps}

    def capturing(endpoint: np.ndarray) -> np.ndarray:
        """Per record: endpoint is a probe whose sniffer is up at ts."""
        is_probe = np.isin(endpoint, probe_ips)
        gap_start = np.full(len(endpoint), np.inf)
        gap_stop = np.full(len(endpoint), np.inf)
        for ip in starts:
            hit = endpoint == np.uint32(ip)
            gap_start[hit] = starts[ip]
            gap_stop[hit] = stops[ip]
        in_gap = (records["ts"] >= gap_start) & (records["ts"] < gap_stop)
        return is_probe & ~in_gap

    visible = capturing(records["src"]) | capturing(records["dst"])
    return records[visible]
