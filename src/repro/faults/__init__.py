"""Deterministic fault injection for the measurement pipeline.

The paper's campaign survived lossy links, churning swarms, dying
sniffers and drifting clocks; this package reproduces those hazards as
seeded, composable impairments:

* :mod:`repro.faults.loss`    — bursty request loss (Gilbert–Elliott);
* :mod:`repro.faults.churn`   — churn storms and flash crowds;
* :mod:`repro.faults.capture` — per-probe sniffer outage windows;
* :mod:`repro.faults.clock`   — per-probe clock skew and jitter;
* :mod:`repro.faults.plan`    — :class:`ImpairmentPlan`, composing the
  four under one fault seed, plus :func:`simulate_impaired`.

Every draw comes from a named :class:`~repro.config.RngBundle` stream,
so an impaired run is a pure function of its seeds.
"""

from repro.faults.capture import (
    CaptureGap,
    CaptureOutageConfig,
    apply_capture_gaps,
    draw_capture_gaps,
)
from repro.faults.churn import ChurnStorm, FlashCrowd, apply_churn_events
from repro.faults.clock import ClockSkew, ClockSkewConfig, apply_clock_skew, draw_clock_skew
from repro.faults.loss import (
    GilbertElliottConfig,
    LossSchedule,
    materialize_loss_schedule,
)
from repro.faults.plan import (
    ImpairmentLog,
    ImpairmentPlan,
    impair_result,
    simulate_impaired,
)

__all__ = [
    "CaptureGap",
    "CaptureOutageConfig",
    "apply_capture_gaps",
    "draw_capture_gaps",
    "ChurnStorm",
    "FlashCrowd",
    "apply_churn_events",
    "ClockSkew",
    "ClockSkewConfig",
    "apply_clock_skew",
    "draw_clock_skew",
    "GilbertElliottConfig",
    "LossSchedule",
    "materialize_loss_schedule",
    "ImpairmentLog",
    "ImpairmentPlan",
    "impair_result",
    "simulate_impaired",
]
