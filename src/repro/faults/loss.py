"""Bursty request loss: a Gilbert–Elliott two-state channel.

The engine's ``request_loss_prob`` knob models memoryless loss; real
access links lose packets in *bursts* (congestion episodes, WiFi fades).
The classic Gilbert–Elliott model captures that with a two-state Markov
chain — a mostly-clean GOOD state and a lossy BAD state — whose sojourn
times are exponential.  :func:`materialize_loss_schedule` draws the whole
state trajectory up-front from a named RNG stream, so an impaired run
stays a pure function of its seeds; the engine then reads the effective
loss probability off the materialised :class:`LossSchedule` at request
time (no further randomness in the schedule itself).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultInjectionError


@dataclass(frozen=True, slots=True)
class GilbertElliottConfig:
    """Two-state bursty loss parameters.

    Parameters
    ----------
    mean_good_s / mean_bad_s:
        Mean sojourn times of the clean and lossy states (exponential).
    loss_good / loss_bad:
        Request-loss probability while in each state.  ``loss_good`` is
        typically the engine's baseline ``request_loss_prob``; the
        impairment layers the BAD bursts on top of it.
    """

    mean_good_s: float = 60.0
    mean_bad_s: float = 8.0
    loss_good: float = 0.0
    loss_bad: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_good_s <= 0 or self.mean_bad_s <= 0:
            raise FaultInjectionError("Gilbert-Elliott sojourn means must be positive")
        for name in ("loss_good", "loss_bad"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise FaultInjectionError(f"{name} must be a probability, got {p}")


@dataclass(frozen=True)
class LossSchedule:
    """A materialised loss-probability step function over the experiment.

    ``boundaries[i]`` is the start of segment ``i``; ``probs[i]`` is the
    loss probability holding until ``boundaries[i + 1]`` (or the horizon).
    """

    boundaries: np.ndarray  # f8, starts at 0.0, strictly increasing
    probs: np.ndarray       # f8, aligned with boundaries
    horizon_s: float

    def __post_init__(self) -> None:
        if len(self.boundaries) != len(self.probs) or len(self.boundaries) == 0:
            raise FaultInjectionError("loss schedule segments misaligned")
        if self.boundaries[0] != 0.0:
            raise FaultInjectionError("loss schedule must start at t = 0")

    def prob_at(self, t: float) -> float:
        """Effective request-loss probability at time ``t``."""
        idx = int(np.searchsorted(self.boundaries, t, side="right")) - 1
        if idx < 0:
            idx = 0
        return float(self.probs[idx])

    @property
    def bad_time_fraction(self) -> float:
        """Share of the horizon spent above the minimum loss level."""
        ends = np.append(self.boundaries[1:], self.horizon_s)
        lengths = np.clip(ends - self.boundaries, 0.0, None)
        floor = float(self.probs.min())
        bad = lengths[self.probs > floor].sum()
        total = lengths.sum()
        return float(bad / total) if total > 0 else 0.0


def materialize_loss_schedule(
    duration_s: float,
    config: GilbertElliottConfig,
    rng: np.random.Generator,
) -> LossSchedule:
    """Draw one GOOD/BAD trajectory over ``[0, duration_s]``.

    The chain starts in GOOD (captures begin in steady conditions); each
    sojourn is exponential with the configured mean.
    """
    if duration_s <= 0:
        raise FaultInjectionError("duration must be positive")
    boundaries = [0.0]
    probs = [config.loss_good]
    t = float(rng.exponential(config.mean_good_s))
    good = False  # state entered at the first boundary after t=0
    while t < duration_s:
        boundaries.append(t)
        probs.append(config.loss_good if good else config.loss_bad)
        t += float(rng.exponential(config.mean_good_s if good else config.mean_bad_s))
        good = not good
    return LossSchedule(
        boundaries=np.asarray(boundaries, dtype=np.float64),
        probs=np.asarray(probs, dtype=np.float64),
        horizon_s=float(duration_s),
    )
