"""Impairment plans: seeded composition of the fault primitives.

An :class:`ImpairmentPlan` bundles the four impairment families — bursty
request loss, churn events, sniffer outages, clock skew — under one fault
seed.  Every materialisation draws from a *named* stream of a fresh
:class:`~repro.config.RngBundle` built from that seed, so applying the
same plan to the same simulation twice yields byte-identical impaired
logs (the determinism tests assert exactly that).

Two application points mirror where each fault physically lives:

* :meth:`ImpairmentPlan.engine_config` wires the *in-protocol* faults
  (loss schedule, churn transform) into an :class:`EngineConfig` before
  the simulation runs;
* :func:`impair_result` applies the *measurement* faults (capture gaps,
  clock skew) to the finished transfer log, post hoc.

:func:`simulate_impaired` chains both around :func:`~repro.streaming.
engine.simulate` and is the entry point the robustness experiment uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.config import RngBundle
from repro.errors import FaultInjectionError
from repro.faults.capture import CaptureGap, CaptureOutageConfig, apply_capture_gaps, draw_capture_gaps
from repro.faults.churn import ChurnStorm, FlashCrowd, apply_churn_events
from repro.faults.clock import ClockSkewConfig, apply_clock_skew, draw_clock_skew
from repro.faults.loss import GilbertElliottConfig, materialize_loss_schedule
from repro.streaming.engine import EngineConfig, SimulationResult, simulate


@dataclass(frozen=True)
class ImpairmentPlan:
    """One seeded, composable description of everything that goes wrong."""

    seed: int = 0
    loss: GilbertElliottConfig | None = None
    storms: tuple[ChurnStorm, ...] = ()
    flash_crowds: tuple[FlashCrowd, ...] = ()
    capture: CaptureOutageConfig | None = None
    clock: ClockSkewConfig | None = None

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing."""
        return (
            self.loss is None
            and not self.storms
            and not self.flash_crowds
            and self.capture is None
            and self.clock is None
        )

    def with_seed(self, seed: int) -> "ImpairmentPlan":
        """The same impairments under a different fault seed."""
        return replace(self, seed=int(seed))

    @classmethod
    def preset(
        cls, severity: float, *, seed: int = 0, duration_s: float = 600.0
    ) -> "ImpairmentPlan":
        """A plan scaled by one ``severity`` knob in ``[0, 1]``.

        ``severity = 0`` is a no-op plan; ``1`` combines heavy bursty
        loss, a mid-experiment churn storm plus flash crowd, likely
        sniffer outages and visible clock skew.  The robustness sweep
        (:mod:`repro.experiments.robustness`) walks this dial.
        """
        if not 0.0 <= severity <= 1.0:
            raise FaultInjectionError("severity must be in [0, 1]")
        if severity == 0.0:
            return cls(seed=seed)
        return cls(
            seed=seed,
            loss=GilbertElliottConfig(
                mean_good_s=max(duration_s / 8.0, 10.0),
                mean_bad_s=max(duration_s / 40.0, 2.0) * (1.0 + severity),
                loss_good=0.0,
                loss_bad=0.7 * severity,
            ),
            storms=(
                ChurnStorm(
                    at_s=duration_s * 0.4,
                    duration_s=max(duration_s * 0.05, 5.0),
                    leave_fraction=0.6 * severity,
                ),
            ),
            flash_crowds=(
                FlashCrowd(
                    at_s=duration_s * 0.6,
                    join_fraction=0.6 * severity,
                    mean_stay_s=max(duration_s * 0.2, 30.0),
                ),
            ),
            capture=CaptureOutageConfig(
                outage_prob=0.5 * severity,
                mean_outage_s=max(duration_s * 0.08, 5.0),
            ),
            clock=ClockSkewConfig(
                max_offset_s=0.3 * severity,
                max_drift_ppm=250.0 * severity,
                jitter_std_s=0.0005 * severity,
            ),
        )

    # ------------------------------------------------------------ application
    def engine_config(self, base: EngineConfig) -> EngineConfig:
        """``base`` with this plan's in-protocol faults wired in.

        The loss schedule is materialised here (from the ``fault_loss``
        stream of this plan's seed) with the GOOD-state floor lifted to
        the engine's own ``request_loss_prob``; the churn transform is
        applied lazily by the engine from its ``fault_churn`` stream.
        """
        overrides: dict = {}
        if self.loss is not None:
            cfg = self.loss
            if base.request_loss_prob > cfg.loss_good:
                cfg = replace(cfg, loss_good=base.request_loss_prob)
            overrides["request_loss_schedule"] = materialize_loss_schedule(
                base.duration_s, cfg, RngBundle(self.seed)["fault_loss"]
            )
        if self.storms or self.flash_crowds:
            storms, crowds = self.storms, self.flash_crowds
            overrides["churn_transform"] = lambda churn, rng: apply_churn_events(
                churn, storms, crowds, rng
            )
        return replace(base, **overrides) if overrides else base


@dataclass
class ImpairmentLog:
    """What one plan actually did to one run (for reports and tests)."""

    plan_seed: int
    capture_gaps: tuple[CaptureGap, ...] = ()
    records_before: int = 0
    records_after: int = 0
    clock_skew_applied: bool = False
    bad_time_fraction: float = 0.0
    notes: list[str] = field(default_factory=list)

    @property
    def dropped_fraction(self) -> float:
        """Share of transfer records lost to capture gaps."""
        if self.records_before == 0:
            return 0.0
        return 1.0 - self.records_after / self.records_before


def impair_result(
    result: SimulationResult, plan: ImpairmentPlan
) -> tuple[SimulationResult, ImpairmentLog]:
    """Apply a plan's measurement faults to a finished simulation.

    Returns a shallow copy of ``result`` with the impaired transfer log
    (the original is untouched) plus the log of applied impairments; the
    log is also stashed in ``result.extras["impairment"]``.
    """
    rngs = RngBundle(plan.seed)
    log = ImpairmentLog(plan_seed=plan.seed, records_before=len(result.transfers))
    transfers = result.transfers

    if plan.capture is not None:
        gaps = draw_capture_gaps(
            result.probe_ips, result.duration_s, plan.capture, rngs["fault_capture"]
        )
        if gaps:
            transfers = apply_capture_gaps(transfers, result.probe_ips, gaps)
            log.capture_gaps = gaps
            log.notes.append(f"{len(gaps)} sniffer outage(s)")

    if plan.clock is not None:
        skew = draw_clock_skew(result.probe_ips, plan.clock, rngs["fault_clock"])
        transfers = apply_clock_skew(transfers, skew, rngs["fault_clock"])
        log.clock_skew_applied = True
        log.notes.append("clock skew applied")

    sched = getattr(result.config, "request_loss_schedule", None)
    if sched is not None:
        log.bad_time_fraction = sched.bad_time_fraction

    log.records_after = len(transfers)
    impaired = replace(result, transfers=transfers)
    impaired.extras = dict(result.extras)
    impaired.extras["impairment"] = log
    return impaired, log


def simulate_impaired(
    profile,
    plan: ImpairmentPlan,
    *,
    duration_s: float = 600.0,
    seed: int = 7,
    world=None,
    testbed=None,
    engine_config: EngineConfig | None = None,
    engine: str | None = None,
) -> tuple[SimulationResult, ImpairmentLog]:
    """Run one experiment under an impairment plan.

    A pure function of ``(world seed, profile, engine seed, plan seed)``:
    identical arguments produce byte-identical impaired transfer logs —
    under either engine core (``engine``, see :mod:`repro.streaming.soa`).
    """
    base = engine_config or EngineConfig(duration_s=duration_s, seed=seed)
    result = simulate(
        profile,
        world=world,
        testbed=testbed,
        engine_config=plan.engine_config(base),
        engine=engine,
    )
    return impair_result(result, plan)
