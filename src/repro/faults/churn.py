"""Churn faults: storms (mass departures) and flash crowds (mass joins).

The baseline :class:`~repro.population.churn.ChurnProcess` draws smooth
Poisson arrivals and log-normal sessions.  Real broadcasts see *events*:
an ISP outage or a boring half drains the swarm in seconds (a storm); a
goal or a channel switch floods it (a flash crowd).  Both are expressed
as post-transforms of a materialised churn process, so the engine stays
oblivious: it consumes (join, leave) intervals exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultInjectionError
from repro.population.churn import ChurnProcess, Session


@dataclass(frozen=True, slots=True)
class ChurnStorm:
    """A mass-departure window.

    Each peer online during ``[at_s, at_s + duration_s)`` leaves with
    probability ``leave_fraction``, at a time drawn uniformly inside the
    window (departures cluster but are not perfectly synchronised).
    """

    at_s: float
    duration_s: float = 30.0
    leave_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.at_s < 0 or self.duration_s <= 0:
            raise FaultInjectionError("storm window must be positive and start at t >= 0")
        if not 0.0 <= self.leave_fraction <= 1.0:
            raise FaultInjectionError("leave_fraction must be a probability")


@dataclass(frozen=True, slots=True)
class FlashCrowd:
    """A mass-arrival event.

    Each peer that had not yet joined by ``at_s`` joins at ``at_s`` with
    probability ``join_fraction``; flash-crowd sessions last an
    exponential ``mean_stay_s`` (channel surfers mostly leave quickly).
    """

    at_s: float
    join_fraction: float = 0.5
    mean_stay_s: float = 120.0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise FaultInjectionError("flash crowd must start at t >= 0")
        if not 0.0 <= self.join_fraction <= 1.0:
            raise FaultInjectionError("join_fraction must be a probability")
        if self.mean_stay_s <= 0:
            raise FaultInjectionError("mean_stay_s must be positive")


def apply_churn_events(
    churn: ChurnProcess,
    storms: tuple[ChurnStorm, ...],
    crowds: tuple[FlashCrowd, ...],
    rng: np.random.Generator,
) -> ChurnProcess:
    """Overlay storms and flash crowds on a materialised churn process.

    Events apply in time order.  A peer keeps at most one session (the
    baseline model's invariant): storms can only shorten sessions, flash
    crowds can only pull not-yet-joined peers forward — nobody rejoins.
    """
    if not storms and not crowds:
        return churn
    joins = np.array([s.join for s in churn.sessions], dtype=np.float64)
    leaves = np.array([s.leave for s in churn.sessions], dtype=np.float64)
    horizon = churn.horizon

    events: list[tuple[float, object]] = [(s.at_s, s) for s in storms]
    events += [(c.at_s, c) for c in crowds]
    for at, event in sorted(events, key=lambda pair: pair[0]):
        if isinstance(event, ChurnStorm):
            stop = min(at + event.duration_s, horizon)
            online = (joins <= at) & (leaves > at)
            hit = online & (rng.random(len(joins)) < event.leave_fraction)
            if hit.any():
                leaves[hit] = np.minimum(
                    leaves[hit], rng.uniform(at, stop, size=int(hit.sum()))
                )
        else:  # FlashCrowd
            late = joins > at
            hit = late & (rng.random(len(joins)) < event.join_fraction)
            if hit.any():
                n = int(hit.sum())
                joins[hit] = at
                stays = rng.exponential(event.mean_stay_s, size=n)
                leaves[hit] = np.minimum(at + stays, horizon)

    leaves = np.maximum(leaves, joins)  # clipping can never invert a session
    sessions = [
        Session(peer_id=s.peer_id, join=float(j), leave=float(l))
        for s, j, l in zip(churn.sessions, joins, leaves)
    ]
    return ChurnProcess(sessions, horizon)
