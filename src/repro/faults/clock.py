"""Per-probe clock skew and timestamping jitter.

The probes' captures are merged on wall-clock timestamps, but commodity
PCs drift (tens to hundreds of ppm) and kernels timestamp with jitter.
Skew corrupts exactly the measurements that depend on fine timing — the
minimum inter-packet gap behind the BW partition — while leaving byte
counts alone, which is why the paper's byte-wise indices are the robust
ones.  The transform assigns every record to the probe that captured it
(the destination probe when there is one, else the source probe) and
remaps its timestamp through that probe's clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultInjectionError


@dataclass(frozen=True, slots=True)
class ClockSkewConfig:
    """Distribution of per-probe clock error.

    Offsets are uniform in ``[-max_offset_s, +max_offset_s]``; drifts
    uniform in ``[-max_drift_ppm, +max_drift_ppm]`` parts per million;
    per-record jitter is zero-mean Gaussian with ``jitter_std_s``.
    """

    max_offset_s: float = 0.2
    max_drift_ppm: float = 100.0
    jitter_std_s: float = 0.0002

    def __post_init__(self) -> None:
        if self.max_offset_s < 0 or self.max_drift_ppm < 0 or self.jitter_std_s < 0:
            raise FaultInjectionError("clock-skew magnitudes must be non-negative")


@dataclass(frozen=True)
class ClockSkew:
    """Materialised per-probe clock errors (aligned arrays)."""

    probe_ips: np.ndarray  # u4, sorted
    offsets_s: np.ndarray  # f8
    drifts: np.ndarray     # f8, fractional (ppm / 1e6)
    jitter_std_s: float

    def __post_init__(self) -> None:
        if not (len(self.probe_ips) == len(self.offsets_s) == len(self.drifts)):
            raise FaultInjectionError("clock-skew columns misaligned")


def draw_clock_skew(
    probe_ips: np.ndarray,
    config: ClockSkewConfig,
    rng: np.random.Generator,
) -> ClockSkew:
    """Sample one clock error per probe."""
    ips = np.sort(np.asarray(probe_ips, dtype=np.uint32))
    n = len(ips)
    return ClockSkew(
        probe_ips=ips,
        offsets_s=rng.uniform(-config.max_offset_s, config.max_offset_s, size=n),
        drifts=rng.uniform(-config.max_drift_ppm, config.max_drift_ppm, size=n) * 1e-6,
        jitter_std_s=config.jitter_std_s,
    )


def apply_clock_skew(
    records: np.ndarray,
    skew: ClockSkew,
    rng: np.random.Generator,
) -> np.ndarray:
    """Remap record timestamps through the capturing probe's clock.

    Returns a time-sorted copy (a merged capture is sorted by the
    timestamps it *has*, skewed or not); timestamps are floored at zero.
    """
    if len(records) == 0 or len(skew.probe_ips) == 0:
        return records.copy()
    out = records.copy()

    dst_idx = np.searchsorted(skew.probe_ips, out["dst"])
    dst_idx_c = np.minimum(dst_idx, len(skew.probe_ips) - 1)
    dst_is_probe = skew.probe_ips[dst_idx_c] == out["dst"]
    src_idx = np.searchsorted(skew.probe_ips, out["src"])
    src_idx_c = np.minimum(src_idx, len(skew.probe_ips) - 1)
    src_is_probe = skew.probe_ips[src_idx_c] == out["src"]

    capturer = np.where(dst_is_probe, dst_idx_c, src_idx_c)
    has_probe = dst_is_probe | src_is_probe

    ts = out["ts"].astype(np.float64)
    skewed = (
        ts
        + skew.offsets_s[capturer]
        + skew.drifts[capturer] * ts
        + (rng.normal(0.0, skew.jitter_std_s, size=len(ts)) if skew.jitter_std_s else 0.0)
    )
    out["ts"] = np.where(has_probe, np.maximum(skewed, 0.0), ts)
    return out[np.argsort(out["ts"], kind="stable")]
