"""Supervised execution: the crash-isolated shard runtime.

The raw backends in :mod:`repro.exec.backends` assume workers are
well-behaved: a process that segfaults, wedges or returns garbage takes
the whole campaign down with it.  Multi-hour measurement campaigns —
the workload this reproduction models — cannot afford that; worker
failure is the common case at scale, not the exception.  This module
supervises shard execution so that *every* infrastructure failure
becomes a per-shard outcome and the campaign always completes:

* **deadlines** — each shard attempt gets a wall-clock budget
  (:meth:`SupervisionPolicy.deadline_for`, derived from the shard's
  simulated duration unless pinned by ``shard_timeout_s``); an overdue
  worker is killed, not waited on;
* **crash isolation** — a worker dying (chaos ``os._exit``, OOM kill,
  segfault) is detected through its pipe and charged to the shard it
  was running; the pool carries on;
* **retry with backoff + reseed** — failed attempts are re-queued up to
  ``max_attempts`` with exponential backoff.  Payload failures
  (exceptions, corrupted results) retry under a shifted RNG stream via
  :attr:`~repro.exec.shards.ShardSpec.attempt_offset`, reusing the
  retry-with-reseed stride; infrastructure failures (crash, timeout)
  retry under the *same* seed, so a recovered shard is byte-identical
  to an undisturbed one;
* **poison-shard quarantine** — a shard that fails every attempt is
  salvaged into a failed result (for campaigns: a
  :class:`~repro.exec.shards.ShardOutcome` with stage-``"executor"``
  ledger entries) and, when ``quarantine_dir`` is set, its spec is
  pickled next to a JSON sidecar for offline replay
  (``python -m repro.exec.supervisor <dir>/<shard>.spec.pkl``);
* **graceful drain** — SIGINT/SIGTERM stops dispatch, kills in-flight
  workers and marks unfinished shards ``interrupted``; completed shards
  (and their worker-written checkpoints) are preserved and the call
  returns the partial result list instead of dying mid-reduction;
* **worker recycling** — ``max_tasks_per_child`` retires a worker after
  N tasks (leak containment), counted as ``exec/worker_restarts``.

Integrity: a worker records a SHA-256 content digest of its transfer
and signaling arrays inside the outcome; the parent recomputes it from
the shipped bundle, so a payload corrupted in transport (the chaos
harness's ``corrupt`` fault) is caught and retried rather than merged.

Telemetry (merged into the campaign's):  ``exec/retries``,
``exec/timeouts``, ``exec/crashes``, ``exec/errors``, ``exec/corrupt``,
``exec/quarantined``, ``exec/interrupted``, ``exec/worker_restarts``.
Per-shard supervision records (label, deadline, per-attempt status,
outcome class) land on each :class:`ShardOutcome` and from there in the
run manifest's ``supervision`` block.

Determinism: on a clean run no retry fires, specs are untouched and
results are slotted by index — supervised output is byte-identical to
the serial backend (asserted by the parity suite).
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing as mp
import pickle
import re
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError, ExecutorError
from repro.obs.log import get_logger
from repro.obs.telemetry import Telemetry

_log = get_logger("exec.supervisor")

#: Failure kinds that indicate a *deterministic payload* problem; their
#: retries shift the shard's RNG stream (PR-1 reseed semantics).  Crash
#: and timeout are infrastructure faults and retry under the same seed.
_RESEED_KINDS = ("error", "corrupt")

#: kind → telemetry counter.
_FAIL_COUNTERS = {
    "crash": "exec/crashes",
    "timeout": "exec/timeouts",
    "error": "exec/errors",
    "corrupt": "exec/corrupt",
    "interrupted": "exec/interrupted",
}

#: Ceiling on the supervision poll interval; readiness events wake the
#: loop immediately, this only bounds how late a deadline can fire.
_POLL_CAP_S = 0.5


@dataclass(frozen=True, slots=True)
class SupervisionPolicy:
    """How hard to try, how long to wait, where to park the poison.

    Parameters
    ----------
    shard_timeout_s:
        Fixed per-attempt wall-clock deadline.  None derives one from
        the shard's simulated duration: ``max(min_timeout_s,
        timeout_factor × duration_s)``.
    timeout_factor / min_timeout_s:
        The derived-deadline rule.  The engine simulates much faster
        than real time, so ``3 × duration`` is a generous budget that
        still catches a wedged worker within minutes.
    max_attempts:
        Total executor-level attempts per shard (≥ 1) before quarantine.
        Orthogonal to :attr:`CampaignConfig.max_retries`, which retries
        *inside* a healthy worker.
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential backoff between attempts of one shard
        (``base × factor^(attempt-1)``, capped).
    quarantine_dir:
        When set, a shard that exhausts its attempts serializes its spec
        (pickle) and supervision record (JSON) here for offline replay.
    max_tasks_per_child:
        Retire a worker process after this many tasks (None = never) —
        the leak-containment knob of pool executors.
    drain_signals:
        Install SIGINT/SIGTERM drain handlers for the duration of a
        pool run (main thread only; restored afterwards).
    """

    shard_timeout_s: float | None = None
    timeout_factor: float = 3.0
    min_timeout_s: float = 60.0
    max_attempts: int = 3
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    quarantine_dir: str | None = None
    max_tasks_per_child: int | None = None
    drain_signals: bool = True

    def __post_init__(self) -> None:
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ConfigurationError("shard_timeout_s must be positive")
        if self.timeout_factor <= 0 or self.min_timeout_s <= 0:
            raise ConfigurationError("timeout derivation parameters must be positive")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.backoff_factor < 1 or self.backoff_max_s < 0:
            raise ConfigurationError("invalid backoff parameters")
        if self.max_tasks_per_child is not None and self.max_tasks_per_child < 1:
            raise ConfigurationError("max_tasks_per_child must be at least 1")

    def deadline_for(self, spec: Any) -> float:
        """Wall-clock budget for one attempt of ``spec``."""
        if self.shard_timeout_s is not None:
            return float(self.shard_timeout_s)
        duration = getattr(getattr(spec, "config", None), "duration_s", None)
        if duration is None:
            duration = getattr(spec, "duration_s", None)
        if duration is None:
            return self.min_timeout_s
        return max(self.min_timeout_s, self.timeout_factor * float(duration))

    def backoff_s(self, attempt: int) -> float:
        """Sleep before ``attempt`` (attempt 0 starts immediately)."""
        if attempt <= 0 or self.backoff_base_s == 0.0:
            return 0.0
        return min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )


# ------------------------------------------------------------------ worker side
def _worker_main(conn) -> None:
    """Supervised worker loop: recv task → run (under chaos) → send result.

    SIGINT is ignored — drain is the parent's decision, delivered as a
    kill.  The chaos plan, if any, comes from the environment so it
    reaches fork- and spawn-started workers alike.  Recycling
    (``max_tasks_per_child``) is enforced parent-side after reaping a
    result — a worker that retired itself could race a fresh assignment.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    from repro.exec.chaos import plan_from_env

    plan = plan_from_env()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "stop":
            return
        _, index, attempt, fn, spec, label = msg
        try:
            if plan is not None:
                plan.inject_before(label, attempt)
            result = fn(spec)
            if plan is not None:
                result = plan.inject_after(label, attempt, result)
            reply = ("ok", index, attempt, result)
        except BaseException as exc:  # noqa: BLE001 - isolation boundary
            reply = ("err", index, attempt, f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return
        except Exception as exc:  # unpicklable result
            conn.send(("err", index, attempt, f"unpicklable result: {exc}"))


@dataclass
class _Task:
    index: int
    spec: Any
    attempt: int
    label: str
    deadline_s: float
    started_at: float


class _Worker:
    """One supervised worker process and its command pipe."""

    def __init__(self, ctx) -> None:
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(target=_worker_main, args=(child,), daemon=True)
        self.process.start()
        child.close()
        self.task: _Task | None = None
        self.completed = 0

    @property
    def busy(self) -> bool:
        return self.task is not None

    def assign(self, fn, index: int, spec, attempt: int, label: str, deadline_s: float) -> None:
        self.task = _Task(index, spec, attempt, label, deadline_s, time.monotonic())
        self.conn.send(("run", index, attempt, fn, spec, label))

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.process.is_alive():
            self.process.kill()
        self.process.join()

    def stop(self) -> None:
        """Polite shutdown of an idle worker; escalates to kill."""
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=2.0)
        self.kill()


@dataclass
class _Pending:
    index: int
    spec: Any
    attempt: int
    not_before: float


def _shard_label(spec: Any, index: int) -> str:
    key = getattr(spec, "key", None)
    if key is not None:
        return str(key)
    return f"{type(spec).__name__}[{index}]"


def _new_record(label: str, deadline_s: float) -> dict:
    return {
        "label": label,
        "deadline_s": round(deadline_s, 6),
        "attempts": [],
        "outcome": None,
    }


def _reseed(spec: Any, attempt: int) -> Any:
    """Shift a spec's RNG stream for a payload-failure retry.

    Specs that carry an ``attempt_offset`` field (campaign
    :class:`~repro.exec.shards.ShardSpec`) get it set to the executor
    attempt number, which the worker folds into ``seed_for`` — the same
    stride the in-shard retry loop uses.  Other specs retry unchanged.
    """
    if dataclasses.is_dataclass(spec) and any(
        f.name == "attempt_offset" for f in dataclasses.fields(spec)
    ):
        return dataclasses.replace(spec, attempt_offset=attempt)
    return spec


def _default_validate(spec: Any, result: Any) -> str | None:
    """Integrity gate on a completed attempt; returns an error string.

    For campaign shards: type, shard-key and content-digest checks (the
    digest recomputation is what catches a corrupted
    :class:`TraceBundle`).  Other result types only reject the chaos
    ``CORRUPTED`` sentinel.
    """
    from repro.exec.chaos import CORRUPTED
    from repro.exec.shards import ShardOutcome, ShardSpec

    if isinstance(result, str) and result == CORRUPTED:
        return "chaos-corrupted payload"
    if not isinstance(spec, ShardSpec):
        return None
    if not isinstance(result, ShardOutcome):
        return f"expected ShardOutcome, got {type(result).__name__}"
    if result.key != spec.key:
        return f"shard key mismatch: sent {spec.key}, received {result.key}"
    if result.ok and result.content_digest:
        from repro.trace.store import trace_digest

        if result.bundle is not None:
            got = trace_digest(result.bundle.transfers, result.bundle.signaling)
        elif result.result is not None:
            got = trace_digest(result.result.transfers, result.result.signaling)
        else:  # pragma: no cover - ok implies one of the two
            got = None
        if got is not None and got != result.content_digest:
            return "content digest mismatch (payload corrupted in transport)"
    return None


def _default_salvage(spec: Any, record: dict) -> Any:
    """Failed-result factory once every attempt is spent.

    Campaign shards become a failed :class:`ShardOutcome` whose ledger
    entries carry stage ``"executor"`` — the campaign completes degraded
    instead of aborting.  Specs without a registered salvage cannot be
    absorbed, so the last error propagates as :class:`ExecutorError`.
    """
    from repro.exec.shards import ShardOutcome, ShardSpec

    if isinstance(spec, ShardSpec):
        import repro.experiments.campaign as campaign_mod

        failures = tuple(
            campaign_mod.CampaignFailure(
                spec.key.app,
                "executor",
                a["attempt"],
                spec.key.base_seed,
                f"{a['status']}: {a.get('error', '')}",
            )
            for a in record["attempts"]
        )
        outcome = ShardOutcome(key=spec.key, failures=failures)
        outcome.supervision = record
        return outcome
    last = record["attempts"][-1] if record["attempts"] else {}
    raise ExecutorError(
        f"shard {record['label']} exhausted {len(record['attempts'])} attempt(s): "
        f"{last.get('status', 'interrupted')}: {last.get('error', '')}"
    )


@dataclass
class SupervisedExecutor:
    """Run shards under supervision — deadlines, isolation, quarantine.

    With ``inline=False`` (default) shards fan out over a pool of
    supervised worker processes.  With ``inline=True`` the same retry /
    validation / quarantine machinery wraps in-process execution (the
    serial backend under supervision); deadlines and crash isolation
    need a process boundary and do not apply inline.

    ``salvage(spec, record)`` and ``validate(spec, result)`` customise
    failure absorption and result integrity per spec family; the
    defaults understand campaign :class:`ShardSpec`.  ``telemetry`` and
    ``records`` are rebuilt on every :meth:`map_shards` call and expose
    the last run's supervision counters and per-shard records.
    """

    workers: int = 2
    policy: SupervisionPolicy = field(default_factory=SupervisionPolicy)
    inline: bool = False
    name: str = "supervised"
    salvage: Callable[[Any, dict], Any] | None = None
    validate: Callable[[Any, Any], str | None] | None = None
    telemetry: Telemetry = field(default_factory=Telemetry)
    records: list[dict] = field(default_factory=list)
    drained: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("supervised backend needs at least one worker")

    # ----------------------------------------------------------------- public
    def map_shards(self, fn: Callable, specs: Sequence) -> list:
        self.telemetry = Telemetry()
        self.drained = False
        self.records = [
            _new_record(_shard_label(spec, i), self.policy.deadline_for(spec))
            for i, spec in enumerate(specs)
        ]
        if not specs:
            return []
        with self.telemetry.timer("exec/supervise"):
            if self.inline:
                return self._map_inline(fn, specs)
            return self._map_pool(fn, specs)

    # --------------------------------------------------------------- plumbing
    def _validate_result(self, spec: Any, result: Any) -> str | None:
        check = self.validate if self.validate is not None else _default_validate
        return check(spec, result)

    def _salvage_result(self, spec: Any, record: dict) -> Any:
        make = self.salvage if self.salvage is not None else _default_salvage
        return make(spec, record)

    def _finalize(self, result: Any, record: dict) -> Any:
        record["outcome"] = "ok"
        if hasattr(result, "supervision"):
            result.supervision = record
        return result

    def _record_failure(
        self, record: dict, attempt: int, kind: str, error: str, wall_s: float
    ) -> None:
        record["attempts"].append(
            {
                "attempt": attempt,
                "status": kind,
                "error": error,
                "wall_s": round(wall_s, 6),
            }
        )
        counter = _FAIL_COUNTERS.get(kind)
        if counter:
            self.telemetry.count(counter)
        _log.warning(
            "shard-attempt-failed",
            shard=record["label"],
            attempt=attempt,
            kind=kind,
            error=error,
        )

    def _quarantine(self, index: int, spec: Any, interrupted: bool = False) -> Any:
        record = self.records[index]
        record["outcome"] = "interrupted" if interrupted else "quarantined"
        if not interrupted:
            self.telemetry.count("exec/quarantined")
            if self.policy.quarantine_dir:
                path = write_quarantine(self.policy.quarantine_dir, spec, record)
                record["quarantine"] = str(path)
                _log.warning("shard-quarantined", shard=record["label"], spec=str(path))
        return self._salvage_result(spec, record)

    # ----------------------------------------------------------- inline mode
    def _map_inline(self, fn: Callable, specs: Sequence) -> list:
        results: list = [None] * len(specs)
        for i, spec in enumerate(specs):
            record = self.records[i]
            attempt, current = 0, spec
            while True:
                start = time.monotonic()
                kind = error = None
                result = None
                try:
                    result = fn(current)
                    error = self._validate_result(current, result)
                    if error is not None:
                        kind = "corrupt"
                except Exception as exc:  # noqa: BLE001 - isolation boundary
                    kind, error = "error", f"{type(exc).__name__}: {exc}"
                wall = time.monotonic() - start
                if kind is None:
                    record["attempts"].append(
                        {"attempt": attempt, "status": "ok", "wall_s": round(wall, 6)}
                    )
                    results[i] = self._finalize(result, record)
                    break
                self._record_failure(record, attempt, kind, error, wall)
                if attempt + 1 >= self.policy.max_attempts:
                    results[i] = self._quarantine(i, current)
                    break
                self.telemetry.count("exec/retries")
                backoff = self.policy.backoff_s(attempt + 1)
                if backoff:
                    time.sleep(backoff)
                attempt += 1
                if kind in _RESEED_KINDS:
                    current = _reseed(spec, attempt)
        return results

    # ------------------------------------------------------------- pool mode
    def _map_pool(self, fn: Callable, specs: Sequence) -> list:
        ctx = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else mp.get_context()
        )
        n = len(specs)
        results: list = [None] * n
        done = [False] * n
        pending: deque[_Pending] = deque(
            _Pending(i, specs[i], 0, 0.0) for i in range(n)
        )
        workers: list[_Worker] = []
        self._drain_flag = False
        saved_handlers = self._install_drain_handlers()
        try:
            while not all(done):
                if self._drain_flag:
                    self._drain(pending, workers, specs, results, done)
                    break
                now = time.monotonic()
                self._dispatch(fn, ctx, pending, workers, now, results, done)
                timeout = self._wait_timeout(pending, workers, now)
                busy = [w.conn for w in workers if w.busy]
                if busy:
                    ready = mp_connection.wait(busy, timeout)
                else:
                    time.sleep(timeout)
                    ready = []
                for worker in [w for w in workers if w.busy and w.conn in ready]:
                    self._reap(worker, workers, pending, results, done)
                self._enforce_deadlines(workers, pending, results, done)
        finally:
            for worker in workers:
                worker.stop()
            self._restore_drain_handlers(saved_handlers)
        return results

    def _dispatch(self, fn, ctx, pending, workers, now: float, results, done) -> None:
        for worker in list(workers):
            if not worker.busy and not worker.process.is_alive():
                # An idle worker died on its own — unusual, but harmless
                # to the shards; replace it on the next assignment.
                workers.remove(worker)
                worker.kill()
                self.telemetry.count("exec/worker_restarts")
        ready = [p for p in pending if p.not_before <= now]
        for item in ready:
            idle = next((w for w in workers if not w.busy), None)
            if idle is None:
                if len(workers) >= self.workers:
                    break
                idle = _Worker(ctx)
                workers.append(idle)
            pending.remove(item)
            label = self.records[item.index]["label"]
            deadline = self.records[item.index]["deadline_s"]
            try:
                idle.assign(fn, item.index, item.spec, item.attempt, label, deadline)
            except Exception as exc:  # unpicklable spec / dead pipe
                idle.task = None
                workers.remove(idle)
                idle.kill()
                self._attempt_failed(
                    item.index, item.spec, item.attempt, "error",
                    f"dispatch failed: {exc}", 0.0, pending, results, done,
                )

    def _wait_timeout(self, pending, workers, now: float) -> float:
        candidates = [_POLL_CAP_S]
        for worker in workers:
            if worker.busy:
                candidates.append(
                    worker.task.started_at + worker.task.deadline_s - now
                )
        for item in pending:
            if item.not_before > now:
                candidates.append(item.not_before - now)
        return min(_POLL_CAP_S, max(0.01, min(candidates)))

    def _reap(self, worker: _Worker, workers, pending, results, done) -> None:
        task = worker.task
        try:
            msg = worker.conn.recv()
        except (EOFError, OSError):
            # Worker died mid-task: the crash-isolation path.
            wall = time.monotonic() - task.started_at
            worker.task = None
            workers.remove(worker)
            worker.kill()
            self.telemetry.count("exec/worker_restarts")
            self._attempt_failed(
                task.index, task.spec, task.attempt, "crash",
                "worker process died", wall, pending, results, done,
            )
            return
        kind, index, attempt, payload = msg
        wall = time.monotonic() - task.started_at
        worker.task = None
        worker.completed += 1
        max_tasks = self.policy.max_tasks_per_child
        if max_tasks is not None and worker.completed >= max_tasks:
            # Parent-side recycling: retire the worker *now*, before any
            # new assignment could race its shutdown.
            workers.remove(worker)
            worker.stop()
            self.telemetry.count("exec/worker_restarts")
        if kind == "ok":
            error = self._validate_result(task.spec, payload)
            if error is None:
                record = self.records[index]
                record["attempts"].append(
                    {"attempt": attempt, "status": "ok", "wall_s": round(wall, 6)}
                )
                results[index] = self._finalize(payload, record)
                done[index] = True
                return
            self._attempt_failed(
                index, task.spec, attempt, "corrupt", error, wall, pending, results, done
            )
            return
        self._attempt_failed(
            index, task.spec, attempt, "error", payload, wall, pending, results, done
        )

    def _enforce_deadlines(self, workers, pending, results, done) -> None:
        now = time.monotonic()
        for worker in list(workers):
            if not worker.busy:
                continue
            task = worker.task
            overdue = now - task.started_at
            if overdue <= task.deadline_s:
                continue
            worker.task = None
            workers.remove(worker)
            worker.kill()
            self.telemetry.count("exec/worker_restarts")
            self._attempt_failed(
                task.index, task.spec, task.attempt, "timeout",
                f"deadline exceeded ({task.deadline_s:.1f}s)", overdue,
                pending, results, done,
            )

    def _attempt_failed(
        self, index, spec, attempt, kind, error, wall_s, pending, results, done
    ) -> None:
        record = self.records[index]
        self._record_failure(record, attempt, kind, error, wall_s)
        if attempt + 1 < self.policy.max_attempts and not self._drain_flag:
            self.telemetry.count("exec/retries")
            next_attempt = attempt + 1
            next_spec = _reseed(spec, next_attempt) if kind in _RESEED_KINDS else spec
            pending.append(
                _Pending(
                    index,
                    next_spec,
                    next_attempt,
                    time.monotonic() + self.policy.backoff_s(next_attempt),
                )
            )
            return
        results[index] = self._quarantine(index, spec)
        done[index] = True

    # ------------------------------------------------------------------ drain
    def _install_drain_handlers(self):
        if not self.policy.drain_signals:
            return None
        if threading.current_thread() is not threading.main_thread():
            return None

        def _on_signal(signum, frame):  # pragma: no branch - trivial
            self._drain_flag = True

        saved = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                saved[sig] = signal.signal(sig, _on_signal)
            except (ValueError, OSError):  # pragma: no cover
                pass
        return saved

    def _restore_drain_handlers(self, saved) -> None:
        if not saved:
            return
        for sig, handler in saved.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _drain(self, pending, workers, specs, results, done) -> None:
        """Signal-initiated shutdown: keep the finished, mark the rest."""
        self.drained = True
        _log.warning(
            "drain-requested",
            completed=sum(done),
            in_flight=sum(1 for w in workers if w.busy),
            pending=len(pending),
        )
        for worker in list(workers):
            task = worker.task
            worker.task = None
            workers.remove(worker)
            worker.kill()
            if task is not None and not done[task.index]:
                self._record_failure(
                    self.records[task.index], task.attempt, "interrupted",
                    "campaign drain requested (signal)",
                    time.monotonic() - task.started_at,
                )
                results[task.index] = self._quarantine(
                    task.index, task.spec, interrupted=True
                )
                done[task.index] = True
        while pending:
            item = pending.popleft()
            if done[item.index]:
                continue
            self._record_failure(
                self.records[item.index], item.attempt, "interrupted",
                "campaign drain requested (signal)", 0.0,
            )
            results[item.index] = self._quarantine(
                item.index, item.spec, interrupted=True
            )
            done[item.index] = True


# -------------------------------------------------------------- quarantine I/O
def _safe_name(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]", "_", label)


def write_quarantine(directory: str | Path, spec: Any, record: dict) -> Path:
    """Park a poison shard: pickled spec + JSON supervision sidecar.

    Returns the spec path.  The sidecar names the spec file and keeps
    the full attempt history so the failure is inspectable without
    unpickling anything.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    safe = _safe_name(record["label"])
    spec_path = directory / f"{safe}.spec.pkl"
    with open(spec_path, "wb") as fh:
        pickle.dump(spec, fh)
    sidecar = dict(record)
    sidecar["spec_file"] = spec_path.name
    sidecar["spec_type"] = f"{type(spec).__module__}.{type(spec).__qualname__}"
    (directory / f"{safe}.json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True, default=str) + "\n"
    )
    return spec_path


def load_quarantined_spec(path: str | Path) -> Any:
    """Unpickle a quarantined shard spec written by :func:`write_quarantine`."""
    path = Path(path)
    if not path.exists():
        raise ExecutorError(f"quarantined spec not found: {path}")
    with open(path, "rb") as fh:
        return pickle.load(fh)


def replay_quarantined(path: str | Path) -> Any:
    """Re-run a quarantined shard inline (the offline debugging workflow).

    Accepts the ``.spec.pkl`` path (or its ``.json`` sidecar) and runs
    the shard in the current process with no supervision — a crash or
    hang reproduces *here*, under a debugger if you want one.
    """
    path = Path(path)
    if path.suffix == ".json":
        sidecar = json.loads(path.read_text())
        path = path.parent / sidecar["spec_file"]
    spec = load_quarantined_spec(path)
    from repro.exec.shards import ShardSpec

    if isinstance(spec, ShardSpec):
        from repro.exec.worker import run_shard

        return run_shard(spec)
    from repro.experiments.robustness import SeverityShard, run_severity_shard

    if isinstance(spec, SeverityShard):
        return run_severity_shard(spec)
    raise ExecutorError(f"no replay handler for spec type {type(spec).__name__}")


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.exec.supervisor <quarantined.spec.pkl>``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.supervisor",
        description="Replay a quarantined shard spec inline (no supervision)",
    )
    parser.add_argument("spec", help="a .spec.pkl (or .json sidecar) from a quarantine dir")
    args = parser.parse_args(argv)
    outcome = replay_quarantined(args.spec)
    ok = bool(getattr(outcome, "ok", True))
    print(f"replayed {args.spec}: {'ok' if ok else 'FAILED'}")
    failures = getattr(outcome, "failures", ())
    for failure in failures:
        print(f"  {failure}")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
