"""Per-process cache of the shared experiment substrate.

Building the synthetic Internet, deploying the Table I testbed on it and
deriving the address registry is pure in the :class:`WorldConfig` — every
process that replays the construction gets the identical object graph.
This module builds that *pristine* triple once per process and serves:

* :func:`shard_context` — a **fresh copy** of the world/testbed per shard
  (simulation mutates the world's subnet allocator while placing the
  remote swarm, so shards must not share one mutable world — that would
  make results depend on execution order, the one thing a parallel
  executor cannot promise), plus the shared read-only registry;
* :func:`campaign_context` — a fresh copy for the returned
  :class:`~repro.experiments.campaign.Campaign` itself.

The copy is ~15× cheaper than construction (measured: ≈5 ms vs ≈75 ms),
so a worker that executes many shards pays the build cost once.
"""

from __future__ import annotations

import copy

from repro.heuristics.registry import IpRegistry
from repro.topology.testbed import Testbed, build_napa_wine_testbed
from repro.topology.world import World, WorldConfig

#: Pristine (never simulated-on) substrate per world configuration,
#: filled lazily per process.  Worker processes inherit an empty cache on
#: spawn and a warm one on fork; either way entries are deterministic, so
#: sharing is safe.
_PRISTINE: dict[WorldConfig, tuple[World, Testbed, IpRegistry]] = {}


def _pristine(config: WorldConfig | None) -> tuple[World, Testbed, IpRegistry]:
    cfg = config or WorldConfig()
    cached = _PRISTINE.get(cfg)
    if cached is None:
        world = World(cfg)
        testbed = build_napa_wine_testbed(world)
        cached = (world, testbed, IpRegistry.from_world(world))
        _PRISTINE[cfg] = cached
    return cached


def shard_context(
    config: WorldConfig | None = None,
) -> tuple[World, Testbed, IpRegistry]:
    """A private world/testbed copy for one shard, plus the shared registry.

    The registry (IP prefix → AS/country) is derived from the address
    blocks allocated at world build time, which simulation never touches,
    so one instance serves every shard read-only.
    """
    world, testbed, registry = _pristine(config)
    world_copy, testbed_copy = copy.deepcopy((world, testbed))
    return world_copy, testbed_copy, registry


def campaign_context(
    config: WorldConfig | None = None,
) -> tuple[World, Testbed, IpRegistry]:
    """A private world/testbed copy for a :class:`Campaign` object.

    Kept separate from the pristine cache entry so downstream consumers
    (e.g. what-if simulations on ``campaign.world``) cannot contaminate
    later campaigns.
    """
    return shard_context(config)


def clear_context_cache() -> None:
    """Drop the pristine cache (tests use this to measure cold builds)."""
    _PRISTINE.clear()
