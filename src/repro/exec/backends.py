"""Executor backends: where shards actually run.

Three implementations of one protocol:

* :class:`SerialExecutor` — in-process, in spec order; zero overhead,
  full fidelity (live result objects, monkeypatch-friendly);
* :class:`ProcessExecutor` — a :class:`concurrent.futures.
  ProcessPoolExecutor` fan-out.  Futures complete in whatever order the
  OS schedules, but results are slotted back by spec index, so the
  reduction downstream is order-independent by construction.  This is
  the *unsupervised* fast path: a worker crash or hang is fatal to the
  whole map (wrapped as :class:`~repro.errors.ExecutorError`);
* :class:`~repro.exec.supervisor.SupervisedExecutor` (backend name
  ``"supervised"``) — the resilient pool: per-shard deadlines, crash
  isolation, retry with backoff, poison quarantine, graceful drain.

Backend selection honours (in precedence order) explicit arguments, the
``REPRO_EXEC_BACKEND`` / ``REPRO_EXEC_WORKERS`` environment variables
(how CI runs the whole tier-1 suite through the process pool), then the
serial default.  Passing ``workers > 1`` without naming a backend implies
``process``.  Two conditions upgrade ``process`` to ``supervised``: a
:class:`~repro.exec.supervisor.SupervisionPolicy` passed by the caller,
or a chaos plan in the environment (``REPRO_CHAOS_PLAN``) — an
unsupervised pool cannot survive the worker faults a plan injects.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, Sequence, TypeVar, runtime_checkable

from repro.errors import ConfigurationError, ExecutorError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.supervisor import SupervisionPolicy

S = TypeVar("S")
R = TypeVar("R")

#: Recognised backend names.
EXECUTOR_BACKENDS = ("serial", "process", "supervised")

#: Environment overrides consulted when no explicit choice is made.
ENV_BACKEND = "REPRO_EXEC_BACKEND"
ENV_WORKERS = "REPRO_EXEC_WORKERS"


@runtime_checkable
class Executor(Protocol):
    """Anything that can run shards through a worker function."""

    name: str

    def map_shards(self, fn: Callable[[S], R], specs: Sequence[S]) -> list[R]:
        """Run ``fn`` over ``specs``; results in spec order."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class SerialExecutor:
    """Run every shard inline, in order — the reference backend."""

    name: str = "serial"

    def map_shards(self, fn: Callable[[S], R], specs: Sequence[S]) -> list[R]:
        return [fn(spec) for spec in specs]


@dataclass(frozen=True)
class ProcessExecutor:
    """Fan shards out over a process pool.

    Workers pay the world construction once (the pristine-context cache
    is per process) and amortise it over every shard they execute.  A
    worker crash or unpicklable payload raises — those are bugs, not
    per-shard experiment failures, which :func:`~repro.exec.worker.
    run_shard` already traps into the outcome.
    """

    workers: int = 2
    name: str = "process"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("process backend needs at least one worker")

    def map_shards(self, fn: Callable[[S], R], specs: Sequence[S]) -> list[R]:
        if not specs:
            return []
        results: list[R | None] = [None] * len(specs)
        with ProcessPoolExecutor(max_workers=min(self.workers, len(specs))) as pool:
            by_future = {pool.submit(fn, spec): i for i, spec in enumerate(specs)}
            done, not_done = wait(by_future, return_when=FIRST_EXCEPTION)
            # FIRST_EXCEPTION returns early when a future raised; cancel
            # what never started (running futures cannot be cancelled —
            # the pool shutdown below still waits on them) and re-raise
            # with the failing shard identified.
            failed = next((f for f in done if f.exception() is not None), None)
            if failed is not None:
                for future in not_done:
                    future.cancel()
                index = by_future[failed]
                exc = failed.exception()
                raise ExecutorError(
                    f"shard {index} ({specs[index]!s}) failed in the unsupervised "
                    f"process pool: {type(exc).__name__}: {exc}"
                ) from exc
            for future in done:
                results[by_future[future]] = future.result()
        return list(results)  # type: ignore[arg-type]


def _env_workers() -> int | None:
    raw = os.environ.get(ENV_WORKERS, "").strip()
    if not raw:
        return None
    try:
        workers = int(raw)
    except ValueError as exc:
        raise ConfigurationError(f"{ENV_WORKERS} must be an integer, got {raw!r}") from exc
    if workers <= 0:
        raise ConfigurationError(
            f"{ENV_WORKERS} must be a positive worker count, got {workers}"
        )
    return workers


def resolve_executor(
    backend: str | None = None,
    workers: int | None = None,
    policy: "SupervisionPolicy | None" = None,
) -> Executor:
    """Pick an executor from explicit choices, the environment, or defaults.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"process"``, ``"supervised"``, or None to consult
        ``REPRO_EXEC_BACKEND`` and fall back to serial.
    workers:
        Process-pool size; None consults ``REPRO_EXEC_WORKERS`` then
        defaults to the CPU count.  ``workers > 1`` with no backend named
        implies the process backend.
    policy:
        A :class:`~repro.exec.supervisor.SupervisionPolicy`.  Providing
        one routes pool execution through the supervised runtime (and
        serial execution through its inline-supervision mode).  A chaos
        plan in the environment has the same pool-upgrading effect —
        an unsupervised pool cannot survive injected worker crashes.
    """
    if backend is None:
        backend = os.environ.get(ENV_BACKEND, "").strip() or None
    if workers is None:
        workers = _env_workers()
    elif workers <= 0:
        raise ConfigurationError(f"worker count must be positive, got {workers}")
    if backend is None:
        backend = "process" if workers is not None and workers > 1 else "serial"
    if backend not in EXECUTOR_BACKENDS:
        raise ConfigurationError(
            f"unknown executor backend {backend!r}; choose from {EXECUTOR_BACKENDS}"
        )
    if backend == "serial":
        if policy is not None:
            from repro.exec.supervisor import SupervisedExecutor

            return SupervisedExecutor(workers=1, policy=policy, inline=True)
        return SerialExecutor()
    pool_workers = workers if workers is not None else (os.cpu_count() or 2)
    if backend == "process" and policy is None:
        from repro.exec.chaos import chaos_enabled

        if not chaos_enabled():
            return ProcessExecutor(workers=pool_workers)
    from repro.exec.supervisor import SupervisedExecutor, SupervisionPolicy

    return SupervisedExecutor(
        workers=pool_workers,
        policy=policy if policy is not None else SupervisionPolicy(),
    )
