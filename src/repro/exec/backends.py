"""Executor backends: where shards actually run.

Two implementations of one protocol:

* :class:`SerialExecutor` — in-process, in spec order; zero overhead,
  full fidelity (live result objects, monkeypatch-friendly);
* :class:`ProcessExecutor` — a :class:`concurrent.futures.
  ProcessPoolExecutor` fan-out.  Futures complete in whatever order the
  OS schedules, but results are slotted back by spec index, so the
  reduction downstream is order-independent by construction.

Backend selection honours (in precedence order) explicit arguments, the
``REPRO_EXEC_BACKEND`` / ``REPRO_EXEC_WORKERS`` environment variables
(how CI runs the whole tier-1 suite through the process pool), then the
serial default.  Passing ``workers > 1`` without naming a backend implies
``process``.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, TypeVar, runtime_checkable

from repro.errors import ConfigurationError

S = TypeVar("S")
R = TypeVar("R")

#: Recognised backend names.
EXECUTOR_BACKENDS = ("serial", "process")

#: Environment overrides consulted when no explicit choice is made.
ENV_BACKEND = "REPRO_EXEC_BACKEND"
ENV_WORKERS = "REPRO_EXEC_WORKERS"


@runtime_checkable
class Executor(Protocol):
    """Anything that can run shards through a worker function."""

    name: str

    def map_shards(self, fn: Callable[[S], R], specs: Sequence[S]) -> list[R]:
        """Run ``fn`` over ``specs``; results in spec order."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class SerialExecutor:
    """Run every shard inline, in order — the reference backend."""

    name: str = "serial"

    def map_shards(self, fn: Callable[[S], R], specs: Sequence[S]) -> list[R]:
        return [fn(spec) for spec in specs]


@dataclass(frozen=True)
class ProcessExecutor:
    """Fan shards out over a process pool.

    Workers pay the world construction once (the pristine-context cache
    is per process) and amortise it over every shard they execute.  A
    worker crash or unpicklable payload raises — those are bugs, not
    per-shard experiment failures, which :func:`~repro.exec.worker.
    run_shard` already traps into the outcome.
    """

    workers: int = 2
    name: str = "process"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("process backend needs at least one worker")

    def map_shards(self, fn: Callable[[S], R], specs: Sequence[S]) -> list[R]:
        if not specs:
            return []
        results: list[R | None] = [None] * len(specs)
        with ProcessPoolExecutor(max_workers=min(self.workers, len(specs))) as pool:
            by_future = {pool.submit(fn, spec): i for i, spec in enumerate(specs)}
            done, _ = wait(by_future, return_when=FIRST_EXCEPTION)
            for future in done:
                results[by_future[future]] = future.result()
            # FIRST_EXCEPTION returned early only if a future raised, and
            # then future.result() above re-raised it; reaching here means
            # every future completed.
        return list(results)  # type: ignore[arg-type]


def _env_workers() -> int | None:
    raw = os.environ.get(ENV_WORKERS, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError as exc:
        raise ConfigurationError(f"{ENV_WORKERS} must be an integer, got {raw!r}") from exc


def resolve_executor(
    backend: str | None = None, workers: int | None = None
) -> Executor:
    """Pick an executor from explicit choices, the environment, or defaults.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"process"``, or None to consult
        ``REPRO_EXEC_BACKEND`` and fall back to serial.
    workers:
        Process-pool size; None consults ``REPRO_EXEC_WORKERS`` then
        defaults to the CPU count.  ``workers > 1`` with no backend named
        implies the process backend.
    """
    if backend is None:
        backend = os.environ.get(ENV_BACKEND, "").strip() or None
    if workers is None:
        workers = _env_workers()
    if backend is None:
        backend = "process" if workers is not None and workers > 1 else "serial"
    if backend not in EXECUTOR_BACKENDS:
        raise ConfigurationError(
            f"unknown executor backend {backend!r}; choose from {EXECUTOR_BACKENDS}"
        )
    if backend == "serial":
        return SerialExecutor()
    return ProcessExecutor(workers=workers if workers is not None else (os.cpu_count() or 2))
