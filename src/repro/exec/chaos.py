"""Execution-layer chaos harness: deterministic worker-fault injection.

The supervised runtime (:mod:`repro.exec.supervisor`) claims that a
worker crash, a hang or a corrupted payload becomes a failed shard
outcome — never a campaign abort.  This module makes that claim
testable against the *real* process pool: a seeded :class:`ChaosPlan`
names which shards misbehave and how, travels to worker processes
through the ``REPRO_CHAOS_PLAN`` environment variable (so fork- and
spawn-started workers both see it), and is consulted by the supervised
worker loop around every shard attempt.

Fault kinds:

* ``crash``   — the worker process dies mid-task (``os._exit``), exactly
  like a segfault or the OOM killer;
* ``hang``    — the worker sleeps past any reasonable deadline
  (``hang_s``, default one hour), like a wedged syscall;
* ``raise``   — the shard function appears to throw
  (:class:`~repro.errors.ChaosError`), like an unhandled worker bug;
* ``corrupt`` — the shard *completes* but its payload is damaged in
  transport (a :class:`~repro.trace.store.TraceBundle` with truncated
  arrays), which the supervisor's content-digest check must catch.

Determinism: whether a given (shard label, attempt) pair triggers is a
pure function of the plan — substring match, attempt filter and a
seeded hash draw for ``probability < 1`` — so a chaos run replays
exactly.  Faults target *attempts*, which is how the harness proves
retry semantics: ``attempts=(0,)`` fails the first try and lets the
retry recover; ``attempts=None`` poisons every attempt and forces
quarantine.

The harness is exec-layer only: plans are read inside the supervised
worker loop, never by :func:`~repro.exec.worker.run_shard` itself, so
fault injection *inside* the simulation (:mod:`repro.faults`) and fault
injection *around* it compose without touching each other.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass

from repro.errors import ChaosError, ConfigurationError

#: Environment variable carrying a JSON-encoded plan into worker processes.
ENV_CHAOS = "REPRO_CHAOS_PLAN"

#: Recognised fault kinds.
CHAOS_KINDS = ("crash", "hang", "raise", "corrupt")

#: Exit status of a chaos-crashed worker (distinctive in process tables).
CHAOS_EXIT_CODE = 86

#: Sentinel returned by ``corrupt`` for results the harness cannot damage
#: surgically; the supervisor's default validation rejects it.
CORRUPTED = "__chaos_corrupted__"


@dataclass(frozen=True, slots=True)
class ChaosFault:
    """One targeted misbehaviour.

    Parameters
    ----------
    match:
        Substring of the shard label (``""`` matches every shard).
        Campaign shard labels are ``str(ShardKey)`` —
        ``s42/r0/pplive#0`` — so ``"pplive"`` targets every PPLive shard.
    kind:
        One of :data:`CHAOS_KINDS`.
    attempts:
        Executor-level attempts to fault (``None`` = all of them).
    probability:
        Chance the fault fires on a matching (label, attempt); draws are
        seeded by the plan, so the outcome is reproducible.
    """

    match: str
    kind: str
    attempts: tuple[int, ...] | None = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ConfigurationError(
                f"unknown chaos kind {self.kind!r}; choose from {CHAOS_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("chaos probability must be within [0, 1]")
        if self.attempts is not None:
            object.__setattr__(self, "attempts", tuple(int(a) for a in self.attempts))

    def applies(self, label: str, attempt: int, seed: int) -> bool:
        if self.match not in label:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        if self.probability >= 1.0:
            return True
        return _draw(seed, self.match, self.kind, label, attempt) < self.probability


def _draw(seed: int, *parts: object) -> float:
    """Deterministic uniform [0, 1) draw keyed on the plan seed."""
    key = "|".join(str(p) for p in (seed, *parts))
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True, slots=True)
class ChaosPlan:
    """A seeded set of targeted worker faults."""

    faults: tuple[ChaosFault, ...] = ()
    seed: int = 0
    #: How long a ``hang`` sleeps — far past any sane shard deadline.
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        if self.hang_s <= 0:
            raise ConfigurationError("chaos hang_s must be positive")

    @property
    def is_noop(self) -> bool:
        return not self.faults

    def fault_for(self, label: str, attempt: int) -> ChaosFault | None:
        """The first fault that fires for this (label, attempt), if any."""
        for fault in self.faults:
            if fault.applies(label, attempt, self.seed):
                return fault
        return None

    # ----------------------------------------------------- worker-side hooks
    def inject_before(self, label: str, attempt: int) -> None:
        """Pre-execution faults: crash, hang, raise.

        Called by the supervised worker loop before running the shard
        function.  ``crash`` never returns; ``hang`` sleeps long enough
        for the parent's deadline to fire first.
        """
        fault = self.fault_for(label, attempt)
        if fault is None or fault.kind == "corrupt":
            return
        if fault.kind == "crash":
            os._exit(CHAOS_EXIT_CODE)
        if fault.kind == "hang":
            time.sleep(self.hang_s)
            return
        raise ChaosError(f"injected failure for {label} (attempt {attempt})")

    def inject_after(self, label: str, attempt: int, result: object) -> object:
        """Post-execution fault: corrupt the completed payload."""
        fault = self.fault_for(label, attempt)
        if fault is None or fault.kind != "corrupt":
            return result
        return corrupt_result(result)

    # --------------------------------------------------------- env transport
    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "hang_s": self.hang_s,
                "faults": [
                    {
                        "match": f.match,
                        "kind": f.kind,
                        "attempts": list(f.attempts) if f.attempts is not None else None,
                        "probability": f.probability,
                    }
                    for f in self.faults
                ],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{ENV_CHAOS} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigurationError(f"{ENV_CHAOS} must be a JSON object")
        faults = tuple(
            ChaosFault(
                match=str(f.get("match", "")),
                kind=str(f.get("kind", "")),
                attempts=(
                    tuple(f["attempts"]) if f.get("attempts") is not None else None
                ),
                probability=float(f.get("probability", 1.0)),
            )
            for f in data.get("faults", ())
        )
        return cls(
            faults=faults,
            seed=int(data.get("seed", 0)),
            hang_s=float(data.get("hang_s", 3600.0)),
        )

    def env(self) -> dict[str, str]:
        """The environment entry that enables this plan (for subprocesses)."""
        return {ENV_CHAOS: self.to_json()}


def corrupt_result(result: object) -> object:
    """Damage a completed shard payload the way a bad transport would.

    A :class:`~repro.exec.shards.ShardOutcome` carrying a trace bundle
    has the bundle's arrays truncated — the shape of a partial pickle or
    a torn write — while its recorded content digest is left alone, so
    the supervisor's integrity check sees the mismatch.  Anything else
    is replaced wholesale by the :data:`CORRUPTED` sentinel.
    """
    from repro.exec.shards import ShardOutcome

    if isinstance(result, ShardOutcome) and result.bundle is not None:
        bundle = result.bundle
        bundle.transfers = bundle.transfers[: len(bundle.transfers) // 2]
        bundle.signaling = bundle.signaling[: len(bundle.signaling) // 2]
        return result
    return CORRUPTED


def plan_from_env(environ: dict | None = None) -> ChaosPlan | None:
    """The plan encoded in ``REPRO_CHAOS_PLAN``, or None when unset/noop."""
    raw = (environ if environ is not None else os.environ).get(ENV_CHAOS, "").strip()
    if not raw:
        return None
    plan = ChaosPlan.from_json(raw)
    return None if plan.is_noop else plan


def chaos_enabled(environ: dict | None = None) -> bool:
    """True when a chaos plan is present in the environment.

    The cheap check :func:`~repro.exec.backends.resolve_executor` uses to
    route ``process`` campaigns through the supervised pool — a plain
    :class:`~concurrent.futures.ProcessPoolExecutor` cannot survive the
    worker crashes a plan injects.
    """
    return bool((environ if environ is not None else os.environ).get(ENV_CHAOS, "").strip())
