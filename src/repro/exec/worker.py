"""The shard worker: one application experiment, end to end.

:func:`run_shard` is the whole per-app pipeline the serial campaign
runner used to inline — checkpoint resume, simulate with
retry-with-reseed, impairment, the validation gate, flow aggregation,
analysis, checkpoint save — expressed as a pure-ish function
``ShardSpec → ShardOutcome`` so any executor backend can run it
anywhere.  All campaign imports are deferred to call time:
:mod:`repro.experiments.campaign` imports this package, and the worker
deliberately resolves ``simulate``/checkpoint helpers *through* the
campaign module so test doubles installed there keep working (under the
process backend they propagate to fork-started workers).

Failure semantics match the serial runner exactly: every trapped error
becomes a :class:`CampaignFailure` on the outcome, in pipeline order
(checkpoint → simulate attempts → validate → analyze → checkpoint save).
Checkpoint-stage entries always record the shard's *base* seed
(``key.base_seed``) — never a retry-reseeded or checkpoint-recovered
engine seed — so the ledger identifies the shard deterministically
regardless of how many attempts it took (the seed-unification fix).
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.errors import ReproError
from repro.exec.context import shard_context
from repro.heuristics.registry import IpRegistry
from repro.exec.shards import ShardOutcome, ShardSpec
from repro.obs.log import get_logger
from repro.obs.telemetry import Telemetry
from repro.streaming.engine import EngineConfig
from repro.streaming.profiles import get_profile
from repro.trace.store import TraceBundle, trace_digest

_log = get_logger("exec.worker")

#: engine_stats keys copied into shard telemetry counters (additive
#: across shards) vs. gauges (merged by peak).
_ENGINE_COUNTERS = (
    "events",
    "events_scheduled",
    "transfer_records",
    "signaling_intervals",
    "bytes_recorded",
    "video_records",
    "video_bytes",
)
#: engine_stats sub-dicts of per-event-kind counts, absorbed as one
#: counter per kind (``engine/dispatch/tick`` etc.).
_ENGINE_KIND_DICTS = ("dispatch_by_kind", "schedule_by_kind")
_ENGINE_GAUGES = ("peak_queue_depth",)

try:  # POSIX-only stdlib module; absent on some platforms
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    _resource = None


def _peak_rss_mb() -> float | None:
    """Process-lifetime peak resident set in MB (None where unsupported).

    ``ru_maxrss`` is a high-water mark, so under the in-process backends
    later shards can only report equal-or-larger values — exactly the
    peak-merge semantics the campaign gauge applies across shards.
    """
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # Kilobytes on Linux, bytes on macOS.
    if sys.platform == "darwin":
        return peak / (1024 * 1024)
    return peak / 1024


def _absorb_engine_stats(telemetry: Telemetry, result) -> None:
    """Copy the engine's post-run stats into a shard's telemetry."""
    stats = (getattr(result, "extras", None) or {}).get("engine_stats")
    if not stats:
        return
    for name in _ENGINE_COUNTERS:
        if name in stats:
            telemetry.count(f"engine/{name}", int(stats[name]))
    for name in _ENGINE_KIND_DICTS:
        prefix = f"engine/{name.removesuffix('_by_kind')}"
        for kind, count in (stats.get(name) or {}).items():
            telemetry.count(f"{prefix}/{kind}", int(count))
    for name in _ENGINE_GAUGES:
        if name in stats:
            telemetry.gauge(f"engine/{name}", float(stats[name]))


def _shard_profile(spec: ShardSpec):
    profile = get_profile(spec.key.app)
    if spec.config.scale != 1.0:
        profile = profile.scaled(spec.config.scale)
    scheduler = getattr(spec.config, "scheduler", None)
    if scheduler and scheduler != profile.scheduler:
        profile = replace(profile, scheduler=scheduler)
    return profile


def _simulate_shard(
    spec: ShardSpec, world, testbed, outcome, failures, *, telemetry=None
) -> object | None:
    """Simulate with retry-with-reseed, impairment and the validation gate."""
    import repro.experiments.campaign as campaign_mod
    from repro.faults.plan import impair_result
    from repro.validation import validate_result

    cfg = spec.config
    key = spec.key
    profile = _shard_profile(spec)

    plan = None
    if cfg.impairment is not None and not cfg.impairment.is_noop:
        plan = cfg.impairment.with_seed(cfg.impairment.seed + key.app_index)

    # Executor-level payload retries shift the whole stream: attempt N of
    # a reseeded shard draws the seed attempt (N + offset) would have.
    offset = spec.attempt_offset
    for attempt in range(cfg.max_retries + 1):
        seed = key.seed_for(attempt + offset)
        engine_config = EngineConfig(duration_s=cfg.duration_s, seed=seed)
        if plan is not None:
            engine_config = plan.engine_config(engine_config)
        if telemetry is not None:
            telemetry.count("shard/simulate_attempts")
            if attempt:
                telemetry.count("shard/retries")
        try:
            result = campaign_mod.simulate(
                profile,
                world=world,
                testbed=testbed,
                engine_config=engine_config,
                engine=getattr(cfg, "engine", None),
            )
        except ReproError as exc:
            _log.warning(
                "simulate-failed",
                shard=str(key),
                attempt=attempt,
                seed=seed,
                error=str(exc),
            )
            failures.append(
                campaign_mod.CampaignFailure(key.app, "simulate", attempt, seed, str(exc))
            )
            continue
        if plan is not None:
            result, log = impair_result(result, plan)
            outcome.impairment_log = log
        if cfg.validate:
            violations = validate_result(result)
            if violations:
                failures.append(
                    campaign_mod.CampaignFailure(
                        key.app,
                        "validate",
                        attempt,
                        seed,
                        "; ".join(str(v) for v in violations),
                    )
                )
                return None  # deterministic — retrying cannot help
        return result
    return None


def run_shard(spec: ShardSpec) -> ShardOutcome:
    """Execute one shard and return its picklable outcome.

    Never raises on a per-shard :class:`ReproError`; everything trapped
    lands in ``outcome.failures`` for the parent's ledger merge.
    """
    import repro.experiments.campaign as campaign_mod

    cfg = spec.config
    key = spec.key
    tel = Telemetry()
    outcome = ShardOutcome(key=key, telemetry=tel)
    failures: list = []
    _log.debug("shard-start", shard=str(key))
    with tel.timer("shard"):
        world, testbed, _ = shard_context()
        profile = _shard_profile(spec)

        result = None
        if cfg.checkpoint_dir and campaign_mod._checkpoint_path(cfg, key.app).exists():
            try:
                with tel.timer("checkpoint_load"):
                    result = campaign_mod._load_checkpoint(
                        cfg, key.app, world, testbed, profile
                    )
            except ReproError as exc:
                failures.append(
                    campaign_mod.CampaignFailure(
                        key.app, "checkpoint", 0, key.base_seed, str(exc)
                    )
                )
        from_checkpoint = result is not None
        if result is None:
            with tel.timer("simulate"):
                result = _simulate_shard(
                    spec, world, testbed, outcome, failures, telemetry=tel
                )
        if result is None:
            outcome.failures = tuple(failures)
            _log.warning("shard-failed", shard=str(key), failures=len(failures))
            return outcome
        _absorb_engine_stats(tel, result)

        try:
            with tel.timer("analyze"):
                flows = campaign_mod.build_flow_table(
                    result.transfers,
                    result.signaling,
                    result.hosts,
                    world.paths,
                    telemetry=tel,
                )
                # Resolve addresses against the experiment's own host
                # table (the GeoIP-style exact-address DB) rather than
                # the pristine prefix plan: swarm placement may attach
                # overflow prefixes the pristine registry has never seen
                # (mega-scale populations exhaust per-AS /16s), and a
                # checkpoint-resumed shard never replays that allocation
                # at all.  Same AS/CC ground truth either way.
                registry = IpRegistry.from_hosts(
                    result.hosts, subnet_prefixlen=world.config.subnet_prefixlen
                )
                report = campaign_mod.AwarenessAnalyzer(registry).analyze(
                    flows, telemetry=tel
                )
        except ReproError as exc:
            failures.append(
                campaign_mod.CampaignFailure(
                    key.app, "analyze", 0, int(result.config.seed), str(exc)
                )
            )
            outcome.failures = tuple(failures)
            _log.warning("shard-failed", shard=str(key), failures=len(failures))
            return outcome

        if cfg.checkpoint_dir and not from_checkpoint:
            try:
                with tel.timer("checkpoint_save"):
                    campaign_mod._save_checkpoint(cfg, key.app, result)
            except (ReproError, OSError) as exc:
                failures.append(
                    campaign_mod.CampaignFailure(
                        key.app, "checkpoint", 0, key.base_seed, str(exc)
                    )
                )

        outcome.flows = flows
        outcome.report = report
        outcome.from_checkpoint = from_checkpoint
        outcome.engine_seed = int(result.config.seed)
        # Integrity seal: recorded here, recomputed by the supervised
        # runtime after the payload crosses the process boundary.
        outcome.content_digest = trace_digest(result.transfers, result.signaling)
        if spec.keep_result:
            outcome.result = result
        else:
            # Process boundary: ship plain arrays + metadata.  Impaired engine
            # configs hold closures (churn transforms), so the live result
            # cannot cross; the parent rebuilds an equivalent one.
            outcome.bundle = TraceBundle.from_result(result)
        outcome.failures = tuple(failures)
        rss = _peak_rss_mb()
        if rss is not None:
            tel.gauge("resources/peak_rss_mb", rss)
    _log.info(
        "shard-done",
        shard=str(key),
        ok=outcome.ok,
        from_checkpoint=outcome.from_checkpoint,
        wall_s=round(tel.stage("shard").wall_s, 6),
    )
    return outcome
