"""Shard vocabulary: picklable work units and their results.

A *shard* is the unit of parallel campaign work: one application
experiment under one campaign configuration (and, for replicated
campaigns, one seed replica).  Specs travel parent → worker and outcomes
travel worker → parent across process boundaries, so both carry only
picklable state; in particular a process-backend outcome ships the
simulation as a :class:`~repro.trace.store.TraceBundle` (plain arrays +
metadata) rather than the live :class:`~repro.streaming.engine.
SimulationResult`, whose impaired engine configs hold closures.

RNG discipline: every stochastic draw of a shard derives from its
:class:`ShardKey`.  ``seed_for(attempt)`` reproduces the serial runner's
seed spacing exactly — ``campaign seed + app index + attempt ×
RESEED_STRIDE`` — so a shard executed in a worker process is
byte-identical to the same shard executed inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (campaign imports exec)
    from repro.experiments.campaign import CampaignConfig, CampaignFailure
    from repro.core.framework import AwarenessReport
    from repro.faults.plan import ImpairmentLog
    from repro.obs.telemetry import Telemetry
    from repro.streaming.engine import SimulationResult
    from repro.trace.flows import FlowTable
    from repro.trace.store import TraceBundle

#: Seed stride between retry attempts (a prime, to dodge accidental
#: collisions with the ``seed + app_index`` spacing of the base seeds).
RESEED_STRIDE = 7919


@dataclass(frozen=True, slots=True)
class ShardKey:
    """Identity of one shard — and the root of its RNG streams.

    Parameters
    ----------
    campaign_seed:
        The (per-replica) campaign master seed.
    app:
        Application profile name.
    app_index:
        Position of ``app`` in the campaign's app tuple; spaces the
        per-app engine seeds exactly like the serial runner.
    replica:
        Seed-replica index for replicated campaigns (0 for single runs).
    """

    campaign_seed: int
    app: str
    app_index: int
    replica: int = 0

    @property
    def base_seed(self) -> int:
        """The attempt-0 engine seed — also the seed recorded for
        checkpoint-stage ledger entries (retry-independent)."""
        return self.campaign_seed + self.app_index

    def seed_for(self, attempt: int) -> int:
        """Engine seed of retry ``attempt`` (0 = first try)."""
        return self.base_seed + attempt * RESEED_STRIDE

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"s{self.campaign_seed}/r{self.replica}/{self.app}#{self.app_index}"


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """One unit of campaign work, ready to ship to a worker.

    ``keep_result`` is set by the serial backend only: in-process
    execution can hand the live :class:`SimulationResult` straight back,
    while process workers bundle it (see :class:`ShardOutcome`).

    ``attempt_offset`` is set by the supervised runtime when it retries
    a *payload* failure (raised exception, corrupted transport): the
    worker folds it into :meth:`ShardKey.seed_for`, shifting every
    in-shard attempt by the executor attempt number so the retry runs
    under a fresh-but-deterministic RNG stream.  Infrastructure retries
    (crash, timeout) keep it at 0 and replay the same seed.
    """

    key: ShardKey
    config: "CampaignConfig"
    keep_result: bool = False
    attempt_offset: int = 0


@dataclass
class ShardOutcome:
    """Everything one shard produced, in picklable form.

    Exactly one of ``result`` (serial backend) and ``bundle`` (process
    backend) is set on a successful shard; a failed shard sets neither
    and carries the explanation in ``failures``.  ``impairment_log`` is
    populated whenever an impairment plan ran, even if the run was later
    excluded by the validation gate (matching the serial ledger
    semantics).
    """

    key: ShardKey
    failures: "tuple[CampaignFailure, ...]" = ()
    result: "SimulationResult | None" = None
    bundle: "TraceBundle | None" = None
    flows: "FlowTable | None" = None
    report: "AwarenessReport | None" = None
    impairment_log: "ImpairmentLog | None" = None
    from_checkpoint: bool = False
    engine_seed: int | None = None
    notes: list[str] = field(default_factory=list)
    #: Per-shard stage timers / counters (plain data, pickles with the
    #: outcome; the parent merges them order-independently).
    telemetry: "Telemetry | None" = None
    #: SHA-256 of the shard's transfer + signaling arrays, recorded by
    #: the worker *before* the payload crosses the process boundary; the
    #: supervised runtime recomputes it on receipt to detect corruption.
    content_digest: str | None = None
    #: Supervision record (attempts, deadline, outcome class) attached
    #: by :class:`~repro.exec.supervisor.SupervisedExecutor`; lands in
    #: the run manifest's per-shard ``supervision`` block.
    supervision: dict | None = None

    @property
    def ok(self) -> bool:
        """True when the shard produced a usable analysed run."""
        return self.report is not None
