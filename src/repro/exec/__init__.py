"""Parallel campaign execution.

The paper's methodology is embarrassingly parallel: every application
experiment is simulated and analysed independently before the preference
indices are aggregated.  This package exploits that — a campaign is split
into *shards* (one per application × seed replica), fanned out over an
executor backend, and merged back into a :class:`~repro.experiments.
campaign.Campaign` by a deterministic, order-independent reduction.

Layout:

* :mod:`repro.exec.shards`   — picklable shard specs/outcomes and the
  shard-key → RNG-seed discipline;
* :mod:`repro.exec.context`  — the per-process cache of the shared
  world/testbed/registry construction;
* :mod:`repro.exec.worker`   — ``run_shard``, the per-shard pipeline
  (checkpoint → simulate → impair → validate → analyze → checkpoint);
* :mod:`repro.exec.backends` — the executor protocol with ``serial`` and
  ``process`` (:mod:`concurrent.futures`) backends;
* :mod:`repro.exec.supervisor` — the supervised runtime (``supervised``
  backend): deadlines, crash isolation, retry/backoff, quarantine,
  graceful drain, worker recycling;
* :mod:`repro.exec.chaos`     — the deterministic worker-fault harness
  that proves the supervisor against the real process pool.

The determinism guarantee: for the same configuration, every backend
produces byte-identical campaigns — same transfer logs, same reports,
same error ledgers, same impairment logs (asserted by
``tests/experiments/test_parallel.py``).
"""

from repro.exec.backends import (
    ENV_BACKEND,
    ENV_WORKERS,
    EXECUTOR_BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.exec.chaos import ENV_CHAOS, ChaosFault, ChaosPlan, chaos_enabled
from repro.exec.context import campaign_context, shard_context
from repro.exec.shards import RESEED_STRIDE, ShardKey, ShardOutcome, ShardSpec
from repro.exec.supervisor import SupervisedExecutor, SupervisionPolicy
from repro.exec.worker import run_shard

__all__ = [
    "ENV_BACKEND",
    "ENV_CHAOS",
    "ENV_WORKERS",
    "EXECUTOR_BACKENDS",
    "ChaosFault",
    "ChaosPlan",
    "Executor",
    "ProcessExecutor",
    "RESEED_STRIDE",
    "SerialExecutor",
    "ShardKey",
    "ShardOutcome",
    "ShardSpec",
    "SupervisedExecutor",
    "SupervisionPolicy",
    "campaign_context",
    "chaos_enabled",
    "resolve_executor",
    "run_shard",
    "shard_context",
]
