"""Quality flags: degraded-mode annotations on analysis output.

A damaged capture (truncated trace, sniffer outage, evaporated swarm)
should not crash the awareness framework — but neither should it emit
numbers indistinguishable from healthy ones.  A :class:`QualityFlag`
marks a metric, direction or whole report whose value rests on degenerate
input; renderers and shape checks can then annotate or exclude flagged
cells instead of silently publishing noise.

Flag codes in use:

* ``no-contributors``      — a direction's contributor view is empty;
* ``few-contributors``     — fewer distinct contributors than the
  analyzer's minimum (the P′/B′-style bias control: an index over a
  handful of peers is an anecdote, not a preference);
* ``no-nonprobe-contributors`` — P′/B′ undefined because every
  contributor is itself a probe;
* ``single-class``         — a partition put every pair in one class, so
  its index is degenerate (trivially 0 or 100);
* ``metric-error``         — a partition raised on this input; its cells
  are NaN instead of the analysis aborting;
* ``exec-quarantined``     — a campaign shard exhausted its supervised
  execution attempts (crash/hang/corruption) and was quarantined; the
  campaign's numbers are missing that application;
* ``exec-interrupted``     — a drain signal (SIGINT/SIGTERM) stopped the
  shard before it completed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class QualityFlag:
    """One degraded-input annotation."""

    code: str
    detail: str = ""
    metric: str | None = None
    direction: str | None = None

    def __str__(self) -> str:
        scope = "/".join(s for s in (self.metric, self.direction) if s)
        head = f"[{self.code}]" if not scope else f"[{self.code} @ {scope}]"
        return f"{head} {self.detail}" if self.detail else head
