"""Peer-wise and byte-wise preference indices — eqs. (1)–(8) of the paper.

For one direction and one partition, over the NAPA-WINE probe set W:

* ``Peer_P  = Σ_{p∈W} Σ_{e} 1_P(p, e)``              (eqs. 1, 3, 5)
* ``Byte_P  = Σ_{p∈W} Σ_{e} 1_P(p, e) · B(p, e)``    (eqs. 2, 4, 6)
* ``P = 100 · Peer_P / (Peer_P + Peer_P̄)``           (eq. 7)
* ``B = 100 · Byte_P / (Byte_P + Byte_P̄)``           (eq. 8)

A peer contributes once per probe it exchanges with (the paper notes a
peer "may be counted more than once" across probes).  The indices are
dimensionless percentages, insensitive to byte units and to the magnitude
of the underlying property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.core.views import DirectionalView


@dataclass(frozen=True, slots=True)
class PreferenceCounts:
    """Raw sums of eqs. (5)–(6) plus the derived indices of (7)–(8).

    >>> counts = PreferenceCounts(
    ...     peers_preferred=2, peers_other=1,
    ...     bytes_preferred=700, bytes_other=300,
    ... )
    >>> round(counts.peer_percent, 2)   # P, eq. (7)
    66.67
    >>> counts.byte_percent             # B, eq. (8)
    70.0
    """

    peers_preferred: int
    peers_other: int
    bytes_preferred: int
    bytes_other: int

    @property
    def total_peers(self) -> int:
        return self.peers_preferred + self.peers_other

    @property
    def total_bytes(self) -> int:
        return self.bytes_preferred + self.bytes_other

    @property
    def peer_percent(self) -> float:
        """P of eq. (7); NaN when the view is empty."""
        if self.total_peers == 0:
            return float("nan")
        return 100.0 * self.peers_preferred / self.total_peers

    @property
    def byte_percent(self) -> float:
        """B of eq. (8); NaN when no bytes were exchanged."""
        if self.total_bytes == 0:
            return float("nan")
        return 100.0 * self.bytes_preferred / self.total_bytes


def preference_counts(view: DirectionalView, indicator: np.ndarray) -> PreferenceCounts:
    """Aggregate eqs. (1)–(8) over a view given a partition indicator.

    ``indicator`` is 1_P(p, e) row-by-row; peer sums are eqs. (1)/(3)/(5)
    and byte sums eqs. (2)/(4)/(6).

    >>> import numpy as np
    >>> from repro.core.views import Direction, DirectionalView
    >>> view = DirectionalView(
    ...     direction=Direction.DOWNLOAD,
    ...     probe_ip=np.array([1, 1, 1], dtype=np.uint32),
    ...     peer_ip=np.array([10, 11, 12], dtype=np.uint32),
    ...     bytes=np.array([600, 300, 100], dtype=np.uint64),
    ...     min_ipg=np.full(3, np.inf),
    ...     ttl=np.full(3, np.nan),
    ... )
    >>> counts = preference_counts(view, np.array([True, False, True]))
    >>> counts.peers_preferred, counts.bytes_preferred
    (2, 700)
    >>> counts.byte_percent
    70.0
    """
    if len(indicator) != len(view):
        raise AnalysisError("indicator misaligned with view")
    ind = np.asarray(indicator, dtype=bool)
    nbytes = view.bytes.astype(np.uint64)
    return PreferenceCounts(
        peers_preferred=int(ind.sum()),
        peers_other=int((~ind).sum()),
        bytes_preferred=int(nbytes[ind].sum()),
        bytes_other=int(nbytes[~ind].sum()),
    )


def per_probe_counts(
    view: DirectionalView, indicator: np.ndarray
) -> dict[int, PreferenceCounts]:
    """Eqs. (1)–(4) per probe — the pre-aggregation breakdown.

    Summing these across probes reproduces :func:`preference_counts`
    exactly (a property the tests assert).
    """
    out: dict[int, PreferenceCounts] = {}
    for probe in np.unique(view.probe_ip):
        mask = view.probe_ip == probe
        out[int(probe)] = preference_counts(view.select(mask), indicator[mask])
    return out
