"""Self-induced probe bias: quantification and control (paper §III-C).

The NAPA-WINE probes are an unusual population — clouds of high-bandwidth
PCs sharing LANs, ASes and countries — and they demonstrably prefer each
other (Table III).  Two tools deal with it:

* :func:`self_bias` measures the share of peers/bytes exchanged among
  probes (Table III's rows);
* :func:`exclude_probe_peers` restricts a view to the contributor set
  P′(p) = P(p) \\ W, on which the primed indices P′, B′ are computed —
  if a preference survives the exclusion, it was not an artifact of the
  deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.views import DirectionalView


def exclude_probe_peers(
    view: DirectionalView, probe_ips: np.ndarray
) -> DirectionalView:
    """The view restricted to non-probe peers (P′ of the paper)."""
    keep = ~np.isin(view.peer_ip, np.asarray(probe_ips, dtype=np.uint32))
    return view.select(keep)


@dataclass(frozen=True, slots=True)
class SelfBias:
    """Share of traffic a probe population exchanges with itself."""

    peer_percent: float
    byte_percent: float


def self_bias(view: DirectionalView, probe_ips: np.ndarray) -> SelfBias:
    """Percentage of (probe, peer) pairs and bytes where the peer is
    itself a probe — one cell of Table III.

    >>> import numpy as np
    >>> from repro.core.views import Direction, DirectionalView
    >>> view = DirectionalView(
    ...     direction=Direction.DOWNLOAD,
    ...     probe_ip=np.array([1, 1], dtype=np.uint32),
    ...     peer_ip=np.array([2, 9], dtype=np.uint32),
    ...     bytes=np.array([900, 100], dtype=np.uint64),
    ...     min_ipg=np.full(2, np.inf),
    ...     ttl=np.full(2, np.nan),
    ... )
    >>> bias = self_bias(view, probe_ips=np.array([1, 2], dtype=np.uint32))
    >>> print(f"{bias.peer_percent:.1f} {bias.byte_percent:.1f}")
    50.0 90.0
    >>> len(exclude_probe_peers(view, np.array([1, 2], dtype=np.uint32)))
    1
    """
    n = len(view)
    if n == 0:
        return SelfBias(float("nan"), float("nan"))
    is_probe_peer = np.isin(view.peer_ip, np.asarray(probe_ips, dtype=np.uint32))
    total_bytes = view.bytes.sum()
    byte_pct = (
        float("nan")
        if total_bytes == 0
        else 100.0 * view.bytes[is_probe_peer].sum() / total_bytes
    )
    return SelfBias(
        peer_percent=100.0 * is_probe_peer.sum() / n,
        byte_percent=byte_pct,
    )
