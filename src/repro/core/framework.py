"""The analyzer: orchestrating views, partitions and preference indices.

:class:`AwarenessAnalyzer` turns one experiment's flow table into a
Table-IV-shaped :class:`AwarenessReport`: for every network property and
both directions, the preference indices over all contributors (P, B) and
over contributors excluding the probes (P′, B′).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AnalysisError, ReproError
from repro.heuristics.contributors import ContributorCriteria
from repro.heuristics.registry import IpRegistry
from repro.core.bias import exclude_probe_peers, self_bias, SelfBias
from repro.core.partitions import PreferentialPartition, default_partitions
from repro.core.preference import PreferenceCounts, preference_counts
from repro.core.quality import QualityFlag
from repro.core.views import Direction, ViewPair, build_views
from repro.trace.flows import FlowTable


@dataclass(frozen=True, slots=True)
class DirectionScores:
    """P/B over all contributors and over non-probe contributors."""

    all_peers: PreferenceCounts | None
    non_probe: PreferenceCounts | None

    @property
    def P(self) -> float:  # noqa: N802 - paper notation
        return self.all_peers.peer_percent if self.all_peers else float("nan")

    @property
    def B(self) -> float:  # noqa: N802
        return self.all_peers.byte_percent if self.all_peers else float("nan")

    @property
    def P_prime(self) -> float:  # noqa: N802
        return self.non_probe.peer_percent if self.non_probe else float("nan")

    @property
    def B_prime(self) -> float:  # noqa: N802
        return self.non_probe.byte_percent if self.non_probe else float("nan")


@dataclass(frozen=True, slots=True)
class MetricScores:
    """One Table IV row group: one property, both directions."""

    metric: str
    download: DirectionScores
    upload: DirectionScores

    def get(self, direction: Direction) -> DirectionScores:
        return self.download if direction is Direction.DOWNLOAD else self.upload


@dataclass
class AwarenessReport:
    """Full analysis output for one experiment.

    ``flags`` carries degraded-mode annotations (see
    :mod:`repro.core.quality`): an empty list means every index was
    computed from healthy input; a flagged report is still usable, but
    the flagged cells should be read as low-confidence.
    """

    metrics: dict[str, MetricScores]
    views: ViewPair
    self_bias_contributors: dict[str, SelfBias] = field(default_factory=dict)
    self_bias_all_peers: dict[str, SelfBias] = field(default_factory=dict)
    flags: list[QualityFlag] = field(default_factory=list)

    def __getitem__(self, metric: str) -> MetricScores:
        try:
            return self.metrics[metric]
        except KeyError as exc:
            raise AnalysisError(
                f"metric {metric!r} not analysed; have {sorted(self.metrics)}"
            ) from exc

    @property
    def metric_names(self) -> list[str]:
        return list(self.metrics)

    @property
    def degraded(self) -> bool:
        """True when any index rests on degenerate input."""
        return bool(self.flags)

    def flags_for(self, metric: str | None = None) -> list[QualityFlag]:
        """Flags scoped to one metric (report-wide flags included)."""
        return [f for f in self.flags if f.metric is None or f.metric == metric]


class AwarenessAnalyzer:
    """Applies the paper's methodology to one experiment's traffic."""

    def __init__(
        self,
        registry: IpRegistry,
        partitions: list[PreferentialPartition] | None = None,
        criteria: ContributorCriteria | None = None,
        *,
        min_contributors: int = 3,
    ) -> None:
        """
        Parameters
        ----------
        registry:
            Address → AS/CC resolver (the whois/GeoIP stand-in).
        partitions:
            Properties to score; defaults to the paper's five (BW, AS, CC,
            NET, HOP).  Pass your own list to extend the framework with
            new properties — see ``examples/custom_metric.py``.
        criteria:
            Contributor-identification thresholds.
        min_contributors:
            Minimum distinct contributors per direction below which the
            report is flagged ``few-contributors`` (the degraded-trace
            analogue of the paper's P′/B′ bias control; the indices are
            still computed, just marked low-confidence).
        """
        self.registry = registry
        self.partitions = (
            partitions if partitions is not None else default_partitions(registry)
        )
        if not self.partitions:
            raise AnalysisError("need at least one partition")
        names = [p.name for p in self.partitions]
        if len(set(names)) != len(names):
            raise AnalysisError(f"duplicate partition names: {names}")
        self.criteria = criteria
        if min_contributors < 1:
            raise AnalysisError("min_contributors must be at least 1")
        self.min_contributors = min_contributors

    def analyze(self, table: FlowTable, *, telemetry=None) -> AwarenessReport:
        """Run the full methodology on one experiment.

        Degenerate inputs — an empty contributor set, a partition that
        cannot be evaluated, a single-class split — degrade gracefully:
        affected cells come back NaN and the report carries
        :class:`~repro.core.quality.QualityFlag` entries describing why,
        instead of the analysis raising.

        ``telemetry`` (an optional
        :class:`~repro.obs.telemetry.Telemetry`) collects contributor
        tallies from the view builder plus per-partition indicator sums
        (``analysis/<metric>/<direction>_preferred``) — pure accounting;
        the report is identical with or without it.
        """
        probe_ips = np.asarray(table.probe_ips, dtype=np.uint32)
        views = build_views(
            table, self.criteria, contributors_only=True, telemetry=telemetry
        )
        all_views = build_views(table, self.criteria, contributors_only=False)
        flags: list[QualityFlag] = []

        for direction in Direction:
            view = views.get(direction)
            distinct = view.distinct_peers()
            if distinct == 0:
                flags.append(
                    QualityFlag(
                        "no-contributors",
                        "no contributing peers in this direction",
                        direction=direction.value,
                    )
                )
            elif distinct < self.min_contributors:
                flags.append(
                    QualityFlag(
                        "few-contributors",
                        f"only {distinct} distinct contributors "
                        f"(threshold {self.min_contributors})",
                        direction=direction.value,
                    )
                )
            if len(view) and not len(exclude_probe_peers(view, probe_ips)):
                flags.append(
                    QualityFlag(
                        "no-nonprobe-contributors",
                        "every contributor is a probe; P'/B' undefined",
                        direction=direction.value,
                    )
                )

        metrics: dict[str, MetricScores] = {}
        for partition in self.partitions:
            per_direction: dict[Direction, DirectionScores] = {}
            for direction in Direction:
                view = views.get(direction)
                if not partition.supports(direction):
                    per_direction[direction] = DirectionScores(None, None)
                    continue
                try:
                    indicator = np.asarray(partition.indicator(view), dtype=bool)
                except ReproError as exc:
                    flags.append(
                        QualityFlag(
                            "metric-error",
                            str(exc),
                            metric=partition.name,
                            direction=direction.value,
                        )
                    )
                    per_direction[direction] = DirectionScores(None, None)
                    continue
                if len(view) and (indicator.all() or not indicator.any()):
                    cls = "preferred" if indicator.all() else "non-preferred"
                    flags.append(
                        QualityFlag(
                            "single-class",
                            f"every pair fell in the {cls} class",
                            metric=partition.name,
                            direction=direction.value,
                        )
                    )
                if telemetry is not None:
                    telemetry.count(
                        f"analysis/{partition.name}/{direction.value}_pairs",
                        int(indicator.size),
                    )
                    telemetry.count(
                        f"analysis/{partition.name}/{direction.value}_preferred",
                        int(indicator.sum()),
                    )
                full = preference_counts(view, indicator)
                pruned_view = exclude_probe_peers(view, probe_ips)
                keep = ~np.isin(view.peer_ip, probe_ips)
                pruned = preference_counts(pruned_view, indicator[keep])
                per_direction[direction] = DirectionScores(full, pruned)
            metrics[partition.name] = MetricScores(
                metric=partition.name,
                download=per_direction[Direction.DOWNLOAD],
                upload=per_direction[Direction.UPLOAD],
            )

        report = AwarenessReport(metrics=metrics, views=views, flags=flags)
        for direction in Direction:
            key = direction.value
            report.self_bias_contributors[key] = self_bias(
                views.get(direction), probe_ips
            )
            report.self_bias_all_peers[key] = self_bias(
                all_views.get(direction), probe_ips
            )
        return report
