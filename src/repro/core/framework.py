"""The analyzer: orchestrating views, partitions and preference indices.

:class:`AwarenessAnalyzer` turns one experiment's flow table into a
Table-IV-shaped :class:`AwarenessReport`: for every network property and
both directions, the preference indices over all contributors (P, B) and
over contributors excluding the probes (P′, B′).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AnalysisError
from repro.heuristics.contributors import ContributorCriteria
from repro.heuristics.registry import IpRegistry
from repro.core.bias import exclude_probe_peers, self_bias, SelfBias
from repro.core.partitions import PreferentialPartition, default_partitions
from repro.core.preference import PreferenceCounts, preference_counts
from repro.core.views import Direction, DirectionalView, ViewPair, build_views
from repro.trace.flows import FlowTable


@dataclass(frozen=True, slots=True)
class DirectionScores:
    """P/B over all contributors and over non-probe contributors."""

    all_peers: PreferenceCounts | None
    non_probe: PreferenceCounts | None

    @property
    def P(self) -> float:  # noqa: N802 - paper notation
        return self.all_peers.peer_percent if self.all_peers else float("nan")

    @property
    def B(self) -> float:  # noqa: N802
        return self.all_peers.byte_percent if self.all_peers else float("nan")

    @property
    def P_prime(self) -> float:  # noqa: N802
        return self.non_probe.peer_percent if self.non_probe else float("nan")

    @property
    def B_prime(self) -> float:  # noqa: N802
        return self.non_probe.byte_percent if self.non_probe else float("nan")


@dataclass(frozen=True, slots=True)
class MetricScores:
    """One Table IV row group: one property, both directions."""

    metric: str
    download: DirectionScores
    upload: DirectionScores

    def get(self, direction: Direction) -> DirectionScores:
        return self.download if direction is Direction.DOWNLOAD else self.upload


@dataclass
class AwarenessReport:
    """Full analysis output for one experiment."""

    metrics: dict[str, MetricScores]
    views: ViewPair
    self_bias_contributors: dict[str, SelfBias] = field(default_factory=dict)
    self_bias_all_peers: dict[str, SelfBias] = field(default_factory=dict)

    def __getitem__(self, metric: str) -> MetricScores:
        try:
            return self.metrics[metric]
        except KeyError as exc:
            raise AnalysisError(
                f"metric {metric!r} not analysed; have {sorted(self.metrics)}"
            ) from exc

    @property
    def metric_names(self) -> list[str]:
        return list(self.metrics)


class AwarenessAnalyzer:
    """Applies the paper's methodology to one experiment's traffic."""

    def __init__(
        self,
        registry: IpRegistry,
        partitions: list[PreferentialPartition] | None = None,
        criteria: ContributorCriteria | None = None,
    ) -> None:
        """
        Parameters
        ----------
        registry:
            Address → AS/CC resolver (the whois/GeoIP stand-in).
        partitions:
            Properties to score; defaults to the paper's five (BW, AS, CC,
            NET, HOP).  Pass your own list to extend the framework with
            new properties — see ``examples/custom_metric.py``.
        criteria:
            Contributor-identification thresholds.
        """
        self.registry = registry
        self.partitions = (
            partitions if partitions is not None else default_partitions(registry)
        )
        if not self.partitions:
            raise AnalysisError("need at least one partition")
        names = [p.name for p in self.partitions]
        if len(set(names)) != len(names):
            raise AnalysisError(f"duplicate partition names: {names}")
        self.criteria = criteria

    def analyze(self, table: FlowTable) -> AwarenessReport:
        """Run the full methodology on one experiment."""
        probe_ips = np.asarray(table.probe_ips, dtype=np.uint32)
        views = build_views(table, self.criteria, contributors_only=True)
        all_views = build_views(table, self.criteria, contributors_only=False)

        metrics: dict[str, MetricScores] = {}
        for partition in self.partitions:
            per_direction: dict[Direction, DirectionScores] = {}
            for direction in Direction:
                view = views.get(direction)
                if not partition.supports(direction):
                    per_direction[direction] = DirectionScores(None, None)
                    continue
                indicator = partition.indicator(view)
                full = preference_counts(view, indicator)
                pruned_view = exclude_probe_peers(view, probe_ips)
                keep = ~np.isin(view.peer_ip, probe_ips)
                pruned = preference_counts(pruned_view, indicator[keep])
                per_direction[direction] = DirectionScores(full, pruned)
            metrics[partition.name] = MetricScores(
                metric=partition.name,
                download=per_direction[Direction.DOWNLOAD],
                upload=per_direction[Direction.UPLOAD],
            )

        report = AwarenessReport(metrics=metrics, views=views)
        for direction in Direction:
            key = direction.value
            report.self_bias_contributors[key] = self_bias(
                views.get(direction), probe_ips
            )
            report.self_bias_all_peers[key] = self_bias(
                all_views.get(direction), probe_ips
            )
        return report
