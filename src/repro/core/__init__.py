"""The network-awareness inference framework (the paper's contribution).

Given probe-side traffic (a :class:`~repro.trace.flows.FlowTable`) and a
public address registry, the framework:

1. identifies contributing peers per probe and direction
   (:mod:`repro.core.views`);
2. partitions each probe's contributor set by a network property —
   bandwidth, AS, country, subnet, hop distance
   (:mod:`repro.core.partitions`);
3. computes the peer-wise and byte-wise preference indices P and B of
   eqs. (1)–(8) (:mod:`repro.core.preference`);
4. controls the self-induced bias of the probe deployment by recomputing
   on the contributor set deprived of probes (:mod:`repro.core.bias`);
5. assembles everything into a Table-IV-shaped report
   (:mod:`repro.core.framework`).
"""

from repro.core.views import Direction, DirectionalView, build_views, ViewPair
from repro.core.partitions import (
    ASPartition,
    BWPartition,
    CCPartition,
    HOPPartition,
    NETPartition,
    PreferentialPartition,
    SubnetPartition,
    default_partitions,
)
from repro.core.preference import PreferenceCounts, preference_counts
from repro.core.bias import exclude_probe_peers, self_bias
from repro.core.timeseries import (
    WindowedScores,
    windowed_from_flows,
    windowed_preference,
)
from repro.core.framework import (
    AwarenessAnalyzer,
    AwarenessReport,
    DirectionScores,
    MetricScores,
)
from repro.core.quality import QualityFlag

__all__ = [
    "Direction",
    "DirectionalView",
    "ViewPair",
    "build_views",
    "PreferentialPartition",
    "BWPartition",
    "ASPartition",
    "CCPartition",
    "NETPartition",
    "SubnetPartition",
    "HOPPartition",
    "default_partitions",
    "PreferenceCounts",
    "preference_counts",
    "exclude_probe_peers",
    "self_bias",
    "WindowedScores",
    "windowed_from_flows",
    "windowed_preference",
    "AwarenessAnalyzer",
    "AwarenessReport",
    "DirectionScores",
    "MetricScores",
    "QualityFlag",
]
