"""Preferential partitions X_P of the peer set (paper §III-B).

Each partition splits the support of a network property into a preferred
set and its complement; the indicator 1_P(p, e) marks pairs in the
preferred set:

* **BW**  — ``min IPG(e → p) < 1 ms``  (peer path > 10 Mb/s).  Download
  only: capacity is observable only on traffic *received* from e.
* **AS**  — ``AS(p) == AS(e)`` via the address registry.
* **CC**  — same country via the registry.
* **NET** — ``HOP(e, p) == 0`` (TTL unchanged ⇒ same subnet).
* **HOP** — ``HOP(e, p) < threshold`` with the threshold at the observed
  median distance (the paper fixes 19 after observing medians of 18–20).

Partitions satisfy the axioms X_P ∪ X̄_P = X, X_P ∩ X̄_P = ∅ by
construction (a boolean indicator); the property-based tests assert the
derived invariants.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import AnalysisError
from repro.heuristics.bandwidth import HIGH_BW_IPG_THRESHOLD_S, classify_high_bandwidth
from repro.heuristics.hops import hops_from_ttl
from repro.heuristics.registry import IpRegistry
from repro.core.views import Direction, DirectionalView

#: The paper's fixed HOP threshold (median distance was 18–20 hops).
PAPER_HOP_THRESHOLD = 19


class PreferentialPartition(ABC):
    """A named boolean split of (probe, peer) pairs."""

    #: Short name used in reports ("BW", "AS", ...).
    name: str = "?"

    @abstractmethod
    def indicator(self, view: DirectionalView) -> np.ndarray:
        """1_P over the view's rows."""

    def supports(self, direction: Direction) -> bool:
        """Whether the property is measurable in this direction."""
        return True


class BWPartition(PreferentialPartition):
    """High-bandwidth peers, inferred from minimum inter-packet gaps.

    A 0.5 ms gap beats the 1 ms threshold (path > 10 Mb/s); a 2 ms gap
    does not:

    >>> import numpy as np
    >>> from repro.core.views import Direction, DirectionalView
    >>> view = DirectionalView(
    ...     direction=Direction.DOWNLOAD,
    ...     probe_ip=np.array([1, 1], dtype=np.uint32),
    ...     peer_ip=np.array([2, 3], dtype=np.uint32),
    ...     bytes=np.array([100, 100], dtype=np.uint64),
    ...     min_ipg=np.array([0.0005, 0.002]),
    ...     ttl=np.array([60.0, 50.0]),
    ... )
    >>> BWPartition().indicator(view)
    array([ True, False])
    """

    name = "BW"

    def __init__(self, ipg_threshold_s: float = HIGH_BW_IPG_THRESHOLD_S) -> None:
        if ipg_threshold_s <= 0:
            raise AnalysisError("IPG threshold must be positive")
        self.ipg_threshold_s = ipg_threshold_s

    def indicator(self, view: DirectionalView) -> np.ndarray:
        return classify_high_bandwidth(view.min_ipg, self.ipg_threshold_s)

    def supports(self, direction: Direction) -> bool:
        # Paper §III-C: U(p) and D(p) are typically disjoint, so upstream
        # capacity of upload-only peers is unobservable; BW is reported for
        # the download direction only (conservative).
        return direction is Direction.DOWNLOAD


class _RegistryPartition(PreferentialPartition):
    """Shared machinery for registry-resolved equality partitions."""

    def __init__(self, registry: IpRegistry) -> None:
        self.registry = registry


class ASPartition(_RegistryPartition):
    """Peer in the same Autonomous System as the probe."""

    name = "AS"

    def indicator(self, view: DirectionalView) -> np.ndarray:
        return self.registry.asn_of(view.peer_ip) == self.registry.asn_of(view.probe_ip)


class CCPartition(_RegistryPartition):
    """Peer in the same country as the probe."""

    name = "CC"

    def indicator(self, view: DirectionalView) -> np.ndarray:
        return self.registry.country_of(view.peer_ip) == self.registry.country_of(
            view.probe_ip
        )


class NETPartition(PreferentialPartition):
    """Peer on the probe's subnet: zero-hop path (received TTL = initial).

    Rows without an observed e → p stream (nan TTL) are conservatively
    assigned to the non-preferred class.
    """

    name = "NET"

    def __init__(self, assume_initial_ttl: int | None = None) -> None:
        self.assume_initial_ttl = assume_initial_ttl

    def indicator(self, view: DirectionalView) -> np.ndarray:
        seen = np.isfinite(view.ttl)
        out = np.zeros(len(view), dtype=bool)
        if seen.any():
            hops = hops_from_ttl(
                view.ttl[seen].astype(np.int64), self.assume_initial_ttl
            )
            out[seen] = hops == 0
        return out


class SubnetPartition(_RegistryPartition):
    """Registry-based alternative to NET: equal masked network addresses.

    Not used by the paper (which infers subnets from TTLs), but useful for
    cross-validating the TTL path and as an example of extending the
    framework with a new property.
    """

    name = "SUBNET"

    def indicator(self, view: DirectionalView) -> np.ndarray:
        return self.registry.subnet_of(view.peer_ip) == self.registry.subnet_of(
            view.probe_ip
        )


class HOPPartition(PreferentialPartition):
    """Peers closer than a hop threshold (default: the paper's 19)."""

    name = "HOP"

    def __init__(
        self,
        threshold: int | None = PAPER_HOP_THRESHOLD,
        assume_initial_ttl: int | None = None,
    ) -> None:
        self.threshold = threshold
        self.assume_initial_ttl = assume_initial_ttl

    def _hops(self, view: DirectionalView) -> tuple[np.ndarray, np.ndarray]:
        seen = np.isfinite(view.ttl)
        hops = np.full(len(view), np.inf)
        if seen.any():
            hops[seen] = hops_from_ttl(
                view.ttl[seen].astype(np.int64), self.assume_initial_ttl
            )
        return hops, seen

    def observed_median(self, view: DirectionalView) -> float:
        """Median observed hop distance (the paper's threshold source)."""
        hops, seen = self._hops(view)
        if not seen.any():
            raise AnalysisError("no TTL observations to take a median over")
        return float(np.median(hops[seen]))

    def indicator(self, view: DirectionalView) -> np.ndarray:
        hops, _ = self._hops(view)
        threshold = self.threshold
        if threshold is None:
            threshold = self.observed_median(view)
        return hops < threshold


def default_partitions(
    registry: IpRegistry, hop_threshold: int | None = PAPER_HOP_THRESHOLD
) -> list[PreferentialPartition]:
    """The paper's five partitions, in Table IV order."""
    return [
        BWPartition(),
        ASPartition(registry),
        CCPartition(registry),
        NETPartition(),
        HOPPartition(hop_threshold),
    ]
