"""Time-windowed preference indices: the temporal-evolution view.

Related work the paper positions against ([11], Ali et al.) studies the
*temporal evolution* of P2P-TV metrics.  This module adds that lens to
the awareness framework: the capture is cut into fixed windows, a flow
contributes to every window it overlaps (bytes split proportionally to
overlap, assuming the flow's rate is roughly constant — the right model
for steady chunk streams), and the P/B indices are computed per window.

Useful for convergence questions ("how long must a capture be before the
indices stabilise?") and for spotting non-stationary behaviour (e.g.
churn-driven drift), neither of which a single aggregate can show.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partitions import PreferentialPartition
from repro.core.views import DirectionalView
from repro.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class WindowedScores:
    """P/B per time window for one partition and direction."""

    window_s: float
    starts: np.ndarray        # window start times
    peer_percent: np.ndarray  # P per window (NaN when empty)
    byte_percent: np.ndarray  # B per window

    def __len__(self) -> int:
        return len(self.starts)

    def stabilisation_window(self, tolerance: float = 5.0) -> int | None:
        """First window index from which B stays within ``tolerance``
        percentage points of the final value; None if it never settles."""
        finite = np.isfinite(self.byte_percent)
        if not finite.any():
            return None
        final = self.byte_percent[finite][-1]
        ok = np.abs(self.byte_percent - final) <= tolerance
        ok |= ~finite
        for i in range(len(ok)):
            if ok[i:].all():
                return i
        return None


def windowed_preference(
    view: DirectionalView,
    indicator: np.ndarray,
    first_ts: np.ndarray,
    last_ts: np.ndarray,
    *,
    window_s: float,
    t_end: float,
) -> WindowedScores:
    """Compute per-window P/B for one view.

    Parameters
    ----------
    view / indicator:
        The contributor view and its partition indicator.
    first_ts / last_ts:
        Flow activity intervals aligned with the view's rows.
    window_s / t_end:
        Window width and capture end; windows tile ``[0, t_end)``.

    A (probe, peer) pair counts as *present* in every window its activity
    interval overlaps; its bytes are apportioned by overlap fraction.
    """
    if window_s <= 0 or t_end <= 0:
        raise AnalysisError("window and capture length must be positive")
    if not (len(view) == len(indicator) == len(first_ts) == len(last_ts)):
        raise AnalysisError("windowed_preference inputs misaligned")
    n_windows = int(np.ceil(t_end / window_s))
    starts = np.arange(n_windows) * window_s

    peer_pref = np.zeros(n_windows)
    peer_tot = np.zeros(n_windows)
    byte_pref = np.zeros(n_windows)
    byte_tot = np.zeros(n_windows)

    span = np.maximum(last_ts - first_ts, 1e-12)
    nbytes = view.bytes.astype(np.float64)
    ind = np.asarray(indicator, dtype=bool)

    for w, w_start in enumerate(starts):
        w_end = w_start + window_s
        overlap = np.minimum(last_ts, w_end) - np.maximum(first_ts, w_start)
        # Instantaneous flows (single datagram) land in their window.
        point = (last_ts == first_ts) & (first_ts >= w_start) & (first_ts < w_end)
        active = (overlap > 0) | point
        if not active.any():
            continue
        frac = np.zeros(len(view))
        frac[active] = np.clip(overlap[active] / span[active], 0.0, 1.0)
        frac[point] = 1.0
        w_bytes = nbytes * frac
        peer_tot[w] = active.sum()
        peer_pref[w] = (active & ind).sum()
        byte_tot[w] = w_bytes.sum()
        byte_pref[w] = w_bytes[ind].sum()

    with np.errstate(invalid="ignore", divide="ignore"):
        p = np.where(peer_tot > 0, 100.0 * peer_pref / peer_tot, np.nan)
        b = np.where(byte_tot > 0, 100.0 * byte_pref / byte_tot, np.nan)
    return WindowedScores(
        window_s=window_s, starts=starts, peer_percent=p, byte_percent=b
    )


def windowed_from_flows(
    table,
    partition: PreferentialPartition,
    *,
    window_s: float,
    t_end: float,
    direction: str = "download",
) -> WindowedScores:
    """Convenience: windowed P/B straight from a flow table.

    Rebuilds the contributor view, keeps its flows' activity intervals
    aligned, and delegates to :func:`windowed_preference`.
    """
    from repro.core.views import build_views
    from repro.heuristics.contributors import contributor_mask

    flows = table.flows
    keep = contributor_mask(flows)
    probe_ips = np.asarray(table.probe_ips, dtype=np.uint32)
    if direction == "download":
        mask = keep & np.isin(flows["dst"], probe_ips)
    elif direction == "upload":
        mask = keep & np.isin(flows["src"], probe_ips)
    else:
        raise AnalysisError(f"unknown direction {direction!r}")
    views = build_views(table)
    view = views.download if direction == "download" else views.upload
    sel = flows[mask]
    indicator = partition.indicator(view)
    return windowed_preference(
        view,
        indicator,
        sel["first_ts"].astype(np.float64),
        sel["last_ts"].astype(np.float64),
        window_s=window_s,
        t_end=t_end,
    )
