"""Contributor views: the (probe, peer) pairs the framework scores.

For every probe p the paper considers the contributing peers P(p), split
by direction: D(p) — peers p downloads video from — and U(p) — peers p
uploads to.  A :class:`DirectionalView` holds one row per (p, e) pair with
the exchanged bytes B(·,·) and the *measured* attributes of the e → p
packet stream (min IPG for capacity inference, TTL for hop inference).

Upload rows carry the reverse-flow (e → p) measurements when such a flow
exists, since capacity/TTL can only be observed on traffic *received*
from e (paper §III-C, "directionality"); rows without reverse traffic get
``inf`` / ``nan`` sentinels and partitions handle them conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

import numpy as np

from repro.errors import AnalysisError
from repro.heuristics.contributors import ContributorCriteria, contributor_mask
from repro.trace.flows import FlowTable


class Direction(Enum):
    """Traffic direction relative to the probe."""

    DOWNLOAD = "download"  # e → p
    UPLOAD = "upload"      # p → e


@dataclass(frozen=True)
class DirectionalView:
    """One row per (probe, peer) pair in one direction."""

    direction: Direction
    probe_ip: np.ndarray   # u4
    peer_ip: np.ndarray    # u4
    bytes: np.ndarray      # u8 — B(e,p) or B(p,e)
    min_ipg: np.ndarray    # f8 — of the e → p stream (inf if unseen)
    ttl: np.ndarray        # f8 — of the e → p stream (nan if unseen)

    def __post_init__(self) -> None:
        n = len(self.probe_ip)
        for name in ("peer_ip", "bytes", "min_ipg", "ttl"):
            if len(getattr(self, name)) != n:
                raise AnalysisError(f"view column {name} misaligned")

    def __len__(self) -> int:
        return len(self.probe_ip)

    def select(self, mask: np.ndarray) -> "DirectionalView":
        """Row-filtered copy."""
        return replace(
            self,
            probe_ip=self.probe_ip[mask],
            peer_ip=self.peer_ip[mask],
            bytes=self.bytes[mask],
            min_ipg=self.min_ipg[mask],
            ttl=self.ttl[mask],
        )

    @property
    def total_bytes(self) -> int:
        return int(self.bytes.sum())

    def distinct_peers(self) -> int:
        """Distinct peer addresses across all probes (a peer counted once
        even when several probes talk to it)."""
        return len(np.unique(self.peer_ip))


@dataclass(frozen=True)
class ViewPair:
    """Download and upload views of one experiment."""

    download: DirectionalView
    upload: DirectionalView

    def get(self, direction: Direction) -> DirectionalView:
        return self.download if direction is Direction.DOWNLOAD else self.upload


def _reverse_lookup(
    flows: np.ndarray, query_src: np.ndarray, query_dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """min_ipg and ttl of flows ``query_src → query_dst`` (vectorised).

    Missing flows yield (+inf, nan).
    """
    keys = (flows["src"].astype(np.uint64) << np.uint64(32)) | flows["dst"].astype(
        np.uint64
    )
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    q = (query_src.astype(np.uint64) << np.uint64(32)) | query_dst.astype(np.uint64)
    idx = np.searchsorted(sorted_keys, q)
    idx_c = np.minimum(idx, max(len(sorted_keys) - 1, 0))
    found = (len(sorted_keys) > 0) & (sorted_keys[idx_c] == q)
    src_rows = order[idx_c]
    ipg = np.where(found, flows["min_ipg"][src_rows], np.inf)
    ttl = np.where(found, flows["ttl"][src_rows].astype(np.float64), np.nan)
    return ipg, ttl


def build_views(
    table: FlowTable,
    criteria: ContributorCriteria | None = None,
    *,
    contributors_only: bool = True,
    telemetry=None,
) -> ViewPair:
    """Build download/upload contributor views from a flow table.

    With ``contributors_only=False`` the views cover *all* contacted peers
    (used by Table II's "all peers" statistics and Table III's all-peer
    bias column).  ``telemetry`` (an optional
    :class:`~repro.obs.telemetry.Telemetry`) is forwarded to the
    contributor heuristic for classification tallies.
    """
    flows = table.flows
    probe_ips = np.asarray(table.probe_ips, dtype=np.uint32)
    if contributors_only:
        keep = contributor_mask(flows, criteria, telemetry=telemetry)
    else:
        keep = np.ones(len(flows), dtype=bool)

    dst_is_probe = np.isin(flows["dst"], probe_ips)
    src_is_probe = np.isin(flows["src"], probe_ips)

    down = flows[keep & dst_is_probe]
    download = DirectionalView(
        direction=Direction.DOWNLOAD,
        probe_ip=down["dst"].copy(),
        peer_ip=down["src"].copy(),
        bytes=down["bytes"].copy(),
        min_ipg=down["min_ipg"].copy(),
        ttl=down["ttl"].astype(np.float64),
    )

    up = flows[keep & src_is_probe]
    rev_ipg, rev_ttl = _reverse_lookup(flows, up["dst"], up["src"])
    upload = DirectionalView(
        direction=Direction.UPLOAD,
        probe_ip=up["src"].copy(),
        peer_ip=up["dst"].copy(),
        bytes=up["bytes"].copy(),
        min_ipg=rev_ipg,
        ttl=rev_ttl,
    )
    return ViewPair(download=download, upload=upload)
