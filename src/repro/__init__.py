"""repro — reproduction of *Network Awareness of P2P Live Streaming
Applications* (Ciullo et al., IEEE IPDPS 2009).

The package has three layers (see DESIGN.md):

1. **Substrates** — a synthetic Internet (:mod:`repro.topology`), the
   Table I probe testbed, a swarm population (:mod:`repro.population`)
   and a probe-centric P2P-TV simulator (:mod:`repro.streaming`) standing
   in for the defunct proprietary applications;
2. **Measurement** — probe-side traces (:mod:`repro.trace`) and black-box
   inference heuristics (:mod:`repro.heuristics`);
3. **The paper's framework** — preferential partitions and the P/B
   preference indices with probe-bias control (:mod:`repro.core`), plus
   experiment drivers regenerating every table and figure
   (:mod:`repro.experiments`, :mod:`repro.report`).

Quickstart::

    from repro import run_experiment, analyze_experiment

    result = run_experiment("tvants", duration_s=120, seed=1)
    report = analyze_experiment(result)
    print(report["BW"].download.B)   # byte-wise bandwidth preference
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.config import RngBundle
from repro.core import (
    AwarenessAnalyzer,
    AwarenessReport,
    Direction,
    default_partitions,
)
from repro.heuristics import IpRegistry
from repro.streaming import (
    AppProfile,
    EngineConfig,
    PROFILES,
    SimulationResult,
    get_profile,
    simulate,
)
from repro.trace import FlowTable, TraceBundle, build_flow_table

__all__ = [
    "__version__",
    "RngBundle",
    "AwarenessAnalyzer",
    "AwarenessReport",
    "Direction",
    "default_partitions",
    "IpRegistry",
    "AppProfile",
    "EngineConfig",
    "PROFILES",
    "SimulationResult",
    "get_profile",
    "simulate",
    "FlowTable",
    "TraceBundle",
    "build_flow_table",
    "run_experiment",
    "analyze_experiment",
    "flow_table_of",
]


def run_experiment(
    profile_name: str,
    *,
    duration_s: float = 600.0,
    seed: int = 7,
    scheduler: str | None = None,
    engine: str | None = None,
    **kw,
):
    """Simulate one application for one capture window (convenience).

    ``scheduler`` overrides the profile's chunk-scheduling policy (one of
    :data:`repro.streaming.schedulers.SCHEDULER_NAMES`); ``engine``
    selects the engine core (:data:`repro.streaming.soa.ENGINE_NAMES`,
    default: ``REPRO_ENGINE`` or the object core).
    """
    profile = get_profile(profile_name)
    if scheduler is not None and scheduler != profile.scheduler:
        from dataclasses import replace

        profile = replace(profile, scheduler=scheduler)
    return simulate(profile, duration_s=duration_s, seed=seed, engine=engine, **kw)


def flow_table_of(result: SimulationResult) -> FlowTable:
    """Aggregate a simulation result into its probe-side flow table."""
    return build_flow_table(
        result.transfers, result.signaling, result.hosts, result.world.paths
    )


def analyze_experiment(result: SimulationResult, **analyzer_kw) -> AwarenessReport:
    """Apply the paper's methodology to a simulation result."""
    table = flow_table_of(result)
    registry = IpRegistry.from_world(result.world)
    analyzer = AwarenessAnalyzer(registry, **analyzer_kw)
    return analyzer.analyze(table)
