"""Result validation: machine-checkable invariants of a simulation.

A user extending the engine (new profiles, new transport features) wants
to know that the physics still holds.  :func:`validate_result` audits a
:class:`~repro.streaming.engine.SimulationResult` against the invariants
the analysis depends on and returns a list of human-readable violations
(empty = clean).  The failure-injection tests corrupt results on purpose
and assert the right violations fire.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.streaming.engine import SimulationResult
from repro.trace.records import PacketKind
from repro.units import BITS_PER_BYTE


@dataclass(frozen=True, slots=True)
class Violation:
    """One broken invariant."""

    rule: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.rule}] {self.detail}"


def validate_result(
    result: SimulationResult, *, capacity_slack: float = 1.1
) -> list[Violation]:
    """Audit a simulation result; returns violations (empty = clean)."""
    out: list[Violation] = []
    tr = result.transfers
    duration = result.duration_s

    # --- structural -------------------------------------------------------
    if len(tr) and not np.all(np.diff(tr["ts"]) >= 0):
        out.append(Violation("time-order", "transfer log is not time-sorted"))
    if len(tr) and np.any(tr["ts"] < 0):
        out.append(Violation("time-range", "negative timestamps present"))
    if len(tr) and np.any(tr["src"] == tr["dst"]):
        out.append(Violation("self-traffic", "transfers with src == dst"))
    known_kinds = {int(k) for k in PacketKind}
    if len(tr) and not set(np.unique(tr["kind"]).tolist()) <= known_kinds:
        out.append(Violation("kinds", "unknown packet kind codes"))

    # --- address coverage ---------------------------------------------------
    try:
        if len(tr):
            result.hosts.indices_of(tr["src"])
            result.hosts.indices_of(tr["dst"])
    except Exception as exc:
        out.append(Violation("addresses", f"unknown addresses in log: {exc}"))

    # --- probe-centric capture ----------------------------------------------
    probes = result.probe_ips
    if len(tr):
        touches = np.isin(tr["src"], probes) | np.isin(tr["dst"], probes)
        if not np.all(touches):
            n = int((~touches).sum())
            out.append(
                Violation("capture", f"{n} transfers invisible to every probe")
            )

    # --- physics: uplink capacity ------------------------------------------
    if len(tr):
        video = tr[tr["kind"] == int(PacketKind.VIDEO)]
        if len(video):
            srcs, inverse = np.unique(video["src"], return_inverse=True)
            sent = np.bincount(
                inverse, weights=video["bytes"].astype(np.float64)
            )
            caps = result.hosts.gather(srcs, "up_bps")
            rates = sent * BITS_PER_BYTE / duration
            over = rates > caps * capacity_slack
            if over.any():
                worst = int(np.argmax(rates / caps))
                out.append(
                    Violation(
                        "capacity",
                        f"{int(over.sum())} senders exceed uplink capacity "
                        f"(worst: {srcs[worst]} at "
                        f"{rates[worst] / caps[worst]:.2f}× its uplink)",
                    )
                )

    # --- signaling intervals -------------------------------------------------
    sig = result.signaling
    if len(sig):
        if np.any(sig["start"] >= sig["stop"]):
            out.append(Violation("signaling", "empty or inverted intervals"))
        if np.any(sig["interval"] <= 0):
            out.append(Violation("signaling", "non-positive intervals"))
        if np.any(sig["stop"] > duration + 1e-9):
            out.append(Violation("signaling", "intervals beyond the horizon"))

    # --- host table ground truth ---------------------------------------------
    rows = result.hosts.rows
    if np.any(rows["up_bps"] <= 0) or np.any(rows["down_bps"] <= 0):
        out.append(Violation("hosts", "non-positive capacities in host table"))
    truth_mismatch = rows["highbw"] != (rows["up_bps"] > 10e6)
    if np.any(truth_mismatch):
        out.append(
            Violation(
                "hosts",
                f"{int(truth_mismatch.sum())} hosts with inconsistent "
                "high-bandwidth flags",
            )
        )
    if int(rows["is_probe"].sum()) != len(result.testbed):
        out.append(
            Violation("hosts", "probe flag count disagrees with the testbed")
        )
    return out
