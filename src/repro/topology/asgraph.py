"""AS-level topology graph and inter-AS router-hop distances.

The HOP metric of the paper is the router-hop count between two peers, as
recovered from received TTLs (128 − TTL for Windows senders).  We model it
as the sum of:

* router hops *inside* every AS a packet traverses (an AS-tier-dependent
  constant),
* one hop per inter-AS link crossed,
* a per-endpoint access-tree depth.

The AS-level graph mirrors the Internet's hierarchy: a densely meshed
tier-1 core, regional transit ASes multi-homed into the core, and access /
campus ASes hanging off transit providers of the same region when possible.
With the default constants the resulting end-to-end hop distribution has a
median of ≈19, matching the paper's observation ("the actual HOP median
ranges from 18 to 20").
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import TopologyError
from repro.topology.autonomous_system import ASRegistry, ASTier

#: Router hops spent crossing the inside of an AS, by tier.
INTERNAL_HOPS: dict[ASTier, int] = {
    ASTier.TIER1: 3,
    ASTier.TRANSIT: 3,
    ASTier.ACCESS: 2,
    ASTier.CAMPUS: 1,
}


@dataclass(frozen=True, slots=True)
class ASGraphConfig:
    """Knobs for synthetic AS-graph construction.

    Parameters
    ----------
    transit_uplinks:
        How many tier-1 providers each transit AS buys from.
    access_uplinks:
        How many transit providers each access/campus AS buys from.
    regional_peering_prob:
        Probability that two transit ASes of the same region establish a
        private peering link (shortcutting the core).
    """

    transit_uplinks: int = 2
    access_uplinks: int = 2
    regional_peering_prob: float = 0.3


class ASGraph:
    """The AS-level connectivity graph with router-hop path costs."""

    def __init__(self, graph: nx.Graph, registry: ASRegistry) -> None:
        self._graph = graph
        self._registry = registry
        self._hop_cache: dict[int, dict[int, float]] = {}
        #: Entry cost (1 inter-AS hop + internal hops) per node, memoised —
        #: the Dijkstra weight callback fires once per edge relaxation and
        #: a registry lookup there dominates the whole search.
        self._entry_cost: dict[int, int] = {}
        #: Bumped by :meth:`invalidate_routes` whenever the graph gains
        #: nodes/edges after construction; :class:`~repro.topology.paths.
        #: PathModel` compares it to decide when its dense transit-hop
        #: matrix must be rebuilt.
        self.routes_version = 0

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        registry: ASRegistry,
        regions: dict[int, str],
        rng: np.random.Generator,
        config: ASGraphConfig | None = None,
    ) -> "ASGraph":
        """Construct a hierarchical AS graph over the ASes in ``registry``.

        Parameters
        ----------
        registry:
            The AS registry; all its ASes become graph nodes.
        regions:
            ASN → region label (used for locality-preferring attachment).
        rng:
            Seeded generator; the build is deterministic given it.
        config:
            Construction knobs, see :class:`ASGraphConfig`.
        """
        cfg = config or ASGraphConfig()
        graph = nx.Graph()
        tier1, transit, edge_ases = [], [], []
        for asys in registry:
            graph.add_node(asys.asn, tier=asys.tier)
            if asys.tier is ASTier.TIER1:
                tier1.append(asys.asn)
            elif asys.tier is ASTier.TRANSIT:
                transit.append(asys.asn)
            else:
                edge_ases.append(asys.asn)
        if not tier1:
            raise TopologyError("AS graph needs at least one tier-1 AS")

        # Tier-1 core: full mesh.
        for i, a in enumerate(tier1):
            for b in tier1[i + 1 :]:
                graph.add_edge(a, b)

        # Transit ASes multi-home into the core.
        for asn in transit:
            k = min(cfg.transit_uplinks, len(tier1))
            ups = rng.choice(tier1, size=k, replace=False)
            for up in ups:
                graph.add_edge(asn, int(up))

        # Same-region transit peering shortcuts.
        for i, a in enumerate(transit):
            for b in transit[i + 1 :]:
                if regions.get(a) == regions.get(b) and rng.random() < cfg.regional_peering_prob:
                    graph.add_edge(a, b)

        # Access / campus ASes attach to transit, preferring their region.
        providers = transit if transit else tier1
        for asn in edge_ases:
            local = [p for p in providers if regions.get(p) == regions.get(asn)]
            pool = local if local else providers
            k = min(cfg.access_uplinks, len(pool))
            ups = rng.choice(pool, size=k, replace=False)
            for up in ups:
                graph.add_edge(asn, int(up))
            # Multi-homed edge ASes may also reach a non-local provider.
            if local and len(providers) > len(local) and rng.random() < 0.25:
                others = [p for p in providers if p not in local]
                graph.add_edge(asn, int(rng.choice(others)))

        built = cls(graph, registry)
        built._check_connected()
        return built

    def _check_connected(self) -> None:
        if self._graph.number_of_nodes() and not nx.is_connected(self._graph):
            raise TopologyError("synthetic AS graph is disconnected")

    # ----------------------------------------------------------------- access
    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (read-only by convention)."""
        return self._graph

    def internal_hops(self, asn: int) -> int:
        """Router hops spent crossing AS ``asn`` internally."""
        return INTERNAL_HOPS[self._registry.get(asn).tier]

    def invalidate_routes(self) -> None:
        """Drop every cached distance after a post-build graph mutation.

        Late-attached ASes (the per-home-probe ISPs of Table I) can create
        regional shortcuts, so previously computed pair distances are not
        guaranteed to survive; callers that mutate :attr:`graph` must call
        this so the next query recomputes from the current topology.
        """
        self._hop_cache.clear()
        self._entry_cost.clear()
        self.routes_version += 1

    def _edge_weight(self, u: int, v: int, d: dict) -> int:
        """Dijkstra weight: cost of entering ``v`` (link + internal hops)."""
        cost = self._entry_cost.get(v)
        if cost is None:
            cost = 1 + self.internal_hops(v)
            self._entry_cost[v] = cost
        return cost

    def as_path(self, src_asn: int, dst_asn: int) -> list[int]:
        """The AS-level path between two ASes (weighted shortest path).

        Edge weight is the cost of entering the next AS: its internal hop
        count plus one hop for the inter-AS link itself — so the shortest
        path minimises total router hops, like hot-potato routing broadly
        does.
        """
        if src_asn == dst_asn:
            return [src_asn]
        try:
            return nx.shortest_path(
                self._graph, src_asn, dst_asn, weight=self._edge_weight
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise TopologyError(f"no AS path AS{src_asn} → AS{dst_asn}") from exc

    def transit_hops(self, src_asn: int, dst_asn: int) -> int:
        """Router hops between the borders of ``src_asn`` and ``dst_asn``.

        Counts the internal hops of every AS on the path — *including* the
        two endpoint ASes, whose cores a packet must cross to reach the
        access tree — plus one hop per inter-AS link.  Results are cached
        per source (single-source Dijkstra), so repeated pair queries are
        O(1) after the first.
        """
        if src_asn == dst_asn:
            return self.internal_hops(src_asn)
        dist = self._hops_from(src_asn)
        try:
            return int(dist[dst_asn]) + self.internal_hops(src_asn)
        except KeyError as exc:
            raise TopologyError(f"no AS path AS{src_asn} → AS{dst_asn}") from exc

    def _hops_from(self, src_asn: int) -> dict[int, float]:
        cached = self._hop_cache.get(src_asn)
        if cached is None:
            if src_asn not in self._graph:
                raise TopologyError(f"AS{src_asn} not in graph")
            cached = nx.single_source_dijkstra_path_length(
                self._graph, src_asn, weight=self._edge_weight
            )
            self._hop_cache[src_asn] = cached
        return cached

    def degree(self, asn: int) -> int:
        """Number of AS-level neighbours."""
        return self._graph.degree[asn]

    def __contains__(self, asn: int) -> bool:
        return asn in self._graph
