"""Subnet allocation and host addressing inside Autonomous Systems.

The NET metric of the paper asks whether two peers share a *subnetwork*
(operationally: the path between them has zero router hops, so the received
TTL equals the sender's initial TTL).  We model subnets as /24-by-default
prefixes carved out of each AS's owned space; hosts draw sequential
addresses from their subnet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError
from repro.topology.autonomous_system import ASRegistry, AutonomousSystem
from repro.topology.ip import IPv4Prefix


@dataclass(eq=False)
class Subnet:
    """A subnet inside an AS from which host addresses are assigned."""

    prefix: IPv4Prefix
    asn: int
    site: str | None = None
    _next_offset: int = field(default=0, repr=False)

    def allocate_address(self) -> int:
        """Hand out the next unused host address in this subnet."""
        address = self.prefix.first_host + self._next_offset
        if address > self.prefix.last_host:
            raise AllocationError(f"subnet {self.prefix} exhausted")
        self._next_offset += 1
        return address

    def allocate_block(self, count: int) -> range:
        """Hand out ``count`` consecutive unused host addresses.

        Equivalent to ``count`` calls to :meth:`allocate_address`, returned
        as a ``range`` so callers can fill numpy columns without a Python
        loop.
        """
        first = self.prefix.first_host + self._next_offset
        last = first + count - 1
        if last > self.prefix.last_host:
            raise AllocationError(f"subnet {self.prefix} exhausted")
        self._next_offset += count
        return range(first, first + count)

    @property
    def allocated(self) -> int:
        """How many addresses have been handed out so far."""
        return self._next_offset

    @property
    def capacity(self) -> int:
        """Total assignable host addresses."""
        return self.prefix.num_hosts


class SubnetAllocator:
    """Carves subnets out of AS-owned prefixes and assigns host addresses.

    One allocator manages the entire synthetic topology, enforcing that
    subnets never overlap (each AS prefix is consumed linearly).
    """

    def __init__(self, registry: ASRegistry, subnet_prefixlen: int = 24) -> None:
        if not 8 <= subnet_prefixlen <= 30:
            raise AllocationError(
                f"subnet prefix length {subnet_prefixlen} outside sane range [8, 30]"
            )
        self._registry = registry
        self._subnet_prefixlen = subnet_prefixlen
        #: per-ASN cursor: (prefix index, subnets consumed within prefix)
        self._cursors: dict[int, tuple[int, int]] = {}
        self._subnets: list[Subnet] = []

    @property
    def subnets(self) -> list[Subnet]:
        """All subnets allocated so far, in allocation order."""
        return list(self._subnets)

    def new_subnet(self, asn: int, site: str | None = None) -> Subnet:
        """Allocate the next free subnet inside AS ``asn``."""
        asys: AutonomousSystem = self._registry.get(asn)
        if not asys.prefixes:
            raise AllocationError(f"AS{asn} owns no prefixes to carve subnets from")
        prefix_idx, consumed = self._cursors.get(asn, (0, 0))
        while prefix_idx < len(asys.prefixes):
            parent = asys.prefixes[prefix_idx]
            if self._subnet_prefixlen < parent.prefixlen:
                raise AllocationError(
                    f"cannot carve /{self._subnet_prefixlen} subnets out of {parent}"
                )
            available = 1 << (self._subnet_prefixlen - parent.prefixlen)
            if consumed < available:
                step = 1 << (32 - self._subnet_prefixlen)
                net = parent.network + consumed * step
                subnet = Subnet(
                    prefix=IPv4Prefix(net, self._subnet_prefixlen),
                    asn=asn,
                    site=site,
                )
                self._cursors[asn] = (prefix_idx, consumed + 1)
                self._subnets.append(subnet)
                return subnet
            prefix_idx, consumed = prefix_idx + 1, 0
        raise AllocationError(f"AS{asn} prefix space exhausted")

    def new_host(self, subnet: Subnet) -> int:
        """Assign the next host address in ``subnet``."""
        return subnet.allocate_address()
