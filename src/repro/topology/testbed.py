"""The NAPA-WINE probe testbed — a literal instantiation of Table I.

Table I of the paper lists every vantage point: 7 industrial/academic sites
in 4 countries, institution hosts on campus LANs inside ASes AS1–AS6, and
home PCs each behind its own consumer ISP ("ASx" rows) with DSL or CATV
access, some NATed and/or firewalled.

Note on counts: the paper's text says "44 peers, including 37 PCs from 7
sites and 7 home PCs", while Table I as printed enumerates 39 institution
hosts + 7 home hosts = 46.  We instantiate the table literally (46 hosts)
and expose both numbers; the two-host difference does not affect any
reported metric, which are all ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.access import AccessLink, catv, dsl, lan
from repro.topology.host import NetworkEndpoint
from repro.topology.subnet import Subnet
from repro.topology.world import HOME_AS_BASE, PROBE_AS_NUMBERS, World


@dataclass(frozen=True, slots=True)
class _HostSpec:
    """One Table I row expanded to a single host."""

    label: str          # e.g. "PoliTO-11"
    site: str
    country: str
    as_name: str | None  # symbolic campus AS ("AS2"), None for home "ASx"
    access: AccessLink


@dataclass(frozen=True, slots=True)
class ProbeHost:
    """A deployed probe: Table I row bound to a concrete endpoint."""

    label: str
    site: str
    endpoint: NetworkEndpoint

    @property
    def is_institution(self) -> bool:
        """True for campus-LAN hosts (AS1–AS6), False for home PCs."""
        return self.endpoint.asn < HOME_AS_BASE


@dataclass(frozen=True, slots=True)
class ProbeSite:
    """One participating institution and its hosts."""

    name: str
    country: str
    hosts: tuple[ProbeHost, ...]


def _table1_specs() -> list[_HostSpec]:
    """Expand Table I row-by-row."""
    rows: list[_HostSpec] = []

    def institution(site: str, cc: str, as_name: str, count: int, link_factory, start: int = 1):
        for i in range(start, start + count):
            rows.append(_HostSpec(f"{site}-{i}", site, cc, as_name, link_factory()))

    def home(site: str, cc: str, idx: int, link: AccessLink):
        rows.append(_HostSpec(f"{site}-{idx}", site, cc, None, link))

    # BME (HU, AS1): hosts 1-4 high-bw; host 5 home DSL 6/0.512.
    institution("BME", "HU", "AS1", 4, lan)
    home("BME", "HU", 5, dsl(6, 0.512))
    # PoliTO (IT, AS2): 1-9 high-bw; 10 DSL 4/0.384; 11-12 DSL 8/0.384 NAT.
    institution("PoliTO", "IT", "AS2", 9, lan)
    home("PoliTO", "IT", 10, dsl(4, 0.384))
    home("PoliTO", "IT", 11, dsl(8, 0.384, nat=True))
    home("PoliTO", "IT", 12, dsl(8, 0.384, nat=True))
    # MT (HU, AS3): 1-4 high-bw.
    institution("MT", "HU", "AS3", 4, lan)
    # FFT (FR, AS5): 1-3 high-bw.
    institution("FFT", "FR", "AS5", 3, lan)
    # ENST (FR, AS4): 1-4 high-bw firewalled; 5 DSL 22/1.8 NAT.
    institution("ENST", "FR", "AS4", 4, lambda: lan(firewall=True))
    home("ENST", "FR", 5, dsl(22, 1.8, nat=True))
    # UniTN (IT, AS2): 1-5 high-bw; 6-7 high-bw NAT; 8 DSL 2.5/0.384 NAT+FW.
    institution("UniTN", "IT", "AS2", 5, lan)
    institution("UniTN", "IT", "AS2", 2, lambda: lan(nat=True), start=6)
    home("UniTN", "IT", 8, dsl(2.5, 0.384, nat=True, firewall=True))
    # WUT (PL, AS6): 1-8 high-bw; 9 CATV 6/0.512.
    institution("WUT", "PL", "AS6", 8, lan)
    home("WUT", "PL", 9, catv(6, 0.512))

    return rows


#: Site name → country, in Table I order.
SITE_COUNTRIES: dict[str, str] = {
    "BME": "HU", "PoliTO": "IT", "MT": "HU", "FFT": "FR",
    "ENST": "FR", "UniTN": "IT", "WUT": "PL",
}


class Testbed:
    """The deployed probe set W of the paper's framework."""

    def __init__(self, sites: list[ProbeSite]) -> None:
        self.sites = tuple(sites)
        self.hosts: tuple[ProbeHost, ...] = tuple(h for s in sites for h in s.hosts)
        self._by_label = {h.label: h for h in self.hosts}
        if len(self._by_label) != len(self.hosts):
            raise ValueError("duplicate probe labels in testbed")

    def host(self, label: str) -> ProbeHost:
        """Look a probe up by Table I label (e.g. ``'PoliTO-11'``)."""
        return self._by_label[label]

    @property
    def endpoints(self) -> list[NetworkEndpoint]:
        """All probe endpoints."""
        return [h.endpoint for h in self.hosts]

    @property
    def probe_ips(self) -> set[int]:
        """The probe address set used by the self-bias filter."""
        return {h.endpoint.ip for h in self.hosts}

    @property
    def institution_hosts(self) -> list[ProbeHost]:
        return [h for h in self.hosts if h.is_institution]

    @property
    def home_hosts(self) -> list[ProbeHost]:
        return [h for h in self.hosts if not h.is_institution]

    @property
    def high_bandwidth_hosts(self) -> list[ProbeHost]:
        """Probes whose uplink exceeds the 10 Mb/s threshold (Fig. 2 set)."""
        return [h for h in self.hosts if h.endpoint.access.is_high_bandwidth]

    def __len__(self) -> int:
        return len(self.hosts)

    def __iter__(self):
        return iter(self.hosts)


def build_napa_wine_testbed(world: World) -> Testbed:
    """Deploy the Table I testbed into ``world``.

    Each site gets one campus subnet inside its Table I AS (PoliTO and
    UniTN get *different* subnets of the shared AS2); every home PC gets a
    dedicated home-ISP AS, mirroring the paper's "7 other ASs and ISPs".
    """
    specs = _table1_specs()
    site_subnets: dict[tuple[str, str], Subnet] = {}
    next_home_asn = HOME_AS_BASE
    hosts_by_site: dict[str, list[ProbeHost]] = {}

    for spec in specs:
        if spec.as_name is not None:
            asn = PROBE_AS_NUMBERS[spec.as_name][0]
            key = (spec.site, spec.as_name)
            subnet = site_subnets.get(key)
            if subnet is None:
                subnet = world.new_subnet(asn, site=spec.site)
                site_subnets[key] = subnet
            endpoint = world.new_endpoint(asn, spec.access, subnet=subnet)
        else:
            asn = next_home_asn
            next_home_asn += 1
            world.add_home_as(asn, spec.country)
            subnet = world.new_subnet(asn, site=f"{spec.site}-home")
            endpoint = world.new_endpoint(asn, spec.access, subnet=subnet)
        hosts_by_site.setdefault(spec.site, []).append(
            ProbeHost(label=spec.label, site=spec.site, endpoint=endpoint)
        )

    sites = [
        ProbeSite(name=name, country=SITE_COUNTRIES[name], hosts=tuple(hosts))
        for name, hosts in hosts_by_site.items()
    ]
    return Testbed(sites)
