"""Country registry for peer geolocation.

The paper geolocates peers into countries (Fig. 1 labels CN, HU, IT, FR, PL
plus ``*`` for the rest of the world).  This module provides the country
model for both the synthetic population generator and the analysis-side
geolocation registry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError


@dataclass(frozen=True, slots=True)
class Country:
    """A country with ISO-like code, display name and coarse region."""

    code: str
    name: str
    region: str

    def __post_init__(self) -> None:
        if len(self.code) != 2 or not self.code.isupper():
            raise TopologyError(f"country code must be 2 uppercase letters, got {self.code!r}")


class CountryRegistry:
    """A lookup table of :class:`Country` objects keyed by code."""

    def __init__(self, countries: list[Country] | None = None) -> None:
        self._by_code: dict[str, Country] = {}
        for country in countries or []:
            self.add(country)

    def add(self, country: Country) -> Country:
        """Register a country; re-adding an identical entry is a no-op."""
        existing = self._by_code.get(country.code)
        if existing is not None:
            if existing != country:
                raise TopologyError(f"conflicting registration for {country.code}")
            return existing
        self._by_code[country.code] = country
        return country

    def get(self, code: str) -> Country:
        """Look up a country by code, raising :class:`TopologyError` if absent."""
        try:
            return self._by_code[code]
        except KeyError as exc:
            raise TopologyError(f"unknown country code {code!r}") from exc

    def __contains__(self, code: str) -> bool:
        return code in self._by_code

    def __iter__(self):
        return iter(self._by_code.values())

    def __len__(self) -> int:
        return len(self._by_code)

    @property
    def codes(self) -> list[str]:
        """All registered codes, insertion-ordered."""
        return list(self._by_code)


def _default_world() -> CountryRegistry:
    entries = [
        # The countries in which NAPA-WINE probes sit (Table I) ...
        Country("HU", "Hungary", "EU"),
        Country("IT", "Italy", "EU"),
        Country("FR", "France", "EU"),
        Country("PL", "Poland", "EU"),
        # ... the dominant audience of the CCTV-1 channel ...
        Country("CN", "China", "AS"),
        # ... and a tail of other countries observed in P2P-TV swarms.
        Country("US", "United States", "NA"),
        Country("CA", "Canada", "NA"),
        Country("JP", "Japan", "AS"),
        Country("KR", "South Korea", "AS"),
        Country("TW", "Taiwan", "AS"),
        Country("SG", "Singapore", "AS"),
        Country("DE", "Germany", "EU"),
        Country("ES", "Spain", "EU"),
        Country("GB", "United Kingdom", "EU"),
        Country("NL", "Netherlands", "EU"),
        Country("SE", "Sweden", "EU"),
        Country("AU", "Australia", "OC"),
        Country("BR", "Brazil", "SA"),
    ]
    return CountryRegistry(entries)


#: The default world model shared by population generation and reporting.
WORLD: CountryRegistry = _default_world()

#: Countries hosting NAPA-WINE probes, in the paper's Fig. 1 label order.
PROBE_COUNTRIES: tuple[str, ...] = ("HU", "IT", "FR", "PL")

#: Fig. 1 uses these labels explicitly; every other country is binned as '*'.
FIGURE1_LABELS: tuple[str, ...] = ("CN", "HU", "IT", "FR", "PL")
