"""Access-link model: capacities, technology classes, NAT/firewall flags.

Table I of the paper characterises every probe by its access technology —
institutional ``high-bw`` LAN, ``DSL d/u`` (down/up in Mb/s or kb/s) or
``CATV`` — plus NAT and firewall presence.  The same model is reused for the
synthetic remote population.

The paper's BW partition threshold is 10 Mb/s: a peer whose *uplink*
bottleneck exceeds it emits back-to-back 1250 B packets with inter-packet
gaps below 1 ms and is classified high-bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError
from repro.units import MBPS, kbps, mbps

#: Capacity threshold separating high- from low-bandwidth peers (paper §III-B).
HIGH_BW_THRESHOLD_BPS: float = 10 * MBPS


class AccessClass(Enum):
    """Access technology classes appearing in Table I (plus FTTH for the
    synthetic population tail)."""

    LAN = "high-bw"   # institutional 100 Mb/s-class Ethernet
    DSL = "dsl"
    CATV = "catv"
    FTTH = "ftth"


@dataclass(frozen=True, slots=True)
class AccessLink:
    """One peer's access link.

    Parameters
    ----------
    kind:
        Technology class.
    down_bps / up_bps:
        Downstream / upstream capacity in bit/s.  These are the *bottleneck*
        capacities the packet-train dispersion encodes.
    nat / firewall:
        Presence of a NAT or filtering middlebox (Table I columns).  NATed
        peers cannot accept unsolicited inbound sessions; firewalled peers
        additionally drop unsolicited inbound UDP.
    """

    kind: AccessClass
    down_bps: float
    up_bps: float
    nat: bool = False
    firewall: bool = False

    def __post_init__(self) -> None:
        if self.down_bps <= 0 or self.up_bps <= 0:
            raise ConfigurationError(
                f"access capacities must be positive, got down={self.down_bps}, up={self.up_bps}"
            )

    @property
    def is_high_bandwidth(self) -> bool:
        """Ground-truth high-bandwidth classification (uplink > 10 Mb/s).

        The paper can only infer a peer's capacity from traffic the peer
        *sends*, so the classification keys on the uplink bottleneck.
        """
        return self.up_bps > HIGH_BW_THRESHOLD_BPS

    @property
    def label(self) -> str:
        """Table I style label, e.g. ``'DSL 6/0.512'`` or ``'high-bw'``."""
        if self.kind is AccessClass.LAN:
            return "high-bw"
        down = self.down_bps / MBPS
        up = self.up_bps / MBPS
        return f"{self.kind.value.upper()} {down:g}/{up:g}"


def lan(rate_mbps: float = 100.0, *, nat: bool = False, firewall: bool = False) -> AccessLink:
    """An institutional LAN link (symmetric, default 100 Mb/s)."""
    return AccessLink(AccessClass.LAN, mbps(rate_mbps), mbps(rate_mbps), nat=nat, firewall=firewall)


def dsl(
    down_mbps: float,
    up_mbps: float,
    *,
    nat: bool = False,
    firewall: bool = False,
) -> AccessLink:
    """An asymmetric DSL link, capacities in Mb/s (Table I convention)."""
    return AccessLink(AccessClass.DSL, mbps(down_mbps), mbps(up_mbps), nat=nat, firewall=firewall)


def catv(
    down_mbps: float,
    up_mbps: float,
    *,
    nat: bool = False,
    firewall: bool = False,
) -> AccessLink:
    """A cable (CATV) link, capacities in Mb/s."""
    return AccessLink(AccessClass.CATV, mbps(down_mbps), mbps(up_mbps), nat=nat, firewall=firewall)


def ftth(
    down_mbps: float = 100.0,
    up_mbps: float = 50.0,
    *,
    nat: bool = True,
    firewall: bool = False,
) -> AccessLink:
    """A fibre-to-the-home link (synthetic population only)."""
    return AccessLink(AccessClass.FTTH, mbps(down_mbps), mbps(up_mbps), nat=nat, firewall=firewall)


def dsl_kbps(down_kbps: float, up_kbps: float, **kw: bool) -> AccessLink:
    """DSL link with capacities in kb/s, for sub-megabit uplinks."""
    return AccessLink(AccessClass.DSL, kbps(down_kbps), kbps(up_kbps), **kw)
