"""Synthetic Internet topology substrate.

This subpackage replaces the real Internet the paper measured with a
controlled, fully-observable model that produces the same per-packet
observables (addresses, TTLs, bottleneck capacities) the analysis framework
consumes:

* :mod:`repro.topology.ip` — vectorised IPv4 address arithmetic;
* :mod:`repro.topology.geography` — country registry;
* :mod:`repro.topology.autonomous_system` — AS registry and prefix ownership;
* :mod:`repro.topology.subnet` — subnet allocation and host addressing;
* :mod:`repro.topology.access` — access-link classes (LAN / DSL / CATV);
* :mod:`repro.topology.asgraph` — AS-level graph and router-hop distances;
* :mod:`repro.topology.paths` — end-to-end path model (hops, asymmetry, TTL);
* :mod:`repro.topology.testbed` — the NAPA-WINE probe testbed of Table I.
"""

from repro.topology.access import AccessClass, AccessLink
from repro.topology.autonomous_system import AutonomousSystem, ASRegistry
from repro.topology.asgraph import ASGraph, ASGraphConfig
from repro.topology.geography import Country, CountryRegistry, WORLD
from repro.topology.ip import (
    IPv4Prefix,
    format_ip,
    format_ips,
    parse_ip,
    parse_ips,
)
from repro.topology.paths import PathModel, PathModelConfig
from repro.topology.subnet import Subnet, SubnetAllocator
from repro.topology.testbed import (
    ProbeHost,
    ProbeSite,
    Testbed,
    build_napa_wine_testbed,
)

__all__ = [
    "AccessClass",
    "AccessLink",
    "AutonomousSystem",
    "ASRegistry",
    "ASGraph",
    "ASGraphConfig",
    "Country",
    "CountryRegistry",
    "WORLD",
    "IPv4Prefix",
    "format_ip",
    "format_ips",
    "parse_ip",
    "parse_ips",
    "PathModel",
    "PathModelConfig",
    "Subnet",
    "SubnetAllocator",
    "ProbeHost",
    "ProbeSite",
    "Testbed",
    "build_napa_wine_testbed",
]
