"""End-to-end path model: router hops, asymmetry, TTL decrements.

The paper's HOP metric is recovered from received TTLs: with Windows
senders (initial TTL 128), ``HOP(e, p) = 128 − TTL``.  The path model maps
pairs of :class:`~repro.topology.host.NetworkEndpoint` to router-hop counts:

``hops(s → d) = 0``                                when same subnet, else
``hops(s → d) = transit(AS_s, AS_d) + acc(s) + acc(d) + jitter(s, d)``

where ``transit`` comes from the AS graph (symmetric), ``acc`` is the
access-tree depth of each endpoint, and ``jitter`` is a small deterministic
per-ordered-pair term that creates realistic forward/reverse asymmetry
(paper §III-C discusses why this matters and why a coarse partition
tolerates it).

Both a scalar API (used by the event engine) and a vectorised API (used by
packet-trace synthesis) are provided; they agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._hashing import pair_randint
from repro.errors import TopologyError
from repro.topology.access import AccessClass
from repro.topology.asgraph import ASGraph
from repro.topology.host import NetworkEndpoint

#: Access-tree depth (hops between the host's first router and the AS core).
ACCESS_DEPTH: dict[AccessClass, int] = {
    AccessClass.LAN: 1,   # campus switch/router
    AccessClass.DSL: 2,   # DSLAM + BRAS
    AccessClass.CATV: 2,  # CMTS + aggregation
    AccessClass.FTTH: 2,
}


@dataclass(frozen=True, slots=True)
class PathModelConfig:
    """Path model knobs.

    Parameters
    ----------
    jitter_span:
        Per-ordered-pair extra hops are drawn (deterministically) from
        ``[0, jitter_span)``.  Ordered-pair hashing makes forward and
        reverse jitters independent, bounding |fwd − rev| by
        ``jitter_span − 1``.
    seed:
        Hash seed; experiments with equal seeds see identical paths.
    """

    jitter_span: int = 3
    seed: int = 0


class PathModel:
    """Deterministic router-hop and TTL model over an :class:`ASGraph`."""

    def __init__(self, asgraph: ASGraph, config: PathModelConfig | None = None) -> None:
        self._asgraph = asgraph
        self._config = config or PathModelConfig()
        # Dense transit-hop matrix over the registered ASNs.  Registration
        # (ensure_asns) is cheap and eager; the matrix itself materialises
        # lazily at the first hop query, so a world assembled through many
        # ``add_home_as`` calls pays for *one* all-pairs computation instead
        # of a full rebuild (and a full Dijkstra sweep) per attachment.
        self._asn_index: dict[int, int] = {}
        self._transit: np.ndarray = np.zeros((0, 0), dtype=np.int16)
        #: Dense ASN → matrix-row lookup (−1 = unregistered); rebuilt with
        #: the matrix so vectorised queries avoid per-element dict lookups.
        self._asn_lut: np.ndarray = np.full(1, -1, dtype=np.int64)
        self._built_version = asgraph.routes_version

    @property
    def config(self) -> PathModelConfig:
        return self._config

    # ----------------------------------------------------------- ASN indexing
    def ensure_asns(self, asns: list[int] | np.ndarray) -> None:
        """Register ``asns`` for the transit-hop matrix.

        Unknown ASes fail fast here; the (expensive) matrix rows are
        computed lazily by the next hop query, over the graph as it stands
        *then* — which is what makes repeated late-AS attachment cheap.
        """
        for a in asns:
            asn = int(a)
            if asn in self._asn_index:
                continue
            if asn not in self._asgraph:
                raise TopologyError(f"AS{asn} absent from the AS graph")
            self._asn_index[asn] = len(self._asn_index)

    def _materialise(self) -> None:
        """Bring the dense matrix in sync with registrations and topology."""
        version = self._asgraph.routes_version
        n = len(self._asn_index)
        if self._transit.shape[0] == n and self._built_version == version:
            return
        all_asns = sorted(self._asn_index, key=self._asn_index.__getitem__)
        # A topology mutation (late-attached AS) can shorten existing pair
        # distances, so cached rows survive only while the version matches.
        old = self._transit.shape[0] if self._built_version == version else 0
        matrix = np.zeros((n, n), dtype=np.int16)
        if old:
            matrix[:old, :old] = self._transit
        for i in range(old, n):
            a = all_asns[i]
            for j in range(i + 1):
                v = self._asgraph.transit_hops(a, all_asns[j])
                matrix[i, j] = v
                matrix[j, i] = v
        self._transit = matrix
        self._built_version = version
        lut = np.full(max(all_asns, default=0) + 1, -1, dtype=np.int64)
        lut[all_asns] = np.arange(n)
        self._asn_lut = lut

    def _index_of(self, asn: int) -> int:
        idx = self._asn_index.get(asn)
        if idx is None:
            self.ensure_asns([asn])
            idx = self._asn_index[asn]
        return idx

    # ----------------------------------------------------------------- scalar
    def hops(self, src: NetworkEndpoint, dst: NetworkEndpoint) -> int:
        """Router hops on the forward path ``src → dst``."""
        if src.ip == dst.ip:
            return 0
        if src.same_subnet(dst):
            return 0
        si = self._index_of(src.asn)
        di = self._index_of(dst.asn)
        self._materialise()
        transit = int(self._transit[si, di])
        jitter = int(
            pair_randint(src.ip, dst.ip, self._config.jitter_span, self._config.seed)
        )
        return transit + ACCESS_DEPTH[src.access.kind] + ACCESS_DEPTH[dst.access.kind] + jitter

    def ttl_at_receiver(self, src: NetworkEndpoint, dst: NetworkEndpoint) -> int:
        """The TTL ``dst`` observes on packets from ``src``."""
        ttl = src.initial_ttl - self.hops(src, dst)
        if ttl <= 0:
            raise TopologyError(
                f"path {src.ip} → {dst.ip} longer than initial TTL {src.initial_ttl}"
            )
        return ttl

    # ------------------------------------------------------------- vectorised
    def hops_many(
        self,
        src_ips: np.ndarray,
        src_asns: np.ndarray,
        src_subnets: np.ndarray,
        src_access_depths: np.ndarray,
        dst_ips: np.ndarray,
        dst_asns: np.ndarray,
        dst_subnets: np.ndarray,
        dst_access_depths: np.ndarray,
    ) -> np.ndarray:
        """Vectorised forward-path hop counts for aligned endpoint arrays.

        Agrees element-wise with :meth:`hops`.  All inputs must have equal
        shape; subnets are the masked network addresses
        (:attr:`NetworkEndpoint.subnet`).
        """
        src_asns = np.asarray(src_asns, dtype=np.int64)
        dst_asns = np.asarray(dst_asns, dtype=np.int64)
        self.ensure_asns(np.unique(np.concatenate([src_asns, dst_asns])).tolist())
        self._materialise()
        si = self._asn_lut[src_asns]
        di = self._asn_lut[dst_asns]
        transit = self._transit[si, di].astype(np.int64)
        jitter = pair_randint(
            np.asarray(src_ips), np.asarray(dst_ips), self._config.jitter_span, self._config.seed
        )
        total = (
            transit
            + np.asarray(src_access_depths, dtype=np.int64)
            + np.asarray(dst_access_depths, dtype=np.int64)
            + jitter
        )
        same_subnet = np.asarray(src_subnets) == np.asarray(dst_subnets)
        same_host = np.asarray(src_ips) == np.asarray(dst_ips)
        return np.where(same_subnet | same_host, 0, total)


def access_depth(endpoint: NetworkEndpoint) -> int:
    """Access-tree depth for one endpoint (helper for vectorised callers)."""
    return ACCESS_DEPTH[endpoint.access.kind]
