"""IPv4 address arithmetic, scalar and vectorised.

Addresses are represented as unsigned 32-bit integers (``numpy.uint32`` in
arrays, plain ``int`` for scalars).  The trace records store addresses in
this form, so the hot paths (registry lookups, flow grouping) never touch
strings.  Dotted-quad formatting exists only for reporting and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AddressError

#: The full IPv4 space size.
IPV4_SPACE = 1 << 32

_OCTET_SHIFTS = (24, 16, 8, 0)


def parse_ip(text: str) -> int:
    """Parse a dotted-quad string into an integer address.

    >>> parse_ip("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address {text!r}")
    value = 0
    for part, shift in zip(parts, _OCTET_SHIFTS):
        try:
            octet = int(part, 10)
        except ValueError as exc:
            raise AddressError(f"malformed IPv4 address {text!r}") from exc
        if not 0 <= octet <= 255:
            raise AddressError(f"octet out of range in {text!r}")
        value |= octet << shift
    return value


def format_ip(value: int) -> str:
    """Format an integer address as a dotted quad.

    >>> format_ip(167772161)
    '10.0.0.1'
    """
    value = int(value)
    if not 0 <= value < IPV4_SPACE:
        raise AddressError(f"address {value!r} outside IPv4 space")
    return ".".join(str((value >> shift) & 0xFF) for shift in _OCTET_SHIFTS)


def parse_ips(texts: list[str]) -> np.ndarray:
    """Parse a list of dotted quads into a ``uint32`` array."""
    return np.fromiter((parse_ip(t) for t in texts), dtype=np.uint32, count=len(texts))


def format_ips(values: np.ndarray) -> list[str]:
    """Format a ``uint32`` array of addresses as dotted quads."""
    return [format_ip(int(v)) for v in np.asarray(values).ravel()]


def _mask_for(prefixlen: int) -> int:
    if not 0 <= prefixlen <= 32:
        raise AddressError(f"prefix length {prefixlen!r} outside [0, 32]")
    if prefixlen == 0:
        return 0
    return (0xFFFFFFFF << (32 - prefixlen)) & 0xFFFFFFFF


@dataclass(frozen=True, slots=True)
class IPv4Prefix:
    """An IPv4 prefix ``network/prefixlen`` in integer form.

    The constructor normalises the network address (host bits are cleared),
    mirroring how routing tables store prefixes.
    """

    network: int
    prefixlen: int

    def __post_init__(self) -> None:
        mask = _mask_for(self.prefixlen)
        if not 0 <= self.network < IPV4_SPACE:
            raise AddressError(f"network {self.network!r} outside IPv4 space")
        object.__setattr__(self, "network", self.network & mask)

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        """Parse ``'a.b.c.d/len'`` notation."""
        try:
            net_text, len_text = text.split("/")
        except ValueError as exc:
            raise AddressError(f"malformed prefix {text!r}") from exc
        return cls(parse_ip(net_text), int(len_text))

    @property
    def mask(self) -> int:
        """The netmask as an integer."""
        return _mask_for(self.prefixlen)

    @property
    def num_addresses(self) -> int:
        """Total addresses covered, including network/broadcast."""
        return 1 << (32 - self.prefixlen)

    @property
    def first_host(self) -> int:
        """First usable host address (network + 1 for prefixes < /31)."""
        return self.network + (1 if self.prefixlen < 31 else 0)

    @property
    def last_host(self) -> int:
        """Last usable host address (broadcast - 1 for prefixes < /31)."""
        top = self.network + self.num_addresses - 1
        return top - (1 if self.prefixlen < 31 else 0)

    @property
    def num_hosts(self) -> int:
        """Number of assignable host addresses."""
        return self.last_host - self.first_host + 1

    def contains(self, address: int) -> bool:
        """True when ``address`` falls inside this prefix."""
        return (int(address) & self.mask) == self.network

    def contains_many(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised membership test over a ``uint32`` address array."""
        addrs = np.asarray(addresses, dtype=np.uint64)
        return (addrs & np.uint64(self.mask)) == np.uint64(self.network)

    def overlaps(self, other: "IPv4Prefix") -> bool:
        """True when the two prefixes share any address."""
        shorter, longer = sorted((self, other), key=lambda p: p.prefixlen)
        return shorter.contains(longer.network)

    def subnets(self, new_prefixlen: int) -> list["IPv4Prefix"]:
        """Enumerate the sub-prefixes of length ``new_prefixlen``."""
        if new_prefixlen < self.prefixlen:
            raise AddressError(
                f"cannot split /{self.prefixlen} into larger /{new_prefixlen}"
            )
        step = 1 << (32 - new_prefixlen)
        count = 1 << (new_prefixlen - self.prefixlen)
        return [
            IPv4Prefix(self.network + i * step, new_prefixlen) for i in range(count)
        ]

    def __str__(self) -> str:
        return f"{format_ip(self.network)}/{self.prefixlen}"


def subnet_key(addresses: np.ndarray, prefixlen: int = 24) -> np.ndarray:
    """Vectorised subnet identifier: the address masked to ``prefixlen``.

    Two addresses with equal keys sit in the same /``prefixlen`` network.
    Used by the NET partition to group peers by subnet without string work.
    """
    mask = np.uint32(_mask_for(prefixlen))
    return np.asarray(addresses, dtype=np.uint32) & mask
