"""Synthetic-Internet assembly: registries, graph, address space, paths.

A :class:`World` bundles everything the experiments need to place hosts on
a consistent synthetic Internet:

* an :class:`~repro.topology.autonomous_system.ASRegistry` with tier-1 core,
  regional transit, consumer access ISPs (China-heavy, matching the CCTV-1
  audience), campus networks for the probe sites and one small "home" ISP
  per home probe;
* an :class:`~repro.topology.asgraph.ASGraph` over those ASes;
* a :class:`~repro.topology.subnet.SubnetAllocator` carving subnets and
  assigning host addresses;
* a :class:`~repro.topology.paths.PathModel` answering hop/TTL queries.

Every allocation is deterministic given the configured seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AllocationError, ConfigurationError, TopologyError
from repro.topology.access import AccessLink
from repro.topology.asgraph import ASGraph, ASGraphConfig
from repro.topology.autonomous_system import ASRegistry, ASTier, AutonomousSystem
from repro.topology.geography import WORLD, CountryRegistry
from repro.topology.host import INITIAL_TTL_WINDOWS, NetworkEndpoint
from repro.topology.ip import IPv4Prefix
from repro.topology.subnet import Subnet, SubnetAllocator

#: Hosts packed into one remote-population subnet before opening a new one.
_REMOTE_SUBNET_FILL = 100


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """Shape of the synthetic Internet.

    Parameters
    ----------
    seed:
        Drives graph wiring and path jitter.
    tier1_count:
        Size of the global transit core.
    transit_per_region:
        Regional transit ASes per region label.
    cn_access_isps:
        Number of large Chinese consumer ISPs (the dominant audience).
    other_access_isps_per_country:
        Consumer ISPs for each non-probe, non-CN country.
    subnet_prefixlen:
        Subnet granularity (the NET metric's notion of "same subnet").
    """

    seed: int = 1
    tier1_count: int = 4
    transit_per_region: int = 3
    cn_access_isps: int = 6
    other_access_isps_per_country: int = 1
    subnet_prefixlen: int = 24

    def __post_init__(self) -> None:
        if self.tier1_count < 1:
            raise ConfigurationError("need at least one tier-1 AS")


#: Probe-site campus ASes of Table I: symbolic name → (ASN, country).
#: AS2 hosts both PoliTO and UniTN (an Italian NREN).
PROBE_AS_NUMBERS: dict[str, tuple[int, str]] = {
    "AS1": (1, "HU"),
    "AS2": (2, "IT"),
    "AS3": (3, "HU"),
    "AS4": (4, "FR"),
    "AS5": (5, "FR"),
    "AS6": (6, "PL"),
}

#: First ASN used for the per-home-probe "ASx" ISPs.
HOME_AS_BASE = 101
#: First ASN used for synthetic core/transit/access ASes.
SYNTH_AS_BASE = 1000


class World:
    """A fully-assembled synthetic Internet."""

    def __init__(self, config: WorldConfig | None = None,
                 countries: CountryRegistry | None = None) -> None:
        self.config = config or WorldConfig()
        self.countries = countries or WORLD
        self.registry = ASRegistry()
        self.regions: dict[int, str] = {}
        self._rng = np.random.default_rng(self.config.seed)
        self._next_asn = SYNTH_AS_BASE
        self._next_prefix_block = 0
        self._access_isps_by_cc: dict[str, list[int]] = {}
        self._remote_subnets: dict[int, Subnet] = {}
        self._build_ases()
        self.allocator = SubnetAllocator(self.registry, self.config.subnet_prefixlen)
        self.asgraph = ASGraph.build(
            self.registry, self.regions, self._rng, ASGraphConfig()
        )
        from repro.topology.paths import PathModel, PathModelConfig

        self.paths = PathModel(self.asgraph, PathModelConfig(seed=self.config.seed))
        self.paths.ensure_asns(self.registry.asns)

    # ------------------------------------------------------------------ build
    def _fresh_asn(self) -> int:
        asn = self._next_asn
        self._next_asn += 1
        return asn

    def _fresh_prefix(self) -> IPv4Prefix:
        """Sequential, globally disjoint /16 blocks starting at 1.0.0.0."""
        base = (1 << 24) + (self._next_prefix_block << 16)
        self._next_prefix_block += 1
        if base >= (223 << 24):
            raise TopologyError("synthetic address space exhausted")
        return IPv4Prefix(base, 16)

    def _add_as(self, name: str, cc: str, tier: ASTier, asn: int | None = None) -> AutonomousSystem:
        asn = self._fresh_asn() if asn is None else asn
        asys = self.registry.create(asn, name, cc, tier)
        self.registry.assign_prefix(asn, self._fresh_prefix())
        self.regions[asn] = self.countries.get(cc).region
        if tier is ASTier.ACCESS:
            self._access_isps_by_cc.setdefault(cc, []).append(asn)
        return asys

    def _build_ases(self) -> None:
        cfg = self.config
        # Global core.
        core_ccs = ["US", "DE", "CN", "GB", "JP", "FR"]
        for i in range(cfg.tier1_count):
            cc = core_ccs[i % len(core_ccs)]
            self._add_as(f"Tier1-{i}", cc, ASTier.TIER1)
        # Regional transit.
        region_anchor = {"EU": ["DE", "FR", "NL"], "AS": ["CN", "JP", "KR"],
                         "NA": ["US", "US", "CA"], "OC": ["AU"], "SA": ["BR"]}
        for region, ccs in region_anchor.items():
            for i in range(cfg.transit_per_region):
                cc = ccs[i % len(ccs)]
                self._add_as(f"Transit-{region}-{i}", cc, ASTier.TRANSIT)
        # Chinese consumer ISPs (the bulk of the audience).
        for i in range(cfg.cn_access_isps):
            self._add_as(f"CN-ISP-{i}", "CN", ASTier.ACCESS)
        # One (configurable) consumer ISP per remaining country.
        for country in self.countries:
            if country.code == "CN":
                continue
            for i in range(cfg.other_access_isps_per_country):
                self._add_as(f"{country.code}-ISP-{i}", country.code, ASTier.ACCESS)
        # Probe-site campus networks, Table I numbering.
        for name, (asn, cc) in PROBE_AS_NUMBERS.items():
            self._add_as(name, cc, ASTier.CAMPUS, asn=asn)

    # --------------------------------------------------------------- topology
    def add_home_as(self, asn: int, cc: str) -> AutonomousSystem:
        """Register a dedicated home-ISP AS (Table I's ``ASx`` rows)."""
        if asn in self.registry:
            existing = self.registry.get(asn)
            if existing.country_code != cc:
                raise TopologyError(f"AS{asn} already registered in {existing.country_code}")
            return existing
        asys = self._add_as(f"HomeISP-{asn}", cc, ASTier.ACCESS, asn=asn)
        # The AS graph is already built; attach the new node to a same-region
        # transit provider so paths exist.
        self._attach_late_as(asn)
        self.paths.ensure_asns([asn])
        return asys

    def _attach_late_as(self, asn: int) -> None:
        graph = self.asgraph.graph
        region = self.regions[asn]
        transit = [
            a.asn
            for a in self.registry
            if a.tier is ASTier.TRANSIT and self.regions.get(a.asn) == region
        ]
        if not transit:
            transit = [a.asn for a in self.registry if a.tier is ASTier.TIER1]
        picks = self._rng.choice(transit, size=min(2, len(transit)), replace=False)
        graph.add_node(asn, tier=ASTier.ACCESS)
        for up in picks:
            graph.add_edge(asn, int(up))
        # New node invalidates cached distances and the dense transit matrix.
        self.asgraph.invalidate_routes()

    # -------------------------------------------------------------- endpoints
    def new_subnet(self, asn: int, site: str | None = None) -> Subnet:
        """Allocate a fresh subnet inside ``asn``."""
        return self.allocator.new_subnet(asn, site)

    def new_endpoint(
        self,
        asn: int,
        access: AccessLink,
        *,
        subnet: Subnet | None = None,
        initial_ttl: int = INITIAL_TTL_WINDOWS,
    ) -> NetworkEndpoint:
        """Create a host endpoint inside ``asn``.

        If ``subnet`` is None a shared per-AS "remote population" subnet is
        used, opened lazily and recycled until it holds
        ``_REMOTE_SUBNET_FILL`` hosts — so remote peers of the same ISP
        sometimes share subnets, but never share one with a probe.
        """
        asys = self.registry.get(asn)
        if subnet is None:
            subnet = self._remote_subnets.get(asn)
            if subnet is None or subnet.allocated >= min(_REMOTE_SUBNET_FILL, subnet.capacity):
                subnet = self.new_subnet(asn)
                self._remote_subnets[asn] = subnet
        elif subnet.asn != asn:
            raise TopologyError(f"subnet {subnet.prefix} belongs to AS{subnet.asn}, not AS{asn}")
        ip = self.allocator.new_host(subnet)
        return NetworkEndpoint(
            ip=ip,
            asn=asn,
            country_code=asys.country_code,
            access=access,
            subnet_prefixlen=self.config.subnet_prefixlen,
            initial_ttl=initial_ttl,
        )

    def bulk_remote_ips(self, asns: "np.ndarray") -> "np.ndarray":
        """Assign one remote-population IP per entry of ``asns``.

        Vectorised counterpart of calling :meth:`new_endpoint` once per
        peer with ``subnet=None``: the per-AS remote subnets are continued
        and recycled with exactly the same ``_REMOTE_SUBNET_FILL`` policy,
        so within each AS the i-th allocation here yields the same address
        the i-th scalar call would (per-AS subnet cursors are independent,
        only the global subnet *creation* order differs).  When an AS's
        prefix space runs out a fresh /16 is attached so paper-scale
        populations never exhaust the synthetic address plan.
        """
        asns = np.asarray(asns, dtype=np.int64)
        ips = np.empty(len(asns), dtype=np.uint32)
        if len(asns) == 0:
            return ips
        order = np.argsort(asns, kind="stable")
        bounds = np.flatnonzero(np.diff(asns[order])) + 1
        for group in np.split(order, bounds):
            asn = int(asns[group[0]])
            filled = 0
            need = len(group)
            while filled < need:
                subnet = self._remote_subnets.get(asn)
                if subnet is None or subnet.allocated >= min(_REMOTE_SUBNET_FILL, subnet.capacity):
                    try:
                        subnet = self.new_subnet(asn)
                    except AllocationError:
                        self.registry.assign_prefix(asn, self._fresh_prefix())
                        subnet = self.new_subnet(asn)
                    self._remote_subnets[asn] = subnet
                room = min(_REMOTE_SUBNET_FILL, subnet.capacity) - subnet.allocated
                take = min(room, need - filled)
                block = subnet.allocate_block(take)
                ips[group[filled:filled + take]] = np.arange(
                    block.start, block.stop, dtype=np.uint32
                )
                filled += take
        return ips

    def access_isps(self, country_code: str) -> list[int]:
        """Consumer-ISP ASNs registered for ``country_code``."""
        return list(self._access_isps_by_cc.get(country_code, []))
