"""Autonomous System registry and prefix ownership.

An :class:`AutonomousSystem` models one routing domain: it belongs to a
country, has a coarse *tier* (transit vs access ISP vs campus network), and
owns one or more IPv4 prefixes from which its subnets are carved.  The
analysis-side registry (:mod:`repro.heuristics.registry`) answers
"which AS / country does this IP belong to" exactly the way the paper's
whois/GeoIP step did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import AllocationError, TopologyError
from repro.topology.ip import IPv4Prefix


class ASTier(Enum):
    """Coarse position of an AS in the Internet hierarchy.

    The tier drives the synthetic AS-graph construction: tier-1 transit
    networks form a dense core, access ISPs and campus networks hang off
    them.  Router-hop counts across an AS also scale with its tier.
    """

    TIER1 = "tier1"        # global transit backbone
    TRANSIT = "transit"    # regional transit
    ACCESS = "access"      # consumer ISP (DSL / CATV customers)
    CAMPUS = "campus"      # university / institution network


@dataclass(eq=False)
class AutonomousSystem:
    """One Autonomous System.

    Parameters
    ----------
    asn:
        AS number, unique within a registry.
    name:
        Human-readable name (e.g. ``"AS2/GARR"``).
    country_code:
        The country the AS is (predominantly) located in.
    tier:
        Position in the hierarchy, see :class:`ASTier`.
    prefixes:
        IPv4 prefixes owned by this AS.  Subnets are carved from them by
        :class:`repro.topology.subnet.SubnetAllocator`.
    """

    asn: int
    name: str
    country_code: str
    tier: ASTier = ASTier.ACCESS
    prefixes: list[IPv4Prefix] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise TopologyError(f"ASN must be positive, got {self.asn}")

    def add_prefix(self, prefix: IPv4Prefix) -> None:
        """Attach an owned prefix, rejecting overlaps with existing ones."""
        for existing in self.prefixes:
            if existing.overlaps(prefix):
                raise AllocationError(
                    f"prefix {prefix} overlaps {existing} already owned by AS{self.asn}"
                )
        self.prefixes.append(prefix)

    def owns(self, address: int) -> bool:
        """True when ``address`` belongs to one of this AS's prefixes."""
        return any(p.contains(address) for p in self.prefixes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AS{self.asn}({self.name}, {self.country_code}, {self.tier.value})"


class ASRegistry:
    """Registry of all Autonomous Systems in a synthetic topology.

    Guarantees ASN uniqueness and global prefix disjointness, so every IP
    maps to at most one AS — the invariant the analysis registry relies on.
    """

    def __init__(self) -> None:
        self._by_asn: dict[int, AutonomousSystem] = {}

    def create(
        self,
        asn: int,
        name: str,
        country_code: str,
        tier: ASTier = ASTier.ACCESS,
    ) -> AutonomousSystem:
        """Create and register a new AS."""
        if asn in self._by_asn:
            raise TopologyError(f"AS{asn} already registered")
        asys = AutonomousSystem(asn=asn, name=name, country_code=country_code, tier=tier)
        self._by_asn[asn] = asys
        return asys

    def get(self, asn: int) -> AutonomousSystem:
        """Look up an AS by number."""
        try:
            return self._by_asn[asn]
        except KeyError as exc:
            raise TopologyError(f"unknown AS{asn}") from exc

    def assign_prefix(self, asn: int, prefix: IPv4Prefix) -> None:
        """Assign ``prefix`` to ``asn``, enforcing global disjointness."""
        for other in self._by_asn.values():
            for existing in other.prefixes:
                if existing.overlaps(prefix):
                    raise AllocationError(
                        f"prefix {prefix} overlaps {existing} of AS{other.asn}"
                    )
        self._by_asn[asn].add_prefix(prefix)

    def owner_of(self, address: int) -> AutonomousSystem | None:
        """The AS owning ``address``, or None if unallocated."""
        for asys in self._by_asn.values():
            if asys.owns(address):
                return asys
        return None

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    def __iter__(self):
        return iter(self._by_asn.values())

    def __len__(self) -> int:
        return len(self._by_asn)

    @property
    def asns(self) -> list[int]:
        """All registered AS numbers, insertion-ordered."""
        return list(self._by_asn)
