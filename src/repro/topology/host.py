"""Network endpoint descriptor shared by the simulator and the testbed.

A :class:`NetworkEndpoint` carries everything the path and transport models
need to know about one host: its address, subnet, AS, country, access link
and the initial TTL its operating system stamps on outgoing packets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.topology.access import AccessLink
from repro.topology.ip import format_ip, subnet_key

#: Default initial TTLs by OS family.  The paper assumes Windows (128)
#: because the measured P2P-TV clients were Windows-only applications.
INITIAL_TTL_WINDOWS = 128
INITIAL_TTL_UNIX = 64

_VALID_TTLS = (INITIAL_TTL_WINDOWS, INITIAL_TTL_UNIX, 255)


@dataclass(frozen=True, slots=True)
class NetworkEndpoint:
    """One host's network identity.

    Parameters
    ----------
    ip:
        IPv4 address as an integer.
    asn:
        The Autonomous System the host's prefix belongs to.
    country_code:
        The host's country.
    access:
        The host's access link (capacities + NAT/firewall).
    subnet_prefixlen:
        Length of the host's subnet; two endpoints are on the same subnet
        when their masked addresses match (and hop distance is then zero).
    initial_ttl:
        TTL stamped on packets this host originates.
    """

    ip: int
    asn: int
    country_code: str
    access: AccessLink
    subnet_prefixlen: int = 24
    initial_ttl: int = INITIAL_TTL_WINDOWS

    def __post_init__(self) -> None:
        if self.initial_ttl not in _VALID_TTLS:
            raise ConfigurationError(
                f"initial TTL must be one of {_VALID_TTLS}, got {self.initial_ttl}"
            )

    @property
    def subnet(self) -> int:
        """The masked network address identifying this host's subnet."""
        return int(subnet_key(self.ip, self.subnet_prefixlen))

    def same_subnet(self, other: "NetworkEndpoint") -> bool:
        """True when both hosts sit on the same subnet."""
        return self.subnet == other.subnet and self.subnet_prefixlen == other.subnet_prefixlen

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{format_ip(self.ip)} (AS{self.asn}, {self.country_code}, {self.access.label})"
