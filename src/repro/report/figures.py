"""Text renderers for the paper's figures.

The originals are a stacked-bar chart (Fig. 1) and grey-scale matrices
(Fig. 2); here both become aligned monospace layouts carrying the same
numbers, suitable for terminals and EXPERIMENTS.md.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.figure1 import Figure1
from repro.experiments.figure2 import Figure2
from repro.units import fmt_bytes


def _bar(pct: float, width: int = 40) -> str:
    filled = int(round(pct / 100.0 * width))
    return "#" * filled + "." * (width - filled)


def render_figure1(figure: Figure1) -> str:
    """Render Figure 1 (geographical breakdown) as labelled bars."""
    lines = ["FIGURE 1 — geographical breakdown of peers / RX bytes / TX bytes"]
    for bars in figure.bars:
        lines.append(f"\n[{bars.app}]  observed peers: {bars.total_peers}")
        for name, shares in (("#", bars.peers), ("RX", bars.rx_bytes), ("TX", bars.tx_bytes)):
            parts = "  ".join(
                f"{label}:{shares[label]:5.1f}%" for label in figure.labels
            )
            lines.append(f"  {name:>2s}  {parts}")
    return "\n".join(lines)


def render_figure2(figure: Figure2) -> str:
    """Render Figure 2 (AS×AS mean exchanged traffic) as matrices."""
    lines = ["FIGURE 2 — mean exchanged data among high-bw probes, by AS pair"]
    for m in figure.matrices:
        lines.append(f"\n[{m.app}]  R(intra/inter) = {m.ratio_intra_inter:.2f}"
                     + (f", hop-0 share of intra-AS = {m.local_share_intra:.0%}"
                        if math.isfinite(m.local_share_intra) else ""))
        header = "        " + "".join(f"AS{a:<9d}" for a in m.as_numbers)
        lines.append(header)
        for i, a in enumerate(m.as_numbers):
            cells = "".join(
                f"{fmt_bytes(float(m.mean_bytes[i, j])):<11s}"
                for j in range(len(m.as_numbers))
            )
            lines.append(f"  AS{a:<4d}{cells}")
    return "\n".join(lines)


def render_matrix(matrix: np.ndarray, labels: list[str], title: str = "") -> str:
    """Generic labelled matrix renderer (used by ablation reports)."""
    lines = [title] if title else []
    lines.append("        " + "".join(f"{lab:<11s}" for lab in labels))
    for i, lab in enumerate(labels):
        cells = "".join(f"{matrix[i, j]:<11.3g}" for j in range(len(labels)))
        lines.append(f"  {lab:<6s}{cells}")
    return "\n".join(lines)
