"""Reporting: text renderers and paper-vs-measured comparison.

* :mod:`repro.report.tables`  — monospace renderers for every table;
* :mod:`repro.report.figures` — bar/matrix renderers for the figures;
* :mod:`repro.report.paper`   — the published numbers, transcribed;
* :mod:`repro.report.compare` — shape checks of measured vs published.
"""

from repro.report.tables import (
    render_table,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.report.figures import render_figure1, render_figure2
from repro.report.paper import (
    PAPER_FIG2_RATIOS,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
)
from repro.report.compare import ShapeCheck, check_campaign_shape, render_checks
from repro.report.per_probe import (
    ProbeBreakdown,
    per_probe_breakdown,
    render_probe_breakdown,
)

__all__ = [
    "render_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_figure1",
    "render_figure2",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_FIG2_RATIOS",
    "ShapeCheck",
    "check_campaign_shape",
    "render_checks",
    "ProbeBreakdown",
    "per_probe_breakdown",
    "render_probe_breakdown",
]
