"""Per-probe breakdown: heterogeneity across vantage points.

Table IV aggregates over all 46 probes, but the testbed is deliberately
heterogeneous (campus LANs vs home DSL, §II).  This view recomputes one
partition's P/B per probe so the spread is visible — e.g. home-DSL
probes systematically measure lower BW byte-preference because their
contributor sets are small, while the AS preference concentrates on the
big campus sites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partitions import PreferentialPartition
from repro.core.preference import PreferenceCounts, per_probe_counts
from repro.core.views import DirectionalView
from repro.errors import AnalysisError
from repro.topology.testbed import Testbed


@dataclass(frozen=True, slots=True)
class ProbeBreakdownRow:
    """One probe's slice of a partition's preference indices."""

    label: str
    site: str
    access: str
    counts: PreferenceCounts

    @property
    def P(self) -> float:  # noqa: N802 - paper notation
        return self.counts.peer_percent

    @property
    def B(self) -> float:  # noqa: N802
        return self.counts.byte_percent


@dataclass
class ProbeBreakdown:
    """All probes' rows plus spread statistics."""

    metric: str
    rows: list[ProbeBreakdownRow]

    def row(self, label: str) -> ProbeBreakdownRow:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(label)

    def spread(self, field: str = "B") -> tuple[float, float]:
        """(mean, std) of P or B across probes with data."""
        values = np.array(
            [getattr(r, field) for r in self.rows if not np.isnan(getattr(r, field))]
        )
        if len(values) == 0:
            raise AnalysisError("no probes with measurable data")
        return float(values.mean()), float(values.std())


def per_probe_breakdown(
    view: DirectionalView,
    partition: PreferentialPartition,
    testbed: Testbed,
) -> ProbeBreakdown:
    """Recompute one partition per probe over a contributor view."""
    indicator = partition.indicator(view)
    by_probe = per_probe_counts(view, indicator)
    rows = []
    for host in testbed:
        counts = by_probe.get(host.endpoint.ip)
        if counts is None:
            counts = PreferenceCounts(0, 0, 0, 0)
        rows.append(
            ProbeBreakdownRow(
                label=host.label,
                site=host.site,
                access=host.endpoint.access.label,
                counts=counts,
            )
        )
    return ProbeBreakdown(metric=partition.name, rows=rows)


def render_probe_breakdown(breakdown: ProbeBreakdown, limit: int | None = None) -> str:
    """Monospace per-probe table (optionally truncated)."""
    from repro.report.tables import render_table

    def fmt(v: float) -> str:
        return "-" if np.isnan(v) else f"{v:.1f}"

    rows = [
        [r.label, r.site, r.access, str(r.counts.total_peers), fmt(r.P), fmt(r.B)]
        for r in (breakdown.rows[:limit] if limit else breakdown.rows)
    ]
    mean, std = breakdown.spread("B")
    out = render_table(
        ["Probe", "Site", "Access", "peers", "P%", "B%"],
        rows,
        title=f"PER-PROBE {breakdown.metric} preference (download)",
    )
    return out + f"\nB across probes: {mean:.1f} ± {std:.1f}"
