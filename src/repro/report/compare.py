"""Shape checks: does the reproduction preserve the paper's findings?

Absolute numbers cannot match (our substrate is a simulator, the paper's a
planetary deployment), so the comparison layer asserts the paper's
*qualitative claims* — who wins, by roughly what factor, where the
orderings fall.  Each claim becomes a named :class:`ShapeCheck`, evaluated
by :func:`check_campaign_shape`, consumed by the integration tests and by
EXPERIMENTS.md generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.campaign import Campaign
from repro.experiments.figure2 import Figure2, build_figure2
from repro.experiments.table2 import Table2, build_table2
from repro.experiments.table3 import Table3, build_table3
from repro.experiments.table4 import Table4, build_table4


@dataclass(frozen=True, slots=True)
class ShapeCheck:
    """One qualitative claim and its verdict on the measured data."""

    name: str
    passed: bool
    detail: str


def _check(name: str, passed: bool, detail: str) -> ShapeCheck:
    return ShapeCheck(name=name, passed=bool(passed), detail=detail)


def _table2_checks(t2: Table2) -> list[ShapeCheck]:
    pp, sc, tv = t2.row("pplive"), t2.row("sopcast"), t2.row("tvants")
    return [
        _check(
            "T2: swarm reach ordering PPLive ≫ SopCast ≫ TVAnts",
            pp.all_peers_mean > sc.all_peers_mean > tv.all_peers_mean,
            f"all-peers mean {pp.all_peers_mean:.0f} / {sc.all_peers_mean:.0f} / {tv.all_peers_mean:.0f}",
        ),
        _check(
            "T2: contributor ordering PPLive > SopCast > TVAnts (RX)",
            pp.contrib_rx_mean > sc.contrib_rx_mean > tv.contrib_rx_mean,
            f"contrib RX mean {pp.contrib_rx_mean:.0f} / {sc.contrib_rx_mean:.0f} / {tv.contrib_rx_mean:.0f}",
        ),
        _check(
            "T2: PPLive uploads far more than it downloads",
            pp.tx_kbps_mean > 2 * pp.rx_kbps_mean,
            f"PPLive TX {pp.tx_kbps_mean:.0f} kb/s vs RX {pp.rx_kbps_mean:.0f} kb/s",
        ),
        _check(
            "T2: SopCast uploads less than it downloads",
            sc.tx_kbps_mean < sc.rx_kbps_mean,
            f"SopCast TX {sc.tx_kbps_mean:.0f} vs RX {sc.rx_kbps_mean:.0f} kb/s",
        ),
        _check(
            "T2: TVAnts upload ≈ download (within 2×)",
            0.5 < tv.tx_kbps_mean / tv.rx_kbps_mean < 2.0,
            f"TVAnts TX/RX = {tv.tx_kbps_mean / tv.rx_kbps_mean:.2f}",
        ),
        _check(
            "T2: received rate ≥ nominal 384 kb/s for every app",
            min(pp.rx_kbps_mean, sc.rx_kbps_mean, tv.rx_kbps_mean) >= 384 * 0.9,
            f"RX means {pp.rx_kbps_mean:.0f}/{sc.rx_kbps_mean:.0f}/{tv.rx_kbps_mean:.0f}",
        ),
        _check(
            "T2: PPLive receives the most (signaling overhead)",
            pp.rx_kbps_mean > sc.rx_kbps_mean
            and pp.rx_kbps_mean > tv.rx_kbps_mean,
            f"RX means {pp.rx_kbps_mean:.0f}/{sc.rx_kbps_mean:.0f}/{tv.rx_kbps_mean:.0f}",
        ),
    ]


def _table3_checks(t3: Table3) -> list[ShapeCheck]:
    pp, sc, tv = t3.row("pplive"), t3.row("sopcast"), t3.row("tvants")
    return [
        _check(
            "T3: self-bias magnitude TVAnts > SopCast > PPLive (bytes)",
            tv.contrib_byte_pct > sc.contrib_byte_pct > pp.contrib_byte_pct,
            f"contrib byte% {tv.contrib_byte_pct:.1f} / {sc.contrib_byte_pct:.1f} / {pp.contrib_byte_pct:.1f}",
        ),
        _check(
            # §III-C: "NAPA-WINE peers clearly prefer to exchange data
            # among them" — byte share above contacted-peer share.  Checked
            # for SopCast/TVAnts; PPLive is excluded because its probes are
            # ~50× over-represented among contacts at simulator swarm sizes
            # (46 of 4k vs 46 of 181k), putting the margin below seed noise
            # (see EXPERIMENTS.md); its self-bias ordering is asserted above.
            "T3: probes' byte share exceeds their contacted-peer share",
            sc.contrib_byte_pct > sc.all_peer_pct
            and tv.contrib_byte_pct > tv.all_peer_pct,
            f"byte% vs contacted-peer%: sopcast {sc.contrib_byte_pct:.1f}/{sc.all_peer_pct:.1f}, "
            f"tvants {tv.contrib_byte_pct:.1f}/{tv.all_peer_pct:.1f}",
        ),
        _check(
            "T3: contributor peer-share exceeds all-peer share for every app",
            pp.contrib_peer_pct > pp.all_peer_pct
            and sc.contrib_peer_pct > sc.all_peer_pct
            and tv.contrib_peer_pct > tv.all_peer_pct,
            "probes are preferentially *contributors*, not just contacts",
        ),
    ]


def _table4_checks(t4: Table4) -> list[ShapeCheck]:
    def cell(metric, app, direction="download"):
        return t4.cell(metric, app, direction)

    checks = [
        _check(
            "T4/BW: strong byte preference for high-bandwidth peers (all apps)",
            all(cell("BW", app).B > 90 for app in ("pplive", "sopcast", "tvants")),
            "B_D " + ", ".join(f"{a}={cell('BW', a).B:.1f}" for a in ("pplive", "sopcast", "tvants")),
        ),
        _check(
            "T4/BW: peer preference 80–97 % (high, below byte preference)",
            all(80 <= cell("BW", app).P <= 97.5 for app in ("pplive", "sopcast", "tvants")),
            "P_D " + ", ".join(f"{a}={cell('BW', a).P:.1f}" for a in ("pplive", "sopcast", "tvants")),
        ),
        _check(
            "T4/BW: preference survives probe exclusion (not self-induced)",
            all(cell("BW", app).B_prime > 90 for app in ("pplive", "sopcast", "tvants")),
            "B'_D " + ", ".join(f"{a}={cell('BW', a).B_prime:.1f}" for a in ("pplive", "sopcast", "tvants")),
        ),
        _check(
            "T4/AS: PPLive byte preference ≫ peer preference (ratio ≥ 2)",
            cell("AS", "pplive").B_prime >= 2 * cell("AS", "pplive").P_prime,
            f"B'={cell('AS', 'pplive').B_prime:.1f} vs P'={cell('AS', 'pplive').P_prime:.1f}",
        ),
        _check(
            "T4/AS: TVAnts byte preference > peer preference (ratio ≥ 1.5)",
            cell("AS", "tvants").B_prime >= 1.5 * cell("AS", "tvants").P_prime,
            f"B'={cell('AS', 'tvants').B_prime:.1f} vs P'={cell('AS', 'tvants').P_prime:.1f}",
        ),
        _check(
            "T4/AS: SopCast is AS-unaware (B' ≈ P', both small)",
            abs(cell("AS", "sopcast").B_prime - cell("AS", "sopcast").P_prime) < 2.0
            and cell("AS", "sopcast").B_prime < 5.0,
            f"B'={cell('AS', 'sopcast').B_prime:.1f} vs P'={cell('AS', 'sopcast').P_prime:.1f}",
        ),
        _check(
            "T4/AS: TVAnts discovers same-AS peers better than PPLive",
            cell("AS", "tvants").P > cell("AS", "pplive").P,
            f"P tvants={cell('AS', 'tvants').P:.1f} vs pplive={cell('AS', 'pplive').P:.1f}",
        ),
        _check(
            "T4/CC: country preference explained by AS preference (CC ≈ AS)",
            all(
                abs(cell("CC", app).B - cell("AS", app).B)
                <= max(4.0, 0.5 * cell("AS", app).B)
                for app in ("pplive", "sopcast", "tvants")
            ),
            "per-app |B_CC − B_AS| small",
        ),
        _check(
            "T4/NET: no non-probe same-subnet peers exist (P' empty)",
            all(
                math.isnan(cell("NET", app).B_prime)
                or cell("NET", app).B_prime == 0.0
                for app in ("pplive", "sopcast", "tvants")
            ),
            "the same-subnet set contains only NAPA-WINE probes",
        ),
        _check(
            "T4/NET: TVAnts shows the strongest subnet byte share",
            cell("NET", "tvants").B > cell("NET", "sopcast").B
            and cell("NET", "tvants").B > cell("NET", "pplive").B,
            f"B tvants={cell('NET', 'tvants').B:.1f}, sopcast={cell('NET', 'sopcast').B:.1f}, pplive={cell('NET', 'pplive').B:.1f}",
        ),
        _check(
            "T4/HOP: no hop awareness for PPLive/SopCast (|B' − P'| small)",
            abs(cell("HOP", "pplive").B_prime - cell("HOP", "pplive").P_prime) < 10
            and abs(cell("HOP", "sopcast").B_prime - cell("HOP", "sopcast").P_prime) < 10,
            "non-probe byte and peer preferences agree",
        ),
        _check(
            "T4/HOP: TVAnts at most a small short-path preference",
            cell("HOP", "tvants").B_prime - cell("HOP", "tvants").P_prime < 20,
            f"B'−P' = {cell('HOP', 'tvants').B_prime - cell('HOP', 'tvants').P_prime:.1f}",
        ),
    ]
    return checks


def _figure2_checks(f2: Figure2) -> list[ShapeCheck]:
    r = {m.app: m.ratio_intra_inter for m in f2.matrices}
    checks = [
        _check(
            "F2: intra/inter ratio ordering TVAnts > PPLive > SopCast",
            r["tvants"] > r["pplive"] > r["sopcast"],
            f"R = {r['tvants']:.2f} / {r['pplive']:.2f} / {r['sopcast']:.2f}",
        ),
        _check(
            "F2: TVAnts favours intra-AS traffic (R > 1.3)",
            r["tvants"] > 1.3,
            f"R = {r['tvants']:.2f}",
        ),
        _check(
            # Paper: R = 0.2 for SopCast, i.e. no intra-AS favouritism;
            # R ≈ 1 is the unbiased value, so we accept anything below 1.5.
            "F2: SopCast does not favour intra-AS traffic (R ≲ 1)",
            r["sopcast"] < 1.5,
            f"R = {r['sopcast']:.2f}",
        ),
    ]
    return checks


def check_campaign_shape(campaign: Campaign) -> list[ShapeCheck]:
    """Evaluate every qualitative claim on a (3-app) campaign."""
    t2 = build_table2(campaign)
    t3 = build_table3(campaign)
    t4 = build_table4(campaign)
    f2 = build_figure2(campaign)
    checks: list[ShapeCheck] = []
    checks += _table2_checks(t2)
    checks += _table3_checks(t3)
    checks += _table4_checks(t4)
    checks += _figure2_checks(f2)
    return checks


def render_checks(checks: list[ShapeCheck]) -> str:
    """One line per check: PASS/FAIL, claim, measured detail."""
    lines = []
    for c in checks:
        status = "PASS" if c.passed else "FAIL"
        lines.append(f"[{status}] {c.name}  ({c.detail})")
    n_pass = sum(c.passed for c in checks)
    lines.append(f"{n_pass}/{len(checks)} shape checks passed")
    return "\n".join(lines)
