"""The published numbers, transcribed from the paper.

Used by the comparison layer, the shape tests and EXPERIMENTS.md
generation.  Keys follow the library's lower-case app names.

Sources: Table II (experiment summary), Table III (self-induced bias),
Table IV (network awareness), §IV-B text (Fig. 2 intra/inter ratios R).
"""

from __future__ import annotations

#: Table II — mean/max stream rates (kb/s), peer and contributor counts.
PAPER_TABLE2: dict[str, dict[str, float]] = {
    "pplive": {
        "rx_kbps_mean": 552, "rx_kbps_max": 934,
        "tx_kbps_mean": 3384, "tx_kbps_max": 11818,
        "all_peers_mean": 23101, "all_peers_max": 39797,
        "contrib_rx_mean": 391, "contrib_rx_max": 841,
        "contrib_tx_mean": 1025, "contrib_tx_max": 2570,
        "total_observed_peers": 181729,
    },
    "sopcast": {
        "rx_kbps_mean": 449, "rx_kbps_max": 542,
        "tx_kbps_mean": 293, "tx_kbps_max": 1070,
        "all_peers_mean": 776, "all_peers_max": 1233,
        "contrib_rx_mean": 139, "contrib_rx_max": 229,
        "contrib_tx_mean": 152, "contrib_tx_max": 243,
        "total_observed_peers": 4057,
    },
    "tvants": {
        "rx_kbps_mean": 419, "rx_kbps_max": 478,
        "tx_kbps_mean": 464, "tx_kbps_max": 1001,
        "all_peers_mean": 229, "all_peers_max": 270,
        "contrib_rx_mean": 58, "contrib_rx_max": 90,
        "contrib_tx_mean": 75, "contrib_tx_max": 118,
        "total_observed_peers": 550,
    },
}

#: Table III — self-induced bias percentages.
PAPER_TABLE3: dict[str, dict[str, float]] = {
    "pplive": {
        "contrib_peer_pct": 0.95, "contrib_byte_pct": 3.54,
        "all_peer_pct": 0.10, "all_byte_pct": 3.33,
    },
    "sopcast": {
        "contrib_peer_pct": 10.25, "contrib_byte_pct": 17.71,
        "all_peer_pct": 4.60, "all_byte_pct": 19.45,
    },
    "tvants": {
        "contrib_peer_pct": 29.82, "contrib_byte_pct": 56.31,
        "all_peer_pct": 15.56, "all_byte_pct": 56.06,
    },
}

#: Table IV — (metric, app, direction) → {B_prime, P_prime, B, P}.
#: NaN encodes the paper's '-' (unmeasurable / empty set) cells.
_N = float("nan")
PAPER_TABLE4: dict[tuple[str, str, str], dict[str, float]] = {
    ("BW", "pplive", "download"): {"B_prime": 95.9, "P_prime": 85.9, "B": 95.6, "P": 86.1},
    ("BW", "sopcast", "download"): {"B_prime": 98.2, "P_prime": 83.3, "B": 98.5, "P": 85.3},
    ("BW", "tvants", "download"): {"B_prime": 96.5, "P_prime": 83.2, "B": 98.2, "P": 89.6},
    ("BW", "pplive", "upload"): {"B_prime": _N, "P_prime": _N, "B": _N, "P": _N},
    ("BW", "sopcast", "upload"): {"B_prime": _N, "P_prime": _N, "B": _N, "P": _N},
    ("BW", "tvants", "upload"): {"B_prime": _N, "P_prime": _N, "B": _N, "P": _N},
    ("AS", "pplive", "download"): {"B_prime": 6.5, "P_prime": 0.6, "B": 12.8, "P": 1.3},
    ("AS", "sopcast", "download"): {"B_prime": 0.6, "P_prime": 0.7, "B": 3.5, "P": 3.9},
    ("AS", "tvants", "download"): {"B_prime": 7.3, "P_prime": 3.3, "B": 32.0, "P": 13.5},
    ("AS", "pplive", "upload"): {"B_prime": 0.8, "P_prime": 0.2, "B": 1.8, "P": 0.5},
    ("AS", "sopcast", "upload"): {"B_prime": 1.7, "P_prime": 0.7, "B": 6.4, "P": 3.9},
    ("AS", "tvants", "upload"): {"B_prime": 11.6, "P_prime": 1.8, "B": 30.1, "P": 9.6},
    ("CC", "pplive", "download"): {"B_prime": 6.5, "P_prime": 0.6, "B": 13.1, "P": 1.4},
    ("CC", "sopcast", "download"): {"B_prime": 0.6, "P_prime": 0.8, "B": 4.0, "P": 4.4},
    ("CC", "tvants", "download"): {"B_prime": 7.6, "P_prime": 4.0, "B": 37.9, "P": 16.3},
    ("CC", "pplive", "upload"): {"B_prime": 1.1, "P_prime": 0.3, "B": 2.1, "P": 0.6},
    ("CC", "sopcast", "upload"): {"B_prime": 1.7, "P_prime": 0.8, "B": 7.2, "P": 4.4},
    ("CC", "tvants", "upload"): {"B_prime": 14.3, "P_prime": 3.1, "B": 37.7, "P": 12.5},
    ("NET", "pplive", "download"): {"B_prime": _N, "P_prime": _N, "B": 9.9, "P": 0.8},
    ("NET", "sopcast", "download"): {"B_prime": _N, "P_prime": _N, "B": 2.0, "P": 2.6},
    ("NET", "tvants", "download"): {"B_prime": _N, "P_prime": _N, "B": 18.1, "P": 6.7},
    ("NET", "pplive", "upload"): {"B_prime": _N, "P_prime": _N, "B": 1.4, "P": 0.3},
    ("NET", "sopcast", "upload"): {"B_prime": _N, "P_prime": _N, "B": 3.5, "P": 2.6},
    ("NET", "tvants", "upload"): {"B_prime": _N, "P_prime": _N, "B": 18.1, "P": 5.4},
    ("HOP", "pplive", "download"): {"B_prime": 42.2, "P_prime": 41.1, "B": 51.4, "P": 42.4},
    ("HOP", "sopcast", "download"): {"B_prime": 29.0, "P_prime": 40.7, "B": 37.9, "P": 48.0},
    ("HOP", "tvants", "download"): {"B_prime": 62.1, "P_prime": 55.0, "B": 81.1, "P": 71.9},
    ("HOP", "pplive", "upload"): {"B_prime": 30.4, "P_prime": 40.4, "B": 31.7, "P": 41.0},
    ("HOP", "sopcast", "upload"): {"B_prime": 45.9, "P_prime": 43.0, "B": 56.9, "P": 49.8},
    ("HOP", "tvants", "upload"): {"B_prime": 57.8, "P_prime": 53.0, "B": 78.9, "P": 67.2},
}

#: §IV-B — Fig. 2 intra/inter-AS mean-traffic ratios R.
PAPER_FIG2_RATIOS: dict[str, float] = {
    "tvants": 1.93,
    "sopcast": 0.2,
    "pplive": 0.98,
}
