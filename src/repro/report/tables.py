"""Monospace table renderers.

``render_table`` is a small generic grid formatter; the ``render_tableN``
functions lay the experiment artifacts out like the paper's tables.
"""

from __future__ import annotations

import math

from repro.experiments.table1 import Table1
from repro.experiments.table2 import Table2
from repro.experiments.table3 import Table3
from repro.experiments.table4 import Table4


def render_table(
    headers: list[str], rows: list[list[str]], title: str | None = None
) -> str:
    """Format a grid with column-width alignment and a rule under headers."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: list[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _num(value: float, digits: int = 1) -> str:
    """Render a float, using '-' for the paper's unmeasurable cells."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if digits == 0:
        return f"{value:.0f}"
    return f"{value:.{digits}f}"


def render_table1(table: Table1) -> str:
    """Render Table I (testbed summary)."""
    rows = [
        [r.hosts, r.site, r.country, r.as_label, r.access,
         "Y" if r.nat else "-", "Y" if r.firewall else "-"]
        for r in table.rows
    ]
    body = render_table(
        ["Host", "Site", "CC", "AS", "Access", "NAT", "FW"],
        rows,
        title="TABLE I — testbed summary",
    )
    summary = (
        f"\n{table.total_hosts} hosts = {table.institution_hosts} institution + "
        f"{table.home_hosts} home; {table.countries} countries, "
        f"{table.campus_ases} campus ASes + {table.home_ases} home ASes"
    )
    return body + summary


def render_table2(table: Table2) -> str:
    """Render Table II (experiment summary)."""
    rows = []
    for r in table.rows:
        rows.append(
            [
                r.app,
                _num(r.rx_kbps_mean, 0), _num(r.rx_kbps_max, 0),
                _num(r.tx_kbps_mean, 0), _num(r.tx_kbps_max, 0),
                _num(r.all_peers_mean, 0), str(r.all_peers_max),
                _num(r.contrib_rx_mean, 0), str(r.contrib_rx_max),
                _num(r.contrib_tx_mean, 0), str(r.contrib_tx_max),
            ]
        )
    return render_table(
        ["App", "RX kb/s", "max", "TX kb/s", "max", "Peers", "max",
         "C.RX", "max", "C.TX", "max"],
        rows,
        title="TABLE II — stream rates, peers and contributors (per probe)",
    )


def render_table3(table: Table3) -> str:
    """Render Table III (self-induced bias)."""
    rows = [
        [
            r.app,
            _num(r.contrib_peer_pct, 2), _num(r.contrib_byte_pct, 2),
            _num(r.all_peer_pct, 2), _num(r.all_byte_pct, 2),
        ]
        for r in table.rows
    ]
    return render_table(
        ["App", "Contrib Peer%", "Contrib Bytes%", "All Peer%", "All Bytes%"],
        rows,
        title="TABLE III — NAPA-WINE self-induced bias",
    )


def render_table4(table: Table4) -> str:
    """Render Table IV (network awareness, paper layout)."""
    rows = []
    for metric in table.metrics:
        for app in table.apps:
            try:
                d = table.cell(metric, app, "download")
                u = table.cell(metric, app, "upload")
            except KeyError:
                continue
            rows.append(
                [
                    metric, app,
                    _num(d.B_prime), _num(d.P_prime), _num(d.B), _num(d.P),
                    _num(u.B_prime), _num(u.P_prime), _num(u.B), _num(u.P),
                ]
            )
    return render_table(
        ["Net", "App",
         "B'D%", "P'D%", "BD%", "PD%",
         "B'U%", "P'U%", "BU%", "PU%"],
        rows,
        title="TABLE IV — network awareness as peer-wise and byte-wise bias",
    )
