"""Structured dtypes shared across the trace layer.

Keeping traces in numpy structured arrays (not Python objects) is what
makes hour-scale experiments analysable in seconds: every downstream step
— capture filtering, packet expansion, flow grouping, preference metrics —
is a vectorised pass over these arrays.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np


class PacketKind(IntEnum):
    """Payload classes carried in trace records.

    The contributor-identification heuristic only sees packet *sizes* (the
    kind codes are simulator ground truth used for validation); video
    payload packets are MTU-sized, signaling/control packets are small.
    """

    SIGNALING = 0   # handshakes, buffer maps, keepalives
    VIDEO = 1       # chunk payload
    CONTROL = 2     # chunk requests / polls


#: One application-level exchange recorded by the engine.
#: ``bottleneck`` is the path bottleneck in bit/s at transfer time — the
#: quantity packet-pair dispersion (min IPG) lets the analyst estimate.
TRANSFER_DTYPE = np.dtype(
    [
        ("ts", "f8"),
        ("src", "u4"),
        ("dst", "u4"),
        ("bytes", "u4"),
        ("kind", "u1"),
        ("bottleneck", "f8"),
    ]
)

#: A periodic signaling relationship (expanded to transfers lazily).
SIGNALING_DTYPE = np.dtype(
    [
        ("src", "u4"),
        ("dst", "u4"),
        ("start", "f8"),
        ("stop", "f8"),
        ("interval", "f8"),
        ("bytes", "u4"),
    ]
)

#: One captured packet, as a probe's sniffer would record it.
PACKET_DTYPE = np.dtype(
    [
        ("ts", "f8"),
        ("src", "u4"),
        ("dst", "u4"),
        ("size", "u4"),
        ("ttl", "u1"),
        ("kind", "u1"),
    ]
)

#: One directional flow (src → dst) aggregated over a capture.
#: ``min_ipg`` is +inf when the flow never carried a multi-packet train.
#: ``ttl`` is the (constant) received TTL of the flow's packets.
FLOW_DTYPE = np.dtype(
    [
        ("src", "u4"),
        ("dst", "u4"),
        ("bytes", "u8"),
        ("pkts", "u8"),
        ("video_bytes", "u8"),
        ("video_pkts", "u8"),
        ("min_ipg", "f8"),
        ("ttl", "u1"),
        ("first_ts", "f8"),
        ("last_ts", "f8"),
    ]
)


def empty_transfers() -> np.ndarray:
    """A zero-length transfer log."""
    return np.empty(0, dtype=TRANSFER_DTYPE)


def empty_packets() -> np.ndarray:
    """A zero-length packet trace."""
    return np.empty(0, dtype=PACKET_DTYPE)


def empty_flows() -> np.ndarray:
    """A zero-length flow table."""
    return np.empty(0, dtype=FLOW_DTYPE)
