"""Directional flow aggregation — the analysis framework's input.

A *flow* is everything one source sent one destination during a capture:
total bytes and packets, the video-payload share, the minimum inter-packet
gap of its packet trains (the capacity estimator's signal), the received
TTL (the hop estimator's signal) and first/last activity times.

Two construction paths exist and agree exactly:

* :func:`build_flow_table` aggregates the engine's transfer log directly
  (fast path — no packet materialisation, used for full experiments);
* :meth:`FlowTable.from_packets` aggregates a packet trace (what one would
  do with a real pcap; used by tests to prove the fast path faithful).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.trace.capture import captured_by
from repro.trace.hosts import HostTable
from repro.trace.packets import PacketSynthesizer, expand_signaling, packet_counts, transfer_gaps
from repro.trace.records import FLOW_DTYPE, PACKET_DTYPE, TRANSFER_DTYPE, PacketKind


def _pair_keys(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Collapse (src, dst) pairs into sortable 64-bit keys."""
    return (src.astype(np.uint64) << np.uint64(32)) | dst.astype(np.uint64)


class FlowTable:
    """A structured flow array plus the host ground truth it references."""

    def __init__(self, flows: np.ndarray, hosts: HostTable) -> None:
        if flows.dtype != FLOW_DTYPE:
            raise TraceError(f"flow table dtype mismatch: {flows.dtype}")
        self.flows = flows
        self.hosts = hosts

    def __len__(self) -> int:
        return len(self.flows)

    # ------------------------------------------------------------- selection
    @property
    def probe_ips(self) -> np.ndarray:
        return self.hosts.probe_ips

    def received_by(self, probe_ip: int) -> np.ndarray:
        """Flows into ``probe_ip`` — the e → p download side D(p)."""
        return self.flows[self.flows["dst"] == np.uint32(probe_ip)]

    def sent_by(self, probe_ip: int) -> np.ndarray:
        """Flows out of ``probe_ip`` — the p → e upload side U(p)."""
        return self.flows[self.flows["src"] == np.uint32(probe_ip)]

    def with_video(self) -> np.ndarray:
        """Flows that carried at least one video payload byte."""
        return self.flows[self.flows["video_bytes"] > 0]

    # --------------------------------------------------------- constructors
    @classmethod
    def from_packets(cls, packets: np.ndarray, hosts: HostTable) -> "FlowTable":
        """Aggregate a packet trace into flows (the pcap-analyst path)."""
        if packets.dtype != PACKET_DTYPE:
            raise TraceError("from_packets() wants a PACKET_DTYPE array")
        if len(packets) == 0:
            return cls(np.empty(0, dtype=FLOW_DTYPE), hosts)
        order = np.argsort(
            _pair_keys(packets["src"], packets["dst"]), kind="stable"
        )
        pk = packets[order]
        keys = _pair_keys(pk["src"], pk["dst"])
        uniq, starts = np.unique(keys, return_index=True)
        bounds = np.append(starts, len(pk))

        flows = np.empty(len(uniq), dtype=FLOW_DTYPE)
        video = pk["kind"] == int(PacketKind.VIDEO)
        sizes = pk["size"].astype(np.uint64)
        for i, (a, b) in enumerate(zip(bounds[:-1], bounds[1:])):
            grp = slice(a, b)
            ts = np.sort(pk["ts"][grp])
            gaps = np.diff(ts)
            # min IPG over back-to-back *video* trains: approximate the
            # paper's estimator with the min positive gap among packets of
            # the flow (train gaps dominate when trains exist).
            vid = video[grp]
            if vid.sum() >= 2:
                vts = np.sort(pk["ts"][grp][vid])
                vgaps = np.diff(vts)
                vgaps = vgaps[vgaps > 0]
                min_ipg = float(vgaps.min()) if len(vgaps) else np.inf
            else:
                min_ipg = np.inf
            flows[i] = (
                pk["src"][a],
                pk["dst"][a],
                int(sizes[grp].sum()),
                b - a,
                int(sizes[grp][vid].sum()),
                int(vid.sum()),
                min_ipg,
                pk["ttl"][a],
                float(ts[0]),
                float(ts[-1]),
            )
        return cls(flows, hosts)


def build_flow_table(
    transfers: np.ndarray,
    signaling: np.ndarray,
    hosts: HostTable,
    paths,
    *,
    probes_only: bool = True,
    telemetry=None,
) -> FlowTable:
    """Aggregate an engine transfer log (+ signaling intervals) into flows.

    Parameters
    ----------
    transfers / signaling:
        The engine's raw output.
    hosts / paths:
        Ground-truth host table and the path model (for received TTLs).
    probes_only:
        Keep only probe-visible traffic (what the capture contains).  The
        engine only generates probe-touching traffic anyway, so this is a
        safety filter.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry`; tallies the
        records aggregated, signaling expansions, packets materialised
        and flows produced (``trace/*`` counters of the run manifest).
    """
    if transfers.dtype != TRANSFER_DTYPE:
        raise TraceError("build_flow_table() wants a TRANSFER_DTYPE array")
    parts = [transfers]
    if signaling is not None and len(signaling):
        parts.append(expand_signaling(signaling))
    log = np.concatenate(parts) if len(parts) > 1 else parts[0]
    if telemetry is not None:
        telemetry.count("trace/transfer_records", len(transfers))
        telemetry.count("trace/signaling_records", len(log) - len(transfers))
    if probes_only and len(log):
        log = captured_by(log, hosts.probe_ips, telemetry=telemetry)
    if len(log) == 0:
        return FlowTable(np.empty(0, dtype=FLOW_DTYPE), hosts)

    keys = _pair_keys(log["src"], log["dst"])
    uniq, inverse = np.unique(keys, return_inverse=True)
    m = len(uniq)

    pkts = packet_counts(log)
    gaps = transfer_gaps(log, hosts)
    video = log["kind"] == int(PacketKind.VIDEO)
    nbytes = log["bytes"].astype(np.uint64)

    flows = np.empty(m, dtype=FLOW_DTYPE)
    flows["bytes"] = np.bincount(inverse, weights=nbytes.astype(np.float64), minlength=m)
    flows["pkts"] = np.bincount(inverse, weights=pkts.astype(np.float64), minlength=m)
    flows["video_bytes"] = np.bincount(
        inverse, weights=(nbytes * video).astype(np.float64), minlength=m
    )
    flows["video_pkts"] = np.bincount(
        inverse, weights=(pkts * video).astype(np.float64), minlength=m
    )

    min_ipg = np.full(m, np.inf)
    np.minimum.at(min_ipg, inverse, gaps)
    flows["min_ipg"] = min_ipg

    first = np.full(m, np.inf)
    last = np.full(m, -np.inf)
    np.minimum.at(first, inverse, log["ts"])
    np.maximum.at(last, inverse, log["ts"])
    flows["first_ts"] = first
    flows["last_ts"] = last

    flows["src"] = (uniq >> np.uint64(32)).astype(np.uint32)
    flows["dst"] = (uniq & np.uint64(0xFFFFFFFF)).astype(np.uint32)

    synth = PacketSynthesizer(hosts, paths)
    flows["ttl"] = synth.ttl_for(flows["src"], flows["dst"])
    return FlowTable(flows, hosts)
