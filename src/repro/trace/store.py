"""Trace persistence: save/load experiment bundles as ``.npz`` archives.

A bundle holds everything needed to re-run the analysis without re-running
the simulation: the transfer log, signaling intervals, host table and a
JSON metadata blob (profile name, duration, seed).  The NAPA-WINE project
distributed its traces to the community on request; this is our equivalent
exchange format.
"""

from __future__ import annotations

import hashlib
import io
import json
import warnings
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import TraceError, TraceWarning
from repro.obs.log import get_logger
from repro.trace.hosts import HOST_DTYPE, HostTable
from repro.trace.records import SIGNALING_DTYPE, TRANSFER_DTYPE, empty_transfers

_log = get_logger("trace.store")

#: Format marker; bump on incompatible layout changes.
FORMAT_VERSION = 1


@dataclass
class TraceBundle:
    """One saved experiment: raw logs + ground truth + metadata."""

    transfers: np.ndarray
    signaling: np.ndarray
    hosts: HostTable
    meta: dict

    def __post_init__(self) -> None:
        if self.transfers.dtype != TRANSFER_DTYPE:
            raise TraceError("bundle transfers have wrong dtype")
        if self.signaling.dtype != SIGNALING_DTYPE:
            raise TraceError("bundle signaling has wrong dtype")

    @classmethod
    def from_result(cls, result) -> "TraceBundle":
        """Build a bundle from a :class:`SimulationResult`."""
        meta = {
            "profile": result.profile.name,
            "duration_s": result.config.duration_s,
            "seed": result.config.seed,
            "swarm_size": result.profile.swarm_size,
            "scheduler": getattr(result.profile, "scheduler", "mesh-pull"),
            "engine": (getattr(result, "extras", None) or {}).get(
                "engine_mode", "object"
            ),
            "events": result.events_processed,
            # The synthetic Internet is a pure function of its seed; storing
            # it lets analysis rebuild the exact path model (for TTLs).
            "world_seed": result.world.config.seed,
            "subnet_prefixlen": result.world.config.subnet_prefixlen,
        }
        return cls(
            transfers=result.transfers,
            signaling=result.signaling,
            hosts=result.hosts,
            meta=meta,
        )


def trace_digest(*arrays: np.ndarray) -> str:
    """SHA-256 over the exact bytes of one or more numpy arrays.

    Dtype and shape are folded into the hash so a reinterpretation of the
    same buffer cannot collide.  The engine's structured dtypes are packed
    (no padding bytes), which makes ``tobytes()`` — and therefore this
    digest — a byte-exact fingerprint of a simulation's output; the golden
    determinism suite pins :func:`repro.streaming.engine.simulate` output
    per application with it.
    """
    h = hashlib.sha256()
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.dtype).encode("utf-8"))
        h.update(str(a.shape).encode("utf-8"))
        h.update(a.tobytes())
    return h.hexdigest()


def save_trace_bundle(path: str | Path, bundle: TraceBundle) -> Path:
    """Write a bundle to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = dict(bundle.meta)
    meta["format_version"] = FORMAT_VERSION
    np.savez_compressed(
        path,
        transfers=bundle.transfers,
        signaling=bundle.signaling,
        hosts=bundle.hosts.rows,
        meta=np.array(json.dumps(meta)),
    )
    return path


def load_trace_bundle(
    path: str | Path, *, strict: bool = True, telemetry=None
) -> TraceBundle:
    """Read a bundle written by :func:`save_trace_bundle`.

    With ``strict=False`` a damaged archive (truncated download, disk
    full mid-write) is *salvaged*: the raw zip stream is scanned for
    member files, each member's complete row prefix is recovered, missing
    members fall back to empty arrays, and every degradation emits a
    :class:`TraceWarning` instead of raising :class:`TraceError`.

    ``telemetry`` (an optional :class:`~repro.obs.telemetry.Telemetry`)
    tallies ``trace/bundles_loaded``, ``trace/salvaged_bundles`` and a
    ``trace/salvage_warnings`` count of individual degradations.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace bundle not found: {path}")
    try:
        # Hand np.load an open file object: on a failed zip probe it
        # abandons (not closes) the handle, so owning it avoids a
        # ResourceWarning in the salvage path.
        with open(path, "rb") as fh, np.load(fh, allow_pickle=False) as data:
            raw = {name: np.asarray(data[name]) for name in data.files}
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
        if strict:
            raise TraceError(f"{path}: unreadable trace bundle: {exc}") from exc
        warnings.warn(
            f"{path}: unreadable as an archive ({exc}); scanning raw zip "
            "members for salvageable prefixes",
            TraceWarning,
            stacklevel=2,
        )
        _log.warning("bundle-salvage", path=str(path), error=str(exc))
        if telemetry is not None:
            telemetry.count("trace/salvaged_bundles")
            telemetry.count("trace/salvage_warnings")
        raw = _salvage_npz_members(path.read_bytes())

    def degraded(message: str) -> None:
        if strict:
            raise TraceError(f"{path}: {message}")
        if telemetry is not None:
            telemetry.count("trace/salvage_warnings")
        _log.warning("bundle-degraded", path=str(path), detail=message)
        warnings.warn(f"{path}: {message}", TraceWarning, stacklevel=3)

    def member(name: str, dtype: np.dtype, fallback: np.ndarray) -> np.ndarray:
        if name not in raw:
            degraded(f"not a trace bundle: missing '{name}'")
            return fallback
        return np.asarray(raw[name], dtype=dtype)

    transfers = member("transfers", TRANSFER_DTYPE, empty_transfers())
    signaling = member("signaling", SIGNALING_DTYPE, np.empty(0, dtype=SIGNALING_DTYPE))
    hosts = HostTable(member("hosts", HOST_DTYPE, np.empty(0, dtype=HOST_DTYPE)))

    meta: dict = {}
    if "meta" not in raw:
        degraded("not a trace bundle: missing 'meta'")
    else:
        try:
            meta = json.loads(str(raw["meta"]))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            degraded(f"unreadable metadata ({exc}); continuing without")
    version = meta.pop("format_version", None)
    if version != FORMAT_VERSION:
        degraded(
            f"unsupported bundle format {version!r} (expected {FORMAT_VERSION})"
        )
    if telemetry is not None:
        telemetry.count("trace/bundles_loaded")
    _log.debug(
        "bundle-loaded",
        path=str(path),
        transfers=len(transfers),
        signaling=len(signaling),
        hosts=len(hosts.rows),
    )
    return TraceBundle(transfers=transfers, signaling=signaling, hosts=hosts, meta=meta)


def _salvage_npz_members(data: bytes) -> dict[str, np.ndarray]:
    """Best-effort member recovery from a damaged ``.npz`` byte stream.

    An ``.npz`` is a zip archive whose central directory sits at the end —
    exactly the part a truncation destroys.  The local file headers
    survive, so this scans for them, inflates each member's deflate
    stream as far as it goes, and decodes whatever complete ``.npy`` rows
    the inflated prefix holds.  Members whose payload is damaged beyond
    the header are simply absent from the result.
    """
    members: dict[str, np.ndarray] = {}
    offset = 0
    while True:
        idx = data.find(b"PK\x03\x04", offset)
        if idx < 0 or idx + 30 > len(data):
            break
        method = int.from_bytes(data[idx + 8 : idx + 10], "little")
        name_len = int.from_bytes(data[idx + 26 : idx + 28], "little")
        extra_len = int.from_bytes(data[idx + 28 : idx + 30], "little")
        name_start = idx + 30
        name = data[name_start : name_start + name_len].decode("utf-8", "replace")
        payload_start = name_start + name_len + extra_len
        offset = idx + 4  # default resume point: just past this marker
        if payload_start >= len(data):
            break
        payload = data[payload_start:]
        if method == 8:  # deflate (np.savez_compressed)
            inflater = zlib.decompressobj(-zlib.MAX_WBITS)
            try:
                buf = inflater.decompress(payload)
            except zlib.error:
                continue
            if inflater.eof:
                offset = payload_start + len(payload) - len(inflater.unused_data)
        elif method == 0:  # stored (np.savez)
            size = int.from_bytes(data[idx + 18 : idx + 22], "little")
            buf = payload[:size] if size else payload
            if size:
                offset = payload_start + size
        else:
            continue
        array = _npy_prefix(buf)
        if array is not None and name.endswith(".npy"):
            members[name[: -len(".npy")]] = array
    return members


def _npy_prefix(buf: bytes) -> np.ndarray | None:
    """Decode the complete-row prefix of a (possibly truncated) ``.npy``."""
    fp = io.BytesIO(buf)
    try:
        version = np.lib.format.read_magic(fp)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(fp)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(fp)
        else:
            return None
    except Exception:
        return None
    if fortran or dtype.hasobject:
        return None
    body = buf[fp.tell():]
    if shape == ():  # 0-d scalar (the metadata blob): all or nothing
        if len(body) < dtype.itemsize:
            return None
        return np.frombuffer(body[: dtype.itemsize], dtype=dtype).reshape(())
    if len(shape) != 1:
        return None
    rows = min(shape[0], len(body) // dtype.itemsize)
    return np.frombuffer(body[: rows * dtype.itemsize], dtype=dtype).copy()


def rebuild_world(bundle: TraceBundle):
    """Reconstruct the synthetic Internet a bundle was captured on.

    The world (AS registry, graph wiring, path jitter) is a deterministic
    function of its seed, and the Table I testbed deployment consumes the
    world's allocators in a fixed order — so replaying both yields the
    exact path model the capture saw.
    """
    from repro.topology.testbed import build_napa_wine_testbed
    from repro.topology.world import World, WorldConfig

    try:
        config = WorldConfig(
            seed=int(bundle.meta["world_seed"]),
            subnet_prefixlen=int(bundle.meta.get("subnet_prefixlen", 24)),
        )
    except KeyError as exc:
        raise TraceError("bundle lacks world_seed; cannot rebuild paths") from exc
    world = World(config)
    build_napa_wine_testbed(world)
    return world
