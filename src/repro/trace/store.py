"""Trace persistence: save/load experiment bundles as ``.npz`` archives.

A bundle holds everything needed to re-run the analysis without re-running
the simulation: the transfer log, signaling intervals, host table and a
JSON metadata blob (profile name, duration, seed).  The NAPA-WINE project
distributed its traces to the community on request; this is our equivalent
exchange format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.trace.hosts import HOST_DTYPE, HostTable
from repro.trace.records import SIGNALING_DTYPE, TRANSFER_DTYPE

#: Format marker; bump on incompatible layout changes.
FORMAT_VERSION = 1


@dataclass
class TraceBundle:
    """One saved experiment: raw logs + ground truth + metadata."""

    transfers: np.ndarray
    signaling: np.ndarray
    hosts: HostTable
    meta: dict

    def __post_init__(self) -> None:
        if self.transfers.dtype != TRANSFER_DTYPE:
            raise TraceError("bundle transfers have wrong dtype")
        if self.signaling.dtype != SIGNALING_DTYPE:
            raise TraceError("bundle signaling has wrong dtype")

    @classmethod
    def from_result(cls, result) -> "TraceBundle":
        """Build a bundle from a :class:`SimulationResult`."""
        meta = {
            "profile": result.profile.name,
            "duration_s": result.config.duration_s,
            "seed": result.config.seed,
            "swarm_size": result.profile.swarm_size,
            "events": result.events_processed,
            # The synthetic Internet is a pure function of its seed; storing
            # it lets analysis rebuild the exact path model (for TTLs).
            "world_seed": result.world.config.seed,
            "subnet_prefixlen": result.world.config.subnet_prefixlen,
        }
        return cls(
            transfers=result.transfers,
            signaling=result.signaling,
            hosts=result.hosts,
            meta=meta,
        )


def save_trace_bundle(path: str | Path, bundle: TraceBundle) -> Path:
    """Write a bundle to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = dict(bundle.meta)
    meta["format_version"] = FORMAT_VERSION
    np.savez_compressed(
        path,
        transfers=bundle.transfers,
        signaling=bundle.signaling,
        hosts=bundle.hosts.rows,
        meta=np.array(json.dumps(meta)),
    )
    return path


def load_trace_bundle(path: str | Path) -> TraceBundle:
    """Read a bundle written by :func:`save_trace_bundle`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        try:
            meta = json.loads(str(data["meta"]))
            transfers = np.asarray(data["transfers"], dtype=TRANSFER_DTYPE)
            signaling = np.asarray(data["signaling"], dtype=SIGNALING_DTYPE)
            hosts = HostTable(np.asarray(data["hosts"], dtype=HOST_DTYPE))
        except KeyError as exc:
            raise TraceError(f"{path} is not a trace bundle: missing {exc}") from exc
    version = meta.pop("format_version", None)
    if version != FORMAT_VERSION:
        raise TraceError(
            f"{path}: unsupported bundle format {version!r} (expected {FORMAT_VERSION})"
        )
    return TraceBundle(transfers=transfers, signaling=signaling, hosts=hosts, meta=meta)


def rebuild_world(bundle: TraceBundle):
    """Reconstruct the synthetic Internet a bundle was captured on.

    The world (AS registry, graph wiring, path jitter) is a deterministic
    function of its seed, and the Table I testbed deployment consumes the
    world's allocators in a fixed order — so replaying both yields the
    exact path model the capture saw.
    """
    from repro.topology.testbed import build_napa_wine_testbed
    from repro.topology.world import World, WorldConfig

    try:
        config = WorldConfig(
            seed=int(bundle.meta["world_seed"]),
            subnet_prefixlen=int(bundle.meta.get("subnet_prefixlen", 24)),
        )
    except KeyError as exc:
        raise TraceError("bundle lacks world_seed; cannot rebuild paths") from exc
    world = World(config)
    build_napa_wine_testbed(world)
    return world
