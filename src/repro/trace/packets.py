"""Packet-train synthesis: turn transfers into the packets a sniffer sees.

A video chunk is serialised as a burst of MTU-sized packets whose spacing
is the serialisation time of one packet at the path bottleneck — the
"packet train" the paper's minimum inter-packet-gap (IPG) estimator
exploits: 1250 B at 10 Mb/s take exactly 1 ms, so ``min IPG < 1 ms`` flags
a >10 Mb/s path.  Signaling and control exchanges are single small
datagrams.

Per-pair deterministic jitter widens gaps slightly (queueing never
*shrinks* the dispersion of a bottleneck-paced train below the
serialisation time, so jitter is one-sided), and the same jitter is used
by the flow aggregator so packet-level and flow-level analyses agree
exactly.
"""

from __future__ import annotations

import numpy as np

from repro._hashing import pair_uniform
from repro.errors import TraceError
from repro.trace.hosts import HostTable
from repro.trace.records import PACKET_DTYPE, SIGNALING_DTYPE, TRANSFER_DTYPE, PacketKind
from repro.units import BITS_PER_BYTE

#: Video payload bytes per packet (the paper's reference size).
PACKET_PAYLOAD_BYTES = 1250

#: Hash-stream tag for IPG jitter (so it never collides with path jitter).
_IPG_SEED = 0x1B6

#: One-sided multiplicative jitter span on packet gaps.
IPG_JITTER_SPAN = 0.08


def transfer_gaps(transfers: np.ndarray, hosts: HostTable) -> np.ndarray:
    """Per-transfer packet spacing in seconds (inf for single-packet ones).

    The train is paced by the *sender's uplink* serialisation time.  This
    is a deliberate modelling choice (DESIGN.md §7): the paper's estimator
    classifies the peer's capacity from min IPG, and over long flows the
    minimum gap reflects the sender-side pacing — last-mile queues compress
    bursts as often as they stretch them, so the observed minimum converges
    to the uplink serialisation time even behind slower probe downlinks.

    This is the exact quantity the flow aggregator uses as the transfer's
    contribution to a flow's min-IPG, keeping both analysis paths equal.
    """
    npkts = packet_counts(transfers)
    up = hosts.gather(transfers["src"], "up_bps")
    base = PACKET_PAYLOAD_BYTES * BITS_PER_BYTE / up
    jitter = 1.0 + IPG_JITTER_SPAN * pair_uniform(
        transfers["src"], transfers["dst"], _IPG_SEED
    )
    gaps = base * jitter
    return np.where(npkts >= 2, gaps, np.inf)


def packet_counts(transfers: np.ndarray) -> np.ndarray:
    """Packets per transfer: video chunks are cut at the MTU, the rest are
    single datagrams."""
    video = transfers["kind"] == int(PacketKind.VIDEO)
    counts = np.ones(len(transfers), dtype=np.int64)
    counts[video] = -(-transfers["bytes"][video].astype(np.int64) // PACKET_PAYLOAD_BYTES)
    return counts


class PacketSynthesizer:
    """Expand transfers into per-packet records with timestamps and TTLs."""

    def __init__(self, hosts: HostTable, paths) -> None:
        """``paths`` is a :class:`repro.topology.paths.PathModel`."""
        self._hosts = hosts
        self._paths = paths

    def ttl_for(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Received TTL per (src, dst) pair: initial TTL − forward hops."""
        h = self._hosts
        hops = self._paths.hops_many(
            src,
            h.gather(src, "asn"),
            h.gather(src, "subnet"),
            h.gather(src, "access_depth"),
            dst,
            h.gather(dst, "asn"),
            h.gather(dst, "subnet"),
            h.gather(dst, "access_depth"),
        )
        ttl = h.gather(src, "initial_ttl").astype(np.int64) - hops
        if np.any(ttl <= 0):
            raise TraceError("path longer than initial TTL; topology inconsistent")
        return ttl.astype(np.uint8)

    def expand(self, transfers: np.ndarray) -> np.ndarray:
        """Expand a transfer log into a time-sorted packet trace."""
        if transfers.dtype != TRANSFER_DTYPE:
            raise TraceError("expand() wants a TRANSFER_DTYPE array")
        n = len(transfers)
        if n == 0:
            return np.empty(0, dtype=PACKET_DTYPE)
        counts = packet_counts(transfers)
        gaps = transfer_gaps(transfers, self._hosts)
        total = int(counts.sum())

        # Within-burst packet index via the standard repeat/cumsum trick.
        owner = np.repeat(np.arange(n), counts)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        within = np.arange(total) - np.repeat(starts, counts)

        out = np.empty(total, dtype=PACKET_DTYPE)
        finite_gaps = np.where(np.isfinite(gaps), gaps, 0.0)
        out["ts"] = transfers["ts"][owner] + within * finite_gaps[owner]
        out["src"] = transfers["src"][owner]
        out["dst"] = transfers["dst"][owner]
        out["kind"] = transfers["kind"][owner]

        # Sizes: full MTU payloads except a possibly-short trailing packet.
        nbytes = transfers["bytes"].astype(np.int64)
        last_size = nbytes - (counts - 1) * PACKET_PAYLOAD_BYTES
        is_last = within == (counts[owner] - 1)
        out["size"] = np.where(is_last, last_size[owner], PACKET_PAYLOAD_BYTES)

        out["ttl"] = self.ttl_for(out["src"], out["dst"])
        return out[np.argsort(out["ts"], kind="stable")]


def expand_signaling(intervals: np.ndarray) -> np.ndarray:
    """Expand periodic signaling intervals into individual transfers.

    Each interval ``(src, dst, start, stop, interval, bytes)`` becomes
    ``floor((stop-start)/interval) + 1`` SIGNALING transfers at
    ``start + k·interval``.  Bottleneck is irrelevant for single small
    datagrams and set to +inf.
    """
    if intervals.dtype != SIGNALING_DTYPE:
        raise TraceError("expand_signaling() wants a SIGNALING_DTYPE array")
    n = len(intervals)
    if n == 0:
        return np.empty(0, dtype=TRANSFER_DTYPE)
    spans = intervals["stop"] - intervals["start"]
    counts = np.floor(spans / intervals["interval"]).astype(np.int64) + 1
    total = int(counts.sum())
    owner = np.repeat(np.arange(n), counts)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total) - np.repeat(starts, counts)

    out = np.empty(total, dtype=TRANSFER_DTYPE)
    out["ts"] = intervals["start"][owner] + within * intervals["interval"][owner]
    out["src"] = intervals["src"][owner]
    out["dst"] = intervals["dst"][owner]
    out["bytes"] = intervals["bytes"][owner]
    out["kind"] = int(PacketKind.SIGNALING)
    out["bottleneck"] = np.inf
    return out[np.argsort(out["ts"], kind="stable")]
