"""Classic libpcap export/import for synthesised packet traces.

The NAPA-WINE dataset was distributed as packet captures; this module
round-trips our :data:`~repro.trace.records.PACKET_DTYPE` arrays through
the classic pcap format (magic ``0xa1b2c3d4``, microsecond timestamps) so
traces can be inspected with tcpdump/tshark or fed to third-party tools.

Each record is rendered as an Ethernet/IPv4/UDP datagram: the IPv4 header
carries the true source/destination addresses and TTL; the UDP
destination port encodes the packet kind (so ground-truth labels survive
the export, in the spirit of an annotated dataset); the UDP payload is
zero-filled to the recorded size.

Only what this library itself writes is supported on read — this is an
interchange format for *our* traces, not a general pcap parser.
"""

from __future__ import annotations

import struct
import warnings
from pathlib import Path

import numpy as np

from repro.errors import TraceError, TraceWarning
from repro.trace.records import PACKET_DTYPE, PacketKind

#: Classic pcap magic (little-endian, microsecond resolution).
PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1

#: UDP ports encoding the packet kind (arbitrary registered-range values).
KIND_TO_PORT = {
    PacketKind.SIGNALING: 40000,
    PacketKind.VIDEO: 40001,
    PacketKind.CONTROL: 40002,
}
PORT_TO_KIND = {v: k for k, v in KIND_TO_PORT.items()}

_ETH_HEADER = bytes(12) + struct.pack(">H", 0x0800)  # zero MACs, IPv4
_IP_HEADER_LEN = 20
_UDP_HEADER_LEN = 8
_SRC_PORT = 40000


def _ipv4_header(total_len: int, ttl: int, src: int, dst: int) -> bytes:
    """A minimal IPv4 header (no options, UDP, checksum zeroed)."""
    return struct.pack(
        ">BBHHHBBHII",
        0x45,          # version 4, IHL 5
        0,             # DSCP/ECN
        total_len,     # total length
        0, 0,          # identification, flags/fragment
        ttl,
        17,            # protocol UDP
        0,             # header checksum (not validated by readers we target)
        src,
        dst,
    )


def write_pcap(path: str | Path, packets: np.ndarray) -> Path:
    """Write a packet array as a classic pcap file.

    Timestamps are truncated to microseconds (pcap's resolution); the
    reader reproduces them to that precision.
    """
    if packets.dtype != PACKET_DTYPE:
        raise TraceError("write_pcap() wants a PACKET_DTYPE array")
    known = np.isin(packets["kind"], [int(k) for k in KIND_TO_PORT])
    if not known.all():
        bad = sorted(set(packets["kind"][~known].tolist()))
        raise TraceError(
            f"cannot export packets with unknown kind codes {bad}; "
            f"known kinds: {sorted(int(k) for k in KIND_TO_PORT)}"
        )
    path = Path(path)
    if path.suffix != ".pcap":
        path = path.with_suffix(path.suffix + ".pcap")

    with open(path, "wb") as fh:
        fh.write(
            struct.pack(
                "<IHHiIII",
                PCAP_MAGIC,
                *PCAP_VERSION,
                0,          # thiszone
                0,          # sigfigs
                65535,      # snaplen
                LINKTYPE_ETHERNET,
            )
        )
        for pkt in packets:
            payload_len = int(pkt["size"])
            ip_total = _IP_HEADER_LEN + _UDP_HEADER_LEN + payload_len
            kind_port = KIND_TO_PORT[PacketKind(int(pkt["kind"]))]
            frame = (
                _ETH_HEADER
                + _ipv4_header(ip_total, int(pkt["ttl"]), int(pkt["src"]), int(pkt["dst"]))
                + struct.pack(
                    ">HHHH",
                    _SRC_PORT,
                    kind_port,
                    _UDP_HEADER_LEN + payload_len,
                    0,
                )
                + bytes(payload_len)
            )
            ts = float(pkt["ts"])
            sec = int(ts)
            usec = int(round((ts - sec) * 1_000_000))
            if usec == 1_000_000:  # rounding spill-over at .999999x
                sec, usec = sec + 1, 0
            fh.write(struct.pack("<IIII", sec, usec, len(frame), len(frame)))
            fh.write(frame)
    return path


def read_pcap(path: str | Path, *, strict: bool = True) -> np.ndarray:
    """Read a pcap file written by :func:`write_pcap` back into packets.

    With ``strict=False`` a malformed tail (a capture cut off mid-record,
    the classic artifact of a sniffer killed mid-experiment) salvages the
    complete record prefix and emits a :class:`TraceWarning` instead of
    raising; a damaged *global* header is unrecoverable either way.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise TraceError(f"cannot read pcap {path}: {exc}") from exc
    if len(data) < 24:
        raise TraceError(f"{path}: truncated pcap header")
    magic, vmaj, vmin, _tz, _sig, _snap, linktype = struct.unpack(
        "<IHHiIII", data[:24]
    )
    if magic != PCAP_MAGIC:
        raise TraceError(f"{path}: unsupported pcap magic {magic:#x}")
    if linktype != LINKTYPE_ETHERNET:
        raise TraceError(f"{path}: unsupported linktype {linktype}")

    def bail(message: str) -> bool:
        """Raise in strict mode; warn and stop the scan otherwise."""
        if strict:
            raise TraceError(message)
        warnings.warn(
            f"{message}; salvaged the complete record prefix", TraceWarning,
            stacklevel=2,
        )
        return True

    records = []
    offset = 24
    while offset < len(data):
        if offset + 16 > len(data):
            if bail(f"{path}: truncated record header at {offset}"):
                break
        sec, usec, incl, orig = struct.unpack("<IIII", data[offset : offset + 16])
        offset += 16
        if incl != orig or offset + incl > len(data):
            if bail(f"{path}: truncated record body at {offset}"):
                break
        frame = data[offset : offset + incl]
        offset += incl

        if len(frame) < 14 + _IP_HEADER_LEN + _UDP_HEADER_LEN:
            if bail(f"{path}: frame too short"):
                break
        ip = frame[14 : 14 + _IP_HEADER_LEN]
        _vihl, _tos, _total, _ident, _frag, ttl, proto, _ck, src, dst = struct.unpack(
            ">BBHHHBBHII", ip
        )
        if proto != 17:
            if bail(f"{path}: non-UDP frame"):
                break
        udp = frame[14 + _IP_HEADER_LEN : 14 + _IP_HEADER_LEN + _UDP_HEADER_LEN]
        _sport, dport, udp_len, _ = struct.unpack(">HHHH", udp)
        kind = PORT_TO_KIND.get(dport)
        if kind is None:
            if bail(f"{path}: unknown kind port {dport}"):
                break
        records.append(
            (sec + usec / 1e6, src, dst, udp_len - _UDP_HEADER_LEN, ttl, int(kind))
        )

    out = np.empty(len(records), dtype=PACKET_DTYPE)
    for i, row in enumerate(records):
        out[i] = row
    return out
