"""Classic libpcap export/import for synthesised packet traces.

The NAPA-WINE dataset was distributed as packet captures; this module
round-trips our :data:`~repro.trace.records.PACKET_DTYPE` arrays through
the classic pcap format (magic ``0xa1b2c3d4``, microsecond timestamps) so
traces can be inspected with tcpdump/tshark or fed to third-party tools.

Each record is rendered as an Ethernet/IPv4/UDP datagram: the IPv4 header
carries the true source/destination addresses and TTL; the UDP
destination port encodes the packet kind (so ground-truth labels survive
the export, in the spirit of an annotated dataset); the UDP payload is
zero-filled to the recorded size.

Only what this library itself writes is supported on read — this is an
interchange format for *our* traces, not a general pcap parser.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.trace.records import PACKET_DTYPE, PacketKind

#: Classic pcap magic (little-endian, microsecond resolution).
PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1

#: UDP ports encoding the packet kind (arbitrary registered-range values).
KIND_TO_PORT = {
    PacketKind.SIGNALING: 40000,
    PacketKind.VIDEO: 40001,
    PacketKind.CONTROL: 40002,
}
PORT_TO_KIND = {v: k for k, v in KIND_TO_PORT.items()}

_ETH_HEADER = bytes(12) + struct.pack(">H", 0x0800)  # zero MACs, IPv4
_IP_HEADER_LEN = 20
_UDP_HEADER_LEN = 8
_SRC_PORT = 40000


def _ipv4_header(total_len: int, ttl: int, src: int, dst: int) -> bytes:
    """A minimal IPv4 header (no options, UDP, checksum zeroed)."""
    return struct.pack(
        ">BBHHHBBHII",
        0x45,          # version 4, IHL 5
        0,             # DSCP/ECN
        total_len,     # total length
        0, 0,          # identification, flags/fragment
        ttl,
        17,            # protocol UDP
        0,             # header checksum (not validated by readers we target)
        src,
        dst,
    )


def write_pcap(path: str | Path, packets: np.ndarray) -> Path:
    """Write a packet array as a classic pcap file.

    Timestamps are truncated to microseconds (pcap's resolution); the
    reader reproduces them to that precision.
    """
    if packets.dtype != PACKET_DTYPE:
        raise TraceError("write_pcap() wants a PACKET_DTYPE array")
    path = Path(path)
    if path.suffix != ".pcap":
        path = path.with_suffix(path.suffix + ".pcap")

    with open(path, "wb") as fh:
        fh.write(
            struct.pack(
                "<IHHiIII",
                PCAP_MAGIC,
                *PCAP_VERSION,
                0,          # thiszone
                0,          # sigfigs
                65535,      # snaplen
                LINKTYPE_ETHERNET,
            )
        )
        for pkt in packets:
            payload_len = int(pkt["size"])
            ip_total = _IP_HEADER_LEN + _UDP_HEADER_LEN + payload_len
            frame = (
                _ETH_HEADER
                + _ipv4_header(ip_total, int(pkt["ttl"]), int(pkt["src"]), int(pkt["dst"]))
                + struct.pack(
                    ">HHHH",
                    _SRC_PORT,
                    KIND_TO_PORT[PacketKind(int(pkt["kind"]))],
                    _UDP_HEADER_LEN + payload_len,
                    0,
                )
                + bytes(payload_len)
            )
            ts = float(pkt["ts"])
            sec = int(ts)
            usec = int(round((ts - sec) * 1_000_000))
            if usec == 1_000_000:  # rounding spill-over at .999999x
                sec, usec = sec + 1, 0
            fh.write(struct.pack("<IIII", sec, usec, len(frame), len(frame)))
            fh.write(frame)
    return path


def read_pcap(path: str | Path) -> np.ndarray:
    """Read a pcap file written by :func:`write_pcap` back into packets."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) < 24:
        raise TraceError(f"{path}: truncated pcap header")
    magic, vmaj, vmin, _tz, _sig, _snap, linktype = struct.unpack(
        "<IHHiIII", data[:24]
    )
    if magic != PCAP_MAGIC:
        raise TraceError(f"{path}: unsupported pcap magic {magic:#x}")
    if linktype != LINKTYPE_ETHERNET:
        raise TraceError(f"{path}: unsupported linktype {linktype}")

    records = []
    offset = 24
    while offset < len(data):
        if offset + 16 > len(data):
            raise TraceError(f"{path}: truncated record header at {offset}")
        sec, usec, incl, orig = struct.unpack("<IIII", data[offset : offset + 16])
        offset += 16
        if incl != orig or offset + incl > len(data):
            raise TraceError(f"{path}: truncated record body at {offset}")
        frame = data[offset : offset + incl]
        offset += incl

        if len(frame) < 14 + _IP_HEADER_LEN + _UDP_HEADER_LEN:
            raise TraceError(f"{path}: frame too short")
        ip = frame[14 : 14 + _IP_HEADER_LEN]
        _vihl, _tos, _total, _ident, _frag, ttl, proto, _ck, src, dst = struct.unpack(
            ">BBHHHBBHII", ip
        )
        if proto != 17:
            raise TraceError(f"{path}: non-UDP frame")
        udp = frame[14 + _IP_HEADER_LEN : 14 + _IP_HEADER_LEN + _UDP_HEADER_LEN]
        _sport, dport, udp_len, _ = struct.unpack(">HHHH", udp)
        kind = PORT_TO_KIND.get(dport)
        if kind is None:
            raise TraceError(f"{path}: unknown kind port {dport}")
        records.append(
            (sec + usec / 1e6, src, dst, udp_len - _UDP_HEADER_LEN, ttl, int(kind))
        )

    out = np.empty(len(records), dtype=PACKET_DTYPE)
    for i, row in enumerate(records):
        out[i] = row
    return out
