"""Packet/flow trace layer: what tcpdump at the probes would have seen.

The engine logs *transfers* (one record per application-level exchange:
a video chunk, a handshake, a request) plus *signaling intervals* (periodic
buffer-map/keepalive exchanges between partners).  This subpackage turns
that log into analysis-ready artifacts:

* :mod:`repro.trace.records` — structured dtypes and kind codes;
* :mod:`repro.trace.hosts` — the host attribute table (ground truth);
* :mod:`repro.trace.capture` — probe-side capture filtering;
* :mod:`repro.trace.packets` — transfer → packet-train expansion (IPG,
  TTL), vectorised;
* :mod:`repro.trace.flows` — directional flow aggregation (the input to
  the awareness framework);
* :mod:`repro.trace.store` — npz persistence for traces and host tables.
"""

from repro.trace.records import (
    FLOW_DTYPE,
    PACKET_DTYPE,
    SIGNALING_DTYPE,
    TRANSFER_DTYPE,
    PacketKind,
)
from repro.trace.hosts import HostTable
from repro.trace.capture import captured_by, probe_transfers
from repro.trace.packets import PacketSynthesizer, expand_signaling
from repro.trace.flows import FlowTable, build_flow_table
from repro.trace.store import (
    TraceBundle,
    load_trace_bundle,
    rebuild_world,
    save_trace_bundle,
)
from repro.trace.pcap import read_pcap, write_pcap

__all__ = [
    "FLOW_DTYPE",
    "PACKET_DTYPE",
    "SIGNALING_DTYPE",
    "TRANSFER_DTYPE",
    "PacketKind",
    "HostTable",
    "captured_by",
    "probe_transfers",
    "PacketSynthesizer",
    "expand_signaling",
    "FlowTable",
    "build_flow_table",
    "TraceBundle",
    "save_trace_bundle",
    "load_trace_bundle",
    "rebuild_world",
    "read_pcap",
    "write_pcap",
]
