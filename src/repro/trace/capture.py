"""Vantage-point capture: keep only traffic a probe's sniffer saw.

The paper's dataset is packet-level captures taken *at the probes*; traffic
between two remote peers never appears in it.  These helpers filter record
arrays (transfers or packets — anything with ``src``/``dst`` columns) down
to the probe-visible subset, or to a single probe's view.

Each filter accepts an optional :class:`~repro.obs.telemetry.Telemetry`
and tallies records seen vs. kept (``capture/records_in`` /
``capture/records_kept``) — the per-stage accounting of what the capture
dropped that the run manifest reports.  Counting never alters the
returned arrays.
"""

from __future__ import annotations

import numpy as np

from repro.obs.telemetry import Telemetry


def _touch_mask(records: np.ndarray, ips: np.ndarray) -> np.ndarray:
    ips = np.asarray(ips, dtype=np.uint32)
    return np.isin(records["src"], ips) | np.isin(records["dst"], ips)


def captured_by(
    records: np.ndarray,
    probe_ips: np.ndarray,
    *,
    telemetry: Telemetry | None = None,
) -> np.ndarray:
    """Records visible to *any* probe (the merged campaign dataset)."""
    if len(records) == 0:
        return records
    kept = records[_touch_mask(records, probe_ips)]
    if telemetry is not None:
        telemetry.count("capture/records_in", len(records))
        telemetry.count("capture/records_kept", len(kept))
    return kept


def probe_transfers(
    records: np.ndarray,
    probe_ip: int,
    *,
    telemetry: Telemetry | None = None,
) -> np.ndarray:
    """Records visible to one probe: everything it sent or received."""
    if len(records) == 0:
        return records
    ip = np.uint32(probe_ip)
    kept = records[(records["src"] == ip) | (records["dst"] == ip)]
    if telemetry is not None:
        telemetry.count("capture/records_in", len(records))
        telemetry.count("capture/records_kept", len(kept))
    return kept


def split_directions(records: np.ndarray, probe_ip: int) -> tuple[np.ndarray, np.ndarray]:
    """A probe's view split into (received, sent) record arrays.

    ``received`` holds records whose destination is the probe (download
    direction, the ``e → p`` flows of the framework); ``sent`` holds the
    upload direction (``p → e``).
    """
    ip = np.uint32(probe_ip)
    own = probe_transfers(records, probe_ip)
    return own[own["dst"] == ip], own[own["src"] == ip]
