"""Host attribute table: ground truth for every address in an experiment.

The engine emits one :class:`HostTable` per simulation.  It serves two
distinct consumers, and the separation matters:

* the **trace layer** uses the full table (capacities, TTLs, access
  depths) to synthesise faithful packets — this mirrors physical reality;
* the **analysis registry** (:mod:`repro.heuristics.registry`) is built
  from the *public* columns only (ip → AS / country), mirroring what a
  whois/GeoIP database would reveal; capacities and classes must be
  *inferred* from traffic, exactly as in the paper.

Lookups are vectorised via ``searchsorted`` on the sorted address column.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError

HOST_DTYPE = np.dtype(
    [
        ("ip", "u4"),
        ("asn", "i4"),
        ("cc", "U2"),
        ("subnet", "u4"),
        ("up_bps", "f8"),
        ("down_bps", "f8"),
        ("is_probe", "?"),
        ("highbw", "?"),
        ("initial_ttl", "u1"),
        ("access_depth", "u1"),
    ]
)


class HostTable:
    """Sorted-by-address host attribute table with vectorised lookup."""

    def __init__(self, rows: np.ndarray) -> None:
        if rows.dtype != HOST_DTYPE:
            raise TraceError(f"host table dtype mismatch: {rows.dtype}")
        order = np.argsort(rows["ip"], kind="stable")
        self._rows = rows[order]
        ips = self._rows["ip"]
        if len(ips) > 1 and np.any(ips[1:] == ips[:-1]):
            raise TraceError("duplicate addresses in host table")

    @classmethod
    def from_columns(cls, **columns: np.ndarray) -> "HostTable":
        """Build from aligned column arrays named after ``HOST_DTYPE`` fields."""
        n = len(columns["ip"])
        rows = np.empty(n, dtype=HOST_DTYPE)
        for name in HOST_DTYPE.names:
            rows[name] = columns[name]
        return cls(rows)

    @property
    def rows(self) -> np.ndarray:
        """The underlying sorted structured array (do not mutate)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    # ---------------------------------------------------------------- lookup
    def indices_of(self, ips: np.ndarray) -> np.ndarray:
        """Row indices for an address array; raises on unknown addresses."""
        ips = np.asarray(ips, dtype=np.uint32)
        table = self._rows["ip"]
        idx = np.searchsorted(table, ips)
        idx_clipped = np.minimum(idx, len(table) - 1)
        if len(table) == 0 or not np.all(table[idx_clipped] == ips):
            missing = ips[(idx >= len(table)) | (table[idx_clipped] != ips)]
            raise TraceError(f"addresses not in host table: {missing[:5]}...")
        return idx_clipped

    def gather(self, ips: np.ndarray, field: str) -> np.ndarray:
        """Vectorised attribute lookup: ``field`` values for each address."""
        return self._rows[field][self.indices_of(ips)]

    def row_for(self, ip: int) -> np.void:
        """Single-address lookup returning the full record."""
        idx = self.indices_of(np.array([ip], dtype=np.uint32))
        return self._rows[int(idx[0])]

    def __contains__(self, ip: int) -> bool:
        table = self._rows["ip"]
        idx = np.searchsorted(table, np.uint32(ip))
        return idx < len(table) and table[idx] == np.uint32(ip)

    # ------------------------------------------------------------ convenience
    @property
    def probe_ips(self) -> np.ndarray:
        """Addresses of the NAPA-WINE probes (the set W of the framework)."""
        return self._rows["ip"][self._rows["is_probe"]]

    def public_view(self) -> "HostTable":
        """The table a *measurement analyst* may legitimately use.

        Capacities and ground-truth class flags are zeroed; only address,
        AS, country and subnet survive — the whois/GeoIP information the
        paper's methodology relies on.
        """
        rows = self._rows.copy()
        rows["up_bps"] = 0.0
        rows["down_bps"] = 0.0
        rows["highbw"] = False
        rows["initial_ttl"] = 0
        rows["access_depth"] = 0
        return HostTable(rows)
