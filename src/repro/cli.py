"""Command-line interface.

Three subcommands mirror the measurement workflow:

* ``simulate``  — run one application experiment, save the trace bundle;
* ``analyze``   — apply the awareness framework to a saved bundle;
* ``campaign``  — run the full three-application campaign and print every
  table and figure of the paper plus the shape-check verdicts;
* ``localize``  — the network-friendliness extension: per-app traffic
  cost plus the aware-client what-if comparison;
* ``replicate`` — Table IV with mean ± std across seed replications;
* ``robustness`` — headline indices under increasing fault-injection
  severity (bursty loss, churn storms, sniffer outages, clock skew);
* ``stats``     — summarise a run manifest (stage timers, shard
  outcomes, engine/capture counters) written by ``campaign``.

Invoke as ``repro-p2ptv`` (console script) or ``python -m repro``.
The ``campaign``, ``replicate`` and ``robustness`` subcommands accept
``--workers N`` / ``--backend {serial,process,supervised}`` to fan
independent experiment shards out over a process pool (see
:mod:`repro.exec`), plus the supervision knobs ``--shard-timeout`` /
``--max-attempts`` / ``--quarantine-dir`` — naming any of them routes
execution through the supervised runtime
(:mod:`repro.exec.supervisor`: deadlines, crash isolation, retry with
backoff, poison-shard quarantine).
``simulate``, ``campaign``, ``replicate`` and ``robustness`` accept
``--scheduler {mesh-pull,rarest,edf,push}`` to run under an alternative
chunk-scheduling policy (see :mod:`repro.streaming.schedulers`; env
default: ``REPRO_SCHEDULER``), and ``--engine {object,soa}`` to pick the
engine core (see :mod:`repro.streaming.soa`; env default:
``REPRO_ENGINE``) — both cores are byte-identical for a fixed seed.
Global ``--log-level`` / ``--log-format`` control the structured logger
(:mod:`repro.obs`; env: ``REPRO_LOG_LEVEL`` / ``REPRO_LOG_FORMAT``), and
``campaign`` writes a JSON run manifest next to its outputs
(``--manifest PATH``, ``--no-manifest`` to disable).
Errors from the reproduction stack (:class:`~repro.errors.ReproError`)
exit with status 2 and a one-line message instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.obs.log import LEVELS, configure
from repro.streaming.profiles import PROFILES


def _start_profiler(args: argparse.Namespace):
    """Start a cProfile session when ``--profile`` was given (else None)."""
    if getattr(args, "profile", None) is None:
        return None
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    return profiler


def _dump_profiler(profiler, args: argparse.Namespace, default_path: str) -> str | None:
    """Stop ``profiler`` and dump pstats; returns the dump path."""
    if profiler is None:
        return None
    profiler.disable()
    path = args.profile if args.profile != "auto" else default_path
    profiler.dump_stats(path)
    print(
        f"cProfile stats written to {path} "
        f"(inspect: python -m pstats {path})",
        file=sys.stderr,
    )
    return path


def _add_profile_flag(parser: argparse.ArgumentParser, where: str) -> None:
    parser.add_argument(
        "--profile", nargs="?", const="auto", default=None, metavar="PATH",
        help=f"profile the run under cProfile and dump pstats {where}",
    )


def _add_scheduler_flag(parser: argparse.ArgumentParser) -> None:
    # Validated by repro.streaming.schedulers.get_scheduler (not argparse
    # choices) so an unknown name exits 2 with the same ConfigurationError
    # message config-level validation produces.
    from repro.streaming.schedulers import SCHEDULER_NAMES

    parser.add_argument(
        "--scheduler", default=None, metavar="POLICY",
        help="chunk-scheduling policy: " + ", ".join(SCHEDULER_NAMES)
        + " (default: mesh-pull, or $REPRO_SCHEDULER)",
    )


def _scheduler(args: argparse.Namespace) -> str:
    """Resolve and validate the run's chunk-scheduling policy."""
    from repro.streaming.schedulers import default_scheduler, get_scheduler

    name = args.scheduler if args.scheduler is not None else default_scheduler()
    get_scheduler(name)  # unknown names raise ConfigurationError → exit 2
    return name


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    # Same contract as --scheduler: validated by get_engine, not argparse
    # choices, so unknown names exit 2 with the ConfigurationError text.
    from repro.streaming.soa import ENGINE_NAMES

    parser.add_argument(
        "--engine", default=None, metavar="CORE",
        help="engine core: " + ", ".join(ENGINE_NAMES)
        + " (default: object, or $REPRO_ENGINE); byte-identical traces",
    )


def _engine(args: argparse.Namespace) -> str:
    """Resolve and validate the run's engine core."""
    from repro.streaming.soa import default_engine, get_engine

    name = args.engine if args.engine is not None else default_engine()
    get_engine(name)  # unknown names raise ConfigurationError → exit 2
    return name


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro import run_experiment
    from repro.trace.store import TraceBundle, save_trace_bundle

    profiler = _start_profiler(args)
    result = run_experiment(
        args.app,
        duration_s=args.duration,
        seed=args.seed,
        scheduler=_scheduler(args),
        engine=_engine(args),
    )
    _dump_profiler(profiler, args, args.out + ".pstats")
    bundle = TraceBundle.from_result(result)
    path = save_trace_bundle(args.out, bundle)
    print(
        f"{args.app}: {args.duration:.0f}s simulated, "
        f"{len(result.transfers)} transfers, {result.events_processed} events"
    )
    print(f"trace bundle written to {path}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.framework import AwarenessAnalyzer
    from repro.experiments.table4 import Table4, cells_from_report
    from repro.heuristics.registry import IpRegistry
    from repro.report.tables import render_table4
    from repro.trace.flows import build_flow_table
    from repro.trace.store import load_trace_bundle, rebuild_world

    bundle = load_trace_bundle(args.trace)
    # Trace bundles are self-contained: the registry is rebuilt from the
    # per-host records (a GeoIP-style database), and the path model from
    # the recorded world seed (the world is a pure function of it).
    registry = IpRegistry.from_hosts(bundle.hosts)
    world = rebuild_world(bundle)
    flows = build_flow_table(
        bundle.transfers, bundle.signaling, bundle.hosts, world.paths
    )
    report = AwarenessAnalyzer(registry).analyze(flows)
    app = bundle.meta.get("profile", "trace")
    print(render_table4(Table4(cells=cells_from_report(app, report))))
    bias = report.self_bias_contributors["download"]
    print(
        f"\nself-induced bias (download contributors): "
        f"peers {bias.peer_percent:.1f}%, bytes {bias.byte_percent:.1f}%"
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.experiments import (
        CampaignConfig,
        build_figure1,
        build_figure2,
        build_table1,
        build_table2,
        build_table3,
        build_table4,
        run_campaign,
    )
    from repro.report.compare import check_campaign_shape, render_checks
    from repro.report.figures import render_figure1, render_figure2
    from repro.report.tables import (
        render_table1,
        render_table2,
        render_table3,
        render_table4,
    )

    from repro.faults.plan import ImpairmentPlan

    impairment = None
    if args.impair > 0:
        impairment = ImpairmentPlan.preset(
            args.impair, seed=args.fault_seed, duration_s=args.duration
        )
    config = CampaignConfig(
        apps=tuple(args.apps),
        duration_s=args.duration,
        seed=args.seed,
        scale=args.scale,
        max_retries=args.max_retries,
        validate=args.validate,
        checkpoint_dir=args.checkpoint_dir,
        impairment=impairment,
        scheduler=_scheduler(args),
        engine=_engine(args),
    )
    profiler = _start_profiler(args)
    campaign = run_campaign(
        config,
        workers=args.workers,
        backend=args.backend,
        policy=_policy_from_args(args),
    )
    # The profile dump lands next to the run manifest so the provenance
    # record and the performance evidence travel together.
    default_profile = "run_profile.pstats"
    if args.manifest is not None:
        from pathlib import Path

        default_profile = str(Path(args.manifest).with_suffix(".pstats"))
    profile_path = _dump_profiler(profiler, args, default_profile)
    if args.manifest is not None:
        from repro.obs.manifest import manifest_from_campaign, write_manifest

        command = getattr(args, "_argv", None) or ["campaign"]
        manifest = manifest_from_campaign(campaign, command=command)
        if profile_path is not None:
            manifest.artifacts["profile"] = str(profile_path)
        manifest_path = write_manifest(args.manifest, manifest)
        print(f"run manifest written to {manifest_path}", file=sys.stderr)
    print(render_table1(build_table1(campaign.testbed)))
    print()
    print(render_table2(build_table2(campaign)))
    print()
    print(render_table3(build_table3(campaign)))
    print()
    print(render_table4(build_table4(campaign)))
    print()
    print(render_figure1(build_figure1(campaign)))
    print()
    print(render_figure2(build_figure2(campaign)))
    if set(args.apps) >= {"pplive", "sopcast", "tvants"}:
        print()
        print(render_checks(check_campaign_shape(campaign)))
    if campaign.failures:
        print("\nerror ledger:", file=sys.stderr)
        for failure in campaign.failures:
            print(f"  {failure}", file=sys.stderr)
    if campaign.flags:
        print("\nexecution quality flags (campaign degraded):", file=sys.stderr)
        for flag in campaign.flags:
            print(f"  {flag}", file=sys.stderr)
    return 0 if not campaign.failed_apps else 1


def _cmd_localize(args: argparse.Namespace) -> int:
    from repro.experiments import CampaignConfig, run_campaign
    from repro.experiments.localization import build_localization, render_localization

    campaign = run_campaign(
        CampaignConfig(duration_s=args.duration, seed=args.seed, scale=args.scale)
    )
    report = build_localization(
        campaign,
        include_whatif=args.whatif,
        whatif_duration_s=min(args.duration, 180.0),
        whatif_seed=args.seed,
    )
    print(render_localization(report))
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    from repro.experiments import CampaignConfig
    from repro.experiments.multirun import (
        render_replicated_table4,
        run_replicated_campaign,
    )

    rep = run_replicated_campaign(
        CampaignConfig(
            duration_s=args.duration,
            scale=args.scale,
            scheduler=_scheduler(args),
            engine=_engine(args),
        ),
        seeds=args.seeds,
        workers=args.workers,
        backend=args.backend,
        policy=_policy_from_args(args),
    )
    print(render_replicated_table4(rep))
    rates = rep.check_pass_rates()
    if rates:
        print("\nshape-check pass rates:")
        for name, rate in rates.items():
            print(f"  {rate:4.0%}  {name}")
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from repro.experiments.robustness import render_robustness, sweep_robustness

    report = sweep_robustness(
        args.app,
        severities=tuple(args.severities),
        duration_s=args.duration,
        seed=args.seed,
        fault_seed=args.fault_seed,
        scale=args.scale,
        scheduler=_scheduler(args),
        engine=_engine(args),
        workers=args.workers,
        backend=args.backend,
        policy=_policy_from_args(args),
    )
    print(render_robustness(report))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.manifest import (
        read_manifest,
        render_manifest_diff,
        render_manifest_summary,
    )

    if args.diff:
        if len(args.manifest) != 2:
            print("stats --diff takes exactly two manifests", file=sys.stderr)
            return 2
        a = read_manifest(args.manifest[0])
        b = read_manifest(args.manifest[1])
        print(render_manifest_diff(a, b))
        # Comparing runs of different configurations is almost always a
        # mistake (or the answer the caller scripted for) — signal it.
        return 0 if a.config_hash == b.config_hash else 1

    if len(args.manifest) != 1:
        print("stats takes one manifest (or two with --diff)", file=sys.stderr)
        return 2
    manifest = read_manifest(args.manifest[0])
    print(render_manifest_summary(manifest))
    return 0 if manifest.ok else 1


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    """Shared parallel-execution flags (campaign / replicate / robustness)."""
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size (N > 1 implies --backend process)",
    )
    parser.add_argument(
        "--backend", choices=("serial", "process", "supervised"), default=None,
        help="shard executor backend (default: serial, or $REPRO_EXEC_BACKEND)",
    )
    parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard wall-clock deadline under supervision "
        "(default: derived from the shard duration)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="supervised executor attempts per shard before quarantine",
    )
    parser.add_argument(
        "--quarantine-dir", default=None, metavar="DIR",
        help="serialize poison-shard specs here for offline replay "
        "(python -m repro.exec.supervisor <spec>)",
    )


def _policy_from_args(args: argparse.Namespace):
    """A SupervisionPolicy when any supervision flag was given, else None.

    None keeps the plain backends; any explicit knob opts the run into
    the supervised runtime (:func:`repro.exec.backends.resolve_executor`
    upgrades the backend accordingly).
    """
    if (
        args.shard_timeout is None
        and args.max_attempts is None
        and args.quarantine_dir is None
        and args.backend != "supervised"
    ):
        return None
    from repro.exec.supervisor import SupervisionPolicy

    defaults = SupervisionPolicy()
    return SupervisionPolicy(
        shard_timeout_s=args.shard_timeout,
        max_attempts=(
            args.max_attempts if args.max_attempts is not None else defaults.max_attempts
        ),
        quarantine_dir=args.quarantine_dir,
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-p2ptv",
        description="Network awareness of P2P live streaming — IPDPS'09 reproduction",
    )
    parser.add_argument(
        "--log-level", choices=sorted(LEVELS, key=LEVELS.get), default=None,
        help="structured-log verbosity (default: warning, or $REPRO_LOG_LEVEL)",
    )
    parser.add_argument(
        "--log-format", choices=("human", "json"), default=None,
        help="structured-log output format (default: human, or $REPRO_LOG_FORMAT)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one application experiment")
    sim.add_argument("--app", choices=sorted(PROFILES), default="tvants")
    sim.add_argument("--duration", type=float, default=300.0, help="seconds")
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--out", default="trace.npz", help="output bundle path")
    _add_scheduler_flag(sim)
    _add_engine_flag(sim)
    _add_profile_flag(sim, "next to the trace bundle")
    sim.set_defaults(func=_cmd_simulate)

    ana = sub.add_parser("analyze", help="analyse a saved trace bundle")
    ana.add_argument("trace", help="path to a .npz trace bundle")
    ana.set_defaults(func=_cmd_analyze)

    camp = sub.add_parser("campaign", help="full campaign: all tables & figures")
    camp.add_argument(
        "--apps", nargs="+", default=["pplive", "sopcast", "tvants"],
        choices=sorted(PROFILES),
    )
    camp.add_argument("--duration", type=float, default=300.0)
    camp.add_argument("--seed", type=int, default=42)
    camp.add_argument("--scale", type=float, default=1.0)
    camp.add_argument(
        "--max-retries", type=int, default=0,
        help="retry failed simulations under reseeded engines",
    )
    camp.add_argument(
        "--validate", action="store_true",
        help="gate each run through the physics validator",
    )
    camp.add_argument(
        "--checkpoint-dir", default=None,
        help="save/resume per-app trace bundles here",
    )
    camp.add_argument(
        "--impair", type=float, default=0.0, metavar="SEVERITY",
        help="run under an impairment plan of this severity (0..1)",
    )
    camp.add_argument("--fault-seed", type=int, default=1)
    camp.add_argument(
        "--manifest", default="run_manifest.json", metavar="PATH",
        help="write the JSON run manifest here (stage timings, shard "
        "outcomes, engine counters)",
    )
    camp.add_argument(
        "--no-manifest", dest="manifest", action="store_const", const=None,
        help="skip writing the run manifest",
    )
    _add_scheduler_flag(camp)
    _add_engine_flag(camp)
    _add_profile_flag(camp, "next to the run manifest")
    _add_executor_flags(camp)
    camp.set_defaults(func=_cmd_campaign)

    loc = sub.add_parser("localize", help="network-friendliness extension")
    loc.add_argument("--duration", type=float, default=240.0)
    loc.add_argument("--seed", type=int, default=23)
    loc.add_argument("--scale", type=float, default=1.0)
    loc.add_argument(
        "--whatif", action="store_true",
        help="also run the sopcast-vs-napa-wine what-if comparison",
    )
    loc.set_defaults(func=_cmd_localize)

    rep = sub.add_parser("replicate", help="Table IV across seed replications")
    rep.add_argument("--duration", type=float, default=180.0)
    rep.add_argument("--scale", type=float, default=1.0)
    rep.add_argument("--seeds", type=int, nargs="+", default=[101, 202, 303])
    _add_scheduler_flag(rep)
    _add_engine_flag(rep)
    _add_executor_flags(rep)
    rep.set_defaults(func=_cmd_replicate)

    rob = sub.add_parser(
        "robustness", help="indices under increasing fault-injection severity"
    )
    rob.add_argument("--app", choices=sorted(PROFILES), default="tvants")
    rob.add_argument("--duration", type=float, default=300.0)
    rob.add_argument("--seed", type=int, default=7)
    rob.add_argument("--fault-seed", type=int, default=1)
    rob.add_argument("--scale", type=float, default=1.0)
    rob.add_argument(
        "--severities", type=float, nargs="+",
        default=[0.0, 0.25, 0.5, 0.75, 1.0],
    )
    _add_scheduler_flag(rob)
    _add_engine_flag(rob)
    _add_executor_flags(rob)
    rob.set_defaults(func=_cmd_robustness)

    stats = sub.add_parser("stats", help="summarise or diff campaign run manifests")
    stats.add_argument(
        "manifest", nargs="+", help="path to a run_manifest.json (two with --diff)"
    )
    stats.add_argument(
        "--diff",
        action="store_true",
        help="compare two manifests (config hash, stage timings, counters); "
        "exits nonzero when the config hashes differ",
    )
    stats.set_defaults(func=_cmd_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point.

    Traps :class:`ReproError` — expected failures (bad trace file,
    inconsistent configuration) print one line to stderr and exit 2;
    anything else is a bug and keeps its traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None or args.log_format is not None:
        configure(level=args.log_level, fmt=args.log_format)
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro-p2ptv: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like a
        # well-behaved Unix filter.  Detach stdout so the interpreter's
        # shutdown flush doesn't raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
