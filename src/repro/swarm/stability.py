"""Peer stability: activity spans and the stable-peer byte share.

Wang et al. ("Stable Peers: Existence, Importance, and Application",
cited by the paper as [8]) showed that a small set of long-lived peers
carries a disproportionate share of live-streaming traffic.  This module
measures the same structure in our probe-side traces: per contributing
peer, the span between its first and last video exchange with any probe,
and the byte share of the peers active for most of the capture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.heuristics.contributors import ContributorCriteria, contributor_mask
from repro.trace.flows import FlowTable


@dataclass(frozen=True, slots=True)
class StabilityReport:
    """Activity-span distribution and stable-peer contribution."""

    capture_s: float
    stable_threshold: float       # span fraction defining "stable"
    n_peers: int
    n_stable: int
    span_mean_s: float
    span_median_s: float
    stable_byte_share: float      # bytes from stable peers / all bytes
    stable_peer_share: float      # stable peers / all peers

    @property
    def concentration(self) -> float:
        """Byte share over peer share — > 1 means stable peers punch
        above their numbers (the published finding)."""
        if self.stable_peer_share == 0:
            return float("nan")
        return self.stable_byte_share / self.stable_peer_share


def stability_report(
    table: FlowTable,
    capture_s: float,
    *,
    stable_threshold: float = 0.6,
    criteria: ContributorCriteria | None = None,
) -> StabilityReport:
    """Measure contributor stability over one capture.

    Parameters
    ----------
    table:
        Probe-side flows.
    capture_s:
        Capture length (normalises spans to fractions).
    stable_threshold:
        A peer is *stable* when its activity span covers at least this
        fraction of the capture.
    """
    if capture_s <= 0:
        raise AnalysisError("capture length must be positive")
    if not 0 < stable_threshold <= 1:
        raise AnalysisError("stable_threshold must be in (0, 1]")
    flows = table.flows
    keep = contributor_mask(flows, criteria)
    sel = flows[keep]
    if len(sel) == 0:
        return StabilityReport(
            capture_s, stable_threshold, 0, 0,
            float("nan"), float("nan"), float("nan"), float("nan"),
        )

    probe_ips = np.asarray(table.probe_ips, dtype=np.uint32)
    src_probe = np.isin(sel["src"], probe_ips)
    # The "peer" of each flow is its non-probe end; probe-probe flows
    # attribute to the remote side of the probe under observation — for
    # stability we simply use the src of download flows and dst of upload
    # flows, i.e. the counterpart address.
    peer = np.where(src_probe, sel["dst"], sel["src"])

    uniq, inverse = np.unique(peer, return_inverse=True)
    first = np.full(len(uniq), np.inf)
    last = np.full(len(uniq), -np.inf)
    np.minimum.at(first, inverse, sel["first_ts"])
    np.maximum.at(last, inverse, sel["last_ts"])
    nbytes = np.zeros(len(uniq))
    np.add.at(nbytes, inverse, sel["bytes"].astype(np.float64))

    spans = np.clip(last - first, 0.0, capture_s)
    stable = spans >= stable_threshold * capture_s
    total_bytes = nbytes.sum()

    return StabilityReport(
        capture_s=capture_s,
        stable_threshold=stable_threshold,
        n_peers=len(uniq),
        n_stable=int(stable.sum()),
        span_mean_s=float(spans.mean()),
        span_median_s=float(np.median(spans)),
        stable_byte_share=float(nbytes[stable].sum() / total_bytes)
        if total_bytes
        else float("nan"),
        stable_peer_share=float(stable.mean()),
    )
