"""Swarm analytics: the measurements the paper's related work performs.

The paper positions itself against single-system studies of overlay
structure ([7]: node degree of popular vs unpopular channels) and peer
stability ([8]: stable peers and their importance).  This subpackage
implements those complementary analyses over our probe-side traces:

* :mod:`repro.swarm.overlay` — the observed exchange graph, degree
  statistics, popular-vs-unpopular comparisons;
* :mod:`repro.swarm.stability` — contributor activity spans, stable-peer
  identification, and their byte share.
"""

from repro.swarm.overlay import DegreeStats, OverlayGraph, build_overlay
from repro.swarm.stability import StabilityReport, stability_report

__all__ = [
    "DegreeStats",
    "OverlayGraph",
    "build_overlay",
    "StabilityReport",
    "stability_report",
]
