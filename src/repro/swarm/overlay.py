"""The observed overlay: who exchanged video with whom.

Builds an annotated ``networkx`` graph from a flow table — nodes are
peers (with AS/CC/bandwidth attributes), edges are video exchanges
weighted by bytes — and computes the degree statistics that the
"node degree of popular versus unpopular channels" literature reports.

Note the observation bias the paper lives with: only probe-adjacent
edges are visible, so remote-remote structure is absent; degree numbers
are *probe-perspective* degrees, exactly like the published ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import AnalysisError
from repro.heuristics.contributors import ContributorCriteria, contributor_mask
from repro.trace.flows import FlowTable


@dataclass(frozen=True, slots=True)
class DegreeStats:
    """Degree distribution summary of one overlay."""

    n_nodes: int
    n_edges: int
    mean_degree: float
    median_degree: float
    max_degree: int
    #: mean degree over probe nodes only (the vantage points).
    probe_mean_degree: float


class OverlayGraph:
    """A directed exchange graph with host annotations."""

    def __init__(self, graph: nx.DiGraph, probe_ips: set[int]) -> None:
        self.graph = graph
        self.probe_ips = probe_ips

    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    def degree_stats(self) -> DegreeStats:
        """Summary statistics of the total (in+out) degree."""
        g = self.graph
        if g.number_of_nodes() == 0:
            raise AnalysisError("empty overlay")
        degrees = np.array([d for _, d in g.degree()])
        probe_degrees = np.array(
            [d for n, d in g.degree() if n in self.probe_ips]
        )
        return DegreeStats(
            n_nodes=g.number_of_nodes(),
            n_edges=g.number_of_edges(),
            mean_degree=float(degrees.mean()),
            median_degree=float(np.median(degrees)),
            max_degree=int(degrees.max()),
            probe_mean_degree=float(probe_degrees.mean())
            if len(probe_degrees)
            else float("nan"),
        )

    def edge_bytes(self, src_ip: int, dst_ip: int) -> int:
        """Video bytes on one directed edge (0 when absent)."""
        data = self.graph.get_edge_data(src_ip, dst_ip)
        return int(data["bytes"]) if data else 0

    def same_as_edge_fraction(self) -> float:
        """Fraction of edges connecting same-AS endpoints (weighted by
        count, not bytes) — a structural locality measure."""
        g = self.graph
        if g.number_of_edges() == 0:
            return float("nan")
        same = sum(
            1
            for u, v in g.edges()
            if g.nodes[u]["asn"] == g.nodes[v]["asn"]
        )
        return same / g.number_of_edges()


def build_overlay(
    table: FlowTable,
    criteria: ContributorCriteria | None = None,
    *,
    video_only: bool = True,
) -> OverlayGraph:
    """Build the observed overlay from a flow table.

    Parameters
    ----------
    table:
        Probe-side flows plus host ground truth for node annotation.
    criteria:
        Contributor thresholds; only contributing flows become edges.
    video_only:
        Weight edges by video payload (default) or total bytes.
    """
    flows = table.flows
    keep = contributor_mask(flows, criteria)
    selected = flows[keep]
    hosts = table.hosts

    g = nx.DiGraph()
    ips = np.unique(
        np.concatenate([selected["src"], selected["dst"]])
    ) if len(selected) else np.array([], dtype=np.uint32)
    for ip in ips:
        row = hosts.row_for(int(ip))
        g.add_node(
            int(ip),
            asn=int(row["asn"]),
            cc=str(row["cc"]),
            highbw=bool(row["highbw"]),
            is_probe=bool(row["is_probe"]),
        )
    weight_col = "video_bytes" if video_only else "bytes"
    for row in selected:
        g.add_edge(int(row["src"]), int(row["dst"]), bytes=int(row[weight_col]))

    return OverlayGraph(g, probe_ips=set(int(i) for i in table.probe_ips))
