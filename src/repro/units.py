"""Unit helpers used throughout the package.

The simulator and the analysis framework exchange quantities in a small set
of canonical units:

* time        — seconds (float)
* data size   — bytes (int or float)
* data rate   — bits per second (float)

These helpers exist so that magic conversion constants (``* 1000 / 8`` and
friends) never appear inline in simulation or analysis code, which is one of
the more common sources of silent errors in measurement tooling.
"""

from __future__ import annotations

#: Bits per byte. Named to make rate conversions self-describing.
BITS_PER_BYTE = 8

#: Seconds in one millisecond / microsecond.
MS = 1e-3
US = 1e-6

#: One kilobit/megabit per second, in bit/s (network convention: powers of 10).
KBPS = 1_000.0
MBPS = 1_000_000.0

#: One kilobyte/megabyte, decimal (used for human-readable reporting only).
KB = 1_000
MB = 1_000_000


def kbps(value: float) -> float:
    """Convert kilobits-per-second to the canonical bit/s."""
    return value * KBPS


def mbps(value: float) -> float:
    """Convert megabits-per-second to the canonical bit/s."""
    return value * MBPS


def to_kbps(bits_per_second: float) -> float:
    """Convert a bit/s rate to kilobits-per-second."""
    return bits_per_second / KBPS

def to_mbps(bits_per_second: float) -> float:
    """Convert a bit/s rate to megabits-per-second."""
    return bits_per_second / MBPS


def bytes_to_bits(n_bytes: float) -> float:
    """Convert a byte count to bits."""
    return n_bytes * BITS_PER_BYTE


def bits_to_bytes(n_bits: float) -> float:
    """Convert a bit count to bytes."""
    return n_bits / BITS_PER_BYTE


def transmission_time(n_bytes: float, rate_bps: float) -> float:
    """Seconds needed to serialise ``n_bytes`` on a ``rate_bps`` link.

    Raises
    ------
    ValueError
        If the rate is not strictly positive.
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be > 0 bit/s, got {rate_bps!r}")
    return bytes_to_bits(n_bytes) / rate_bps


def rate_from_bytes(n_bytes: float, duration_s: float) -> float:
    """Average rate in bit/s of ``n_bytes`` transferred over ``duration_s``.

    Raises
    ------
    ValueError
        If the duration is not strictly positive.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be > 0 s, got {duration_s!r}")
    return bytes_to_bits(n_bytes) / duration_s


def fmt_rate(bits_per_second: float) -> str:
    """Human-readable rate, e.g. ``'384 kb/s'`` or ``'3.4 Mb/s'``."""
    if bits_per_second >= MBPS:
        return f"{bits_per_second / MBPS:.2f} Mb/s"
    if bits_per_second >= KBPS:
        return f"{bits_per_second / KBPS:.0f} kb/s"
    return f"{bits_per_second:.0f} b/s"


def fmt_bytes(n_bytes: float) -> str:
    """Human-readable byte count, e.g. ``'1.2 MB'``."""
    if n_bytes >= MB:
        return f"{n_bytes / MB:.2f} MB"
    if n_bytes >= KB:
        return f"{n_bytes / KB:.1f} kB"
    return f"{n_bytes:.0f} B"
