"""Active measurement substrate: ping and traceroute over the model.

The paper restricts itself to properties measurable *passively* ("it is
straightforward to actively measure RTT between two end-points but it is
very hard to infer it passively", §III).  The NAPA-WINE project did run
active measurements; this subpackage provides their synthetic equivalent
over the same path model, so that:

* passive inferences (TTL hops, request-response RTT) can be
  cross-validated against active ground-truth probing in tests;
* framework extensions (an RTT partition, an AS-path partition) have an
  honest active data source, mirroring a real deployment's options.
"""

from repro.active.prober import ActiveProber, PingResult, TracerouteHop

__all__ = ["ActiveProber", "PingResult", "TracerouteHop"]
