"""ICMP-style active probing against the synthetic Internet.

:class:`ActiveProber` issues pings (RTT samples with queueing jitter) and
traceroutes (per-hop TTL expiry walks) between endpoints of a
:class:`~repro.topology.world.World`.  The latency model matches the
engine's: per-hop forwarding plus a propagation base, with one-sided
exponential queueing jitter per probe — so min-over-samples converges to
the true path latency exactly like real ping statistics do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.streaming.transport import BASE_LATENCY_S, PER_HOP_LATENCY_S
from repro.topology.host import NetworkEndpoint
from repro.topology.world import World


@dataclass(frozen=True, slots=True)
class PingResult:
    """RTT statistics of one ping burst."""

    target_ip: int
    sent: int
    received: int
    rtt_min_s: float
    rtt_avg_s: float
    rtt_max_s: float

    @property
    def loss_rate(self) -> float:
        return 1.0 - self.received / self.sent if self.sent else float("nan")


@dataclass(frozen=True, slots=True)
class TracerouteHop:
    """One hop of a traceroute: its distance and the AS it sits in."""

    ttl: int
    asn: int
    rtt_s: float


class ActiveProber:
    """Ping/traceroute issuer bound to one vantage endpoint."""

    def __init__(
        self,
        world: World,
        source: NetworkEndpoint,
        *,
        seed: int = 0,
        loss_prob: float = 0.0,
        jitter_scale_s: float = 0.002,
    ) -> None:
        if not 0 <= loss_prob < 1:
            raise ConfigurationError("loss probability must be in [0, 1)")
        self._world = world
        self._source = source
        self._rng = np.random.default_rng(seed)
        self._loss_prob = loss_prob
        self._jitter_scale_s = jitter_scale_s

    # -------------------------------------------------------------- internal
    def _one_way_base(self, hops: int) -> float:
        return BASE_LATENCY_S + PER_HOP_LATENCY_S * hops

    def _rtt_sample(self, fwd_hops: int, rev_hops: int) -> float:
        base = self._one_way_base(fwd_hops) + self._one_way_base(rev_hops)
        # Queueing only ever adds delay (one-sided jitter).
        return base + float(self._rng.exponential(self._jitter_scale_s))

    # ------------------------------------------------------------------ ping
    def ping(self, target: NetworkEndpoint, count: int = 10) -> PingResult:
        """Send ``count`` echo requests; return the RTT statistics."""
        if count < 1:
            raise ConfigurationError("ping needs at least one probe")
        fwd = self._world.paths.hops(self._source, target)
        rev = self._world.paths.hops(target, self._source)
        rtts = []
        for _ in range(count):
            if self._rng.random() < self._loss_prob:
                continue
            rtts.append(self._rtt_sample(fwd, rev))
        if not rtts:
            return PingResult(target.ip, count, 0, float("nan"), float("nan"), float("nan"))
        arr = np.array(rtts)
        return PingResult(
            target_ip=target.ip,
            sent=count,
            received=len(rtts),
            rtt_min_s=float(arr.min()),
            rtt_avg_s=float(arr.mean()),
            rtt_max_s=float(arr.max()),
        )

    def true_rtt(self, target: NetworkEndpoint) -> float:
        """The jitter-free round-trip time (ground truth for validation)."""
        fwd = self._world.paths.hops(self._source, target)
        rev = self._world.paths.hops(target, self._source)
        return self._one_way_base(fwd) + self._one_way_base(rev)

    # ------------------------------------------------------------ traceroute
    def traceroute(self, target: NetworkEndpoint) -> list[TracerouteHop]:
        """Walk the forward path by TTL expiry.

        Intermediate hops are attributed to the ASes along the AS-level
        route, apportioned by each AS's internal hop count — the same
        model the path lengths come from, so ``len(trace)`` equals the
        forward hop count exactly.
        """
        total = self._world.paths.hops(self._source, target)
        if total == 0:
            return []
        as_path = self._world.asgraph.as_path(self._source.asn, target.asn)
        # Build the per-hop AS attribution: source access tree, then each
        # AS's internal hops (+1 border hop entering the next AS), then the
        # target access tree; rounding spill goes to the last AS.
        sequence: list[int] = []
        for asn in as_path:
            internal = self._world.asgraph.internal_hops(asn)
            sequence.extend([asn] * (internal + 1))
        if len(sequence) >= total:
            sequence = sequence[:total]
        else:
            sequence = sequence + [as_path[-1]] * (total - len(sequence))

        hops = []
        rev = self._world.paths.hops(target, self._source)
        for ttl, asn in enumerate(sequence, start=1):
            # RTT to the expiring router ≈ fraction of the full path.
            frac = ttl / total
            fwd_part = self._one_way_base(total) * frac
            rev_part = self._one_way_base(rev) * frac
            rtt = fwd_part + rev_part + float(
                self._rng.exponential(self._jitter_scale_s)
            )
            hops.append(TracerouteHop(ttl=ttl, asn=int(asn), rtt_s=rtt))
        return hops

    def as_path_of(self, target: NetworkEndpoint) -> list[int]:
        """Distinct ASes observed on a traceroute, in order."""
        out: list[int] = []
        for hop in self.traceroute(target):
            if not out or out[-1] != hop.asn:
                out.append(hop.asn)
        if not out:
            out = [self._source.asn]
        return out
