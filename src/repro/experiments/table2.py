"""Table II: stream rates, overall peer counts and contributor counts.

For each application the paper reports mean/max over probes of:

* received and transmitted stream rate (kb/s, all traffic incl. signaling);
* the number of distinct peers seen ("all peers");
* the number of contributing peers in each direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.views import build_views
from repro.experiments.campaign import Campaign
from repro.trace.flows import FlowTable
from repro.units import to_kbps


@dataclass(frozen=True, slots=True)
class Table2Row:
    """One application's row group."""

    app: str
    rx_kbps_mean: float
    rx_kbps_max: float
    tx_kbps_mean: float
    tx_kbps_max: float
    all_peers_mean: float
    all_peers_max: int
    contrib_rx_mean: float
    contrib_rx_max: int
    contrib_tx_mean: float
    contrib_tx_max: int
    total_observed_peers: int


@dataclass
class Table2:
    """The reproduced Table II."""

    rows: list[Table2Row]

    def row(self, app: str) -> Table2Row:
        for r in self.rows:
            if r.app == app:
                return r
        raise KeyError(app)


def _per_probe_stats(flows: FlowTable, duration_s: float) -> dict:
    probe_ips = flows.probe_ips
    contrib = build_views(flows)
    everyone = build_views(flows, contributors_only=False)

    rx_rates, tx_rates, n_peers = [], [], []
    contrib_rx, contrib_tx = [], []
    for ip in probe_ips:
        ip = int(ip)
        rx = flows.received_by(ip)
        tx = flows.sent_by(ip)
        rx_rates.append(to_kbps(rx["bytes"].sum() * 8.0 / duration_s))
        tx_rates.append(to_kbps(tx["bytes"].sum() * 8.0 / duration_s))
        n_peers.append(
            len(np.unique(np.concatenate([rx["src"], tx["dst"]])))
        )
        contrib_rx.append(int((contrib.download.probe_ip == np.uint32(ip)).sum()))
        contrib_tx.append(int((contrib.upload.probe_ip == np.uint32(ip)).sum()))

    total_observed = len(
        np.unique(
            np.concatenate(
                [everyone.download.peer_ip, everyone.upload.peer_ip]
            )
        )
    )
    return {
        "rx_kbps_mean": float(np.mean(rx_rates)),
        "rx_kbps_max": float(np.max(rx_rates)),
        "tx_kbps_mean": float(np.mean(tx_rates)),
        "tx_kbps_max": float(np.max(tx_rates)),
        "all_peers_mean": float(np.mean(n_peers)),
        "all_peers_max": int(np.max(n_peers)),
        "contrib_rx_mean": float(np.mean(contrib_rx)),
        "contrib_rx_max": int(np.max(contrib_rx)),
        "contrib_tx_mean": float(np.mean(contrib_tx)),
        "contrib_tx_max": int(np.max(contrib_tx)),
        "total_observed_peers": total_observed,
    }


def build_table2(campaign: Campaign) -> Table2:
    """Compute Table II over every run of a campaign."""
    rows = []
    for app, run in campaign.runs.items():
        stats = _per_probe_stats(run.flows, run.result.duration_s)
        rows.append(Table2Row(app=app, **stats))
    return Table2(rows=rows)
