"""Replicated campaigns: aggregate indices over repeated experiments.

The paper's dataset is "several 1-hour long experiments" per application;
Table IV reports aggregates.  A single simulated run carries seed noise,
so this module repeats campaigns across seeds and reports mean ± std for
every Table IV cell, plus per-claim pass rates for the shape checks —
the statistically honest version of the headline table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.supervisor import SupervisionPolicy

from repro.errors import ConfigurationError
from repro.exec.backends import SerialExecutor, resolve_executor
from repro.exec.context import campaign_context
from repro.exec.worker import run_shard
from repro.experiments.campaign import (
    Campaign,
    CampaignConfig,
    campaign_shards,
    merge_outcome,
)
from repro.experiments.table4 import Table4, build_table4
from repro.obs.telemetry import Telemetry
from repro.report.compare import ShapeCheck, check_campaign_shape


@dataclass(frozen=True, slots=True)
class CellStats:
    """Mean ± std of one Table IV cell across replications."""

    metric: str
    app: str
    direction: str
    field: str  # "B", "P", "B_prime", "P_prime"
    mean: float
    std: float
    n: int

    def __str__(self) -> str:  # pragma: no cover - display helper
        if math.isnan(self.mean):
            return "-"
        return f"{self.mean:.1f}±{self.std:.1f}"


@dataclass
class ReplicatedCampaign:
    """Aggregated results of N seed-replicated campaigns."""

    base_config: CampaignConfig
    seeds: list[int]
    tables: list[Table4] = field(default_factory=list)
    check_runs: list[list[ShapeCheck]] = field(default_factory=list)
    #: Order-independent merge of shard telemetry across all replications.
    telemetry: Telemetry = field(default_factory=Telemetry)

    # ------------------------------------------------------------ aggregates
    def cell_stats(
        self, metric: str, app: str, direction: str, value: str
    ) -> CellStats:
        """Mean ± std of one cell's field over replications.

        NaN cells (unmeasurable, e.g. BW upload) stay NaN; replications
        must agree on measurability.
        """
        values = [
            getattr(t.cell(metric, app, direction), value) for t in self.tables
        ]
        finite = [v for v in values if not math.isnan(v)]
        if finite and len(finite) != len(values):
            raise ConfigurationError(
                f"cell ({metric},{app},{direction}).{value} measurable in only "
                f"{len(finite)}/{len(values)} replications"
            )
        if not finite:
            return CellStats(metric, app, direction, value, float("nan"), float("nan"), 0)
        return CellStats(
            metric,
            app,
            direction,
            value,
            float(np.mean(finite)),
            float(np.std(finite)),
            len(finite),
        )

    def check_pass_rates(self) -> dict[str, float]:
        """Per-claim pass rate over replications."""
        if not self.check_runs:
            return {}
        rates: dict[str, float] = {}
        for i, check in enumerate(self.check_runs[0]):
            passes = sum(run[i].passed for run in self.check_runs)
            rates[check.name] = passes / len(self.check_runs)
        return rates

    @property
    def n_replications(self) -> int:
        return len(self.tables)


def run_replicated_campaign(
    base_config: CampaignConfig | None = None,
    seeds: list[int] | None = None,
    *,
    with_checks: bool = True,
    workers: int | None = None,
    backend: str | None = None,
    policy: "SupervisionPolicy | None" = None,
) -> ReplicatedCampaign:
    """Run one campaign per seed and aggregate.

    Replication is the natural fan-out axis: every (app × seed-replica)
    pair is an independent shard, so all ``len(apps) × len(seeds)``
    experiments go through one executor together and the per-seed
    campaigns are reassembled afterwards — identical to running the
    replications back to back (the determinism tests assert it).

    Parameters
    ----------
    base_config:
        Template configuration; each replication overrides its seed.
    seeds:
        Replication seeds (default: three).
    with_checks:
        Also evaluate the qualitative shape checks per replication.
    workers / backend / policy:
        Executor selection and supervision — see
        :func:`~repro.experiments.campaign.run_campaign`.
    """
    base = base_config or CampaignConfig()
    seeds = list(seeds) if seeds is not None else [101, 202, 303]
    if not seeds:
        raise ConfigurationError("need at least one replication seed")
    executor = resolve_executor(backend, workers, policy)
    keep = isinstance(executor, SerialExecutor)

    configs = [replace(base, seed=seed) for seed in seeds]
    specs = []
    for r, cfg in enumerate(configs):
        specs.extend(campaign_shards(cfg, replica=r, keep_result=keep))
    outcomes = executor.map_shards(run_shard, specs)

    out = ReplicatedCampaign(base_config=base, seeds=seeds)
    exec_tel = getattr(executor, "telemetry", None)
    if isinstance(exec_tel, Telemetry):
        out.telemetry.merge(exec_tel)
    for r, cfg in enumerate(configs):
        world, testbed, _ = campaign_context()
        campaign = Campaign(config=cfg, world=world, testbed=testbed)
        for spec, outcome in zip(specs, outcomes):
            if spec.key.replica == r:
                merge_outcome(campaign, outcome)
        out.tables.append(build_table4(campaign))
        out.telemetry.merge(campaign.telemetry)
        if with_checks and set(base.apps) >= {"pplive", "sopcast", "tvants"}:
            out.check_runs.append(check_campaign_shape(campaign))
    return out


def render_replicated_table4(rep: ReplicatedCampaign) -> str:
    """Table IV layout with mean ± std cells."""
    from repro.report.tables import render_table

    rows = []
    metrics = rep.tables[0].metrics
    apps = rep.tables[0].apps
    for metric in metrics:
        for app in apps:
            cells = [
                str(rep.cell_stats(metric, app, direction, value))
                for direction in ("download", "upload")
                for value in ("B_prime", "P_prime", "B", "P")
            ]
            rows.append([metric, app] + cells)
    return render_table(
        ["Net", "App",
         "B'D%", "P'D%", "BD%", "PD%",
         "B'U%", "P'U%", "BU%", "PU%"],
        rows,
        title=(
            f"TABLE IV over {rep.n_replications} replications "
            f"(mean ± std, seeds {rep.seeds})"
        ),
    )
