"""Campaign runner: the three applications on one synthetic Internet.

The paper's campaign ran PPLive, SopCast and TVAnts on the *same* testbed
watching the *same* channel.  :func:`run_campaign` mirrors that: one
:class:`World` and Table I testbed shared across applications, one
simulation per application, analysis applied uniformly.

The runner is *resilient* the way the real campaign had to be: a failing
experiment does not abort the campaign.  Per-application failures land in
an error ledger (:class:`CampaignFailure`), failed simulations can retry
under a reseeded RNG, completed runs checkpoint to disk as trace bundles
so an interrupted campaign resumes without re-simulating, and runs can be
gated through :func:`~repro.validation.validate_result` so physics
violations surface in the ledger instead of flowing silently into the
analysis.  The returned :class:`Campaign` is usable even when partial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.framework import AwarenessAnalyzer, AwarenessReport
from repro.errors import ConfigurationError, ReproError, TraceError
from repro.faults.plan import ImpairmentLog, ImpairmentPlan, impair_result
from repro.heuristics.registry import IpRegistry
from repro.streaming.engine import EngineConfig, SimulationResult, simulate
from repro.streaming.profiles import get_profile
from repro.topology.testbed import Testbed, build_napa_wine_testbed
from repro.topology.world import World
from repro.trace.flows import FlowTable, build_flow_table
from repro.trace.store import TraceBundle, load_trace_bundle, save_trace_bundle

#: The applications of the paper, in its reporting order.
PAPER_APPS = ("pplive", "sopcast", "tvants")

#: Seed stride between retry attempts (a prime, to dodge accidental
#: collisions with the ``seed + app_index`` spacing of the base seeds).
RESEED_STRIDE = 7919


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """One campaign: which apps, how long, at what scale.

    Parameters
    ----------
    apps:
        Profile names to run.
    duration_s:
        Capture length per experiment (the paper ran 1-hour experiments;
        the preference indices converge far earlier).
    seed:
        Master seed; world, populations and engines derive from it.
    scale:
        Swarm scale factor (1.0 = profile defaults), for quick runs.
    max_retries:
        Extra simulation attempts per app after a failure, each under a
        reseeded engine (``seed + attempt * RESEED_STRIDE``).
    validate:
        Gate every simulation through
        :func:`~repro.validation.validate_result`; a run with violations
        is excluded from ``runs`` and its violations recorded in the
        error ledger.
    checkpoint_dir:
        When set, completed runs are saved there as trace bundles and
        later campaigns with the same configuration resume from them
        without re-simulating.
    impairment:
        Optional :class:`~repro.faults.plan.ImpairmentPlan`; each app
        runs under the plan reseeded per app (``plan.seed + app index``).
    """

    apps: tuple[str, ...] = PAPER_APPS
    duration_s: float = 600.0
    seed: int = 42
    scale: float = 1.0
    max_retries: int = 0
    validate: bool = False
    checkpoint_dir: str | None = None
    impairment: ImpairmentPlan | None = None

    def __post_init__(self) -> None:
        if not self.apps:
            raise ConfigurationError("campaign needs at least one app")
        if self.duration_s <= 0 or self.scale <= 0:
            raise ConfigurationError("duration and scale must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")


@dataclass(frozen=True, slots=True)
class CampaignFailure:
    """One ledger entry: what failed, where, under which seed."""

    app: str
    stage: str  # "checkpoint" | "simulate" | "validate" | "analyze"
    attempt: int
    seed: int
    error: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.app}/{self.stage} (attempt {self.attempt}, seed {self.seed}): {self.error}"


@dataclass
class ExperimentRun:
    """One application's simulation + analysis artifacts."""

    app: str
    result: SimulationResult
    flows: FlowTable
    report: AwarenessReport
    from_checkpoint: bool = False


@dataclass
class Campaign:
    """All runs of a campaign, keyed by application name.

    ``failures`` is the error ledger: every trapped per-app failure, in
    occurrence order.  A campaign with failures is still usable — tables
    and figures render over whatever ``runs`` holds.
    """

    config: CampaignConfig
    world: World
    testbed: Testbed
    runs: dict[str, ExperimentRun] = field(default_factory=dict)
    failures: list[CampaignFailure] = field(default_factory=list)
    impairment_logs: dict[str, ImpairmentLog] = field(default_factory=dict)

    def __getitem__(self, app: str) -> ExperimentRun:
        return self.runs[app]

    @property
    def apps(self) -> list[str]:
        return list(self.runs)

    @property
    def failed_apps(self) -> list[str]:
        """Configured apps that produced no usable run."""
        return [app for app in self.config.apps if app not in self.runs]

    @property
    def ok(self) -> bool:
        """Every configured app completed and nothing hit the ledger."""
        return not self.failed_apps and not self.failures

    def failures_for(self, app: str) -> list[CampaignFailure]:
        return [f for f in self.failures if f.app == app]


# --------------------------------------------------------------- checkpoints
def _checkpoint_path(cfg: CampaignConfig, app: str) -> Path:
    return Path(cfg.checkpoint_dir) / f"{app}.npz"


def _save_checkpoint(cfg: CampaignConfig, app: str, result: SimulationResult) -> None:
    directory = Path(cfg.checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    bundle = TraceBundle.from_result(result)
    bundle.meta["campaign_scale"] = cfg.scale
    if cfg.impairment is not None:
        bundle.meta["impairment_seed"] = cfg.impairment.seed
    save_trace_bundle(_checkpoint_path(cfg, app), bundle)


def _load_checkpoint(
    cfg: CampaignConfig,
    app: str,
    world: World,
    testbed: Testbed,
    profile,
) -> SimulationResult:
    """Rebuild a SimulationResult from a checkpointed trace bundle.

    Raises :class:`TraceError` when the checkpoint does not match the
    campaign configuration (stale directory reuse) — the caller then
    falls back to simulating.
    """
    bundle = load_trace_bundle(_checkpoint_path(cfg, app))
    meta = bundle.meta
    if meta.get("profile") != profile.name:
        raise TraceError(f"checkpoint profile {meta.get('profile')!r} != {profile.name!r}")
    if float(meta.get("duration_s", -1.0)) != cfg.duration_s:
        raise TraceError("checkpoint duration mismatch")
    if float(meta.get("campaign_scale", -1.0)) != cfg.scale:
        raise TraceError("checkpoint scale mismatch")
    if int(meta.get("world_seed", -1)) != world.config.seed:
        raise TraceError("checkpoint world mismatch")
    expected_plan = None if cfg.impairment is None else cfg.impairment.seed
    if meta.get("impairment_seed") != expected_plan:
        raise TraceError("checkpoint impairment mismatch")
    return SimulationResult(
        transfers=bundle.transfers,
        signaling=bundle.signaling,
        hosts=bundle.hosts,
        testbed=testbed,
        world=world,
        profile=profile,
        config=EngineConfig(duration_s=cfg.duration_s, seed=int(meta.get("seed", 0))),
        events_processed=int(meta.get("events", 0)),
    )


# --------------------------------------------------------------------- runner
def _simulate_app(
    campaign: Campaign,
    app: str,
    app_index: int,
    profile,
) -> SimulationResult | None:
    """One app's simulation with retry-with-reseed and validation gate."""
    from repro.validation import validate_result

    cfg = campaign.config
    plan = None
    if cfg.impairment is not None and not cfg.impairment.is_noop:
        plan = cfg.impairment.with_seed(cfg.impairment.seed + app_index)

    for attempt in range(cfg.max_retries + 1):
        seed = cfg.seed + app_index + attempt * RESEED_STRIDE
        engine_config = EngineConfig(duration_s=cfg.duration_s, seed=seed)
        if plan is not None:
            engine_config = plan.engine_config(engine_config)
        try:
            result = simulate(
                profile,
                world=campaign.world,
                testbed=campaign.testbed,
                engine_config=engine_config,
            )
        except ReproError as exc:
            campaign.failures.append(
                CampaignFailure(app, "simulate", attempt, seed, str(exc))
            )
            continue
        if plan is not None:
            result, log = impair_result(result, plan)
            campaign.impairment_logs[app] = log
        if cfg.validate:
            violations = validate_result(result)
            if violations:
                campaign.failures.append(
                    CampaignFailure(
                        app,
                        "validate",
                        attempt,
                        seed,
                        "; ".join(str(v) for v in violations),
                    )
                )
                return None  # deterministic — retrying cannot help
        return result
    return None


def run_campaign(config: CampaignConfig | None = None) -> Campaign:
    """Run and analyse every experiment of a campaign.

    Never raises on a per-application failure: inspect
    ``campaign.failures`` (and ``campaign.failed_apps``) for anything the
    runner had to swallow.
    """
    cfg = config or CampaignConfig()
    world = World()
    testbed = build_napa_wine_testbed(world)
    registry = IpRegistry.from_world(world)
    campaign = Campaign(config=cfg, world=world, testbed=testbed)

    for i, app in enumerate(cfg.apps):
        profile = get_profile(app)
        if cfg.scale != 1.0:
            profile = profile.scaled(cfg.scale)

        result: SimulationResult | None = None
        if cfg.checkpoint_dir and _checkpoint_path(cfg, app).exists():
            try:
                result = _load_checkpoint(cfg, app, world, testbed, profile)
            except ReproError as exc:
                campaign.failures.append(
                    CampaignFailure(app, "checkpoint", 0, cfg.seed + i, str(exc))
                )
        from_checkpoint = result is not None
        if result is None:
            result = _simulate_app(campaign, app, i, profile)
        if result is None:
            continue

        try:
            flows = build_flow_table(
                result.transfers, result.signaling, result.hosts, world.paths
            )
            report = AwarenessAnalyzer(registry).analyze(flows)
        except ReproError as exc:
            campaign.failures.append(
                CampaignFailure(app, "analyze", 0, int(result.config.seed), str(exc))
            )
            continue

        campaign.runs[app] = ExperimentRun(
            app=app,
            result=result,
            flows=flows,
            report=report,
            from_checkpoint=from_checkpoint,
        )
        if cfg.checkpoint_dir and not from_checkpoint:
            try:
                _save_checkpoint(cfg, app, result)
            except (ReproError, OSError) as exc:
                campaign.failures.append(
                    CampaignFailure(
                        app, "checkpoint", 0, int(result.config.seed), str(exc)
                    )
                )
    return campaign
