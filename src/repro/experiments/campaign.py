"""Campaign runner: the three applications on one synthetic Internet.

The paper's campaign ran PPLive, SopCast and TVAnts on the *same* testbed
watching the *same* channel.  :func:`run_campaign` mirrors that: one
:class:`World` and Table I testbed configuration shared across
applications, one simulation per application, analysis applied uniformly.

Execution is *sharded* (see :mod:`repro.exec`): each application is an
independent shard — its own pristine copy of the world, its own
RNG streams derived from the shard key — so shards can run inline
(``backend="serial"``) or fan out over a process pool
(``backend="process"``, ``workers=N``) and merge back into an identical
:class:`Campaign` either way.

The runner is *resilient* the way the real campaign had to be: a failing
experiment does not abort the campaign.  Per-application failures land in
an error ledger (:class:`CampaignFailure`), failed simulations can retry
under a reseeded RNG, completed runs checkpoint to disk as trace bundles
so an interrupted campaign resumes without re-simulating, and runs can be
gated through :func:`~repro.validation.validate_result` so physics
violations surface in the ledger instead of flowing silently into the
analysis.  The returned :class:`Campaign` is usable even when partial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.supervisor import SupervisionPolicy

# The shard worker (repro.exec.worker) resolves simulate/build_flow_table/
# AwarenessAnalyzer *through this module* so test doubles installed here
# (monkeypatching campaign.simulate etc.) govern shard execution too.
from repro.core.framework import AwarenessAnalyzer, AwarenessReport  # noqa: F401
from repro.core.quality import QualityFlag
from repro.errors import ConfigurationError, TraceError
from repro.exec.backends import SerialExecutor, resolve_executor
from repro.exec.context import campaign_context
from repro.exec.shards import RESEED_STRIDE, ShardKey, ShardOutcome, ShardSpec
from repro.exec.worker import run_shard
from repro.faults.plan import ImpairmentLog, ImpairmentPlan
from repro.obs.log import get_logger
from repro.obs.telemetry import Telemetry
from repro.streaming.engine import EngineConfig, SimulationResult, simulate  # noqa: F401
from repro.streaming.profiles import get_profile
from repro.streaming.schedulers import default_scheduler, get_scheduler
from repro.streaming.soa import default_engine, get_engine
from repro.topology.testbed import Testbed
from repro.topology.world import World
from repro.trace.flows import FlowTable, build_flow_table  # noqa: F401
from repro.trace.store import TraceBundle, load_trace_bundle, save_trace_bundle

#: The applications of the paper, in its reporting order.
PAPER_APPS = ("pplive", "sopcast", "tvants")

_log = get_logger("experiments.campaign")

__all__ = [
    "PAPER_APPS",
    "RESEED_STRIDE",
    "Campaign",
    "CampaignConfig",
    "CampaignFailure",
    "ExperimentRun",
    "campaign_profile",
    "run_campaign",
]


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """One campaign: which apps, how long, at what scale.

    Parameters
    ----------
    apps:
        Profile names to run.
    duration_s:
        Capture length per experiment (the paper ran 1-hour experiments;
        the preference indices converge far earlier).
    seed:
        Master seed; world, populations and engines derive from it.
    scale:
        Swarm scale factor (1.0 = profile defaults), for quick runs.
    max_retries:
        Extra simulation attempts per app after a failure, each under a
        reseeded engine (``seed + attempt * RESEED_STRIDE``).
    validate:
        Gate every simulation through
        :func:`~repro.validation.validate_result`; a run with violations
        is excluded from ``runs`` and its violations recorded in the
        error ledger.
    checkpoint_dir:
        When set, completed runs are saved there as trace bundles and
        later campaigns with the same configuration resume from them
        without re-simulating.
    impairment:
        Optional :class:`~repro.faults.plan.ImpairmentPlan`; each app
        runs under the plan reseeded per app (``plan.seed + app index``).
    scheduler:
        Chunk-scheduling policy applied to every app in the campaign
        (see :mod:`repro.streaming.schedulers`).  Defaults to the
        ``REPRO_SCHEDULER`` environment variable when set, else
        mesh-pull — so CI can run entire suites under an alternative
        policy without code changes.
    engine:
        Engine core executing every app in the campaign (``"object"`` or
        ``"soa"`` — see :mod:`repro.streaming.soa`).  Defaults to the
        ``REPRO_ENGINE`` environment variable when set, else the object
        core.  Both cores are byte-identical for a fixed seed, so the
        choice never changes campaign results — only their cost.
    """

    apps: tuple[str, ...] = PAPER_APPS
    duration_s: float = 600.0
    seed: int = 42
    scale: float = 1.0
    max_retries: int = 0
    validate: bool = False
    checkpoint_dir: str | None = None
    impairment: ImpairmentPlan | None = None
    scheduler: str = field(default_factory=default_scheduler)
    engine: str = field(default_factory=default_engine)

    def __post_init__(self) -> None:
        if not self.apps:
            raise ConfigurationError("campaign needs at least one app")
        if self.duration_s <= 0 or self.scale <= 0:
            raise ConfigurationError("duration and scale must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        get_scheduler(self.scheduler)  # unknown names raise here
        get_engine(self.engine)  # unknown names raise here


@dataclass(frozen=True, slots=True)
class CampaignFailure:
    """One ledger entry: what failed, where, under which seed.

    Checkpoint-stage entries record the shard's *base* seed (``campaign
    seed + app index``) regardless of retries or checkpoint contents, so
    the ledger identifies the failing shard deterministically.
    """

    app: str
    stage: str  # "checkpoint" | "simulate" | "validate" | "analyze"
    attempt: int
    seed: int
    error: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.app}/{self.stage} (attempt {self.attempt}, seed {self.seed}): {self.error}"


@dataclass
class ExperimentRun:
    """One application's simulation + analysis artifacts."""

    app: str
    result: SimulationResult
    flows: FlowTable
    report: AwarenessReport
    from_checkpoint: bool = False


@dataclass
class Campaign:
    """All runs of a campaign, keyed by application name.

    ``failures`` is the error ledger: every trapped per-app failure, in
    occurrence order.  A campaign with failures is still usable — tables
    and figures render over whatever ``runs`` holds.
    """

    config: CampaignConfig
    world: World
    testbed: Testbed
    runs: dict[str, ExperimentRun] = field(default_factory=dict)
    failures: list[CampaignFailure] = field(default_factory=list)
    impairment_logs: dict[str, ImpairmentLog] = field(default_factory=dict)
    #: Campaign-level timers plus the order-independent merge of every
    #: shard's counters/gauges (pure accounting; never compared by the
    #: determinism suite).
    telemetry: Telemetry = field(default_factory=Telemetry)
    #: Raw per-shard telemetry, keyed by application (kept for the run
    #: manifest's per-shard stage timings).
    shard_telemetry: dict[str, Telemetry] = field(default_factory=dict)
    #: Per-shard supervision records (attempts, deadline, outcome class)
    #: when the campaign ran under the supervised executor; empty on the
    #: plain serial/process backends.
    supervision: dict[str, dict] = field(default_factory=dict)
    #: Degradation markers: a quarantined or drain-interrupted shard
    #: flags the campaign so downstream reporting knows the numbers are
    #: partial (codes ``exec-quarantined`` / ``exec-interrupted``).
    flags: list[QualityFlag] = field(default_factory=list)

    def __getitem__(self, app: str) -> ExperimentRun:
        return self.runs[app]

    @property
    def apps(self) -> list[str]:
        return list(self.runs)

    @property
    def failed_apps(self) -> list[str]:
        """Configured apps that produced no usable run."""
        return [app for app in self.config.apps if app not in self.runs]

    @property
    def ok(self) -> bool:
        """Every configured app completed and nothing hit the ledger."""
        return not self.failed_apps and not self.failures

    def failures_for(self, app: str) -> list[CampaignFailure]:
        return [f for f in self.failures if f.app == app]


def campaign_profile(cfg: CampaignConfig, app: str):
    """The profile one shard simulates: built-in, scaled, policy applied."""
    from dataclasses import replace

    profile = get_profile(app)
    if cfg.scale != 1.0:
        profile = profile.scaled(cfg.scale)
    if cfg.scheduler != profile.scheduler:
        profile = replace(profile, scheduler=cfg.scheduler)
    return profile


# --------------------------------------------------------------- checkpoints
def _checkpoint_path(cfg: CampaignConfig, app: str) -> Path:
    return Path(cfg.checkpoint_dir) / f"{app}.npz"


def _save_checkpoint(cfg: CampaignConfig, app: str, result: SimulationResult) -> None:
    directory = Path(cfg.checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    bundle = TraceBundle.from_result(result)
    bundle.meta["campaign_scale"] = cfg.scale
    if cfg.impairment is not None:
        bundle.meta["impairment_seed"] = cfg.impairment.seed
    save_trace_bundle(_checkpoint_path(cfg, app), bundle)


def _load_checkpoint(
    cfg: CampaignConfig,
    app: str,
    world: World,
    testbed: Testbed,
    profile,
) -> SimulationResult:
    """Rebuild a SimulationResult from a checkpointed trace bundle.

    Raises :class:`TraceError` when the checkpoint does not match the
    campaign configuration (stale directory reuse) — the caller then
    falls back to simulating.
    """
    bundle = load_trace_bundle(_checkpoint_path(cfg, app))
    meta = bundle.meta
    if meta.get("profile") != profile.name:
        raise TraceError(f"checkpoint profile {meta.get('profile')!r} != {profile.name!r}")
    if float(meta.get("duration_s", -1.0)) != cfg.duration_s:
        raise TraceError("checkpoint duration mismatch")
    if float(meta.get("campaign_scale", -1.0)) != cfg.scale:
        raise TraceError("checkpoint scale mismatch")
    if meta.get("scheduler", "mesh-pull") != cfg.scheduler:
        raise TraceError(
            f"checkpoint scheduler {meta.get('scheduler', 'mesh-pull')!r} "
            f"!= {cfg.scheduler!r}"
        )
    # Engine cores are byte-identical, so a mismatched checkpoint would
    # hold the same numbers — but the campaign manifest records which
    # core produced every run, and silently mixing cores would make that
    # record a lie.  Stale-reuse detection beats a marginal resim saving.
    if meta.get("engine", "object") != cfg.engine:
        raise TraceError(
            f"checkpoint engine {meta.get('engine', 'object')!r} != {cfg.engine!r}"
        )
    if int(meta.get("world_seed", -1)) != world.config.seed:
        raise TraceError("checkpoint world mismatch")
    expected_plan = None if cfg.impairment is None else cfg.impairment.seed
    if meta.get("impairment_seed") != expected_plan:
        raise TraceError("checkpoint impairment mismatch")
    return SimulationResult(
        transfers=bundle.transfers,
        signaling=bundle.signaling,
        hosts=bundle.hosts,
        testbed=testbed,
        world=world,
        profile=profile,
        config=EngineConfig(duration_s=cfg.duration_s, seed=int(meta.get("seed", 0))),
        events_processed=int(meta.get("events", 0)),
    )


# ----------------------------------------------------------------- sharding
def campaign_shards(
    cfg: CampaignConfig, *, replica: int = 0, keep_result: bool = False
) -> list[ShardSpec]:
    """One shard per configured application, in reporting order."""
    return [
        ShardSpec(
            key=ShardKey(cfg.seed, app, i, replica=replica),
            config=cfg,
            keep_result=keep_result,
        )
        for i, app in enumerate(cfg.apps)
    ]


def _result_from_bundle(
    bundle: TraceBundle, campaign: Campaign, app: str
) -> SimulationResult:
    """Rehydrate a worker's bundled simulation against the campaign world.

    The campaign world/testbed are byte-identical replicas of the ones
    the worker simulated on (both are copies of the same pristine
    construction), so paths and registries resolve identically.
    """
    cfg = campaign.config
    profile = campaign_profile(cfg, app)
    return SimulationResult(
        transfers=bundle.transfers,
        signaling=bundle.signaling,
        hosts=bundle.hosts,
        testbed=campaign.testbed,
        world=campaign.world,
        profile=profile,
        config=EngineConfig(
            duration_s=cfg.duration_s, seed=int(bundle.meta.get("seed", 0))
        ),
        events_processed=int(bundle.meta.get("events", 0)),
    )


def merge_outcome(campaign: Campaign, outcome: ShardOutcome) -> None:
    """Fold one shard outcome into a campaign.

    Pure bookkeeping — no RNG, no recomputation — so the reduction is
    deterministic as long as outcomes are merged in shard (= reporting)
    order, which :func:`run_campaign` guarantees regardless of the order
    workers finished in.
    """
    app = outcome.key.app
    campaign.failures.extend(outcome.failures)
    if outcome.telemetry is not None:
        campaign.shard_telemetry[app] = outcome.telemetry
        campaign.telemetry.merge(outcome.telemetry)
    if outcome.impairment_log is not None:
        campaign.impairment_logs[app] = outcome.impairment_log
    record = getattr(outcome, "supervision", None)
    if record is not None:
        campaign.supervision[app] = record
        if record.get("outcome") == "quarantined":
            campaign.flags.append(
                QualityFlag(
                    "exec-quarantined",
                    detail=(
                        f"shard {record.get('label', app)} exhausted "
                        f"{len(record.get('attempts', ()))} attempt(s)"
                    ),
                )
            )
        elif record.get("outcome") == "interrupted":
            campaign.flags.append(
                QualityFlag(
                    "exec-interrupted",
                    detail=f"shard {record.get('label', app)} interrupted by drain",
                )
            )
    if not outcome.ok:
        return
    result = outcome.result
    if result is None:
        result = _result_from_bundle(outcome.bundle, campaign, app)
    campaign.runs[app] = ExperimentRun(
        app=app,
        result=result,
        flows=outcome.flows,
        report=outcome.report,
        from_checkpoint=outcome.from_checkpoint,
    )


# --------------------------------------------------------------------- runner
def run_campaign(
    config: CampaignConfig | None = None,
    *,
    workers: int | None = None,
    backend: str | None = None,
    policy: "SupervisionPolicy | None" = None,
) -> Campaign:
    """Run and analyse every experiment of a campaign.

    Parameters
    ----------
    config:
        The campaign configuration (default: the paper's three apps).
    workers:
        Process-pool size for the ``process`` backend; ``workers > 1``
        alone implies ``backend="process"``.
    backend:
        ``"serial"`` (default) runs shards inline; ``"process"`` fans
        them out over a :class:`concurrent.futures.ProcessPoolExecutor`;
        ``"supervised"`` fans them out under the resilient runtime
        (deadlines, crash isolation, retry, quarantine — see
        :mod:`repro.exec.supervisor`).  All produce identical campaigns
        on a clean run — same transfer logs, reports, ledgers and
        impairment logs (the determinism tests assert it).  Unset values
        fall back to ``REPRO_EXEC_BACKEND`` / ``REPRO_EXEC_WORKERS``.
    policy:
        A :class:`~repro.exec.supervisor.SupervisionPolicy` (shard
        deadlines, attempt budget, quarantine directory).  Providing one
        routes execution through the supervised runtime even when
        ``backend`` names a plain one.

    Never raises on a per-application failure: inspect
    ``campaign.failures`` (and ``campaign.failed_apps``) for anything the
    runner had to swallow; a shard the supervised runtime had to
    quarantine additionally lands in ``campaign.flags`` and
    ``campaign.supervision``.
    """
    cfg = config or CampaignConfig()
    executor = resolve_executor(backend, workers, policy)
    tel = Telemetry()
    _log.info(
        "campaign-start",
        apps=list(cfg.apps),
        seed=cfg.seed,
        duration_s=cfg.duration_s,
        backend=type(executor).__name__,
    )
    with tel.timer("campaign"):
        with tel.timer("context"):
            world, testbed, _ = campaign_context()
        campaign = Campaign(
            config=cfg, world=world, testbed=testbed, telemetry=tel
        )
        specs = campaign_shards(cfg, keep_result=isinstance(executor, SerialExecutor))
        with tel.timer("shards"):
            for outcome in executor.map_shards(run_shard, specs):
                merge_outcome(campaign, outcome)
        # Supervised executors account for retries/timeouts/quarantines
        # in their own telemetry; fold it into the campaign's.
        exec_tel = getattr(executor, "telemetry", None)
        if isinstance(exec_tel, Telemetry):
            campaign.telemetry.merge(exec_tel)
    _log.info(
        "campaign-done",
        ok=campaign.ok,
        runs=len(campaign.runs),
        failures=len(campaign.failures),
        wall_s=round(tel.stage("campaign").wall_s, 6),
    )
    return campaign
