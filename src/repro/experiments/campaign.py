"""Campaign runner: the three applications on one synthetic Internet.

The paper's campaign ran PPLive, SopCast and TVAnts on the *same* testbed
watching the *same* channel.  :func:`run_campaign` mirrors that: one
:class:`World` and Table I testbed shared across applications, one
simulation per application, analysis applied uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.framework import AwarenessAnalyzer, AwarenessReport
from repro.errors import ConfigurationError
from repro.heuristics.registry import IpRegistry
from repro.streaming.engine import EngineConfig, SimulationResult, simulate
from repro.streaming.profiles import get_profile
from repro.topology.testbed import Testbed, build_napa_wine_testbed
from repro.topology.world import World
from repro.trace.flows import FlowTable, build_flow_table

#: The applications of the paper, in its reporting order.
PAPER_APPS = ("pplive", "sopcast", "tvants")


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """One campaign: which apps, how long, at what scale.

    Parameters
    ----------
    apps:
        Profile names to run.
    duration_s:
        Capture length per experiment (the paper ran 1-hour experiments;
        the preference indices converge far earlier).
    seed:
        Master seed; world, populations and engines derive from it.
    scale:
        Swarm scale factor (1.0 = profile defaults), for quick runs.
    """

    apps: tuple[str, ...] = PAPER_APPS
    duration_s: float = 600.0
    seed: int = 42
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.apps:
            raise ConfigurationError("campaign needs at least one app")
        if self.duration_s <= 0 or self.scale <= 0:
            raise ConfigurationError("duration and scale must be positive")


@dataclass
class ExperimentRun:
    """One application's simulation + analysis artifacts."""

    app: str
    result: SimulationResult
    flows: FlowTable
    report: AwarenessReport


@dataclass
class Campaign:
    """All runs of a campaign, keyed by application name."""

    config: CampaignConfig
    world: World
    testbed: Testbed
    runs: dict[str, ExperimentRun] = field(default_factory=dict)

    def __getitem__(self, app: str) -> ExperimentRun:
        return self.runs[app]

    @property
    def apps(self) -> list[str]:
        return list(self.runs)


def run_campaign(config: CampaignConfig | None = None) -> Campaign:
    """Run and analyse every experiment of a campaign."""
    cfg = config or CampaignConfig()
    world = World()
    testbed = build_napa_wine_testbed(world)
    registry = IpRegistry.from_world(world)
    campaign = Campaign(config=cfg, world=world, testbed=testbed)

    for i, app in enumerate(cfg.apps):
        profile = get_profile(app)
        if cfg.scale != 1.0:
            profile = profile.scaled(cfg.scale)
        result = simulate(
            profile,
            world=world,
            testbed=testbed,
            engine_config=EngineConfig(duration_s=cfg.duration_s, seed=cfg.seed + i),
        )
        flows = build_flow_table(
            result.transfers, result.signaling, result.hosts, world.paths
        )
        report = AwarenessAnalyzer(registry).analyze(flows)
        campaign.runs[app] = ExperimentRun(
            app=app, result=result, flows=flows, report=report
        )
    return campaign
