"""Experiment drivers: one module per table/figure of the paper.

Each driver turns simulation results into a typed artifact mirroring the
paper's table or figure, rendered to text by :mod:`repro.report`:

* :mod:`repro.experiments.campaign`  — run the three applications on a
  shared synthetic Internet (the April-2008 campaign);
* :mod:`repro.experiments.table1`    — testbed summary;
* :mod:`repro.experiments.table2`    — stream rates and peer counts;
* :mod:`repro.experiments.table3`    — NAPA-WINE self-induced bias;
* :mod:`repro.experiments.table4`    — network awareness (P/B indices);
* :mod:`repro.experiments.figure1`   — geographical breakdown;
* :mod:`repro.experiments.figure2`   — AS×AS exchanged-traffic matrices.
"""

from repro.experiments.campaign import (
    Campaign,
    CampaignConfig,
    CampaignFailure,
    ExperimentRun,
    run_campaign,
)
from repro.experiments.table1 import Table1, build_table1
from repro.experiments.table2 import Table2, Table2Row, build_table2
from repro.experiments.table3 import Table3, Table3Row, build_table3
from repro.experiments.table4 import Table4, Table4Cell, build_table4
from repro.experiments.figure1 import Figure1, Figure1Bars, build_figure1
from repro.experiments.figure2 import Figure2, ASMatrix, build_figure2
from repro.experiments.localization import (
    LocalizationReport,
    build_localization,
    render_localization,
)
from repro.experiments.multirun import (
    ReplicatedCampaign,
    render_replicated_table4,
    run_replicated_campaign,
)
from repro.experiments.flowstats import (
    FlowStatsReport,
    build_flowstats,
    render_flowstats,
)
from repro.experiments.sensitivity import (
    SensitivityReport,
    render_sensitivity,
    sweep_sensitivity,
)
from repro.experiments.robustness import (
    RobustnessPoint,
    RobustnessReport,
    render_robustness,
    sweep_robustness,
)

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignFailure",
    "ExperimentRun",
    "run_campaign",
    "Table1",
    "build_table1",
    "Table2",
    "Table2Row",
    "build_table2",
    "Table3",
    "Table3Row",
    "build_table3",
    "Table4",
    "Table4Cell",
    "build_table4",
    "Figure1",
    "Figure1Bars",
    "build_figure1",
    "Figure2",
    "ASMatrix",
    "build_figure2",
    "LocalizationReport",
    "build_localization",
    "render_localization",
    "ReplicatedCampaign",
    "render_replicated_table4",
    "run_replicated_campaign",
    "FlowStatsReport",
    "build_flowstats",
    "render_flowstats",
    "SensitivityReport",
    "render_sensitivity",
    "sweep_sensitivity",
    "RobustnessPoint",
    "RobustnessReport",
    "render_robustness",
    "sweep_robustness",
]
