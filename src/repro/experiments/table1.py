"""Table I: summary of hosts, sites, countries, ASes and access types."""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.testbed import Testbed
from repro.topology.world import HOME_AS_BASE


@dataclass(frozen=True, slots=True)
class Table1Row:
    """One (site, access-class) row, like the paper's compressed rows."""

    hosts: str       # e.g. "1-4" or "5"
    site: str
    country: str
    as_label: str    # "AS1".."AS6" or "ASx"
    access: str      # "high-bw" / "DSL 6/0.512" / ...
    nat: bool
    firewall: bool


@dataclass
class Table1:
    """The reproduced Table I."""

    rows: list[Table1Row]
    total_hosts: int
    institution_hosts: int
    home_hosts: int
    countries: int
    campus_ases: int
    home_ases: int


def _host_number(label: str) -> int:
    return int(label.rsplit("-", 1)[1])


def build_table1(testbed: Testbed) -> Table1:
    """Compress the testbed back into Table I's (site, access) rows."""
    rows: list[Table1Row] = []
    for site in testbed.sites:
        # Group consecutive hosts sharing (access label, AS kind, flags).
        group: list = []

        def flush() -> None:
            if not group:
                return
            first, last = _host_number(group[0].label), _host_number(group[-1].label)
            hosts = str(first) if first == last else f"{first}-{last}"
            h = group[0]
            as_label = (
                f"AS{h.endpoint.asn}" if h.endpoint.asn < HOME_AS_BASE else "ASx"
            )
            rows.append(
                Table1Row(
                    hosts=hosts,
                    site=site.name,
                    country=site.country,
                    as_label=as_label,
                    access=h.endpoint.access.label,
                    nat=h.endpoint.access.nat,
                    firewall=h.endpoint.access.firewall,
                )
            )
            group.clear()

        prev_key = None
        for host in site.hosts:
            acc = host.endpoint.access
            key = (acc.label, acc.nat, acc.firewall, host.endpoint.asn >= HOME_AS_BASE,
                   host.endpoint.asn if host.endpoint.asn >= HOME_AS_BASE else 0)
            # Home hosts each sit in their own AS; still group identical
            # consecutive home rows like the paper does ("11-12").
            home = host.endpoint.asn >= HOME_AS_BASE
            group_key = (acc.label, acc.nat, acc.firewall, home)
            if prev_key is not None and group_key != prev_key:
                flush()
            group.append(host)
            prev_key = group_key
        flush()

    countries = {s.country for s in testbed.sites}
    campus = {h.endpoint.asn for h in testbed.institution_hosts}
    home = {h.endpoint.asn for h in testbed.home_hosts}
    return Table1(
        rows=rows,
        total_hosts=len(testbed),
        institution_hosts=len(testbed.institution_hosts),
        home_hosts=len(testbed.home_hosts),
        countries=len(countries),
        campus_ases=len(campus),
        home_ases=len(home),
    )
