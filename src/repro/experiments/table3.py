"""Table III: the NAPA-WINE self-induced bias.

Per application: the percentage of peers and bytes exchanged *among*
NAPA-WINE probes, over the contributor set and over all contacted peers.
Directions are pooled (a probe↔probe exchange counts on both sides), as in
the paper's single per-app row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.views import ViewPair, build_views
from repro.experiments.campaign import Campaign


@dataclass(frozen=True, slots=True)
class Table3Row:
    """One application's self-bias percentages."""

    app: str
    contrib_peer_pct: float
    contrib_byte_pct: float
    all_peer_pct: float
    all_byte_pct: float


@dataclass
class Table3:
    """The reproduced Table III."""

    rows: list[Table3Row]

    def row(self, app: str) -> Table3Row:
        for r in self.rows:
            if r.app == app:
                return r
        raise KeyError(app)


def _pooled_bias(views: ViewPair, probe_ips: np.ndarray) -> tuple[float, float]:
    peer_ip = np.concatenate([views.download.peer_ip, views.upload.peer_ip])
    nbytes = np.concatenate([views.download.bytes, views.upload.bytes])
    if len(peer_ip) == 0:
        return float("nan"), float("nan")
    probe_peer = np.isin(peer_ip, probe_ips)
    peer_pct = 100.0 * probe_peer.sum() / len(peer_ip)
    total = nbytes.sum()
    byte_pct = float("nan") if total == 0 else 100.0 * nbytes[probe_peer].sum() / total
    return float(peer_pct), float(byte_pct)


def build_table3(campaign: Campaign) -> Table3:
    """Compute Table III over every run of a campaign."""
    rows = []
    for app, run in campaign.runs.items():
        probe_ips = np.asarray(run.flows.probe_ips, dtype=np.uint32)
        contrib = build_views(run.flows)
        everyone = build_views(run.flows, contributors_only=False)
        cp, cb = _pooled_bias(contrib, probe_ips)
        ap, ab = _pooled_bias(everyone, probe_ips)
        rows.append(
            Table3Row(
                app=app,
                contrib_peer_pct=cp,
                contrib_byte_pct=cb,
                all_peer_pct=ap,
                all_byte_pct=ab,
            )
        )
    return Table3(rows=rows)
