"""Table IV: network awareness as peer-wise and byte-wise bias.

The paper's headline table: for each network property (BW, AS, CC, NET,
HOP), each application, and both directions, the preference indices over
all contributors (P, B) and over non-NAPA-WINE contributors (P′, B′).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.framework import AwarenessReport
from repro.core.views import Direction
from repro.experiments.campaign import Campaign

#: Property order of the paper's table.
METRIC_ORDER = ("BW", "AS", "CC", "NET", "HOP")


@dataclass(frozen=True, slots=True)
class Table4Cell:
    """One (metric, app, direction) cell group: B′ P′ B P."""

    metric: str
    app: str
    direction: str
    B_prime: float
    P_prime: float
    B: float
    P: float


@dataclass
class Table4:
    """The reproduced Table IV (flat cell list + lookup helpers)."""

    cells: list[Table4Cell]

    def cell(self, metric: str, app: str, direction: str) -> Table4Cell:
        for c in self.cells:
            if (c.metric, c.app, c.direction) == (metric, app, direction):
                return c
        raise KeyError((metric, app, direction))

    @property
    def metrics(self) -> list[str]:
        seen: list[str] = []
        for c in self.cells:
            if c.metric not in seen:
                seen.append(c.metric)
        return seen

    @property
    def apps(self) -> list[str]:
        seen: list[str] = []
        for c in self.cells:
            if c.app not in seen:
                seen.append(c.app)
        return seen


def cells_from_report(app: str, report: AwarenessReport) -> list[Table4Cell]:
    """Flatten one application's awareness report into table cells."""
    cells = []
    for metric in report.metric_names:
        scores = report[metric]
        for direction in Direction:
            s = scores.get(direction)
            cells.append(
                Table4Cell(
                    metric=metric,
                    app=app,
                    direction=direction.value,
                    B_prime=s.B_prime,
                    P_prime=s.P_prime,
                    B=s.B,
                    P=s.P,
                )
            )
    return cells


def build_table4(campaign: Campaign) -> Table4:
    """Compute Table IV over every run of a campaign."""
    cells: list[Table4Cell] = []
    for metric in METRIC_ORDER:
        for app, run in campaign.runs.items():
            if metric not in run.report.metric_names:
                continue
            for c in cells_from_report(app, run.report):
                if c.metric == metric:
                    cells.append(c)
    return Table4(cells=cells)
