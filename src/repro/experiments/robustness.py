"""Robustness analysis: how do the indices degrade under impairment?

The paper's conclusions rest on clean hour-long captures.  Real campaigns
are messier: bursty request loss, churn storms, sniffer outages, skewed
probe clocks.  This experiment sweeps an :class:`ImpairmentPlan` severity
knob from pristine to heavily damaged and recomputes the headline
preference indices at each point, alongside the degradation telemetry
(records dropped, time spent in the bursty-loss BAD state, quality flags
raised by the analyzer).

A robust methodology shows indices drifting gently and flags appearing
*before* the numbers become garbage — the flags are the early-warning
system this experiment calibrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.supervisor import SupervisionPolicy

from repro.core.framework import AwarenessAnalyzer
from repro.core.quality import QualityFlag
from repro.errors import AnalysisError
from repro.exec.backends import resolve_executor
from repro.exec.context import shard_context
from repro.faults.plan import ImpairmentPlan, simulate_impaired
from repro.obs.telemetry import Telemetry
from repro.streaming.profiles import get_profile
from repro.streaming.schedulers import default_scheduler, get_scheduler
from repro.streaming.soa import default_engine, get_engine
from repro.trace.flows import build_flow_table

#: Default severity sweep: pristine → heavily impaired.
DEFAULT_SEVERITIES = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True, slots=True)
class RobustnessPoint:
    """One severity setting and everything measured under it."""

    severity: float
    bw_byte_pct: float
    as_byte_pct_nonprobe: float
    hop_byte_pct_nonprobe: float
    records: int
    dropped_fraction: float
    bad_time_fraction: float
    flags: tuple[QualityFlag, ...] = ()
    #: Per-point stage timers/counters.  Excluded from equality so the
    #: serial ≡ process parity suite compares scientific content only
    #: (wall-clock necessarily differs between backends).
    telemetry: Telemetry | None = field(default=None, compare=False)

    @property
    def flag_count(self) -> int:
        return len(self.flags)


@dataclass
class RobustnessReport:
    """The full severity sweep for one application."""

    app: str
    points: list[RobustnessPoint] = field(default_factory=list)
    #: Order-independent merge of every point's telemetry.
    telemetry: Telemetry = field(default_factory=Telemetry)

    @property
    def baseline(self) -> RobustnessPoint:
        """The pristine (lowest-severity) point."""
        if not self.points:
            raise AnalysisError("empty robustness sweep")
        return min(self.points, key=lambda p: p.severity)

    def drift(self, field_name: str) -> float:
        """Max absolute excursion of one index from its pristine value."""
        base = getattr(self.baseline, field_name)
        deltas = [
            abs(getattr(p, field_name) - base)
            for p in self.points
            if not np.isnan(getattr(p, field_name))
        ]
        if not deltas or np.isnan(base):
            raise AnalysisError(f"no finite values for {field_name}")
        return max(deltas)


def _headline(report) -> tuple[float, float, float]:
    return (
        report["BW"].download.B,
        report["AS"].download.B_prime,
        report["HOP"].download.B_prime,
    )


@dataclass(frozen=True, slots=True)
class SeverityShard:
    """One severity point of a sweep, as a picklable unit of work."""

    app: str
    severity: float
    duration_s: float
    seed: int
    fault_seed: int
    scale: float
    scheduler: str = "mesh-pull"
    engine: str = "object"


def run_severity_shard(shard: SeverityShard) -> RobustnessPoint:
    """Measure one severity point on a pristine copy of the world.

    Every shard simulates on its own fresh world copy under the same
    engine seed, so the only thing varying between points is the
    impairment — the drift in the indices is attributable to damage, not
    to seed noise or to allocator state left behind by earlier points.
    """
    tel = Telemetry()
    with tel.timer("severity_shard"):
        world, testbed, registry = shard_context()
        profile = get_profile(shard.app)
        if shard.scale != 1.0:
            profile = profile.scaled(shard.scale)
        if shard.scheduler != profile.scheduler:
            profile = replace(profile, scheduler=shard.scheduler)
        plan = ImpairmentPlan.preset(
            shard.severity, seed=shard.fault_seed, duration_s=shard.duration_s
        )
        with tel.timer("simulate"):
            result, log = simulate_impaired(
                profile,
                plan,
                duration_s=shard.duration_s,
                seed=shard.seed,
                world=world,
                testbed=testbed,
                engine=shard.engine,
            )
        with tel.timer("analyze"):
            flows = build_flow_table(
                result.transfers,
                result.signaling,
                result.hosts,
                world.paths,
                telemetry=tel,
            )
            analysis = AwarenessAnalyzer(registry).analyze(flows, telemetry=tel)
    bw, as_np, hop_np = _headline(analysis)
    return RobustnessPoint(
        severity=shard.severity,
        bw_byte_pct=bw,
        as_byte_pct_nonprobe=as_np,
        hop_byte_pct_nonprobe=hop_np,
        records=len(result.transfers),
        dropped_fraction=log.dropped_fraction,
        bad_time_fraction=log.bad_time_fraction,
        flags=tuple(analysis.flags),
        telemetry=tel,
    )


def sweep_robustness(
    app: str = "tvants",
    *,
    severities: tuple[float, ...] = DEFAULT_SEVERITIES,
    duration_s: float = 300.0,
    seed: int = 7,
    fault_seed: int = 1,
    scale: float = 1.0,
    scheduler: str | None = None,
    engine: str | None = None,
    workers: int | None = None,
    backend: str | None = None,
    policy: "SupervisionPolicy | None" = None,
) -> RobustnessReport:
    """Sweep impairment severity over one application.

    Severity points are independent shards (each on its own pristine
    world copy, same engine seed) and fan out over the selected executor
    backend; the report lists them in the requested severity order
    regardless of completion order.  Under a supervision ``policy`` the
    points run with deadlines/retries; a point that exhausts every
    attempt raises :class:`~repro.errors.ExecutorError` (severity sweeps
    have no degraded-completion mode — a hole in the curve would be
    misleading).
    """
    executor = resolve_executor(backend, workers, policy)
    policy_name = scheduler if scheduler is not None else default_scheduler()
    get_scheduler(policy_name)  # unknown names raise before any work
    engine_name = engine if engine is not None else default_engine()
    get_engine(engine_name)  # unknown names raise before any work
    shards = [
        SeverityShard(
            app=app,
            severity=severity,
            duration_s=duration_s,
            seed=seed,
            fault_seed=fault_seed,
            scale=scale,
            scheduler=policy_name,
            engine=engine_name,
        )
        for severity in severities
    ]
    report = RobustnessReport(app=app)
    report.points.extend(executor.map_shards(run_severity_shard, shards))
    for point in report.points:
        if point.telemetry is not None:
            report.telemetry.merge(point.telemetry)
    exec_tel = getattr(executor, "telemetry", None)
    if isinstance(exec_tel, Telemetry):
        report.telemetry.merge(exec_tel)
    return report


def render_robustness(report: RobustnessReport) -> str:
    """Monospace rendering: per-severity indices plus drift summary."""
    from repro.report.tables import render_table

    rows = [
        [
            f"{p.severity:.2f}",
            f"{p.bw_byte_pct:.1f}",
            f"{p.as_byte_pct_nonprobe:.1f}",
            f"{p.hop_byte_pct_nonprobe:.1f}",
            f"{p.records}",
            f"{p.dropped_fraction:.1%}",
            f"{p.bad_time_fraction:.1%}",
            f"{p.flag_count}",
        ]
        for p in report.points
    ]
    out = render_table(
        ["severity", "BW B%", "AS B'%", "HOP B'%", "records", "dropped", "bad time", "flags"],
        rows,
        title=f"ROBUSTNESS — {report.app}: indices under increasing impairment",
    )
    drifts = []
    for label, fname in (
        ("BW", "bw_byte_pct"),
        ("AS", "as_byte_pct_nonprobe"),
        ("HOP", "hop_byte_pct_nonprobe"),
    ):
        try:
            drifts.append(f"{label} ±{report.drift(fname):.1f}")
        except AnalysisError:
            drifts.append(f"{label} n/a")
    out += "\n\nmax drift from pristine:  " + "   ".join(drifts)
    flagged = [p for p in report.points if p.flags]
    if flagged:
        out += "\nflags raised:"
        for p in flagged:
            for f in p.flags:
                out += f"\n  severity {p.severity:.2f}: {f}"
    else:
        out += "\nno quality flags raised at any severity"
    return out
