"""Sensitivity analysis: how robust is Table IV to the heuristics' knobs?

The methodology rests on two thresholded heuristics — contributor
identification (packet-size/volume cut-offs) and the 1 ms IPG capacity
boundary — plus the fixed 19-hop HOP threshold.  The paper asserts its
heuristic is "accurate and conservative" without sweeping it; with a
simulator we can: this experiment recomputes the preference indices
across threshold sweeps and reports the excursion of each headline
number.  Small excursions = the findings are not artifacts of the
chosen constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.framework import AwarenessAnalyzer
from repro.core.partitions import BWPartition, default_partitions
from repro.errors import AnalysisError
from repro.heuristics.contributors import ContributorCriteria
from repro.heuristics.registry import IpRegistry
from repro.trace.flows import FlowTable


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One parameter setting and the resulting headline indices."""

    parameter: str
    value: float
    bw_byte_pct: float
    as_byte_pct_nonprobe: float
    hop_byte_pct_nonprobe: float


@dataclass
class SensitivityReport:
    """All sweep points plus max-excursion summaries."""

    points: list[SweepPoint]

    def excursion(self, field: str, parameter: str | None = None) -> float:
        """Max − min of one index across a sweep (NaN-free)."""
        values = [
            getattr(p, field)
            for p in self.points
            if (parameter is None or p.parameter == parameter)
            and not np.isnan(getattr(p, field))
        ]
        if not values:
            raise AnalysisError(f"no finite values for {field}/{parameter}")
        return max(values) - min(values)

    def parameters(self) -> list[str]:
        seen: list[str] = []
        for p in self.points:
            if p.parameter not in seen:
                seen.append(p.parameter)
        return seen


def _headline(report) -> tuple[float, float, float]:
    return (
        report["BW"].download.B,
        report["AS"].download.B_prime,
        report["HOP"].download.B_prime,
    )


def sweep_sensitivity(
    table: FlowTable,
    registry: IpRegistry,
    *,
    volume_thresholds: tuple[int, ...] = (1500, 2500, 5000, 10000),
    mean_size_thresholds: tuple[int, ...] = (300, 400, 600),
    ipg_thresholds_ms: tuple[float, ...] = (0.5, 1.0, 2.0),
    hop_thresholds: tuple[int, ...] = (17, 19, 21),
) -> SensitivityReport:
    """Sweep every heuristic threshold over one experiment's flows."""
    points: list[SweepPoint] = []

    for volume in volume_thresholds:
        criteria = ContributorCriteria(min_payload_bytes=volume)
        report = AwarenessAnalyzer(registry, criteria=criteria).analyze(table)
        points.append(SweepPoint("contributor_volume", float(volume), *_headline(report)))

    for size in mean_size_thresholds:
        criteria = ContributorCriteria(min_mean_packet_bytes=size)
        report = AwarenessAnalyzer(registry, criteria=criteria).analyze(table)
        points.append(SweepPoint("contributor_mean_size", float(size), *_headline(report)))

    for ipg_ms in ipg_thresholds_ms:
        partitions = default_partitions(registry)
        partitions[0] = BWPartition(ipg_threshold_s=ipg_ms * 1e-3)
        report = AwarenessAnalyzer(registry, partitions=partitions).analyze(table)
        points.append(SweepPoint("ipg_threshold_ms", ipg_ms, *_headline(report)))

    for hops in hop_thresholds:
        partitions = default_partitions(registry, hop_threshold=hops)
        report = AwarenessAnalyzer(registry, partitions=partitions).analyze(table)
        points.append(SweepPoint("hop_threshold", float(hops), *_headline(report)))

    return SensitivityReport(points=points)


def render_sensitivity(report: SensitivityReport) -> str:
    """Monospace rendering: per-point values plus excursion summary."""
    from repro.report.tables import render_table

    rows = [
        [
            p.parameter,
            f"{p.value:g}",
            f"{p.bw_byte_pct:.1f}",
            f"{p.as_byte_pct_nonprobe:.1f}",
            f"{p.hop_byte_pct_nonprobe:.1f}",
        ]
        for p in report.points
    ]
    out = render_table(
        ["parameter", "value", "BW B%", "AS B'%", "HOP B'%"],
        rows,
        title="SENSITIVITY — headline indices across heuristic thresholds",
    )
    out += "\n\nmax excursions:"
    for param in report.parameters():
        out += (
            f"\n  {param:<22s} BW ±{report.excursion('bw_byte_pct', param) / 2:.1f}"
            f"  AS ±{report.excursion('as_byte_pct_nonprobe', param) / 2:.1f}"
            f"  HOP ±{report.excursion('hop_byte_pct_nonprobe', param) / 2:.1f}"
        )
    return out
