"""Figure 2: AS×AS exchanged traffic among high-bandwidth probes.

For each application the paper shows a matrix: the *average* amount of
data a high-bandwidth probe in AS-i transferred to a high-bandwidth probe
in AS-j, with the intra-AS diagonal highlighted.  The summary statistic is

    ``R = mean(intra-AS pair traffic) / mean(inter-AS pair traffic)``

with paper values R ≈ 1.93 (TVAnts), 0.98 (PPLive), 0.2 (SopCast), and an
intra-AS picture dominated by hop-0 (same-LAN) traffic for the
PPLive-Popular experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.campaign import Campaign
from repro.trace.flows import FlowTable


@dataclass
class ASMatrix:
    """One application's probe-AS traffic matrix."""

    app: str
    as_numbers: list[int]
    #: mean bytes per ordered high-bw probe pair, AS_i → AS_j.
    mean_bytes: np.ndarray
    #: same matrix restricted to zero-hop (same-subnet) pairs.
    mean_bytes_local: np.ndarray
    ratio_intra_inter: float

    @property
    def local_share_intra(self) -> float:
        """Fraction of intra-AS traffic that is hop-0 (same subnet)."""
        intra = float(np.trace(self.mean_bytes))
        if intra == 0:
            return float("nan")
        return float(np.trace(self.mean_bytes_local)) / intra


@dataclass
class Figure2:
    """The reproduced Figure 2."""

    matrices: list[ASMatrix]

    def matrix(self, app: str) -> ASMatrix:
        for m in self.matrices:
            if m.app == app:
                return m
        raise KeyError(app)


def _probe_matrix(flows: FlowTable) -> ASMatrix:
    hosts = flows.hosts
    rows = hosts.rows
    hb_probes = rows[(rows["is_probe"]) & (rows["highbw"])]
    as_numbers = sorted(set(int(a) for a in hb_probes["asn"]))
    index = {a: i for i, a in enumerate(as_numbers)}
    n = len(as_numbers)
    totals = np.zeros((n, n))
    local = np.zeros((n, n))
    pairs = np.zeros((n, n))

    ips = hb_probes["ip"]
    asn_of = {int(r["ip"]): int(r["asn"]) for r in hb_probes}
    subnet_of = {int(r["ip"]): int(r["subnet"]) for r in hb_probes}

    # Count every ordered high-bw probe pair (for per-pair averaging).
    for a in ips:
        for b in ips:
            if a == b:
                continue
            pairs[index[asn_of[int(a)]], index[asn_of[int(b)]]] += 1

    f = flows.flows
    probe_set = set(int(i) for i in ips)
    both = np.array(
        [int(s) in probe_set and int(d) in probe_set for s, d in zip(f["src"], f["dst"])]
    ) if len(f) else np.zeros(0, dtype=bool)
    for row in f[both] if len(f) else []:
        s, d = int(row["src"]), int(row["dst"])
        i, j = index[asn_of[s]], index[asn_of[d]]
        totals[i, j] += row["bytes"]
        if subnet_of[s] == subnet_of[d]:
            local[i, j] += row["bytes"]

    with np.errstate(invalid="ignore", divide="ignore"):
        mean = np.where(pairs > 0, totals / np.maximum(pairs, 1), 0.0)
        mean_local = np.where(pairs > 0, local / np.maximum(pairs, 1), 0.0)

    diag = np.eye(n, dtype=bool)
    intra_pairs, inter_pairs = pairs[diag].sum(), pairs[~diag].sum()
    intra = totals[diag].sum() / intra_pairs if intra_pairs else float("nan")
    inter = totals[~diag].sum() / inter_pairs if inter_pairs else float("nan")
    ratio = intra / inter if inter and np.isfinite(inter) and inter > 0 else float("nan")

    return ASMatrix(
        app="",
        as_numbers=as_numbers,
        mean_bytes=mean,
        mean_bytes_local=mean_local,
        ratio_intra_inter=float(ratio),
    )


def build_figure2(campaign: Campaign) -> Figure2:
    """Compute Figure 2 over every run of a campaign."""
    matrices = []
    for app, run in campaign.runs.items():
        m = _probe_matrix(run.flows)
        m.app = app
        matrices.append(m)
    return Figure2(matrices=matrices)
