"""Localization experiment — quantifying the paper's closing argument.

The paper ends: current systems should "better localize the traffic the
network has to carry".  This experiment measures how far each measured
system is from that goal and how much a next-generation aware client
(:func:`repro.streaming.profiles.napa_wine`) would close the gap:

* per application: mean router hops per video byte, intra-AS / intra-CC
  byte shares, transit (inter-AS) byte share;
* a what-if row for the aware client, with the quality check that it
  still receives the full stream.

This is an *extension* of the paper (its future-work section), flagged as
such in DESIGN.md and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.campaign import Campaign
from repro.friendliness.cost import TrafficCost, traffic_cost
from repro.friendliness.whatif import WhatIfOutcome, compare_profiles
from repro.streaming.profiles import get_profile, napa_wine


@dataclass(frozen=True, slots=True)
class LocalizationRow:
    """One application's network-cost summary."""

    app: str
    cost: TrafficCost


@dataclass
class LocalizationReport:
    """Per-app costs plus the next-generation what-if comparison."""

    rows: list[LocalizationRow]
    whatif: WhatIfOutcome | None = None

    def row(self, app: str) -> LocalizationRow:
        for r in self.rows:
            if r.app == app:
                return r
        raise KeyError(app)


def build_localization(
    campaign: Campaign,
    *,
    include_whatif: bool = False,
    whatif_duration_s: float = 120.0,
    whatif_seed: int = 23,
) -> LocalizationReport:
    """Compute localization metrics for every campaign run.

    With ``include_whatif=True``, additionally runs the SopCast baseline
    against the aware ``napa-wine`` profile under identical seeds (extra
    simulation cost: two short runs).
    """
    rows = [
        LocalizationRow(app=app, cost=traffic_cost(run.flows, campaign.world.paths))
        for app, run in campaign.runs.items()
    ]
    whatif = None
    if include_whatif:
        whatif = compare_profiles(
            get_profile("sopcast"),
            napa_wine(),
            duration_s=whatif_duration_s,
            seed=whatif_seed,
        )
    return LocalizationReport(rows=rows, whatif=whatif)


def render_localization(report: LocalizationReport) -> str:
    """Monospace rendering of the localization report."""
    from repro.report.tables import render_table

    rows = []
    for r in report.rows:
        c = r.cost
        rows.append(
            [
                r.app,
                f"{c.mean_hops_per_byte:.1f}",
                f"{100 * c.as_localization:.1f}",
                f"{100 * c.cc_localization:.1f}",
                f"{100 * c.transit_fraction:.1f}",
            ]
        )
    out = render_table(
        ["App", "hops/byte", "intra-AS %", "intra-CC %", "transit %"],
        rows,
        title="LOCALIZATION — network cost of the video traffic (extension)",
    )
    if report.whatif is not None:
        w = report.whatif
        out += (
            f"\n\nwhat-if: {w.baseline.profile} → {w.candidate.profile}"
            f"\n  hops/byte     {w.baseline.cost.mean_hops_per_byte:.1f} → "
            f"{w.candidate.cost.mean_hops_per_byte:.1f} "
            f"({100 * w.hop_reduction:+.0f}%)"
            f"\n  transit share {100 * w.baseline.cost.transit_fraction:.1f}% → "
            f"{100 * w.candidate.cost.transit_fraction:.1f}% "
            f"({100 * w.transit_reduction:+.0f}%)"
            f"\n  rate sufficiency {w.baseline.rate_sufficiency:.2f} → "
            f"{w.candidate.rate_sufficiency:.2f} "
            f"(quality preserved: {w.quality_preserved})"
        )
    return out
