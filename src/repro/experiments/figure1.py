"""Figure 1: geographical breakdown of peers and exchanged bytes.

Per application, three stacked bars: the share of observed peers (#), of
received bytes (RX) and of transmitted bytes (TX) by country — CN, the
four probe countries, and '*' for the rest of the world.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.views import build_views
from repro.experiments.campaign import Campaign
from repro.heuristics.registry import IpRegistry
from repro.topology.geography import FIGURE1_LABELS

#: Catch-all label for countries outside the explicit set.
OTHER = "*"


@dataclass(frozen=True, slots=True)
class Figure1Bars:
    """One application's three bars; values are % by country label."""

    app: str
    peers: dict[str, float]
    rx_bytes: dict[str, float]
    tx_bytes: dict[str, float]
    total_peers: int


@dataclass
class Figure1:
    """The reproduced Figure 1."""

    bars: list[Figure1Bars]
    labels: tuple[str, ...] = FIGURE1_LABELS + (OTHER,)

    def bar(self, app: str) -> Figure1Bars:
        for b in self.bars:
            if b.app == app:
                return b
        raise KeyError(app)


def _bucket(country_codes: np.ndarray) -> np.ndarray:
    return np.where(np.isin(country_codes, FIGURE1_LABELS), country_codes, OTHER)


def _shares(labels: np.ndarray, weights: np.ndarray | None = None) -> dict[str, float]:
    out = {label: 0.0 for label in FIGURE1_LABELS + (OTHER,)}
    if len(labels) == 0:
        return out
    if weights is None:
        weights = np.ones(len(labels))
    total = weights.sum()
    if total == 0:
        return out
    for label in out:
        out[label] = float(100.0 * weights[labels == label].sum() / total)
    return out


def build_figure1(campaign: Campaign, registry: IpRegistry | None = None) -> Figure1:
    """Compute Figure 1 over every run of a campaign.

    Peer shares count distinct observed peers (signaling-only contacts
    included, as in the paper's "total number of observed peers"); byte
    shares weight by exchanged volume per direction.

    Without an explicit ``registry``, each run resolves against its own
    host table (the exact-address GeoIP stand-in) — the campaign world's
    prefix plan predates swarm placement and does not cover overflow
    prefixes attached while placing very large populations.
    """
    bars = []
    for app, run in campaign.runs.items():
        reg = registry or IpRegistry.from_hosts(
            run.result.hosts,
            subnet_prefixlen=campaign.world.config.subnet_prefixlen,
        )
        views = build_views(run.flows, contributors_only=False)
        all_peers = np.unique(
            np.concatenate([views.download.peer_ip, views.upload.peer_ip])
        )
        peer_labels = _bucket(reg.country_of(all_peers))
        rx_labels = _bucket(reg.country_of(views.download.peer_ip))
        tx_labels = _bucket(reg.country_of(views.upload.peer_ip))
        bars.append(
            Figure1Bars(
                app=app,
                peers=_shares(peer_labels),
                rx_bytes=_shares(rx_labels, views.download.bytes.astype(np.float64)),
                tx_bytes=_shares(tx_labels, views.upload.bytes.astype(np.float64)),
                total_peers=len(all_peers),
            )
        )
    return Figure1(bars=bars)
