"""Flow-level statistics à la Silverston & Fourmaux (the paper's [12]).

The closest prior comparative study characterised PPLive/SopCast/TVAnts
by (a) scatter plots of mean packet size versus flow duration and (b) the
data rate of the top-10 contributors versus the overall download rate.
The paper argues those views are less systematic than its P/B indices;
implementing them here lets a user reproduce the comparison and see both
methodologies on the same traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.experiments.campaign import Campaign
from repro.trace.flows import FlowTable


@dataclass(frozen=True, slots=True)
class FlowScatter:
    """Per-flow (duration, mean packet size) pairs for one application."""

    app: str
    durations_s: np.ndarray
    mean_packet_bytes: np.ndarray

    def __len__(self) -> int:
        return len(self.durations_s)

    def video_cluster_fraction(self, size_cut: float = 800.0) -> float:
        """Fraction of flows in the large-packet (video) cluster."""
        if len(self) == 0:
            return float("nan")
        return float((self.mean_packet_bytes >= size_cut).mean())


@dataclass(frozen=True, slots=True)
class TopContributors:
    """Top-N contributor rates vs the total download rate, per probe."""

    app: str
    n: int
    #: Per-probe share of download bytes supplied by its top-N peers.
    top_share_per_probe: np.ndarray

    @property
    def mean_share(self) -> float:
        if len(self.top_share_per_probe) == 0:
            return float("nan")
        return float(np.mean(self.top_share_per_probe))


def flow_scatter(table: FlowTable, app: str = "") -> FlowScatter:
    """Compute the duration/mean-packet-size scatter of probe-side flows."""
    flows = table.flows
    if len(flows) == 0:
        return FlowScatter(app, np.zeros(0), np.zeros(0))
    durations = (flows["last_ts"] - flows["first_ts"]).astype(np.float64)
    mean_size = flows["bytes"] / np.maximum(flows["pkts"], 1)
    return FlowScatter(app, durations, mean_size.astype(np.float64))


def top_contributors(table: FlowTable, n: int = 10, app: str = "") -> TopContributors:
    """Per probe: byte share of its top-``n`` download contributors."""
    if n < 1:
        raise AnalysisError("top-N needs n >= 1")
    shares = []
    for probe in table.probe_ips:
        rx = table.received_by(int(probe))
        rx = rx[rx["video_bytes"] > 0]
        if len(rx) == 0:
            continue
        per_peer = np.sort(rx["bytes"].astype(np.float64))[::-1]
        shares.append(per_peer[:n].sum() / per_peer.sum())
    return TopContributors(app=app, n=n, top_share_per_probe=np.array(shares))


@dataclass
class FlowStatsReport:
    """Both related-work views over a whole campaign."""

    scatters: list[FlowScatter]
    tops: list[TopContributors]

    def scatter(self, app: str) -> FlowScatter:
        for s in self.scatters:
            if s.app == app:
                return s
        raise KeyError(app)

    def top(self, app: str) -> TopContributors:
        for t in self.tops:
            if t.app == app:
                return t
        raise KeyError(app)


def build_flowstats(campaign: Campaign, top_n: int = 10) -> FlowStatsReport:
    """Compute both views for every campaign run."""
    scatters, tops = [], []
    for app, run in campaign.runs.items():
        scatters.append(flow_scatter(run.flows, app))
        tops.append(top_contributors(run.flows, top_n, app))
    return FlowStatsReport(scatters=scatters, tops=tops)


def render_flowstats(report: FlowStatsReport) -> str:
    """Monospace summary of both views."""
    from repro.report.tables import render_table

    rows = []
    for s in report.scatters:
        t = next(t for t in report.tops if t.app == s.app)
        long_flows = float((s.durations_s > 30).mean()) if len(s) else float("nan")
        rows.append(
            [
                s.app,
                str(len(s)),
                f"{100 * s.video_cluster_fraction():.0f}",
                f"{100 * long_flows:.0f}",
                f"{100 * t.mean_share:.0f}",
            ]
        )
    return render_table(
        ["App", "flows", "video-cluster %", "long-flow %", f"top-10 share %"],
        rows,
        title="FLOW STATS — the related-work [12] views on the same traffic",
    )
