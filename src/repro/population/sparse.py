"""Sparse, block-lazy swarm representation for paper-scale populations.

The measured swarms of the paper held ~1.8×10^5 peers; the object-per-peer
directory built by :mod:`repro.population.generator` tops out around 10^4
because every remote costs a ``RemotePeer`` + ``NetworkEndpoint`` +
``AccessLink`` object graph (~1 kB each).  This module holds the same
population as flat numpy columns (~40 bytes per peer) generated lazily in
seeded blocks, so a 10^5–10^6 peer swarm costs a few megabytes plus memory
proportional to what the engine actually touches.

Determinism contract
--------------------
A :class:`SparseSwarm` consumes exactly **one** draw from the population
RNG stream (a 63-bit block-seed root); every per-peer attribute then comes
from per-block child generators spawned off a ``SeedSequence`` of that
root.  Columns are therefore a pure function of ``(rng state, size,
block_size)`` — independent of materialisation order, but **not** of the
block size, which is part of the population's identity and defaults to
:data:`DEFAULT_BLOCK_SIZE`.

Per block the draw sequence is fixed-width (every peer consumes the same
draws whether or not a branch uses them), which is what makes the whole
block vectorisable — this is the bulk-draw scheme the dense generator
cannot adopt without breaking its pinned golden hashes:

1.  country index        — ``choice(n_countries, size=B, p=probs)``
2.  high-bw uniform      — ``random(B)``        (``< highbw_for(cc)``)
3.  probe-AS uniform     — ``random(B)``        (``< probe_as_fraction``)
4.  AS pick integer      — ``integers(1 << 30, size=B)`` (mod table width)
5.  campus-LAN uniform   — ``random(B)``        (``< 0.9`` → campus LAN)
6.  access-class uniform — ``random(B)``        (``< 0.6`` → LAN else FTTH)
7.  FTTH uplink index    — ``integers(3, size=B)``
8.  DSL downlink index   — ``integers(5, size=B)``
9.  DSL uplink index     — ``integers(5, size=B)``
10. NAT uniform          — ``random(B)``        (``< 0.5`` for DSL)
11. OS/TTL uniform       — ``random(B)``        (``< unix_fraction`` → 64)

The *distributions* match :func:`repro.population.generator.generate_population`
exactly (same access plans, same campus/ISP placement rules, same TTL mix);
only the stream layout differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.population.demographics import Demographics, cctv1_audience
from repro.population.generator import _PROBE_AS_BY_CC, RemotePeer
from repro.topology.access import (
    HIGH_BW_THRESHOLD_BPS,
    AccessClass,
    AccessLink,
)
from repro.topology.geography import PROBE_COUNTRIES
from repro.topology.host import (
    INITIAL_TTL_UNIX,
    INITIAL_TTL_WINDOWS,
    NetworkEndpoint,
)
from repro.topology.world import World
from repro.units import MBPS

#: Peers generated per seeded block.  Part of the population identity —
#: changing it changes the drawn columns for a given seed.
DEFAULT_BLOCK_SIZE = 8192

#: ``SwarmColumns.kind`` codes, aligned with :class:`AccessClass` order.
KIND_LAN, KIND_DSL, KIND_CATV, KIND_FTTH = 0, 1, 2, 3

_KIND_TO_CLASS = {
    KIND_LAN: AccessClass.LAN,
    KIND_DSL: AccessClass.DSL,
    KIND_CATV: AccessClass.CATV,
    KIND_FTTH: AccessClass.FTTH,
}

#: Router hops inside the access network, mirroring
#: :data:`repro.topology.paths.ACCESS_DEPTH` (LAN=1, everything else 2).
_DEPTH_BY_KIND = np.array([1, 2, 2, 2], dtype=np.uint8)

_FTTH_UP_MBPS = np.array([20.0, 50.0, 100.0])
_DSL_DOWN_MBPS = np.array([1.0, 2.0, 4.0, 6.0, 8.0])
_DSL_UP_MBPS = np.array([0.256, 0.384, 0.512, 0.640, 1.0])


@dataclass(frozen=True, slots=True)
class SwarmColumns:
    """A (slice of a) remote population as aligned numpy columns."""

    ip: np.ndarray            # uint32
    subnet: np.ndarray        # uint32 (masked network address)
    asn: np.ndarray           # int32
    cc: np.ndarray            # 'U2' (the *AS's* country, like NetworkEndpoint)
    kind: np.ndarray          # int8 access-class code
    down_bps: np.ndarray      # float64
    up_bps: np.ndarray        # float64
    nat: np.ndarray           # bool
    firewalled: np.ndarray    # bool (generated remotes never firewall)
    highbw: np.ndarray        # bool (uplink > 10 Mb/s)
    initial_ttl: np.ndarray   # uint8
    access_depth: np.ndarray  # uint8

    def __len__(self) -> int:
        return len(self.ip)

    @property
    def nbytes(self) -> int:
        """Total memory held by the columns."""
        return sum(
            getattr(self, name).nbytes for name in self.__dataclass_fields__
        )


def _concat(parts: list[SwarmColumns]) -> SwarmColumns:
    if len(parts) == 1:
        return parts[0]
    return SwarmColumns(**{
        name: np.concatenate([getattr(p, name) for p in parts])
        for name in SwarmColumns.__dataclass_fields__
    })


@dataclass(frozen=True, slots=True)
class SparseSwarmConfig:
    """Shape of a sparse population.

    Mirrors :class:`repro.population.generator.PopulationConfig` plus the
    block size of the lazy generator.
    """

    size: int
    demographics: Demographics | None = None
    unix_fraction: float = 0.04
    block_size: int = DEFAULT_BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ConfigurationError(f"population size must be >= 0, got {self.size}")
        if not 0 <= self.unix_fraction <= 1:
            raise ConfigurationError("unix_fraction must be in [0, 1]")
        if self.block_size < 1:
            raise ConfigurationError("block_size must be >= 1")


class AliasTable:
    """Vose alias sampler over a fixed weight vector.

    Construction is O(n); each draw costs one ``integers`` plus one
    ``random`` batch regardless of n — the piece that lets tracker and
    gossip replies sample a 10^5-peer swarm without an O(n) scan per call.

    Draw order (fixed, documented for determinism): the column draw
    ``j = integers(n, size)`` first, then the coin ``u = random(size)``.
    """

    __slots__ = ("n", "prob", "alias")

    def __init__(self, weights: np.ndarray) -> None:
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or len(w) == 0:
            raise ConfigurationError("alias table needs a non-empty 1-D weight vector")
        if np.any(w < 0) or not np.isfinite(w).all():
            raise ConfigurationError("alias weights must be finite and non-negative")
        total = w.sum()
        if total <= 0:
            raise ConfigurationError("alias weights must sum to a positive value")
        if not np.isfinite(total):
            raise ConfigurationError("alias weights overflow float64 when summed")
        n = len(w)
        # Normalise before scaling: w/total is always in [0, 1], so this
        # cannot overflow even when ``total`` is subnormal (n/total would
        # be inf) or the weights sit near the float64 ceiling (w*n would
        # be inf).
        scaled = (w / total) * n
        prob = np.ones(n, dtype=np.float64)
        alias = np.arange(n, dtype=np.int64)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            s, l = small.pop(), large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            (small if scaled[l] < 1.0 else large).append(l)
        self.n = n
        self.prob = prob
        self.alias = alias

    def draw(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` indices distributed per the construction weights."""
        j = rng.integers(0, self.n, size=size)
        u = rng.random(size)
        return np.where(u < self.prob[j], j, self.alias[j])


class IndexRemap:
    """Compact global-id → dense-slot remap for touched-peer state.

    The lazy engine keeps per-remote mutable state (busy counters, latency
    memos) only for peers a probe has actually contacted.  The remap hands
    out dense slots in first-contact order, so backing storage grows with
    the touched set, not the swarm.  Slots are never recycled — a touched
    peer stays resident for the run, which is exactly the reservoir the
    heavy-tailed contact distribution needs.
    """

    __slots__ = ("_slots",)

    def __init__(self) -> None:
        self._slots: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._slots)

    def slot(self, key: int) -> int | None:
        """The dense slot for ``key``, or ``None`` if never touched."""
        return self._slots.get(key)

    def ensure(self, key: int) -> int:
        """The dense slot for ``key``, allocating the next one on miss."""
        s = self._slots.get(key)
        if s is None:
            s = len(self._slots)
            self._slots[key] = s
        return s


class ScoreRowCache:
    """LRU of on-demand per-probe score rows under a byte budget.

    Awareness scores are pure functions of static endpoint columns, so a
    row can always be rebuilt bit-identically — eviction is memory
    management, never an invalidation concern.  ``build`` maps a probe
    index to its full float64 row; the cache keeps recently-used rows up
    to ``budget_bytes`` and drops least-recently-used ones beyond it
    (always retaining the row just built).
    """

    __slots__ = ("_build", "_budget", "_rows", "_bytes", "hits", "misses", "evictions")

    def __init__(self, build, budget_bytes: int) -> None:
        self._build = build
        self._budget = int(budget_bytes)
        self._rows: dict[int, np.ndarray] = {}
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def nbytes(self) -> int:
        return self._bytes

    def row(self, key: int) -> np.ndarray:
        row = self._rows.get(key)
        if row is not None:
            self.hits += 1
            # Insertion order doubles as recency order: re-insert on hit.
            del self._rows[key]
            self._rows[key] = row
            return row
        self.misses += 1
        row = self._build(key)
        self._rows[key] = row
        self._bytes += row.nbytes
        while self._bytes > self._budget and len(self._rows) > 1:
            oldest = next(iter(self._rows))
            if oldest == key:
                break
            self._bytes -= self._rows.pop(oldest).nbytes
            self.evictions += 1
        return row


class SparseSwarm:
    """A lazily-materialised remote population held as numpy columns.

    Blocks materialise in index order on first touch (IP assignment is
    stateful — per-AS subnet cursors advance in block order), so touching
    block *b* materialises every block up to *b*.  :meth:`columns` returns
    the full concatenated view, cached; :meth:`peers` is the thin
    object-API view for small-N consumers and differential tests.
    """

    def __init__(
        self,
        world: World,
        config: SparseSwarmConfig,
        rng: np.random.Generator,
    ) -> None:
        self.world = world
        self.config = config
        demo = config.demographics or cctv1_audience()
        self.demographics = demo
        # The single draw consumed from the population stream.
        self._root = int(rng.integers(0, 2**63))
        self.n_blocks = -(-config.size // config.block_size) if config.size else 0
        self._seeds = (
            np.random.SeedSequence(self._root).spawn(self.n_blocks)
            if self.n_blocks
            else []
        )
        self._blocks: list[SwarmColumns] = []
        self._columns: SwarmColumns | None = None
        self._build_tables(world, demo)

    # ------------------------------------------------------------- tables
    def _build_tables(self, world: World, demo: Demographics) -> None:
        codes, probs = demo.normalised_weights()
        self._codes = codes
        self._probs = probs
        self._hb_frac = np.array([demo.highbw_for(c) for c in codes])
        self._is_probe_cc = np.array(
            [c in PROBE_COUNTRIES and c in _PROBE_AS_BY_CC for c in codes]
        )
        all_isps = [asn for cc in codes for asn in world.access_isps(cc)]
        if not all_isps:
            raise ConfigurationError("world has no consumer ISPs registered")
        isp_lists = []
        campus_lists = []
        for cc in codes:
            isps = world.access_isps(cc)
            # Countries with no registered ISP fall back to a random foreign
            # ISP — same mis-geolocated-straggler rule as the dense path.
            isp_lists.append(isps if isps else all_isps)
            campus_lists.append(_PROBE_AS_BY_CC.get(cc, [0]))
        width = max(len(l) for l in isp_lists + campus_lists)
        self._isp_pad = np.zeros((len(codes), width), dtype=np.int64)
        self._isp_cnt = np.empty(len(codes), dtype=np.int64)
        self._campus_pad = np.zeros((len(codes), width), dtype=np.int64)
        self._campus_cnt = np.empty(len(codes), dtype=np.int64)
        for i, (isps, campus) in enumerate(zip(isp_lists, campus_lists)):
            self._isp_pad[i, : len(isps)] = isps
            self._isp_cnt[i] = len(isps)
            self._campus_pad[i, : len(campus)] = campus
            self._campus_cnt[i] = len(campus)
        # ASN → AS country lookup (endpoints carry the *AS's* country).
        max_asn = max(a.asn for a in world.registry)
        self._cc_by_asn = np.zeros(max_asn + 1, dtype="U2")
        for asys in world.registry:
            self._cc_by_asn[asys.asn] = asys.country_code
        plen = world.config.subnet_prefixlen
        self._subnet_mask = np.uint32((0xFFFFFFFF << (32 - plen)) & 0xFFFFFFFF)

    # ------------------------------------------------------------- blocks
    def __len__(self) -> int:
        return self.config.size

    @property
    def materialised_blocks(self) -> int:
        return len(self._blocks)

    def _block_bounds(self, b: int) -> tuple[int, int]:
        lo = b * self.config.block_size
        return lo, min(lo + self.config.block_size, self.config.size)

    def block(self, b: int) -> SwarmColumns:
        """Columns for block ``b``, materialising earlier blocks if needed."""
        if not 0 <= b < self.n_blocks:
            raise ConfigurationError(f"block {b} outside [0, {self.n_blocks})")
        while len(self._blocks) <= b:
            self._blocks.append(self._generate_block(len(self._blocks)))
        return self._blocks[b]

    def columns(self) -> SwarmColumns:
        """The full population as one set of columns (cached)."""
        if self._columns is None:
            if self.n_blocks == 0:
                z = np.zeros(0)
                self._columns = SwarmColumns(
                    ip=z.astype(np.uint32), subnet=z.astype(np.uint32),
                    asn=z.astype(np.int32), cc=z.astype("U2"),
                    kind=z.astype(np.int8), down_bps=z, up_bps=z.copy(),
                    nat=z.astype(bool), firewalled=z.astype(bool),
                    highbw=z.astype(bool), initial_ttl=z.astype(np.uint8),
                    access_depth=z.astype(np.uint8),
                )
            else:
                self._columns = _concat(
                    [self.block(b) for b in range(self.n_blocks)]
                )
        return self._columns

    def _generate_block(self, b: int) -> SwarmColumns:
        lo, hi = self._block_bounds(b)
        n = hi - lo
        rng = np.random.default_rng(self._seeds[b])
        # Fixed-width draw plan — see module docstring for the numbered list.
        ci = rng.choice(len(self._codes), size=n, p=self._probs)
        u_hb = rng.random(n)
        u_probe = rng.random(n)
        r_pick = rng.integers(0, 1 << 30, size=n)
        u_lan = rng.random(n)
        u_acc = rng.random(n)
        i_ftth = rng.integers(0, 3, size=n)
        i_down = rng.integers(0, 5, size=n)
        i_up = rng.integers(0, 5, size=n)
        u_nat = rng.random(n)
        u_ttl = rng.random(n)

        highbw_drawn = u_hb < self._hb_frac[ci]
        in_probe = self._is_probe_cc[ci] & (
            u_probe < self.demographics.probe_as_fraction
        )
        asn = self._isp_pad[ci, r_pick % self._isp_cnt[ci]]
        asn_campus = self._campus_pad[ci, r_pick % self._campus_cnt[ci]]
        asn = np.where(in_probe, asn_campus, asn)

        campus_lan = in_probe & (u_lan < 0.9)
        lan_mask = campus_lan | (~campus_lan & highbw_drawn & (u_acc < 0.6))
        ftth_mask = ~campus_lan & highbw_drawn & (u_acc >= 0.6)
        dsl_mask = ~campus_lan & ~highbw_drawn

        down = np.where(
            dsl_mask, _DSL_DOWN_MBPS[i_down] * MBPS, 100.0 * MBPS
        )
        up = np.where(
            lan_mask,
            100.0 * MBPS,
            np.where(
                ftth_mask,
                _FTTH_UP_MBPS[i_ftth] * MBPS,
                _DSL_UP_MBPS[i_up] * MBPS,
            ),
        )
        kind = np.where(
            lan_mask, KIND_LAN, np.where(ftth_mask, KIND_FTTH, KIND_DSL)
        ).astype(np.int8)
        nat = ftth_mask | (dsl_mask & (u_nat < 0.5))
        ttl = np.where(
            u_ttl < self.config.unix_fraction,
            INITIAL_TTL_UNIX,
            INITIAL_TTL_WINDOWS,
        ).astype(np.uint8)

        ip = self.world.bulk_remote_ips(asn)
        return SwarmColumns(
            ip=ip,
            subnet=(ip & self._subnet_mask).astype(np.uint32),
            asn=asn.astype(np.int32),
            cc=self._cc_by_asn[asn],
            kind=kind,
            down_bps=down,
            up_bps=up,
            nat=nat,
            firewalled=np.zeros(n, dtype=bool),
            highbw=up > HIGH_BW_THRESHOLD_BPS,
            initial_ttl=ttl,
            access_depth=_DEPTH_BY_KIND[kind],
        )

    # --------------------------------------------------------- object view
    def peers(self) -> list[RemotePeer]:
        """The population as ``RemotePeer`` objects (thin view, small N).

        Access links are pooled: identical plans share one frozen
        ``AccessLink`` instance, so the view costs one small object per
        peer, not three.
        """
        cols = self.columns()
        plen = self.world.config.subnet_prefixlen
        pool: dict[tuple, AccessLink] = {}
        peers: list[RemotePeer] = []
        for i in range(len(cols)):
            key = (
                int(cols.kind[i]), float(cols.down_bps[i]),
                float(cols.up_bps[i]), bool(cols.nat[i]),
            )
            access = pool.get(key)
            if access is None:
                access = AccessLink(
                    kind=_KIND_TO_CLASS[key[0]],
                    down_bps=key[1],
                    up_bps=key[2],
                    nat=key[3],
                )
                pool[key] = access
            endpoint = NetworkEndpoint(
                ip=int(cols.ip[i]),
                asn=int(cols.asn[i]),
                country_code=str(cols.cc[i]),
                access=access,
                subnet_prefixlen=plen,
                initial_ttl=int(cols.initial_ttl[i]),
            )
            peers.append(RemotePeer(peer_id=i, endpoint=endpoint))
        return peers


def generate_sparse_swarm(
    world: World,
    config: SparseSwarmConfig,
    rng: np.random.Generator,
) -> SparseSwarm:
    """Build a :class:`SparseSwarm`; mirrors ``generate_population``'s API."""
    return SparseSwarm(world, config, rng)
