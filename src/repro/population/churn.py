"""Session churn: when remote peers are online.

Live-TV audiences churn: viewers join and leave throughout the broadcast.
We model each remote peer with at most one session inside the experiment
window: a fraction of the swarm is present from the start (tuned-in before
the capture began), the rest arrive as a Poisson process; session lengths
are log-normal with a heavy tail (the "stable peers" of the literature).

The churn process is materialised up-front into per-peer (join, leave)
intervals so the event engine can consume it without further randomness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class Session:
    """One peer's online interval within the experiment window."""

    peer_id: int
    join: float
    leave: float

    def online_at(self, t: float) -> bool:
        """True when the peer is online at time ``t``."""
        return self.join <= t < self.leave

    @property
    def duration(self) -> float:
        return self.leave - self.join


@dataclass(frozen=True, slots=True)
class ChurnConfig:
    """Churn process knobs.

    Parameters
    ----------
    initial_fraction:
        Fraction of the swarm already online at t = 0.
    mean_session_s:
        Mean session duration (log-normal).
    sigma:
        Log-normal shape parameter; larger = heavier tail.
    """

    initial_fraction: float = 0.75
    mean_session_s: float = 1500.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.initial_fraction <= 1:
            raise ConfigurationError("initial_fraction must be in [0, 1]")
        if self.mean_session_s <= 0:
            raise ConfigurationError("mean_session_s must be positive")
        if self.sigma <= 0:
            raise ConfigurationError("sigma must be positive")


def draw_session_bounds(
    n: int,
    horizon: float,
    config: ChurnConfig,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``(joins, leaves)`` columns for ``n`` peers over ``[0, horizon]``.

    The columnar core of :meth:`ChurnProcess.generate` — paper-scale swarms
    consume these arrays directly instead of a ``Session`` object per peer.
    The draw sequence (uniform mask, uniform joins, log-normal durations)
    is shared with the object path, so both yield identical schedules for
    a given generator state.
    """
    if horizon <= 0:
        raise ConfigurationError("horizon must be positive")
    initial = rng.random(n) < config.initial_fraction
    joins = np.where(initial, 0.0, rng.uniform(0.0, horizon, size=n))
    # Log-normal with the requested mean: mean = exp(mu + sigma^2/2).
    mu = np.log(config.mean_session_s) - config.sigma**2 / 2.0
    durations = rng.lognormal(mean=mu, sigma=config.sigma, size=n)
    leaves = np.minimum(joins + durations, horizon)
    return joins, leaves


class ChurnProcess:
    """Materialised join/leave schedule for a peer population."""

    def __init__(self, sessions: list[Session], horizon: float) -> None:
        self.sessions = sessions
        self.horizon = horizon
        self._by_peer = {s.peer_id: s for s in sessions}

    @classmethod
    def generate(
        cls,
        peer_ids: list[int],
        horizon: float,
        config: ChurnConfig,
        rng: np.random.Generator,
    ) -> "ChurnProcess":
        """Draw one session per peer over ``[0, horizon]``.

        Initially-online peers start at 0; late joiners arrive uniformly
        over the window (a Poisson process conditioned on the arrival
        count).  Sessions are clipped to the horizon.
        """
        joins, leaves = draw_session_bounds(len(peer_ids), horizon, config, rng)
        sessions = [
            Session(peer_id=pid, join=float(j), leave=float(l))
            for pid, j, l in zip(peer_ids, joins, leaves)
        ]
        return cls(sessions, horizon)

    def session_of(self, peer_id: int) -> Session:
        """The session of one peer."""
        return self._by_peer[peer_id]

    def online_at(self, t: float) -> list[int]:
        """Peer ids online at time ``t``."""
        return [s.peer_id for s in self.sessions if s.online_at(t)]

    def online_count_at(self, t: float) -> int:
        """Number of peers online at time ``t``."""
        return sum(1 for s in self.sessions if s.online_at(t))

    def __len__(self) -> int:
        return len(self.sessions)
