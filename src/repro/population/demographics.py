"""Audience demographics: country mix and access-bandwidth mix.

The distributions below encode the qualitative facts the paper reports for
CCTV-1 at Chinese peak hour (Fig. 1): China holds the large majority of
observed peers, the four probe countries appear with small but non-zero
shares, and a tail of other countries makes up the rest.  The bandwidth mix
produces a population in which roughly a third of peers sit behind
>10 Mb/s uplinks — the raw material on which the applications' strong
selection bias operates (contributors end up 83–90 % high-bandwidth even
though the population is not).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Demographics:
    """A country mix plus per-country bandwidth class mixes.

    Parameters
    ----------
    country_weights:
        Country code → relative share of the audience.  Normalised on use.
    highbw_fraction:
        Country code → fraction of that country's peers behind high-bandwidth
        (>10 Mb/s uplink) access.  ``default_highbw`` is used when a country
        is missing from the map.
    default_highbw:
        Fallback high-bandwidth fraction.
    probe_as_fraction:
        Fraction of *probe-country* peers placed inside the probe-site
        campus ASes (AS1–AS6) rather than a consumer ISP — the "other
        customers / students of the same network" who make the non-NAPA
        same-AS peer set P′ non-empty.
    """

    country_weights: dict[str, float]
    highbw_fraction: dict[str, float] = field(default_factory=dict)
    default_highbw: float = 0.30
    probe_as_fraction: float = 0.02

    def __post_init__(self) -> None:
        if not self.country_weights:
            raise ConfigurationError("country_weights must not be empty")
        if any(w < 0 for w in self.country_weights.values()):
            raise ConfigurationError("country weights must be non-negative")
        total = sum(self.country_weights.values())
        if total <= 0:
            raise ConfigurationError("country weights must sum to a positive value")
        if not 0 <= self.probe_as_fraction <= 1:
            raise ConfigurationError("probe_as_fraction must be in [0, 1]")

    def normalised_weights(self) -> tuple[list[str], np.ndarray]:
        """Country codes and their normalised probabilities, aligned."""
        codes = list(self.country_weights)
        probs = np.array([self.country_weights[c] for c in codes], dtype=float)
        return codes, probs / probs.sum()

    def highbw_for(self, country_code: str) -> float:
        """High-bandwidth fraction for one country."""
        return self.highbw_fraction.get(country_code, self.default_highbw)


def cctv1_audience(probe_as_fraction: float = 0.02) -> Demographics:
    """The default CCTV-1-at-peak-hour audience mix.

    China dominates; the probe countries get small shares (they *are*
    observed in Fig. 1 beyond the probes themselves); a tail of other
    Asian/Western countries rounds it out.
    """
    return Demographics(
        country_weights={
            "CN": 70.0,
            # Probe countries: diaspora + institutional viewers.
            "IT": 3.0,
            "FR": 3.0,
            "HU": 2.0,
            "PL": 2.0,
            # Rest of the world ('*' in Fig. 1).
            "TW": 5.0,
            "JP": 3.0,
            "KR": 3.0,
            "US": 4.0,
            "CA": 1.5,
            "DE": 1.5,
            "GB": 1.5,
            "ES": 1.0,
            "NL": 0.5,
            "SE": 0.5,
            "SG": 0.5,
            "AU": 0.5,
            "BR": 0.5,
        },
        highbw_fraction={
            # Chinese audience: many campus/office networks at peak hour.
            "CN": 0.35,
            "KR": 0.55,
            "JP": 0.45,
            "TW": 0.40,
            "US": 0.30,
        },
        default_highbw=0.30,
        probe_as_fraction=probe_as_fraction,
    )


def crossswarm_audience(probe_as_fraction: float = 0.005) -> Demographics:
    """A Western-centric audience for paper-scale swarm studies.

    Where :func:`cctv1_audience` reproduces the paper's own CN-dominated
    channel, this mix follows the geolocational shape reported by the
    BitTorrent cross-swarm measurement study (arXiv:1409.8171): no single
    country dominates, the US holds the largest share, and the remainder
    spreads across Europe, the Americas and Asia-Pacific.  Weights are
    restricted to the countries registered in the synthetic topology, with
    the study's RU/UA/RO/IN shares folded into the nearest registered
    regions.  The probe countries keep small organic shares so the
    same-AS civilian set stays non-empty at scale.
    """
    return Demographics(
        country_weights={
            "US": 16.0,
            "GB": 7.0,
            "CA": 6.0,
            "FR": 6.0,
            "BR": 6.0,
            "DE": 6.0,
            "AU": 5.0,
            "IT": 5.0,
            "ES": 5.0,
            "SE": 4.5,
            "NL": 4.5,
            "PL": 4.0,
            "CN": 8.0,
            "JP": 4.0,
            "KR": 4.0,
            "HU": 2.0,
            "TW": 1.5,
            "SG": 1.5,
        },
        highbw_fraction={
            "KR": 0.60,
            "JP": 0.50,
            "SE": 0.50,
            "NL": 0.45,
            "SG": 0.45,
            "US": 0.35,
            "CN": 0.30,
        },
        default_highbw=0.35,
        probe_as_fraction=probe_as_fraction,
    )
