"""Synthetic remote peer population (the swarm beyond the probes).

The paper's experiments tuned all three applications to the CCTV-1 channel
during Chinese peak hours, so the audience is dominated by Chinese peers
with a European tail (Fig. 1).  This subpackage generates that audience:

* :mod:`repro.population.demographics` — country / bandwidth mixes;
* :mod:`repro.population.generator` — swarm instantiation on a
  :class:`~repro.topology.world.World`;
* :mod:`repro.population.churn` — session arrival/departure process.
"""

from repro.population.demographics import Demographics, cctv1_audience
from repro.population.generator import PopulationConfig, RemotePeer, generate_population
from repro.population.churn import ChurnConfig, ChurnProcess, Session

__all__ = [
    "Demographics",
    "cctv1_audience",
    "PopulationConfig",
    "RemotePeer",
    "generate_population",
    "ChurnConfig",
    "ChurnProcess",
    "Session",
]
