"""Swarm instantiation: place remote peers on the synthetic Internet.

Each remote peer gets an endpoint (IP inside a consumer ISP of its country,
or — for a small configurable fraction of probe-country peers — inside a
probe campus AS), an access link drawn from its country's bandwidth mix,
and an initial TTL (a small fraction of peers run non-Windows stacks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.population.demographics import Demographics, cctv1_audience
from repro.topology.access import AccessLink, dsl, ftth, lan
from repro.topology.geography import PROBE_COUNTRIES
from repro.topology.host import INITIAL_TTL_UNIX, INITIAL_TTL_WINDOWS, NetworkEndpoint
from repro.topology.world import PROBE_AS_NUMBERS, World


@dataclass(frozen=True, slots=True)
class RemotePeer:
    """One non-probe swarm member."""

    peer_id: int
    endpoint: NetworkEndpoint

    @property
    def is_high_bandwidth(self) -> bool:
        return self.endpoint.access.is_high_bandwidth


@dataclass(frozen=True, slots=True)
class PopulationConfig:
    """Swarm size and composition.

    Parameters
    ----------
    size:
        Number of remote peers.
    demographics:
        Country / bandwidth mixes; defaults to the CCTV-1 audience.
    unix_fraction:
        Fraction of peers whose OS stamps TTL 64 instead of 128 (the
        hop-inference heuristic must detect the initial TTL, §III-B).
    """

    size: int
    demographics: Demographics | None = None
    unix_fraction: float = 0.04

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ConfigurationError(f"population size must be >= 0, got {self.size}")
        if not 0 <= self.unix_fraction <= 1:
            raise ConfigurationError("unix_fraction must be in [0, 1]")


#: Probe-country code → campus ASNs available for "same-AS civilians".
_PROBE_AS_BY_CC: dict[str, list[int]] = {}
for _name, (_asn, _cc) in PROBE_AS_NUMBERS.items():
    _PROBE_AS_BY_CC.setdefault(_cc, []).append(_asn)


def _draw_access(highbw: bool, rng: np.random.Generator) -> AccessLink:
    """Draw an access link for one peer given its bandwidth class."""
    if highbw:
        # Campus/office LAN or fast fibre.
        if rng.random() < 0.6:
            return lan(100.0)
        return ftth(100.0, rng.choice([20.0, 50.0, 100.0]))
    # Consumer DSL/cable plans of the era (down/up in Mb/s).
    down = float(rng.choice([1.0, 2.0, 4.0, 6.0, 8.0]))
    up = float(rng.choice([0.256, 0.384, 0.512, 0.640, 1.0]))
    return dsl(down, up, nat=bool(rng.random() < 0.5))


def generate_population(
    world: World,
    config: PopulationConfig,
    rng: np.random.Generator,
) -> list[RemotePeer]:
    """Generate ``config.size`` remote peers placed on ``world``.

    Deterministic given ``rng``.  Peers of probe countries land inside the
    probe campus ASes with probability ``demographics.probe_as_fraction``;
    everyone else goes to a consumer ISP of their country (or, if the
    country has none registered, a random foreign ISP — modelling
    mis-geolocated or satellite-connected stragglers).
    """
    demo = config.demographics or cctv1_audience()
    codes, probs = demo.normalised_weights()
    countries = rng.choice(len(codes), size=config.size, p=probs)
    peers: list[RemotePeer] = []
    all_isps = [asn for cc in codes for asn in world.access_isps(cc)]
    if not all_isps:
        raise ConfigurationError("world has no consumer ISPs registered")

    for peer_id in range(config.size):
        cc = codes[int(countries[peer_id])]
        highbw = rng.random() < demo.highbw_for(cc)
        in_probe_as = (
            cc in PROBE_COUNTRIES
            and cc in _PROBE_AS_BY_CC
            and rng.random() < demo.probe_as_fraction
        )
        if in_probe_as:
            asn = int(rng.choice(_PROBE_AS_BY_CC[cc]))
            # Campus-AS civilians are mostly on the institution LAN.
            access = lan(100.0) if rng.random() < 0.9 else _draw_access(highbw, rng)
        else:
            isps = world.access_isps(cc)
            asn = int(rng.choice(isps if isps else all_isps))
            access = _draw_access(highbw, rng)
        ttl = INITIAL_TTL_UNIX if rng.random() < config.unix_fraction else INITIAL_TTL_WINDOWS
        endpoint = world.new_endpoint(asn, access, initial_ttl=ttl)
        peers.append(RemotePeer(peer_id=peer_id, endpoint=endpoint))
    return peers
