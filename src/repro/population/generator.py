"""Swarm instantiation: place remote peers on the synthetic Internet.

Each remote peer gets an endpoint (IP inside a consumer ISP of its country,
or — for a small configurable fraction of probe-country peers — inside a
probe campus AS), an access link drawn from its country's bandwidth mix,
and an initial TTL (a small fraction of peers run non-Windows stacks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.population.demographics import Demographics, cctv1_audience
from repro.topology.access import AccessLink, dsl, ftth, lan
from repro.topology.geography import PROBE_COUNTRIES
from repro.topology.host import INITIAL_TTL_UNIX, INITIAL_TTL_WINDOWS, NetworkEndpoint
from repro.topology.world import PROBE_AS_NUMBERS, World


@dataclass(frozen=True, slots=True)
class RemotePeer:
    """One non-probe swarm member."""

    peer_id: int
    endpoint: NetworkEndpoint

    @property
    def is_high_bandwidth(self) -> bool:
        return self.endpoint.access.is_high_bandwidth


@dataclass(frozen=True, slots=True)
class PopulationConfig:
    """Swarm size and composition.

    Parameters
    ----------
    size:
        Number of remote peers.
    demographics:
        Country / bandwidth mixes; defaults to the CCTV-1 audience.
    unix_fraction:
        Fraction of peers whose OS stamps TTL 64 instead of 128 (the
        hop-inference heuristic must detect the initial TTL, §III-B).
    """

    size: int
    demographics: Demographics | None = None
    unix_fraction: float = 0.04

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ConfigurationError(f"population size must be >= 0, got {self.size}")
        if not 0 <= self.unix_fraction <= 1:
            raise ConfigurationError("unix_fraction must be in [0, 1]")


#: Probe-country code → campus ASNs available for "same-AS civilians".
_PROBE_AS_BY_CC: dict[str, list[int]] = {}
for _name, (_asn, _cc) in PROBE_AS_NUMBERS.items():
    _PROBE_AS_BY_CC.setdefault(_cc, []).append(_asn)


def _draw_access(highbw: bool, rng: np.random.Generator) -> AccessLink:
    """Draw an access link for one peer given its bandwidth class."""
    if highbw:
        # Campus/office LAN or fast fibre.
        if rng.random() < 0.6:
            return lan(100.0)
        return ftth(100.0, rng.choice([20.0, 50.0, 100.0]))
    # Consumer DSL/cable plans of the era (down/up in Mb/s).
    down = float(rng.choice([1.0, 2.0, 4.0, 6.0, 8.0]))
    up = float(rng.choice([0.256, 0.384, 0.512, 0.640, 1.0]))
    return dsl(down, up, nat=bool(rng.random() < 0.5))


def generate_population(
    world: World,
    config: PopulationConfig,
    rng: np.random.Generator,
) -> list[RemotePeer]:
    """Generate ``config.size`` remote peers placed on ``world``.

    Deterministic given ``rng``.  Peers of probe countries land inside the
    probe campus ASes with probability ``demographics.probe_as_fraction``;
    everyone else goes to a consumer ISP of their country (or, if the
    country has none registered, a random foreign ISP — modelling
    mis-geolocated or satellite-connected stragglers).
    """
    demo = config.demographics or cctv1_audience()
    codes, probs = demo.normalised_weights()
    countries = rng.choice(len(codes), size=config.size, p=probs)
    all_isps = [asn for cc in codes for asn in world.access_isps(cc)]
    if not all_isps:
        raise ConfigurationError("world has no consumer ISPs registered")

    # The per-peer draw *sequence* below is pinned by the golden host-table
    # hashes, so it cannot be collapsed into bulk per-class draws (that
    # scheme lives in repro.population.sparse).  What can change without
    # moving a single draw: scalar ``choice`` calls become the bit-identical
    # ``seq[integers(len(seq))]``, identical access plans share one pooled
    # frozen AccessLink, and endpoint/IP construction — which consumes no
    # randomness — is deferred and done in bulk after the loop.
    r_random = rng.random
    r_integers = rng.integers
    unix_fraction = config.unix_fraction
    probe_fraction = demo.probe_as_fraction
    highbw_by_cc = {cc: demo.highbw_for(cc) for cc in codes}
    isps_by_cc = {cc: world.access_isps(cc) or all_isps for cc in codes}
    campus_ok = {cc for cc in codes if cc in PROBE_COUNTRIES and cc in _PROBE_AS_BY_CC}

    lan100 = lan(100.0)
    ftth_links = (ftth(100.0, 20.0), ftth(100.0, 50.0), ftth(100.0, 100.0))
    dsl_plans = (1.0, 2.0, 4.0, 6.0, 8.0)
    dsl_ups = (0.256, 0.384, 0.512, 0.640, 1.0)
    dsl_cache: dict[tuple[int, int, bool], AccessLink] = {}

    def pooled_access(highbw: bool) -> AccessLink:
        # Draw-for-draw identical to _draw_access.
        if highbw:
            if r_random() < 0.6:
                return lan100
            return ftth_links[r_integers(3)]
        key = (int(r_integers(5)), int(r_integers(5)), bool(r_random() < 0.5))
        link = dsl_cache.get(key)
        if link is None:
            link = dsl(dsl_plans[key[0]], dsl_ups[key[1]], nat=key[2])
            dsl_cache[key] = link
        return link

    asns: list[int] = []
    accesses: list[AccessLink] = []
    ttls: list[int] = []
    for ci in countries.tolist():
        cc = codes[ci]
        highbw = r_random() < highbw_by_cc[cc]
        if cc in campus_ok and r_random() < probe_fraction:
            campus = _PROBE_AS_BY_CC[cc]
            asn = campus[r_integers(len(campus))]
            # Campus-AS civilians are mostly on the institution LAN.
            access = lan100 if r_random() < 0.9 else pooled_access(highbw)
        else:
            isps = isps_by_cc[cc]
            asn = isps[r_integers(len(isps))]
            access = pooled_access(highbw)
        asns.append(asn)
        accesses.append(access)
        ttls.append(INITIAL_TTL_UNIX if r_random() < unix_fraction else INITIAL_TTL_WINDOWS)

    ips = world.bulk_remote_ips(np.asarray(asns, dtype=np.int64))
    cc_by_asn = {asn: world.registry.get(asn).country_code for asn in set(asns)}
    plen = world.config.subnet_prefixlen
    return [
        RemotePeer(
            peer_id=peer_id,
            endpoint=NetworkEndpoint(
                ip=int(ip),
                asn=asn,
                country_code=cc_by_asn[asn],
                access=access,
                subnet_prefixlen=plen,
                initial_ttl=ttl,
            ),
        )
        for peer_id, (ip, asn, access, ttl) in enumerate(
            zip(ips, asns, accesses, ttls)
        )
    ]
