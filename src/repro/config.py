"""Seeding and shared configuration helpers.

Every stochastic component draws from its own child of one master
``numpy.random.SeedSequence`` so that (a) experiments are bit-reproducible
given a seed and (b) changing one component's draw count does not perturb
the others' streams.
"""

from __future__ import annotations

import numpy as np

#: Named RNG streams, so child seeds are position-independent.  The
#: ``fault_*`` streams feed the impairment layer (:mod:`repro.faults`);
#: they are appended last so adding them did not perturb the child seeds
#: of the original streams.
_STREAMS = (
    "world",
    "population",
    "churn",
    "engine",
    "selection",
    "availability",
    "signaling",
    "trace",
    "fault_loss",
    "fault_churn",
    "fault_capture",
    "fault_clock",
)


class RngBundle:
    """Named, independent random generators derived from one master seed."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        root = np.random.SeedSequence(self.seed)
        children = root.spawn(len(_STREAMS))
        self._rngs = {
            name: np.random.default_rng(child)
            for name, child in zip(_STREAMS, children)
        }

    def __getitem__(self, name: str) -> np.random.Generator:
        try:
            return self._rngs[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown RNG stream {name!r}; available: {sorted(self._rngs)}"
            ) from exc

    @property
    def streams(self) -> tuple[str, ...]:
        return _STREAMS
