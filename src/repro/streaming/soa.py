"""Struct-of-arrays engine core (the ROADMAP's order-of-magnitude step).

The object engine keeps one :class:`~repro.streaming.buffer.PlayoutBuffer`
and one Python in-flight set per probe; every tick walks Python sets and
per-chunk threshold lists.  This module restructures that per-probe state
into **shared numpy arrays** — one ``have`` bitmap row and one ``inflight``
bitmap row per probe inside two ``(n_probes, capacity)`` matrices — so the
per-tick hole scan and the per-chunk provider-candidate enumeration become
array kernels instead of N nested Python loops.

Byte-identity contract
----------------------
The SoA engine must produce **byte-identical traces** to the object engine
for a fixed seed, under every app profile and every chunk scheduler.  The
golden SHA-256 hashes (``tests/golden/*.json``) and the randomized
differential suite (``tests/streaming/test_soa_differential.py``) enforce
it.  The rules the kernels obey (see ``docs/engine-internals.md``):

* RNG draws happen at exactly the object code's decision points — empty
  candidate sets are skipped *without* a draw, so vectorised pre-filtering
  must be side-effect free;
* candidate (holder) order is the ascending partner-column order of the
  object scan, which ``np.flatnonzero`` / enumerate preserve;
* all floating-point comparisons use the same IEEE-754 operations in the
  same order (``np.maximum(gen + delay, ready)`` is elementwise-identical
  to the scalar ``r if r > gen + d else gen + d``);
* chunk membership below a probe's eviction frontier follows the object
  buffer's late-arrival semantics (visible until the *next* floor advance).

Memory layout
-------------
Rows use a **sliding base**: probe ``pi``'s bit for chunk ``c`` lives at
column ``c - base[pi]``.  When the live edge outruns the row, the row
either *shifts* (slides left so the base catches up to the eviction
frontier minus a safety margin) or *widens* (every row reallocates to a
larger capacity — the resize-on-churn path).  Set bits that slide off the
left edge are rescued into a per-probe Python ``low`` set, so membership
answers stay exact regardless of margin sizing.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.streaming.engine import (
    _KIND_CONTROL,
    _KIND_VIDEO,
    _PARTNER_CTX_MAX,
    REQUEST_BYTES,
    Engine,
    _PeerState,
)
from repro.units import BITS_PER_BYTE

#: Extra chunk-range coverage built into each availability-threshold
#: matrix, so the per-tick lookup only rebuilds when the live edge crosses
#: the covered top (amortises the vectorised rebuild over many ticks).
_THR_SLACK = 256

#: Always-False guard columns past each bitmap row's capacity.  The
#: availability gather clamps its slot index to the first guard column
#: instead of masking out-of-range slots — "past the row top" then reads
#: as "not held" with zero extra array ops.
_GUARD = 8

#: Blockwise availability evaluation (lazy peer-state mode): threshold
#: rows are grouped into fixed chunk-id spans of this many rows, built on
#: first touch and reused across ticks — the thresholds are t-independent
#: chunk constants, so a cached block is bit-for-bit the rows the per-tick
#: rebuild would produce.
_THR_BLOCK = 64

#: Eviction budget for the block cache, in blocks.  The live window walks
#: upward, so the lowest block id is evicted first; an evicted block that
#: is touched again rebuilds bit-identically (memory-only bound).
_THR_BLOCKS_MAX = 8


class SoAState:
    """Shared buffer / in-flight bitmaps for all probes of one run.

    ``have[pi, c - base[pi]]`` — probe ``pi`` holds chunk ``c``;
    ``inflight[pi, c - base[pi]]`` — a request/push for ``c`` is pending.
    ``base``/``evicted_to``/``inflight_n`` are plain Python lists (scalar
    hot-path reads); ``low`` holds rescued chunk ids below each base.
    ``shifts``/``resizes`` count the row-slide and reallocation events
    (exposed for the unit tests and engine stats).
    """

    def __init__(
        self, n_probes: int, window_chunks: int, interval: float, margin: int
    ) -> None:
        self.n = n_probes
        self.window_chunks = window_chunks
        self.interval = interval
        self.margin = margin
        self.capacity = window_chunks + margin + 64
        # _GUARD always-False columns trail every row (see module top);
        # all writes stay below ``capacity``, so they never flip.
        self.have = np.zeros((n_probes, self.capacity + _GUARD), dtype=bool)
        self.inflight = np.zeros((n_probes, self.capacity + _GUARD), dtype=bool)
        self.base: list[int] = [0] * n_probes
        #: Same values as ``base``, kept as an int64 vector so the
        #: availability kernel can gather partner bases in one index.
        self.base_arr = np.zeros(n_probes, dtype=np.int64)
        self.evicted_to: list[int] = [0] * n_probes
        self.inflight_n: list[int] = [0] * n_probes
        self.low: list[set[int]] = [set() for _ in range(n_probes)]
        self.shifts = 0
        self.resizes = 0
        #: Last tick_scan result, list and array form.  The scheduler
        #: kernels check ``lookahead is scan_list`` to reuse the array
        #: without re-converting (identity ⇒ same scan, same order).
        self.scan_list: list[int] = []
        self.scan_arr = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------ membership
    def has(self, pi: int, chunk: int) -> bool:
        """Whether probe ``pi`` holds ``chunk`` (late arrivals included)."""
        s = chunk - self.base[pi]
        if s < 0:
            return chunk in self.low[pi]
        return s < self.capacity and bool(self.have[pi, s])

    def have_add(self, pi: int, chunk: int) -> None:
        """Record a received chunk (idempotent, like ``PlayoutBuffer.add``)."""
        s = chunk - self.base[pi]
        if s < 0:
            # Below the row base: the object buffer parks such late
            # arrivals too; they stay visible until the next floor advance.
            self.low[pi].add(chunk)
            return
        if s >= self.capacity:
            self._make_room(pi, chunk)
            s = chunk - self.base[pi]
        self.have[pi, s] = True

    def inflight_has(self, pi: int, chunk: int) -> bool:
        s = chunk - self.base[pi]
        return 0 <= s < self.capacity and bool(self.inflight[pi, s])

    def inflight_add(self, pi: int, chunk: int) -> None:
        s = chunk - self.base[pi]
        if s < 0:
            # Requests are always at/above the window floor ≥ base; a
            # negative slot means the sliding-base invariant broke.
            raise SimulationError("in-flight chunk below the row base")
        if s >= self.capacity:
            self._make_room(pi, chunk)
            s = chunk - self.base[pi]
        if not self.inflight[pi, s]:
            self.inflight[pi, s] = True
            self.inflight_n[pi] += 1

    def inflight_discard(self, pi: int, chunk: int) -> None:
        s = chunk - self.base[pi]
        if 0 <= s < self.capacity and self.inflight[pi, s]:
            self.inflight[pi, s] = False
            self.inflight_n[pi] -= 1

    # ------------------------------------------------------------- tick scan
    def _evict(self, pi: int, floor: int) -> None:
        """Advance probe ``pi``'s eviction frontier to ``floor``.

        Prefix-wipes the held and in-flight bits below the floor (the
        object buffer's eviction plus the engine's in-flight rebuild,
        with ``inflight_n`` adjusted by the bits cleared) and prunes the
        rescued low set.  Shared by the per-probe and cohort scans.
        """
        if floor > self.evicted_to[pi]:
            cut = floor - self.base[pi]
            if cut > 0:
                if cut > self.capacity:
                    cut = self.capacity
                infl_row = self.inflight[pi]
                dropped = int(np.count_nonzero(infl_row[:cut]))
                if dropped:
                    self.inflight_n[pi] -= dropped
                self.have[pi, :cut] = False
                infl_row[:cut] = False
            low = self.low[pi]
            if low:
                self.low[pi] = {c for c in low if c >= floor}
            self.evicted_to[pi] = floor

    def tick_scan(
        self, pi: int, t: float, live_lag: int, limit: int | None
    ) -> tuple[int, list[int]]:
        """Evict + missing scan for one probe, array-at-a-time.

        Semantics twin of ``PlayoutBuffer.tick_scan``: returns the window
        floor and the missing (not held, not in flight) chunks of
        ``[floor, live - live_lag]`` newest-first, truncated to the newest
        ``limit``.  Holes are derived statelessly — for ids at/above the
        floor, *missing* ≡ *bit not set* — because held bits are only ever
        cleared by the eviction prefix wipe below the floor, exactly when
        the object buffer evicts.
        """
        live = int(t / self.interval)
        floor = live - self.window_chunks + 1
        if floor < 0:
            floor = 0
        self._evict(pi, floor)
        b = self.base[pi]
        newest = live - live_lag
        lo = floor - b
        hi = newest + 1 - b
        if hi <= lo:
            return floor, []
        if hi > self.capacity:
            # Starvation-safe: grow/slide before scanning so the window
            # always fits (a partnerless probe never sets bits, so only
            # the scan itself advances its base).
            self._make_room(pi, newest)
            b = self.base[pi]
            lo = floor - b
            hi = newest + 1 - b
        seg = self.have[pi, lo:hi] | self.inflight[pi, lo:hi]
        missing = (~seg).nonzero()[0]
        if limit is not None and missing.size > limit:
            missing = missing[missing.size - limit :]
        arr = missing[::-1] + floor
        out = arr.tolist()
        self.scan_arr = arr
        self.scan_list = out
        return floor, out

    def tick_scan_all(
        self, t: float, live_lag: int, limit: int | None
    ) -> tuple[int, int, list[tuple[list[int], np.ndarray]]]:
        """Evict + missing scan for *every* probe in one batched pass.

        The cohort-tick twin of :meth:`tick_scan`: the window floor and
        the scan top are probe-independent (every probe shares the live
        clock), so after the per-row eviction sweep the held∣in-flight
        segment of all rows is fetched with **one** 2-D gather instead of
        ``n`` per-row slice pairs.  Returns ``(floor, newest, results)``
        with one ``(hole_list, hole_array)`` pair per probe row — each
        pair exactly what :meth:`tick_scan` would have produced for that
        row (same bits, same truncation, same newest-first order), so the
        cohort engine can replay them probe-by-probe byte-identically.
        Unlike :meth:`tick_scan` this does **not** update ``scan_list``/
        ``scan_arr``; the cohort driver installs each pair right before
        the per-probe scheduler call.
        """
        live = int(t / self.interval)
        floor = live - self.window_chunks + 1
        if floor < 0:
            floor = 0
        n = self.n
        for pi in range(n):
            self._evict(pi, floor)
        newest = live - live_lag
        if newest + 1 <= floor:
            empty = np.empty(0, dtype=np.int64)
            return floor, newest, [([], empty) for _ in range(n)]
        for pi in range(n):
            if newest + 1 - self.base[pi] > self.capacity:
                self._make_room(pi, newest)
        # After eviction the base invariant ``base ≤ evicted_to = floor``
        # holds for every row and make_room covered the top, so every
        # gathered slot index sits in ``[0, capacity)``.
        cols = (
            np.arange(floor, newest + 1, dtype=np.int64)[None, :]
            - self.base_arr[:, None]
        )
        ridx = np.arange(n)[:, None]
        miss = ~(self.have[ridx, cols] | self.inflight[ridx, cols])
        results: list[tuple[list[int], np.ndarray]] = []
        for pi in range(n):
            missing = miss[pi].nonzero()[0]
            if limit is not None and missing.size > limit:
                missing = missing[missing.size - limit :]
            arr = missing[::-1] + floor
            results.append((arr.tolist(), arr))
        return floor, newest, results

    # ------------------------------------------------------------ reshaping
    def _make_room(self, pi: int, top_chunk: int) -> None:
        """Make ``top_chunk`` addressable for probe ``pi``.

        First choice is a row *shift* (slide the base up to the eviction
        frontier minus the margin); when even that cannot fit the chunk,
        every row *widens* to the next power-of-two-ish capacity (churn
        storms stall eviction frontiers, so one probe's backlog can force
        the shared reallocation — the resize-on-churn test path).
        """
        b = self.base[pi]
        new_base = self.evicted_to[pi] - self.margin
        if new_base < b:
            new_base = b
        if top_chunk - new_base >= self.capacity:
            need = top_chunk - new_base + 1 + 64
            new_cap = self.capacity
            while new_cap < need:
                new_cap *= 2
            pad = np.zeros((self.n, new_cap - self.capacity), dtype=bool)
            self.have = np.concatenate([self.have, pad], axis=1)
            self.inflight = np.concatenate([self.inflight, pad.copy()], axis=1)
            self.capacity = new_cap
            self.resizes += 1
        shift = new_base - b
        if shift > 0:
            cap = self.capacity
            have_row = self.have[pi]
            infl_row = self.inflight[pi]
            if shift < cap:
                # Rescue still-set bits sliding off the left edge: they are
                # late arrivals below the frontier that the object buffer
                # keeps visible until the next floor advance.
                if have_row[:shift].any():
                    ids = np.flatnonzero(have_row[:shift]) + b
                    self.low[pi].update(ids.tolist())
                dropped = int(np.count_nonzero(infl_row[:shift]))
                if dropped:  # provably unreachable; keeps the count exact
                    self.inflight_n[pi] -= dropped
                have_row[: cap - shift] = have_row[shift:cap].copy()
                have_row[cap - shift : cap] = False
                infl_row[: cap - shift] = infl_row[shift:cap].copy()
                infl_row[cap - shift : cap] = False
            else:
                if have_row.any():
                    ids = np.flatnonzero(have_row) + b
                    self.low[pi].update(ids.tolist())
                self.inflight_n[pi] -= int(np.count_nonzero(infl_row))
                have_row[:] = False
                infl_row[:] = False
            self.base[pi] = new_base
            self.base_arr[pi] = new_base
            self.shifts += 1


class _ChunkSetView:
    """Set-like read view of one probe's held chunks.

    Compatibility surface for code written against the object buffer's
    ``chunk_set`` (the remote-pull membership scan, the epidemic push's
    duplicate check, ``_partner_context``, the instrumented test
    schedulers).  Hot SoA kernels read the arrays directly instead.
    """

    __slots__ = ("_soa", "_pi")

    def __init__(self, soa: SoAState, pi: int) -> None:
        self._soa = soa
        self._pi = pi

    def __contains__(self, chunk: int) -> bool:
        return self._soa.has(self._pi, chunk)

    def __len__(self) -> int:
        soa = self._soa
        return int(np.count_nonzero(soa.have[self._pi])) + len(soa.low[self._pi])

    def __iter__(self):
        soa = self._soa
        yield from sorted(soa.low[self._pi])
        yield from (np.flatnonzero(soa.have[self._pi]) + soa.base[self._pi]).tolist()

    def __bool__(self) -> bool:
        return len(self) > 0


class _InflightView:
    """Set-like view of one probe's in-flight row (adds/discards included)."""

    __slots__ = ("_soa", "_pi")

    def __init__(self, soa: SoAState, pi: int) -> None:
        self._soa = soa
        self._pi = pi

    def __contains__(self, chunk: int) -> bool:
        return self._soa.inflight_has(self._pi, chunk)

    def add(self, chunk: int) -> None:
        self._soa.inflight_add(self._pi, chunk)

    def discard(self, chunk: int) -> None:
        self._soa.inflight_discard(self._pi, chunk)

    def __len__(self) -> int:
        return self._soa.inflight_n[self._pi]

    def __iter__(self):
        soa = self._soa
        yield from (
            np.flatnonzero(soa.inflight[self._pi]) + soa.base[self._pi]
        ).tolist()

    def __bool__(self) -> bool:
        return self._soa.inflight_n[self._pi] > 0


class _SoABuffer:
    """PlayoutBuffer-shaped facade over one probe's array row."""

    __slots__ = ("_soa", "_pi", "chunk_set")

    def __init__(self, soa: SoAState, pi: int) -> None:
        self._soa = soa
        self._pi = pi
        self.chunk_set = _ChunkSetView(soa, pi)

    @property
    def window_chunks(self) -> int:
        return self._soa.window_chunks

    def window_range(self, t: float) -> range:
        soa = self._soa
        live = int(t / soa.interval)
        oldest = live - soa.window_chunks + 1
        if oldest < 0:
            oldest = 0
        return range(oldest, live + 1)

    def has(self, chunk: int) -> bool:
        return self._soa.has(self._pi, chunk)

    def add(self, chunk: int) -> bool:
        held = self._soa.has(self._pi, chunk)
        self._soa.have_add(self._pi, chunk)
        return not held

    def __len__(self) -> int:
        return len(self.chunk_set)


class SoAProbe(_PeerState):
    """Probe state as a row index into the shared arrays.

    ``pi`` is the probe index (``gidx - n_remote``) — also the row in
    ``SoAState.have``/``inflight`` and every per-probe score matrix.
    ``buffer``/``chunks``/``inflight`` are the compatibility views.
    """

    __slots__ = ("pi", "buffer", "chunks", "inflight")

    def __init__(
        self, gidx: int, pi: int, soa: SoAState, n_peers: int, lazy: bool = False
    ) -> None:
        super().__init__(gidx, n_peers, lazy)
        self.pi = pi
        self.buffer = _SoABuffer(soa, pi)
        self.chunks = self.buffer.chunk_set
        self.inflight = _InflightView(soa, pi)


class SoAEngine(Engine):
    """The struct-of-arrays engine core.

    Same protocol, same RNG streams, same event handlers (by name — the
    queue's per-kind counters stay comparable) as :class:`Engine`; only
    the per-probe buffer state and the per-tick scan/candidate kernels
    change representation.  Byte-identical by the golden-hash suites.
    """

    mode = "soa"

    def _make_probes(self, n_peers: int) -> list[_PeerState]:
        video = self.profile.video
        interval = self.clock.chunk_interval
        # Same expression as PlayoutBuffer's window width.
        window_chunks = max(1, int(video.buffer_window_s / interval))
        # Margin below the eviction frontier kept addressable in-row: the
        # longest a request can stay in flight (uplink backlog + slowest
        # serialisation + latency slack), in chunks.  Purely a performance
        # knob — bits that do slide off are rescued into the low sets.
        slowest = self.clock.chunk_bytes * BITS_PER_BYTE / float(self._up.min())
        margin = int((self.config.max_backlog_s + slowest + 0.2) / interval) + 4
        if margin > 4096:
            margin = 4096
        self._soa = SoAState(self.n_probe, window_chunks, interval, margin)
        #: Per-probe SoA partner-context memos (bounded like the object
        #: engine's _partner_ctx; entries rebuild bit-identically on miss).
        self._soa_ctx: list[dict[bytes, dict]] = [{} for _ in range(self.n_probe)]
        return [
            SoAProbe(self.n_remote + k, k, self._soa, n_peers, self._lazy)
            for k in range(self.n_probe)
        ]

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Route ticks through the scheduler's vectorised entry point.
        self._sched_requests = self._scheduler.schedule_requests_soa
        #: Cohort-tick availability state: ``_cohort_serial`` bumps once
        #: per cohort build, ``_cohort_t``/``_cohort_floor`` stamp the
        #: tick it covers.  A ctx whose ``cohort_serial`` matches holds a
        #: prebuilt full-range availability block for this very tick, so
        #: the per-probe scheduler call reduces to one row gather.
        self._cohort_serial = 0
        self._cohort_t = -1.0
        self._cohort_floor = 0
        #: Stacked remote scalars for the cohort build, memoised by the
        #: participating ctxs' creation uids (collision-free, unlike
        #: ``id()`` which the allocator recycles).
        self._cohort_scalars_key: tuple = ()
        self._cohort_delays: np.ndarray | None = None
        self._cohort_ready: np.ndarray | None = None
        self._ctx_uid = 0
        #: Last ctx handed to a cohort work item — the scheduler's own
        #: lookup for the same (probe, partners) pair short-circuits to
        #: a pointer compare.
        self._ctx_hint: dict | None = None
        self._ctx_hint_pi = -1
        self._ctx_hint_partners: np.ndarray | None = None
        #: Per-probe (partners, ctx) memo for the cohort scan pass.
        self._pi_ctx: list = [None] * len(self._probes)
        #: Blockwise availability cache (lazy mode): block id → threshold
        #: block over the stacked cohort scalars.  Cleared whenever the
        #: participating ctx set (and so the column stacking) changes.
        self._thr_blocks: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------- event core
    def _tick_probe(self, probe: SoAProbe, t: float) -> None:
        soa = self._soa
        pi = probe.pi
        # Evict + in-flight prune + missing scan, one array pass (the
        # object engine's tick_scan plus its inflight-rebuild branch).
        floor, lookahead = soa.tick_scan(pi, t, self._live_lag, self._scan_limit)
        if lookahead and probe.partners:
            online = self._online_mask(t)
            partners = probe.online_partners(online, self._mask_key)
            slots = self._max_parallel - soa.inflight_n[pi]
            if slots > 0 and len(partners):
                self._sched_requests(probe, t, lookahead, partners, slots)

    def _on_tick_cohort(self) -> None:
        """Tick the whole probe cohort through batched array kernels.

        Trace-equivalent to the parent's probe-by-probe loop (pinned by
        the cohort differential suite) but restructured into two passes
        so the per-tick numpy dispatches amortise across probes:

        1. **Scan pass** — one multi-row evict+scan
           (:meth:`SoAState.tick_scan_all`) replaces ``n`` per-probe row
           slices; the per-probe hole lists, online partner sets and free
           request slots are collected as work items.
        2. **Schedule pass** — :meth:`_cohort_build` precomputes every
           work item's availability block over the union of the actual
           hole ranges (per-ctx threshold compares, plus one shared 2-D
           bitmap gather covering all probe-partner columns of all
           items), then the schedulers run in ascending probe order — the object cohort's
           order, so the RNG stream and event insertion order are
           untouched.

        Reordering scans before schedules is trace-invariant: a scan
        only mutates its own row below the shared floor (never scanned
        by others) and draws no randomness, so no schedule can observe
        the difference.
        """
        t = self._queue.now
        soa = self._soa
        floor, newest, scans = soa.tick_scan_all(t, self._live_lag, self._scan_limit)
        works = []
        online = None
        for probe in self._probes:
            out, arr = scans[probe.pi]
            if out and probe.partners:
                if online is None:
                    online = self._online_mask(t)
                partners = probe.online_partners(online, self._mask_key)
                slots = self._max_parallel - soa.inflight_n[probe.pi]
                if slots > 0 and len(partners):
                    # Per-probe ctx memo: ``online_partners`` returns the
                    # same array object while the online mask and partner
                    # set are unchanged, so successive ticks short-circuit
                    # the bytes-key lookup to one pointer compare.
                    pair = self._pi_ctx[probe.pi]
                    if pair is not None and pair[0] is partners:
                        ctx = pair[1]
                    else:
                        ctx = self._soa_partner_ctx(probe.pi, partners)
                        self._pi_ctx[probe.pi] = (partners, ctx)
                    works.append((probe, out, arr, partners, slots, ctx))
        if works:
            # Shrink coverage from [floor, newest] to the union of the
            # works' actual hole ranges (hole arrays are newest-first, so
            # arr[-1]/arr[0] bound each probe's holes).  At steady state
            # holes cluster within a few chunks of the live edge while
            # the scan window spans ~window_chunks, so this cuts the
            # block build by an order of magnitude.  Per-chunk threshold
            # and bitmap values are independent of the range start, so
            # the precomputed blocks stay byte-identical.
            cmin = min(int(w[2][-1]) for w in works)
            cmax = max(int(w[2][0]) for w in works)
            self._cohort_build(t, cmin, cmax, works)
            for probe, out, arr, partners, slots, ctx in works:
                # Install the probe's scan pair so the scheduler's
                # ``lookahead is scan_list`` reuse keeps working, and
                # hint the ctx so the scheduler's own lookup is a
                # pointer compare instead of a bytes-key dict probe.
                soa.scan_list = out
                soa.scan_arr = arr
                self._ctx_hint_pi = probe.pi
                self._ctx_hint_partners = partners
                self._ctx_hint = ctx
                self._sched_requests(probe, t, out, partners, slots)
        self._queue.schedule(t + self._tick_interval, self._cb_tick_cohort)

    def _cohort_build(self, t: float, floor: int, newest: int, works: list) -> None:
        """Precompute availability blocks for one cohort tick.

        ``[floor, newest]`` is the chunk range to cover — the caller
        passes the union of the works' hole ranges, not the whole scan
        window, so the span is a handful of rows at steady state.  Both
        column families batch across the whole cohort:

        * **Probe columns** — one 2-D fancy gather over the shared
          bitmaps covering every ctx's probe-partner rows.
        * **Remote columns** — one stacked threshold matrix over every
          ctx's remote scalars (the per-ctx ``delays``/``ready`` vectors
          concatenated once and memoised by ctx identity), compared
          against ``t`` in a single elementwise pass.  The freshness
          deadline ``gen + retention`` depends only on the chunk id, so
          one span-length vector masks all ctxs at once.

        Each ctx then gets its ``cohort_A`` block — remote columns
        first, probe columns after, the exact column layout of
        :meth:`_soa_availability` — as two views into the stacked
        matrices plus one concatenate.  The per-chunk values are
        elementwise the ones the slow path would compute (same threshold
        doubles, same IEEE compares), so the row-gather fast path is
        byte-identical.
        """
        soa = self._soa
        self._cohort_serial += 1
        serial = self._cohort_serial
        ci = self._av_chunk_interval
        retention = self._av_retention
        check_fresh = retention < soa.window_chunks * ci
        ctxs = []
        for work in works:
            ctx = work[5]
            if ctx["cohort_serial"] != serial:
                ctx["cohort_serial"] = serial
                ctxs.append(ctx)
        pcols = [c["probe_rows_arr"] for c in ctxs if c["probe_rows_arr"].size]
        PB = None
        if pcols:
            all_rows = np.concatenate(pcols)
            S = (
                np.arange(floor, newest + 1, dtype=np.int64)[:, None]
                - soa.base_arr[all_rows][None, :]
            )
            PB = soa.have[all_rows[None, :], np.minimum(S, soa.capacity)]
        rctxs = [c for c in ctxs if c["n_rem"]]
        AV = None
        if rctxs:
            key = tuple(c["uid"] for c in rctxs)
            if key != self._cohort_scalars_key:
                self._cohort_scalars_key = key
                self._cohort_delays = np.concatenate(
                    [c["delays"] for c in rctxs]
                )
                self._cohort_ready = np.concatenate([c["ready"] for c in rctxs])
                self._thr_blocks.clear()
            gens = np.arange(floor, newest + 1, dtype=np.float64) * ci
            if self._lazy:
                # Blockwise path: thresholds are t-independent chunk
                # constants, so rows persist across ticks in fixed-span
                # blocks and only the boolean compare runs per tick.
                thr = self._thr_window(floor, newest, ci)
            else:
                thr = np.maximum(
                    gens[:, None] + self._cohort_delays[None, :],
                    self._cohort_ready[None, :],
                )
            AV = thr <= t
            if check_fresh:
                AV &= (gens + retention > t)[:, None]
        roff = poff = 0
        for ctx in ctxs:
            avail = pb = None
            n = ctx["n_rem"]
            if n:
                avail = AV[:, roff : roff + n]
                roff += n
            k = ctx["probe_rows_arr"].size
            if k:
                pb = PB[:, poff : poff + k]
                poff += k
            if avail is None:
                ctx["cohort_A"] = pb
            elif pb is None:
                ctx["cohort_A"] = avail
            else:
                ctx["cohort_A"] = np.concatenate((avail, pb), axis=1)
        self._cohort_t = t
        self._cohort_floor = floor

    def _thr_window(self, floor: int, newest: int, ci: float) -> np.ndarray:
        """Assemble ``[floor, newest]`` threshold rows from cached blocks.

        Each block covers chunk ids ``[b·B, (b+1)·B)`` against the current
        stacked cohort scalars.  A block row for chunk ``c`` is
        ``max(c·ci + delay, ready)`` — ``np.arange(lo, lo + B) * ci``
        produces the same ``c·ci`` doubles as the window-wide arange, and
        ``np.maximum`` is elementwise, so the assembled window is
        bit-for-bit the matrix the eager path builds per tick.  The live
        window only walks upward, so eviction drops the lowest block id;
        a re-touched block rebuilds identically (memory-only bound).
        """
        blocks = self._thr_blocks
        b0 = floor // _THR_BLOCK
        b1 = newest // _THR_BLOCK
        parts = []
        for b in range(b0, b1 + 1):
            blk = blocks.get(b)
            if blk is None:
                lo = b * _THR_BLOCK
                gens_b = np.arange(lo, lo + _THR_BLOCK, dtype=np.float64) * ci
                blk = np.maximum(
                    gens_b[:, None] + self._cohort_delays[None, :],
                    self._cohort_ready[None, :],
                )
                while len(blocks) >= _THR_BLOCKS_MAX:
                    blocks.pop(min(blocks))
                blocks[b] = blk
            parts.append(blk)
        stack = parts[0] if len(parts) == 1 else np.concatenate(parts)
        lo0 = b0 * _THR_BLOCK
        return stack[floor - lo0 : newest + 1 - lo0]

    def _on_chunk_arrival(self, probe: SoAProbe, chunk: int, provider: int) -> None:
        soa = self._soa
        pi = probe.pi
        soa.inflight_discard(pi, chunk)
        soa.have_add(pi, chunk)
        if probe.busy[provider] > 0:
            probe.busy[provider] -= 1
            if probe.busy[provider] < self._cap_out:
                probe.busy_over.discard(provider)
        if self._sched_push:
            self._scheduler.on_chunk_received(probe, chunk, provider, self._queue.now)

    def _on_remote_pull(
        self, remote, probe, delay, ready, times, wants, i
    ) -> None:
        """Object ``_on_remote_pull`` with the membership scan on the row.

        The newest-serveable scan probes up to seven chunk ids against the
        puller's held set; through the compatibility view each probe is a
        method call plus scalar bitmap index.  Inlining the base/row reads
        keeps this path at object-engine speed.  Everything else — the
        record layout, the oracle arithmetic, the uplink admit, the chain
        scheduling — is byte-for-byte the parent's.
        """
        t = times[i]
        pg = probe.gidx
        if (remote, pg) in self._attached and t < self._leave_list[remote]:
            ul = self._up_list
            dl = self._down_list
            ipl = self._ip_list
            up = ul[remote]
            dn = dl[pg]
            self._rec_append(
                (t, ipl[remote], ipl[pg], REQUEST_BYTES, _KIND_CONTROL, up if up < dn else dn)
            )
            want = wants[i]
            if want >= 0:
                soa = self._soa
                pi = probe.pi
                # Bytes snapshot of the row: ≤ 7 membership reads follow
                # and plain-bytes indexing beats numpy scalar indexing.
                row = soa.have[pi].tobytes()
                b = soa.base[pi]
                cap = soa.capacity
                low = soa.low[pi]
                ci = self._av_chunk_interval
                ret = self._av_retention
                lo = want - 6
                if lo < 0:
                    lo = 0
                chunk = want
                while chunk >= lo:
                    s = chunk - b
                    if row[s] if 0 <= s < cap else chunk in low:
                        gen = chunk * ci
                        arrival = gen + delay
                        if ready > arrival:
                            arrival = ready
                        if t < arrival or t >= gen + ret:
                            # The remote lacks it → serve this chunk.
                            nbytes = self._chunk_bytes
                            lat = probe.lat_row[remote]
                            # Inlined UplinkScheduler.admit.
                            t_req = t + lat
                            free = self._ul_free
                            start = free[pg]
                            if start < t_req:
                                start = t_req
                            if start - t_req <= self._ul_max_backlog:
                                free[pg] = (
                                    start + nbytes * BITS_PER_BYTE / self._ul_bps[pg]
                                )
                                up = ul[pg]
                                dn = dl[remote]
                                self._rec_append(
                                    (
                                        start,
                                        ipl[pg],
                                        ipl[remote],
                                        nbytes,
                                        _KIND_VIDEO,
                                        up if up < dn else dn,
                                    )
                                )
                            break
                    chunk -= 1
        i += 1
        if i < len(times):
            self._queue.schedule(
                times[i], self._cb_pull, remote, probe, delay, ready, times, wants, i
            )

    # --------------------------------------------------------- array kernels
    def _soa_partner_ctx(self, pi: int, partners: np.ndarray) -> dict:
        """Array-view twin of ``_partner_context``, memoised per set.

        Holds the partner columns in plan order, the remote columns'
        diffusion scalars, and a lazily (re)built availability-threshold
        matrix covering the scanned chunk range plus slack.
        """
        if pi == self._ctx_hint_pi and partners is self._ctx_hint_partners:
            return self._ctx_hint
        key = partners.tobytes()
        store = self._soa_ctx[pi]
        ctx = store.get(key)
        if ctx is None:
            cols = partners.tolist()
            nr = self.n_remote
            is_remote = partners < nr
            delays, ready = self.availability.subset(partners[is_remote])
            n_rem = int(is_remote.sum())
            # A stores the remote columns as a leading block and the probe
            # columns as a trailing block (each in plan order), so the
            # kernel assembles it with one concatenate instead of fancy
            # column scatters.  ``scan`` maps back: the A column and the
            # partner id of every plan position, in plan order — the
            # decision loops walk it so holder order stays the object
            # scan's ascending-plan-column order.
            r = p = 0
            scan: list[tuple[int, int]] = []
            for g in cols:
                if g < nr:
                    scan.append((r, g))
                    r += 1
                else:
                    scan.append((n_rem + p, g))
                    p += 1
            # ``scan`` as aligned arrays: the A column and the partner id
            # of every plan position.  The scheduler kernels permute A's
            # columns with ``plan_cols`` so a flat ``nonzero`` walk visits
            # advertisers in plan order — the object scan's holder order —
            # and ``plan_g`` maps the walk straight back to partner ids.
            plan_cols = np.array([j for j, _g in scan], dtype=np.int64)
            plan_g = np.array([g for _j, g in scan], dtype=np.int64)
            # Provider scores over the plan columns.  Eager: a gather from
            # the precomputed swarm-wide row (plus the row itself for
            # holder-subset lookups).  Lazy: scored on demand over just
            # these columns — SelectionPolicy.scores is elementwise per
            # candidate, so the subset compute yields the identical IEEE
            # doubles the full-row gather would.
            if self._lazy:
                plan_scores = self._provider_policy.scores(
                    self._features(self.n_remote + pi, plan_g)
                )
                score_of: "dict | np.ndarray" = dict(
                    zip(plan_g.tolist(), plan_scores.tolist())
                )
            else:
                row = self._provider_scores[pi]
                plan_scores = row[plan_g]
                score_of = row
            ctx = {
                "scan": scan,
                "plan_cols": plan_cols,
                "plan_g": plan_g,
                "n_rem": n_rem,
                "delays": delays,
                "ready": ready,
                "plan_scores": plan_scores,
                "score_of": score_of,
                # Probe-partner bitmap rows, in plan order, for the gather.
                "probe_rows_arr": np.array(
                    [g - nr for g in cols if g >= nr], dtype=np.int64
                ),
                "thr_r0": 0,
                "thr": None,
                "fresh": None,
                # Cohort-tick block (see _cohort_build): valid only while
                # the serial matches the engine's current cohort build.
                "cohort_serial": 0,
                "cohort_A": None,
                "uid": self._ctx_uid,
            }
            self._ctx_uid += 1
            if len(store) >= _PARTNER_CTX_MAX:
                store.pop(next(iter(store)))
            store[key] = ctx
        return ctx

    def _soa_availability(
        self,
        ctx: dict,
        chunks_arr: np.ndarray,
        t: float,
        cmin: int | None = None,
        cmax: int | None = None,
    ) -> np.ndarray:
        """Availability matrix for ``chunks_arr`` against one partner ctx.

        ``cmin``/``cmax`` are optional chunk-range bounds (plain ints) the
        caller already knows; any superset of the scanned range is valid —
        they only steer threshold-matrix coverage.

        Columns are the ctx's block layout — remote partners first, probe
        partners after, each in plan order; ``ctx["scan"]`` maps columns
        back to partner ids (see ``_soa_partner_ctx``).  Remote columns
        answer through the diffusion-threshold matrix
        ``thr = max(gen + delay, ready)`` with the per-chunk freshness
        deadline ``gen + retention`` — elementwise the exact IEEE doubles
        of the object path's scalar per-chunk threshold lists.  Probe
        columns gather straight from the shared ``have`` bitmaps.

        Cohort fast path: when :meth:`_cohort_build` already covered this
        ctx for this very tick (serial + timestamp match), the block holds
        the full scanned range ``[floor, newest]`` and every caller's
        chunk set is a subset of it, so the matrix is one row gather.
        """
        if ctx["cohort_serial"] == self._cohort_serial and t == self._cohort_t:
            return ctx["cohort_A"][chunks_arr - self._cohort_floor]
        avail = pb = None
        if ctx["n_rem"]:
            if cmin is None:
                cmin = int(chunks_arr[-1])
                cmax = int(chunks_arr[0])
                if cmin > cmax:  # lookahead is usually descending; be exact
                    cmin, cmax = int(chunks_arr.min()), int(chunks_arr.max())
            thr = ctx["thr"]
            r0 = ctx["thr_r0"]
            if thr is None or cmin < r0 or cmax >= r0 + thr.shape[0]:
                r0 = cmin
                gens = (
                    np.arange(r0, cmax + 1 + _THR_SLACK, dtype=np.float64)
                    * self._av_chunk_interval
                )
                thr = np.maximum(
                    gens[:, None] + ctx["delays"][None, :], ctx["ready"][None, :]
                )
                ctx["thr_r0"] = r0
                ctx["thr"] = thr
                ctx["fresh"] = gens + self._av_retention
            rows = chunks_arr - r0
            avail = thr[rows] <= t
            # Freshness (gen + retention > t) is vacuously true for every
            # scanned chunk when the retention window covers the playout
            # window: chunks sit at/above floor ≥ live − W + 1, so
            # t − gen < W·ci ≤ retention.  Only compare when it can bite.
            if self._av_retention < self._soa.window_chunks * self._av_chunk_interval:
                avail &= (ctx["fresh"][rows] > t)[:, None]
        rows_arr = ctx["probe_rows_arr"]
        if rows_arr.size:
            soa = self._soa
            # One 2-D gather for every probe column.  Scanned chunks sit
            # at/above every probe's eviction frontier ≥ its base — any
            # partner's base ≤ its own floor at its last tick ≤ the
            # scanner's current floor — so S ≥ 0 always (ids a partner
            # parked in its low set are below the scanner's floor and
            # never scanned).  Slots past the row top clamp onto the
            # always-False guard column: "not held", no mask needed.
            S = chunks_arr[:, None] - soa.base_arr[rows_arr][None, :]
            pb = soa.have[rows_arr[None, :], np.minimum(S, soa.capacity)]
        if avail is None:
            return pb
        if pb is None:
            return avail
        return np.concatenate((avail, pb), axis=1)


#: Name → engine class for both cores.
ENGINES: dict[str, type[Engine]] = {Engine.mode: Engine, SoAEngine.mode: SoAEngine}

#: Valid engine-mode names, sorted (CLI choices, error messages).
ENGINE_NAMES: tuple[str, ...] = tuple(sorted(ENGINES))

#: The core used unless told otherwise: the object reference engine.
DEFAULT_ENGINE = Engine.mode

#: Environment override consumed by :func:`default_engine` — lets CI run
#: whole suites under the SoA core without code changes.
ENV_ENGINE = "REPRO_ENGINE"


def get_engine(name: str | None = None) -> type[Engine]:
    """Resolve an engine-mode name to its class (``None`` → ambient default).

    Raises :class:`~repro.errors.ConfigurationError` naming the valid
    choices for anything unknown — config and CLI validation both route
    through here so the error reads the same everywhere.
    """
    if name is None:
        name = default_engine()
    try:
        return ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine mode {name!r}; valid choices: {list(ENGINE_NAMES)}"
        ) from None


def default_engine() -> str:
    """The ambient default core (``REPRO_ENGINE`` env, else object)."""
    return os.environ.get(ENV_ENGINE, DEFAULT_ENGINE)


__all__ = [
    "DEFAULT_ENGINE",
    "ENGINES",
    "ENGINE_NAMES",
    "ENV_ENGINE",
    "SoAEngine",
    "SoAProbe",
    "SoAState",
    "default_engine",
    "get_engine",
]
