"""Statistical chunk-availability model for the remote swarm.

Only the probes run the full protocol (their traffic is what the paper
captures).  A remote peer's buffer state is summarised by one number: its
*diffusion delay* d — how long after generation a chunk typically reaches
it through the (unsimulated) remote mesh.  High-bandwidth peers sit closer
to the source in mesh-pull systems and receive chunks earlier, which is
exactly the mechanism that makes them better providers.

Remote peer r holds chunk c at time t iff::

    max(gen_time(c) + d_r, join_r + startup) <= t < gen_time(c) + retention

(the chunk has had time to diffuse to r, r was already watching, and the
chunk is still inside r's sliding retention window).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.streaming.chunk import ChunkClock


@dataclass(frozen=True, slots=True)
class AvailabilityConfig:
    """Diffusion-delay distribution knobs.

    Delays are ``base + Exp(scale)``, with separate parameters per
    bandwidth class.
    """

    highbw_base_s: float = 0.8
    highbw_scale_s: float = 1.2
    lowbw_base_s: float = 1.2
    lowbw_scale_s: float = 1.8
    startup_s: float = 8.0
    retention_s: float = 60.0

    def __post_init__(self) -> None:
        if min(self.highbw_base_s, self.lowbw_base_s) < 0:
            raise ConfigurationError("diffusion bases must be non-negative")
        if min(self.highbw_scale_s, self.lowbw_scale_s) <= 0:
            raise ConfigurationError("diffusion scales must be positive")
        if self.retention_s <= self.startup_s:
            raise ConfigurationError("retention must exceed startup")


class RemoteAvailability:
    """Vectorised availability oracle over a remote peer population."""

    def __init__(
        self,
        clock: ChunkClock,
        highbw: np.ndarray,
        joins: np.ndarray,
        config: AvailabilityConfig,
        rng: np.random.Generator,
    ) -> None:
        """
        Parameters
        ----------
        clock:
            The channel chunk clock.
        highbw:
            Boolean array, one entry per remote peer.
        joins:
            Session join times, aligned with ``highbw``.
        config / rng:
            Distribution knobs and the seeded generator used to draw each
            peer's diffusion delay once (delays are then fixed).
        """
        n = len(highbw)
        if len(joins) != n:
            raise ConfigurationError("highbw and joins must be aligned")
        self._clock = clock
        self._config = config
        base = np.where(highbw, config.highbw_base_s, config.lowbw_base_s)
        scale = np.where(highbw, config.highbw_scale_s, config.lowbw_scale_s)
        self.delays = base + rng.exponential(1.0, size=n) * scale
        self.ready_from = np.maximum(0.0, np.asarray(joins, dtype=float)) + config.startup_s

    def __len__(self) -> int:
        return len(self.delays)

    def has_chunk(self, peer_idx: int, chunk_id: int, t: float) -> bool:
        """Whether remote ``peer_idx`` holds ``chunk_id`` at time ``t``."""
        gen = self._clock.generation_time(chunk_id)
        if t >= gen + self._config.retention_s:
            return False
        arrival = max(gen + self.delays[peer_idx], self.ready_from[peer_idx])
        return t >= arrival

    def have_chunk(self, peer_idx: np.ndarray, chunk_id: int, t: float) -> np.ndarray:
        """Vectorised :meth:`has_chunk` over many peers for one chunk."""
        gen = self._clock.generation_time(chunk_id)
        if t >= gen + self._config.retention_s:
            return np.zeros(len(peer_idx), dtype=bool)
        idx = np.asarray(peer_idx, dtype=np.int64)
        arrival = np.maximum(gen + self.delays[idx], self.ready_from[idx])
        return t >= arrival

    def newest_missing(self, peer_idx: int, t: float) -> int | None:
        """The newest chunk ``peer_idx`` does *not* yet hold at ``t``.

        This is what the remote would pull from a probe: its current
        deficit at the live edge.  Returns None while the peer is still in
        startup (it wants everything; callers treat that as the live edge).
        """
        live = self._clock.latest_chunk(t)
        # Peer holds chunk c iff gen(c) + delay <= t, i.e. c <= (t-delay)/dt.
        have_up_to = self._clock.latest_chunk(max(0.0, t - self.delays[peer_idx]))
        if t < self.ready_from[peer_idx]:
            return live
        missing = have_up_to + 1
        return missing if missing <= live else None
