"""Statistical chunk-availability model for the remote swarm.

Only the probes run the full protocol (their traffic is what the paper
captures).  A remote peer's buffer state is summarised by one number: its
*diffusion delay* d — how long after generation a chunk typically reaches
it through the (unsimulated) remote mesh.  High-bandwidth peers sit closer
to the source in mesh-pull systems and receive chunks earlier, which is
exactly the mechanism that makes them better providers.

Remote peer r holds chunk c at time t iff::

    max(gen_time(c) + d_r, join_r + startup) <= t < gen_time(c) + retention

(the chunk has had time to diffuse to r, r was already watching, and the
chunk is still inside r's sliding retention window).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.streaming.chunk import ChunkClock


@dataclass(frozen=True, slots=True)
class AvailabilityConfig:
    """Diffusion-delay distribution knobs.

    Delays are ``base + Exp(scale)``, with separate parameters per
    bandwidth class.
    """

    highbw_base_s: float = 0.8
    highbw_scale_s: float = 1.2
    lowbw_base_s: float = 1.2
    lowbw_scale_s: float = 1.8
    startup_s: float = 8.0
    retention_s: float = 60.0

    def __post_init__(self) -> None:
        if min(self.highbw_base_s, self.lowbw_base_s) < 0:
            raise ConfigurationError("diffusion bases must be non-negative")
        if min(self.highbw_scale_s, self.lowbw_scale_s) <= 0:
            raise ConfigurationError("diffusion scales must be positive")
        if self.retention_s <= self.startup_s:
            raise ConfigurationError("retention must exceed startup")


class RemoteAvailability:
    """Vectorised availability oracle over a remote peer population."""

    def __init__(
        self,
        clock: ChunkClock,
        highbw: np.ndarray,
        joins: np.ndarray,
        config: AvailabilityConfig,
        rng: np.random.Generator,
    ) -> None:
        """
        Parameters
        ----------
        clock:
            The channel chunk clock.
        highbw:
            Boolean array, one entry per remote peer.
        joins:
            Session join times, aligned with ``highbw``.
        config / rng:
            Distribution knobs and the seeded generator used to draw each
            peer's diffusion delay once (delays are then fixed).
        """
        n = len(highbw)
        if len(joins) != n:
            raise ConfigurationError("highbw and joins must be aligned")
        self._clock = clock
        self._config = config
        base = np.where(highbw, config.highbw_base_s, config.lowbw_base_s)
        scale = np.where(highbw, config.highbw_scale_s, config.lowbw_scale_s)
        self.delays = base + rng.exponential(1.0, size=n) * scale
        self.ready_from = np.maximum(0.0, np.asarray(joins, dtype=float)) + config.startup_s
        # Scalar-path mirrors of the arrays above.  Indexing a numpy array
        # with a Python int boxes a numpy scalar each call (~10× the cost of
        # a list lookup); the per-event oracle queries in the engine hot
        # path use these plain-float copies instead.  The values are the
        # exact same IEEE doubles, so both paths agree bit-for-bit.
        self._delays_list: list[float] = self.delays.tolist()
        self._ready_list: list[float] = self.ready_from.tolist()
        self._chunk_interval = clock.chunk_interval
        self._retention_s = config.retention_s

    def __len__(self) -> int:
        return len(self.delays)

    @property
    def chunk_interval(self) -> float:
        """Chunk generation interval (s) — the clock constant the oracle uses."""
        return self._chunk_interval

    @property
    def retention_s(self) -> float:
        """How long a remote retains a chunk after its generation time."""
        return self._retention_s

    def scalar_view(self, peer_idx: int) -> tuple[float, float]:
        """``(diffusion delay, ready_from)`` of one peer as plain floats.

        Callers that probe one remote across several chunks (the engine's
        serve-a-remote scan) hoist the two lookups and inline the
        :meth:`has_chunk` arithmetic — same doubles, same compares.
        """
        return self._delays_list[peer_idx], self._ready_list[peer_idx]

    def has_chunk(self, peer_idx: int, chunk_id: int, t: float) -> bool:
        """Whether remote ``peer_idx`` holds ``chunk_id`` at time ``t``."""
        gen = chunk_id * self._chunk_interval
        if t >= gen + self._retention_s:
            return False
        arrival = gen + self._delays_list[peer_idx]
        ready = self._ready_list[peer_idx]
        if ready > arrival:
            arrival = ready
        return t >= arrival

    def have_chunk(self, peer_idx: np.ndarray, chunk_id: int, t: float) -> np.ndarray:
        """Vectorised :meth:`has_chunk` over many peers for one chunk."""
        gen = self._clock.generation_time(chunk_id)
        if t >= gen + self._config.retention_s:
            return np.zeros(len(peer_idx), dtype=bool)
        idx = np.asarray(peer_idx, dtype=np.int64)
        arrival = np.maximum(gen + self.delays[idx], self.ready_from[idx])
        return t >= arrival

    def have_chunks(
        self, peer_idx: np.ndarray, chunk_ids: np.ndarray, t: float
    ) -> np.ndarray:
        """Batched oracle: a ``(len(chunk_ids), len(peer_idx))`` bool matrix.

        ``out[c, p]`` answers :meth:`has_chunk` for ``chunk_ids[c]`` and
        ``peer_idx[p]`` — one broadcast over the probe's whole request
        window instead of a scalar probe per (chunk, partner) pair.  Agrees
        element-wise with the scalar method (same doubles, same compares).
        """
        idx = np.asarray(peer_idx, dtype=np.int64)
        gen = np.asarray(chunk_ids, dtype=np.int64) * self._chunk_interval
        arrival = np.maximum(
            gen[:, None] + self.delays[idx][None, :], self.ready_from[idx][None, :]
        )
        fresh = t < gen + self._retention_s
        return (t >= arrival) & fresh[:, None]

    def subset(self, peer_idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(delays, ready_from)`` restricted to ``peer_idx``.

        Callers that query the same peer subset repeatedly (the engine's
        per-tick partner sets) fancy-index once and feed the pair to
        :meth:`have_chunk_subset` per chunk.
        """
        idx = np.asarray(peer_idx, dtype=np.int64)
        return self.delays[idx], self.ready_from[idx]

    def have_chunk_subset(
        self, delays: np.ndarray, ready: np.ndarray, chunk_id: int, t: float
    ) -> np.ndarray | None:
        """:meth:`have_chunk` against a :meth:`subset` pair.

        Returns None when the chunk has aged out of every retention window
        (the all-False row, without allocating it).  Same doubles and same
        compares as the scalar oracle, so results agree element-wise.
        """
        gen = chunk_id * self._chunk_interval
        if t >= gen + self._retention_s:
            return None
        return t >= np.maximum(gen + delays, ready)

    def subset_thresholds(
        self, delays: np.ndarray, ready: np.ndarray, chunk_id: int
    ) -> tuple[np.ndarray, float]:
        """``(arrival thresholds, freshness deadline)`` for one chunk.

        Everything in :meth:`have_chunk_subset` except ``t`` is a pure
        function of (subset, chunk), so callers that rescan the same chunk
        across ticks cache this pair and reduce the oracle to
        ``t >= thresholds`` gated by ``t < deadline`` — the identical
        doubles and compares, just hoisted out of the per-tick loop.
        """
        gen = chunk_id * self._chunk_interval
        return np.maximum(gen + delays, ready), gen + self._retention_s

    def newest_missing(self, peer_idx: int, t: float) -> int | None:
        """The newest chunk ``peer_idx`` does *not* yet hold at ``t``.

        This is what the remote would pull from a probe: its current
        deficit at the live edge.  Returns None while the peer is still in
        startup (it wants everything; callers treat that as the live edge).
        """
        live = int(t / self._chunk_interval)
        # Peer holds chunk c iff gen(c) + delay <= t, i.e. c <= (t-delay)/dt.
        have_up_to = int(max(0.0, t - self._delays_list[peer_idx]) / self._chunk_interval)
        if t < self._ready_list[peer_idx]:
            return live
        missing = have_up_to + 1
        return missing if missing <= live else None
