"""Discrete-event core: a deterministic heapq-based event queue.

Events are ``(time, sequence, callback, args)`` tuples; the monotonically
increasing sequence number makes simultaneous events fire in scheduling
order, which keeps runs bit-reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError


class EventQueue:
    """Minimal deterministic event queue."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[..., None], tuple[Any, ...]]] = []
        self._seq = 0
        self._now = 0.0
        self._peak = 0

    @property
    def now(self) -> float:
        """Current simulation time (time of the last popped event)."""
        return self._now

    @property
    def peak_depth(self) -> int:
        """Deepest the queue has ever been (pending events high-water mark).

        Pure accounting over the existing heap length — the engine's
        telemetry reads it after the run; tracking it cannot perturb
        event order.
        """
        return self._peak

    def schedule(self, t: float, callback: Callable[..., None], *args: Any) -> None:
        """Enqueue ``callback(*args)`` to fire at time ``t``.

        Scheduling into the past is an engine bug and raises immediately —
        silently clamping would hide causality violations.
        """
        if t < self._now:
            raise SimulationError(
                f"event scheduled in the past: {t:.6f} < now {self._now:.6f}"
            )
        heapq.heappush(self._heap, (t, self._seq, callback, args))
        self._seq += 1
        if len(self._heap) > self._peak:
            self._peak = len(self._heap)

    def run_until(self, t_end: float) -> int:
        """Drain events with time ≤ ``t_end``; returns events processed."""
        processed = 0
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][0] <= t_end:
            t, _seq, callback, args = pop(heap)
            self._now = t
            callback(*args)
            processed += 1
        self._now = max(self._now, t_end)
        return processed

    def __len__(self) -> int:
        return len(self._heap)
