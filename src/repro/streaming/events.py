"""Discrete-event core: a deterministic calendar-queue scheduler.

Events are ``(time, sequence, callback, args)`` tuples; the monotonically
increasing sequence number makes simultaneous events fire in scheduling
order, which keeps runs bit-reproducible.

:class:`EventQueue` is a *calendar queue* (Brown's bucketed priority
queue, the structure ns-2-style simulators use for tick-dominated event
mixes): pending events hash into fixed-width time buckets, the drain
walks buckets in ascending index order, and each bucket is sorted by
``(time, sequence)`` when it becomes the active (draining) bucket.

Determinism argument — why dispatch order is provably identical to the
binary heap this replaced:

* the bucket index ``int(t / width)`` is a monotone function of ``t``,
  so ascending bucket order never inverts two events with different
  times in different buckets;
* within a bucket, the sorted run is keyed on the exact ``(t, seq)``
  tuples the heap compared, so same-bucket events (including exact-time
  ties) drain in the heap's order;
* callbacks that schedule into the active bucket insert into the sorted
  run (``bisect.insort``); a new event carries ``t >= now`` and a fresh
  (maximal) sequence number, so its slot is always at or after the drain
  pointer — consumed prefixes are never perturbed.

Together these give the same total order ``(t, seq)`` the heap produced,
with O(1) amortised scheduling instead of O(log n) sift operations.

:class:`HeapEventQueue` keeps the original heapq implementation as the
differential-testing reference and the microbenchmark baseline
(``benchmarks/bench_events.py``).
"""

from __future__ import annotations

import heapq
from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable

from repro.errors import SimulationError

#: Default bucket width (seconds).  The engine's mix is dominated by
#: per-probe ticks (0.2–0.5 s intervals) interleaved with chunk arrivals
#: and remote pulls; 50 ms buckets won an A/B sweep over 12.5–400 ms —
#: wide enough to amortise bucket bookkeeping across a sorted run of a
#: few dozen entries, narrow enough that sorting stays insertion-cheap.
DEFAULT_BUCKET_WIDTH_S = 0.05


class EventQueue:
    """Deterministic calendar-queue event scheduler.

    Same contract as the heapq-based queue it replaced: ``schedule`` is
    rejected for times before ``now``, ``run_until`` drains events with
    ``time <= t_end`` in exact ``(time, sequence)`` order and returns the
    number dispatched.  Additionally keeps per-kind scheduling/dispatch
    counters (keyed by callback ``__name__``) for observability — pure
    accounting that cannot perturb event order.
    """

    def __init__(self, bucket_width_s: float = DEFAULT_BUCKET_WIDTH_S) -> None:
        if bucket_width_s <= 0:
            raise SimulationError("bucket width must be positive")
        self._inv_width = 1.0 / bucket_width_s
        #: bucket index -> unsorted list of (t, seq, callback, args).
        self._buckets: dict[int, list] = {}
        #: min-heap of pending (non-active) bucket indices; each index is
        #: pushed exactly once per bucket-list creation and popped at
        #: activation, so it never holds duplicates.
        self._bucket_heap: list[int] = []
        #: The active bucket: sorted ascending by (t, seq), drained via a
        #: local index in run_until (no pop(0) shifting).  Deactivated
        #: (remainder pushed back into ``_buckets``) before run_until
        #: returns, so schedule() outside a drain only ever appends.
        self._active: list | None = None
        self._active_idx = -1
        self._seq = 0
        self._now = 0.0
        self._n = 0
        self._peak = 0
        self._dispatched_by_kind: dict[str, int] = {}

    @property
    def now(self) -> float:
        """Current simulation time (time of the last popped event)."""
        return self._now

    @property
    def peak_depth(self) -> int:
        """Deepest the queue has ever been (pending events high-water mark)."""
        return self._peak

    @property
    def scheduled_by_kind(self) -> dict[str, int]:
        """Events scheduled so far, keyed by callback name.

        Derived as dispatched + still-pending rather than counted per
        ``schedule`` call — the scheduling hot path pays nothing, and the
        walk over pending events is O(queue depth) only when asked.
        (Mid-drain, entries of the active bucket at exactly the current
        time may be attributed to dispatched one event early; outside a
        ``run_until`` call the split is exact.)
        """
        out = dict(self._dispatched_by_kind)
        pending = [e for bucket in self._buckets.values() for e in bucket]
        if self._active is not None:
            now = self._now
            pending.extend(e for e in self._active if e[0] > now)
        for entry in pending:
            try:
                name = entry[2].__name__
            except AttributeError:
                name = "<anonymous>"
            out[name] = out.get(name, 0) + 1
        return out

    @property
    def dispatched_by_kind(self) -> dict[str, int]:
        """Events dispatched so far, keyed by callback name."""
        return dict(self._dispatched_by_kind)

    def schedule(self, t: float, callback: Callable[..., None], *args: Any) -> None:
        """Enqueue ``callback(*args)`` to fire at time ``t``.

        Scheduling into the past is an engine bug and raises immediately —
        silently clamping would hide causality violations.
        """
        if t < self._now:
            raise SimulationError(
                f"event scheduled in the past: {t:.6f} < now {self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        entry = (t, seq, callback, args)
        idx = int(t * self._inv_width)
        if idx == self._active_idx:
            # Mid-drain insert: t >= now and seq is maximal, so the slot
            # is at or after the drain position (see module docstring).
            insort(self._active, entry)
        else:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [entry]
                heappush(self._bucket_heap, idx)
            else:
                bucket.append(entry)
        n = self._n + 1
        self._n = n
        if n > self._peak:
            self._peak = n

    def run_until(self, t_end: float) -> int:
        """Drain events with time ≤ ``t_end``; returns events processed.

        The drain index is a local: callbacks can only ``insort`` *behind*
        it (their entries carry ``t >= now`` and a maximal sequence number,
        so every already-dispatched entry compares strictly smaller), which
        is why no per-event pointer write-back is needed.  A callback can
        also create a new pending bucket, but only at an index ≥ the active
        one — the outer heap check stays correct mid-drain.
        """
        processed = 0
        buckets = self._buckets
        heap = self._bucket_heap
        counts = self._dispatched_by_kind
        end_idx = int(t_end * self._inv_width)
        while heap and heap[0] <= end_idx:
            idx = heappop(heap)
            run = buckets.pop(idx)
            run.sort()
            self._active = run
            self._active_idx = idx
            i = 0
            # A plain for-loop reads the list by index each step, so
            # entries a callback insorts behind the cursor (always at or
            # after it — see the module docstring) are picked up exactly
            # as the indexed loop this replaces did.
            for entry in run:
                t = entry[0]
                if t > t_end:
                    break
                i += 1
                self._now = t
                callback = entry[2]
                callback(*entry[3])
                self._n -= 1
                try:
                    name = callback.__name__
                except AttributeError:
                    name = "<anonymous>"
                counts[name] = counts.get(name, 0) + 1
            processed += i
            self._active = None
            self._active_idx = -1
            if i < len(run):
                # Horizon hit mid-bucket: push the remainder back so
                # future schedule() calls go through the uniform append
                # path and the next drain re-selects this bucket first.
                buckets[idx] = run[i:]
                heappush(heap, idx)
                break
        if t_end > self._now:
            self._now = t_end
        return processed

    def __len__(self) -> int:
        return self._n


class HeapEventQueue:
    """The original heapq-based queue (reference implementation).

    Kept for differential testing against :class:`EventQueue` and as the
    baseline side of ``benchmarks/bench_events.py``; the engine itself
    runs on the calendar queue.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[..., None], tuple[Any, ...]]] = []
        self._seq = 0
        self._now = 0.0
        self._peak = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def peak_depth(self) -> int:
        return self._peak

    def schedule(self, t: float, callback: Callable[..., None], *args: Any) -> None:
        if t < self._now:
            raise SimulationError(
                f"event scheduled in the past: {t:.6f} < now {self._now:.6f}"
            )
        heapq.heappush(self._heap, (t, self._seq, callback, args))
        self._seq += 1
        if len(self._heap) > self._peak:
            self._peak = len(self._heap)

    def run_until(self, t_end: float) -> int:
        processed = 0
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][0] <= t_end:
            t, _seq, callback, args = pop(heap)
            self._now = t
            callback(*args)
            processed += 1
        self._now = max(self._now, t_end)
        return processed

    def __len__(self) -> int:
        return len(self._heap)
