"""Chunk-based mesh-pull P2P live-streaming simulator.

This subpackage is the stand-in for the three proprietary applications the
paper measured.  A discrete-event engine drives full protocol agents at the
NAPA-WINE probes (partner management, buffer maps, chunk scheduling,
upload queuing) against a statistically-modelled remote swarm, emitting the
transfer log from which probe-side packet traces are synthesised.

The per-application differences the paper infers — bandwidth preference,
AS locality, contact aggressiveness, signaling overhead — are encoded as
:class:`~repro.streaming.profiles.AppProfile` parameters, so the analysis
framework can be validated against known ground truth.
"""

from repro.streaming.chunk import ChunkClock
from repro.streaming.video import VideoConfig
from repro.streaming.selection import SelectionPolicy, SelectionWeights
from repro.streaming.availability import AvailabilityConfig, RemoteAvailability
from repro.streaming.buffer import PlayoutBuffer
from repro.streaming.profiles import (
    AppProfile,
    PROFILES,
    get_profile,
    napa_wine,
    pplive,
    pplive_popular,
    random_baseline,
    sopcast,
    tvants,
)
from repro.streaming.engine import Engine, EngineConfig, SimulationResult, simulate
from repro.streaming.soa import (
    ENGINE_NAMES,
    SoAEngine,
    SoAState,
    default_engine,
    get_engine,
)

__all__ = [
    "ChunkClock",
    "VideoConfig",
    "SelectionPolicy",
    "SelectionWeights",
    "AvailabilityConfig",
    "RemoteAvailability",
    "PlayoutBuffer",
    "AppProfile",
    "PROFILES",
    "get_profile",
    "napa_wine",
    "pplive",
    "pplive_popular",
    "random_baseline",
    "sopcast",
    "tvants",
    "Engine",
    "EngineConfig",
    "SimulationResult",
    "simulate",
    "ENGINE_NAMES",
    "SoAEngine",
    "SoAState",
    "default_engine",
    "get_engine",
]
