"""Video source configuration.

All three applications in the paper streamed the same CCTV-1 channel at a
nominal 384 kb/s (Windows Media 9).  :class:`VideoConfig` captures the
channel parameters and produces the shared :class:`ChunkClock`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.streaming.chunk import ChunkClock
from repro.units import kbps

#: Nominal CCTV-1 stream rate used in every experiment of the paper.
DEFAULT_STREAM_RATE_BPS: float = kbps(384)

#: Default chunk payload: 16 kB ⇒ exactly 3 chunks/s at 384 kb/s.
DEFAULT_CHUNK_BYTES: int = 16_000


@dataclass(frozen=True, slots=True)
class VideoConfig:
    """Channel parameters.

    Parameters
    ----------
    rate_bps:
        Stream rate (bit/s).
    chunk_bytes:
        Chunk payload size; the packetiser cuts chunks into MTU-sized
        packets whose dispersion encodes the sender's bottleneck.
    buffer_window_s:
        Width of the sliding playout window peers try to fill.
    playout_delay_s:
        Startup delay between joining and the first played chunk.
    """

    rate_bps: float = DEFAULT_STREAM_RATE_BPS
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    buffer_window_s: float = 30.0
    playout_delay_s: float = 10.0

    def __post_init__(self) -> None:
        if self.buffer_window_s <= 0 or self.playout_delay_s < 0:
            raise ConfigurationError("invalid buffer/playout configuration")
        if self.playout_delay_s >= self.buffer_window_s:
            raise ConfigurationError("playout delay must be inside the buffer window")

    @property
    def clock(self) -> ChunkClock:
        """The chunk clock for this channel."""
        return ChunkClock(rate_bps=self.rate_bps, chunk_bytes=self.chunk_bytes)
