"""The discrete-event P2P-TV engine.

Architecture (see DESIGN.md §3): the engine is *probe-centric*.  The 46
NAPA-WINE probes run the full mesh-pull protocol — discovery, partner
management, buffer maps, per-chunk provider selection, upload queuing —
because the paper's dataset is exactly the traffic those probes saw.  The
remote swarm is modelled statistically: each remote peer has a position in
the chunk-diffusion process (:class:`RemoteAvailability`), responds to
probe requests through a real uplink queue, and generates its own pull
demand towards the probes it finds attractive (the upload direction).

Everything stochastic draws from named, seeded RNG streams
(:class:`~repro.config.RngBundle`), so a run is a pure function of
``(world seed, profile, engine seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import RngBundle
from repro.errors import ConfigurationError, SimulationError
from repro.obs.log import get_logger
from repro.population.churn import ChurnProcess
from repro.population.demographics import Demographics, cctv1_audience
from repro.population.generator import PopulationConfig, RemotePeer, generate_population
from repro.streaming.availability import RemoteAvailability
from repro.streaming.buffer import PlayoutBuffer
from repro.streaming.events import EventQueue
from repro.streaming.profiles import AppProfile
from repro.streaming.selection import CandidateFeatures, SelectionPolicy
from repro.streaming.transport import (
    SignalingBook,
    TransferRecorder,
    UplinkScheduler,
    bottleneck_bps,
)
from repro.topology.paths import ACCESS_DEPTH
from repro.topology.testbed import Testbed, build_napa_wine_testbed
from repro.topology.world import World
from repro.trace.hosts import HostTable
from repro.trace.records import PacketKind
from repro.units import BITS_PER_BYTE

_log = get_logger("streaming.engine")

#: Size of a chunk-request / poll datagram.
REQUEST_BYTES = 80

#: Demand multiplier for probes below the high-bandwidth threshold (remotes
#: rarely pick them as parents — their uplink cannot sustain the stream).
LOWBW_DEMAND_FACTOR = 0.15

#: Probability that a discovery contact towards a firewalled peer fails.
FIREWALL_DROP_PROB = 0.8


def _approx_latency(same_subnet: bool, same_as: bool, same_cc: bool) -> float:
    """One-way latency estimate used for protocol timing.

    Coarse on purpose: serialisation dominates transfer time, and the
    analysis consumes byte counts and packet dispersion, not latencies.
    """
    if same_subnet:
        return 0.001
    if same_as:
        return 0.005
    if same_cc:
        return 0.02
    return 0.08


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Run-level engine parameters (profile-independent)."""

    duration_s: float = 600.0
    seed: int = 7
    demand_rebalance_s: float = 20.0
    max_backlog_s: float = 4.0
    #: Hop threshold for the ``near`` selection feature (only consulted when
    #: a profile sets a nonzero hop weight).
    hop_near_threshold: int = 19
    #: Per-tick budget of candidate-less chunks examined before giving up.
    max_probe_attempts: int = 24
    #: Probability that a chunk request fails because the provider's
    #: advertised buffer map was stale.  Failed chunks age and get retried,
    #: which is how slower peers (whose chunks arrive late) ever get picked.
    stale_buffermap_prob: float = 0.2
    #: Outstanding chunk requests allowed per provider.  Pipelining caps
    #: force request spreading: when the preferred providers are busy the
    #: scheduler falls back to less-preferred (often slower) partners —
    #: the mechanism that keeps low-bandwidth peers in the contributor set
    #: while they receive few bytes.
    max_outstanding_per_provider: int = 2
    #: Probability that a chunk request datagram is lost in the network
    #: (the request is recorded — the capture saw it leave — but no
    #: response ever comes; the chunk is retried at a later tick).
    #: Default 0: loss is an opt-in robustness knob.
    request_loss_prob: float = 0.0
    #: Probability that a *firewalled* probe drops an unsolicited remote
    #: downloader attachment (Table I's FW column given teeth).
    firewall_attach_drop_prob: float = 0.8
    #: Optional time-varying request loss: any object with a
    #: ``prob_at(t) -> float`` method (see
    #: :class:`repro.faults.loss.LossSchedule`).  When set it *replaces*
    #: ``request_loss_prob`` — impairment plans fold the scalar in as the
    #: schedule's GOOD-state floor.
    request_loss_schedule: object | None = None
    #: Optional churn post-transform ``(ChurnProcess, rng) -> ChurnProcess``
    #: applied to the generated remote-peer sessions, drawing from the
    #: engine's ``fault_churn`` RNG stream (churn storms / flash crowds —
    #: see :mod:`repro.faults.churn`).
    churn_transform: object | None = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.demand_rebalance_s <= 0:
            raise ConfigurationError("rebalance interval must be positive")


class _ProbeState:
    """Mutable protocol state of one full-protocol (probe) peer."""

    __slots__ = ("gidx", "known", "partners", "buffer", "inflight", "busy")

    def __init__(self, gidx: int, buffer: PlayoutBuffer) -> None:
        self.gidx = gidx
        self.known: set[int] = set()
        self.partners: set[int] = set()
        self.buffer = buffer
        self.inflight: set[int] = set()
        #: provider gidx → outstanding chunk requests (per-peer pipelining cap).
        self.busy: dict[int, int] = {}


@dataclass
class SimulationResult:
    """Everything a run produces.

    ``transfers`` and ``signaling`` are the raw log; ``hosts`` is the
    ground-truth host table; downstream code turns these into probe-side
    flow tables and packet traces.
    """

    transfers: np.ndarray
    signaling: np.ndarray
    hosts: HostTable
    testbed: Testbed
    world: World
    profile: AppProfile
    config: EngineConfig
    events_processed: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def probe_ips(self) -> np.ndarray:
        return self.hosts.probe_ips

    @property
    def duration_s(self) -> float:
        return self.config.duration_s


class Engine:
    """One experiment: one application profile on one synthetic Internet."""

    def __init__(
        self,
        world: World,
        testbed: Testbed,
        profile: AppProfile,
        population: list[RemotePeer],
        config: EngineConfig,
    ) -> None:
        self.world = world
        self.testbed = testbed
        self.profile = profile
        self.config = config
        self.clock = profile.video.clock
        self._rngs = RngBundle(config.seed)
        self._queue = EventQueue()
        self._recorder = TransferRecorder()
        self._signaling = SignalingBook()

        self._build_directory(population)
        self._build_protocol_state()

    # ----------------------------------------------------------- directory
    def _build_directory(self, population: list[RemotePeer]) -> None:
        """Flatten remotes + probes into aligned attribute arrays.

        Global index space: remotes occupy ``[0, R)``, probes ``[R, R+P)``.
        """
        remotes = [r.endpoint for r in population]
        probes = [h.endpoint for h in self.testbed.hosts]
        endpoints = remotes + probes
        self.n_remote = len(remotes)
        self.n_probe = len(probes)
        n = len(endpoints)
        if self.n_probe == 0:
            raise SimulationError("testbed has no probes")

        self._ip = np.array([e.ip for e in endpoints], dtype=np.uint32)
        self._asn = np.array([e.asn for e in endpoints], dtype=np.int32)
        cc_codes = sorted({e.country_code for e in endpoints})
        self._cc_labels = cc_codes
        cc_index = {c: i for i, c in enumerate(cc_codes)}
        self._cc = np.array([cc_index[e.country_code] for e in endpoints], dtype=np.int16)
        self._subnet = np.array([e.subnet for e in endpoints], dtype=np.uint32)
        self._up = np.array([e.access.up_bps for e in endpoints], dtype=np.float64)
        self._down = np.array([e.access.down_bps for e in endpoints], dtype=np.float64)
        self._highbw = np.array([e.access.is_high_bandwidth for e in endpoints], dtype=bool)
        self._firewalled = np.array([e.access.firewall for e in endpoints], dtype=bool)
        self._initial_ttl = np.array([e.initial_ttl for e in endpoints], dtype=np.uint8)
        self._access_depth = np.array(
            [ACCESS_DEPTH[e.access.kind] for e in endpoints], dtype=np.uint8
        )
        self._is_probe = np.zeros(n, dtype=bool)
        self._is_probe[self.n_remote :] = True

        # Sessions: remotes churn, probes stay for the whole experiment.
        churn = ChurnProcess.generate(
            list(range(self.n_remote)),
            self.config.duration_s,
            self.profile.churn,
            self._rngs["churn"],
        )
        if self.config.churn_transform is not None:
            churn = self.config.churn_transform(churn, self._rngs["fault_churn"])
        self._join = np.full(n, 0.0)
        self._leave = np.full(n, self.config.duration_s)
        for s in churn.sessions:
            self._join[s.peer_id] = s.join
            self._leave[s.peer_id] = s.leave

        self.availability = RemoteAvailability(
            self.clock,
            self._highbw[: self.n_remote],
            self._join[: self.n_remote],
            self.profile.availability,
            self._rngs["availability"],
        )
        self.uplink = UplinkScheduler(n, self._up, self.config.max_backlog_s)

    def _build_protocol_state(self) -> None:
        video = self.profile.video
        self._probes: list[_ProbeState] = []
        for k in range(self.n_probe):
            gidx = self.n_remote + k
            buffer = PlayoutBuffer(self.clock, video.buffer_window_s, join_time=0.0)
            self._probes.append(_ProbeState(gidx, buffer))
        rng_sel = self._rngs["selection"]
        self._partner_policy = SelectionPolicy(
            self.profile.partner_weights, rng_sel, self.profile.selection_temperature
        )
        self._provider_policy = SelectionPolicy(
            self.profile.provider_weights, rng_sel, self.profile.selection_temperature
        )
        self._remote_policy = SelectionPolicy(
            self.profile.remote_weights, rng_sel, self.profile.selection_temperature
        )
        #: (remote gidx, probe gidx) pairs currently attached as downloaders.
        self._attached: set[tuple[int, int]] = set()

    # ------------------------------------------------------------- features
    def _features(self, chooser: int, cands: np.ndarray) -> CandidateFeatures:
        """Awareness features of ``cands`` from ``chooser``'s viewpoint."""
        need_hop = False
        for policy in (self._partner_policy, self._provider_policy, self._remote_policy):
            if policy.weights.hop:
                need_hop = True
        if need_hop:
            hops = self.world.paths.hops_many(
                np.full(len(cands), self._ip[chooser]),
                np.full(len(cands), self._asn[chooser]),
                np.full(len(cands), self._subnet[chooser]),
                np.full(len(cands), self._access_depth[chooser]),
                self._ip[cands],
                self._asn[cands],
                self._subnet[cands],
                self._access_depth[cands],
            )
            near = hops < self.config.hop_near_threshold
        else:
            near = np.zeros(len(cands), dtype=bool)
        return CandidateFeatures(
            highbw=self._highbw[cands],
            same_as=self._asn[cands] == self._asn[chooser],
            same_cc=self._cc[cands] == self._cc[chooser],
            same_net=self._subnet[cands] == self._subnet[chooser],
            near=near,
        )

    def _online_mask(self, t: float) -> np.ndarray:
        return (self._join <= t) & (t < self._leave)

    def _latency(self, a: int, b: int) -> float:
        return _approx_latency(
            bool(self._subnet[a] == self._subnet[b]),
            bool(self._asn[a] == self._asn[b]),
            bool(self._cc[a] == self._cc[b]),
        )

    # ------------------------------------------------------------- recording
    def _record(self, t: float, src: int, dst: int, nbytes: int, kind: PacketKind) -> None:
        self._recorder.record(
            t,
            int(self._ip[src]),
            int(self._ip[dst]),
            nbytes,
            kind,
            bottleneck_bps(float(self._up[src]), float(self._down[dst])),
        )

    # ------------------------------------------------------------- discovery
    def _tracker_sample(self, probe: _ProbeState, k: int, t: float) -> np.ndarray:
        """Sample up to ``k`` new online peers for ``probe``.

        TVAnts-style AS-biased discovery oversamples same-AS peers by
        ``discovery_as_bias``; firewalled candidates often drop the contact.
        """
        online = self._online_mask(t)
        online[probe.gidx] = False
        pool = np.flatnonzero(online)
        if len(probe.known):
            pool = pool[~np.isin(pool, np.fromiter(probe.known, dtype=np.int64))]
        if len(pool) == 0:
            return pool
        rng = self._rngs["engine"]
        bias = self.profile.discovery_as_bias
        if bias > 0:
            weights = 1.0 + bias * (self._asn[pool] == self._asn[probe.gidx])
            probs = weights / weights.sum()
        else:
            probs = None
        k = min(k, len(pool))
        picked = rng.choice(pool, size=k, replace=False, p=probs)
        # Firewalled peers drop most unsolicited contacts.
        keep = ~self._firewalled[picked] | (rng.random(len(picked)) >= FIREWALL_DROP_PROB)
        return picked[keep]

    def _on_discovery(self, probe: _ProbeState) -> None:
        t = self._queue.now
        found = self._tracker_sample(probe, self.profile.contact_batch, t)
        hs = self.profile.handshake_bytes
        for cand in found:
            c = int(cand)
            probe.known.add(c)
            self._record(t, probe.gidx, c, hs, PacketKind.SIGNALING)
            self._record(t + 2 * self._latency(probe.gidx, c), c, probe.gidx, hs, PacketKind.SIGNALING)
        self._queue.schedule(t + self.profile.contact_interval_s, self._on_discovery, probe)

    # -------------------------------------------------------------- partners
    def _on_partner_refresh(self, probe: _ProbeState) -> None:
        t = self._queue.now
        rng = self._rngs["engine"]
        online = self._online_mask(t)
        # Sticky partnerships: keep most current (online) partners, refill
        # the remaining slots from the known set with the awareness policy.
        kept = {
            g
            for g in probe.partners
            if online[g] and rng.random() < self.profile.partner_stickiness
        }
        known = np.fromiter(probe.known, dtype=np.int64, count=len(probe.known))
        cands = known[online[known]] if len(known) else known
        if len(kept):
            cands = cands[~np.isin(cands, np.fromiter(kept, dtype=np.int64))]
        slots = self.profile.max_partners - len(kept)
        if len(cands) and slots > 0:
            feats = self._features(probe.gidx, cands)
            picked = self._partner_policy.choose(feats, slots)
            new_partners = kept | {int(cands[i]) for i in picked}
        else:
            new_partners = kept
        added = new_partners - probe.partners
        removed = probe.partners - new_partners
        p = self.profile
        me = int(self._ip[probe.gidx])
        for g in added:
            other = int(self._ip[g])
            # Periodic buffer-map exchange runs both ways; keepalives too.
            self._signaling.open(me, other, t, p.buffermap_interval_s, p.buffermap_bytes)
            self._signaling.open(other, me, t, p.buffermap_interval_s, p.buffermap_bytes)
            self._signaling.open(me, other, t, p.keepalive_interval_s, p.keepalive_bytes)
            self._signaling.open(other, me, t, p.keepalive_interval_s, p.keepalive_bytes)
        for g in removed:
            other = int(self._ip[g])
            self._signaling.close(me, other, t)
            self._signaling.close(other, me, t)
        probe.partners = new_partners
        self._queue.schedule(t + p.partner_refresh_s, self._on_partner_refresh, probe)

    # ------------------------------------------------------------- streaming
    def _provider_has(self, g: int, chunk: int, t: float) -> bool:
        """Whether peer ``g`` can serve ``chunk`` at ``t`` (ground truth for
        probes, the availability oracle for remotes)."""
        if g >= self.n_remote:
            return self._probes[g - self.n_remote].buffer.has(chunk)
        return self.availability.has_chunk(g, chunk, t)

    def _on_tick(self, probe: _ProbeState) -> None:
        t = self._queue.now
        probe.buffer.evict_before(t)
        window_floor = probe.buffer.window_range(t).start
        probe.inflight = {c for c in probe.inflight if c >= window_floor}
        missing = probe.buffer.missing(
            t, exclude=probe.inflight, live_lag=self.profile.live_lag_chunks
        )
        if missing and probe.partners:
            partners = np.fromiter(probe.partners, dtype=np.int64, count=len(probe.partners))
            online = self._online_mask(t)
            partners = partners[online[partners]]
            slots = self.profile.max_parallel_requests - len(probe.inflight)
            attempts = self.config.max_probe_attempts
            for chunk in missing:
                if slots <= 0 or attempts <= 0:
                    break
                attempts -= 1
                if len(partners) == 0:
                    break
                cap = self.config.max_outstanding_per_provider
                holders = partners[
                    [
                        probe.busy.get(int(g), 0) < cap
                        and self._provider_has(int(g), chunk, t)
                        for g in partners
                    ]
                ]
                if len(holders) == 0:
                    continue
                if self._rngs["engine"].random() < self.profile.explore_prob:
                    pick = int(self._rngs["engine"].integers(len(holders)))
                else:
                    feats = self._features(probe.gidx, holders)
                    pick = self._provider_policy.choose_one(feats)
                provider = int(holders[pick])
                if self._request_chunk(probe, provider, chunk, t):
                    slots -= 1
        self._queue.schedule(t + self.profile.tick_interval_s, self._on_tick, probe)

    def _request_chunk(self, probe: _ProbeState, provider: int, chunk: int, t: float) -> bool:
        """Issue a chunk request; returns True when a transfer was queued."""
        lat = self._latency(probe.gidx, provider)
        self._record(t, probe.gidx, provider, REQUEST_BYTES, PacketKind.CONTROL)
        if self.config.request_loss_schedule is not None:
            loss_prob = self.config.request_loss_schedule.prob_at(t)
        else:
            loss_prob = self.config.request_loss_prob
        if loss_prob > 0 and self._rngs["engine"].random() < loss_prob:
            # The request datagram was lost; nothing comes back and the
            # chunk ages until the next tick retries it.
            return False
        if self._rngs["engine"].random() < self.config.stale_buffermap_prob:
            # Stale buffer map: the provider no longer has (or never had)
            # the chunk and answers with a short decline.
            self._record(
                t + 2 * lat, provider, probe.gidx, REQUEST_BYTES, PacketKind.CONTROL
            )
            return False
        nbytes = self.clock.chunk_bytes
        start = self.uplink.admit(provider, t + lat, nbytes)
        if start is None:
            return False
        bn = bottleneck_bps(float(self._up[provider]), float(self._down[probe.gidx]))
        arrival = start + nbytes * BITS_PER_BYTE / bn + lat
        self._record(start, provider, probe.gidx, nbytes, PacketKind.VIDEO)
        probe.inflight.add(chunk)
        probe.busy[provider] = probe.busy.get(provider, 0) + 1
        self._queue.schedule(arrival, self._on_chunk_arrival, probe, chunk, provider)
        return True

    def _on_chunk_arrival(self, probe: _ProbeState, chunk: int, provider: int) -> None:
        probe.inflight.discard(chunk)
        probe.buffer.add(chunk)
        left = probe.busy.get(provider, 0) - 1
        if left > 0:
            probe.busy[provider] = left
        else:
            probe.busy.pop(provider, None)

    # ------------------------------------------------------ remote demand
    def _demand_target(self, probe_gidx: int) -> float:
        base = self.profile.remote_demand
        return base if self._highbw[probe_gidx] else base * LOWBW_DEMAND_FACTOR

    def _on_demand_rebalance(self) -> None:
        """Re-sample which remotes download from which probes.

        Runs every ``demand_rebalance_s``: each probe attracts a
        Poisson-distributed number of remote downloaders, sampled with the
        profile's remote-side awareness weights (this is the ground-truth
        mechanism behind the paper's *upload*-direction metrics).
        """
        t = self._queue.now
        rng = self._rngs["engine"]
        online = self._online_mask(t)
        remotes = np.flatnonzero(online[: self.n_remote])
        self._attached.clear()
        if len(remotes):
            for probe in self._probes:
                target = self._demand_target(probe.gidx)
                if self._firewalled[probe.gidx]:
                    # Firewalled probes drop most unsolicited inbound
                    # sessions; only the surviving fraction attaches.
                    target *= 1.0 - self.config.firewall_attach_drop_prob
                k = min(int(rng.poisson(target)), len(remotes))
                if k == 0:
                    continue
                feats = self._features(probe.gidx, remotes)
                picked = self._remote_policy.choose(feats, k)
                window_end = min(t + self.config.demand_rebalance_s, self.config.duration_s)
                for i in picked:
                    r = int(remotes[i])
                    self._attached.add((r, probe.gidx))
                    probe.known.add(r)
                    self._record(t, r, probe.gidx, self.profile.handshake_bytes, PacketKind.SIGNALING)
                    self._schedule_pulls(r, probe, t, window_end)
        self._queue.schedule(
            t + self.config.demand_rebalance_s, self._on_demand_rebalance
        )

    def _schedule_pulls(self, remote: int, probe: _ProbeState, t0: float, t1: float) -> None:
        rng = self._rngs["engine"]
        rate = self.profile.remote_pull_rate
        if rate <= 0:
            return
        n = rng.poisson(rate * (t1 - t0))
        if n == 0:
            return
        times = np.sort(rng.uniform(t0, t1, size=n))
        for tp in times:
            self._queue.schedule(float(tp), self._on_remote_pull, remote, probe)

    def _on_remote_pull(self, remote: int, probe: _ProbeState) -> None:
        t = self._queue.now
        if (remote, probe.gidx) not in self._attached or t >= self._leave[remote]:
            return
        self._record(t, remote, probe.gidx, REQUEST_BYTES, PacketKind.CONTROL)
        chunk = self._serveable_chunk(remote, probe, t)
        if chunk is None:
            return
        nbytes = self.clock.chunk_bytes
        lat = self._latency(remote, probe.gidx)
        start = self.uplink.admit(probe.gidx, t + lat, nbytes)
        if start is None:
            return
        bn = bottleneck_bps(float(self._up[probe.gidx]), float(self._down[remote]))
        self._record(start, probe.gidx, remote, nbytes, PacketKind.VIDEO)

    def _serveable_chunk(self, remote: int, probe: _ProbeState, t: float) -> int | None:
        """The newest chunk ``probe`` holds that ``remote`` still lacks."""
        want = self.availability.newest_missing(remote, t)
        if want is None:
            return None
        for chunk in range(want, max(want - 6, 0) - 1, -1):
            if probe.buffer.has(chunk) and not self.availability.has_chunk(remote, chunk, t):
                return chunk
        return None

    # ------------------------------------------------------------------- run
    def run(self) -> SimulationResult:
        """Execute the experiment and return the raw result bundle."""
        t_stagger = self.profile.tick_interval_s / max(1, self.n_probe)
        for i, probe in enumerate(self._probes):
            found = self._tracker_sample(probe, self.profile.tracker_initial, 0.0)
            probe.known.update(int(g) for g in found)
            hs = self.profile.handshake_bytes
            for cand in found:
                self._record(0.0, probe.gidx, int(cand), hs, PacketKind.SIGNALING)
                self._record(0.0, int(cand), probe.gidx, hs, PacketKind.SIGNALING)
            self._queue.schedule(i * t_stagger, self._on_partner_refresh, probe)
            self._queue.schedule(0.05 + i * t_stagger, self._on_tick, probe)
            self._queue.schedule(
                0.5 + i * t_stagger * 10, self._on_discovery, probe
            )
        self._queue.schedule(0.0, self._on_demand_rebalance)

        events = self._queue.run_until(self.config.duration_s)
        transfers = self._recorder.finalize()
        signaling = self._signaling.finalize(self.config.duration_s)

        hosts = HostTable.from_columns(
            ip=self._ip,
            asn=self._asn,
            cc=np.array([self._cc_labels[c] for c in self._cc], dtype="U2"),
            subnet=self._subnet,
            up_bps=self._up,
            down_bps=self._down,
            is_probe=self._is_probe,
            highbw=self._highbw,
            initial_ttl=self._initial_ttl,
            access_depth=self._access_depth,
        )
        # Event-loop statistics: vectorised accounting over the finished
        # log, so the hot path pays nothing and determinism is untouched.
        video = transfers["kind"] == int(PacketKind.VIDEO)
        stats = {
            "events": int(events),
            "peak_queue_depth": int(self._queue.peak_depth),
            "transfer_records": int(len(transfers)),
            "signaling_intervals": int(len(signaling)),
            "bytes_recorded": int(transfers["bytes"].sum()),
            "video_records": int(video.sum()),
            "video_bytes": int(transfers["bytes"][video].sum()),
            "remote_peers": int(self.n_remote),
            "probes": int(self.n_probe),
        }
        _log.info(
            "run-complete",
            profile=self.profile.name,
            duration_s=self.config.duration_s,
            seed=self.config.seed,
            **stats,
        )
        return SimulationResult(
            transfers=transfers,
            signaling=signaling,
            hosts=hosts,
            testbed=self.testbed,
            world=self.world,
            profile=self.profile,
            config=self.config,
            events_processed=events,
            extras={"engine_stats": stats},
        )


def simulate(
    profile: AppProfile,
    *,
    duration_s: float = 600.0,
    seed: int = 7,
    world: World | None = None,
    testbed: Testbed | None = None,
    demographics: Demographics | None = None,
    engine_config: EngineConfig | None = None,
) -> SimulationResult:
    """Run one complete experiment for ``profile`` — the main entry point.

    Builds (or reuses) the synthetic Internet and Table I testbed,
    generates the profile's audience, runs the engine, and returns the raw
    result.  The audience honours the profile's ``eu_audience_boost`` and
    ``probe_as_fraction`` (channel-popularity effects).
    """
    config = engine_config or EngineConfig(duration_s=duration_s, seed=seed)
    if world is None:
        world = World()
    if testbed is None:
        testbed = build_napa_wine_testbed(world)
    if demographics is None:
        base = cctv1_audience(probe_as_fraction=profile.probe_as_fraction)
        if profile.eu_audience_boost != 1.0:
            weights = dict(base.country_weights)
            for cc in ("IT", "FR", "HU", "PL"):
                weights[cc] = weights.get(cc, 1.0) * profile.eu_audience_boost
            demographics = Demographics(
                country_weights=weights,
                highbw_fraction=base.highbw_fraction,
                default_highbw=base.default_highbw,
                probe_as_fraction=profile.probe_as_fraction,
            )
        else:
            demographics = base
    rngs = RngBundle(config.seed)
    population = generate_population(
        world,
        PopulationConfig(size=profile.swarm_size, demographics=demographics),
        rngs["population"],
    )
    engine = Engine(world, testbed, profile, population, config)
    return engine.run()
