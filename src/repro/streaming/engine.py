"""The discrete-event P2P-TV engine.

Architecture (see DESIGN.md §3): the engine is *probe-centric*.  The 46
NAPA-WINE probes run the full mesh-pull protocol — discovery, partner
management, buffer maps, per-chunk provider selection, upload queuing —
because the paper's dataset is exactly the traffic those probes saw.  The
remote swarm is modelled statistically: each remote peer has a position in
the chunk-diffusion process (:class:`RemoteAvailability`), responds to
probe requests through a real uplink queue, and generates its own pull
demand towards the probes it finds attractive (the upload direction).

Everything stochastic draws from named, seeded RNG streams
(:class:`~repro.config.RngBundle`), so a run is a pure function of
``(world seed, profile, engine seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import RngBundle
from repro.errors import ConfigurationError, SimulationError
from repro.obs.log import get_logger
from repro.population.churn import ChurnProcess, draw_session_bounds
from repro.population.demographics import (
    Demographics,
    cctv1_audience,
    crossswarm_audience,
)
from repro.population.generator import PopulationConfig, RemotePeer, generate_population
from repro.population.sparse import (
    IndexRemap,
    ScoreRowCache,
    SparseSwarm,
    SparseSwarmConfig,
    generate_sparse_swarm,
)
from repro.streaming.availability import RemoteAvailability
from repro.streaming.buffer import PlayoutBuffer
from repro.streaming.events import EventQueue
from repro.streaming.profiles import AppProfile
from repro.streaming.schedulers import get_scheduler
from repro.streaming.selection import CandidateFeatures, SelectionPolicy
from repro.streaming.transport import (
    SignalingBook,
    TransferRecorder,
    UplinkScheduler,
)
from repro.topology.paths import ACCESS_DEPTH
from repro.topology.testbed import Testbed, build_napa_wine_testbed
from repro.topology.world import World
from repro.trace.hosts import HostTable
from repro.trace.records import PacketKind
from repro.units import BITS_PER_BYTE

_log = get_logger("streaming.engine")

#: Size of a chunk-request / poll datagram.
REQUEST_BYTES = 80

#: Packet-kind codes pre-cast to int for the inlined hot-path recording
#: (``int(PacketKind.X)`` per logged packet is measurable at trace scale).
_KIND_CONTROL = int(PacketKind.CONTROL)
_KIND_VIDEO = int(PacketKind.VIDEO)

#: Demand multiplier for probes below the high-bandwidth threshold (remotes
#: rarely pick them as parents — their uplink cannot sustain the stream).
LOWBW_DEMAND_FACTOR = 0.15

#: Probability that a discovery contact towards a firewalled peer fails.
FIREWALL_DROP_PROB = 0.8

#: Bounds on the pure per-probe memoisations (docs/engine-internals.md,
#: "cache audit"): evicted entries are recomputed bit-identically on the
#: next miss, so the bounds affect memory only, never the trace.
_PARTNER_CTX_MAX = 8
_THR_CACHE_MAX = 4096

#: Entry cap on the swarm-wide CDF memo.  Keys are holder score tuples;
#: at mega scale the distinct-sequence space is large enough to grow the
#: memo without bound, so past the cap it is dropped wholesale and warms
#: back up (entries are pure functions of their key — recomputed
#: bit-identically, memory-only effect).
_CDF_CACHE_MAX = 65_536

#: Byte budget for the lazy engine's LRU of on-demand remote score rows
#: (one float64 per peer per cached probe).  Large enough that every
#: probe's row fits resident at 10^6 peers — the budget is the safety
#: valve for the next decade, not a working limit at this one.
_SCORE_ROWS_BUDGET = 512 * 1024 * 1024

#: Remote-population size beyond which the O(probes × peers) Python-list
#: mirrors (provider-score rows, latency rows) stay numpy: at paper scale
#: the ``.tolist()`` copies cost hundreds of MB for identical values.
#: np.float64 hashes, compares and formats equal to the plain float, so
#: the gate is invisible to traces — it only bounds memory.
_LIST_MIRROR_MAX = 50_000

#: Oversampling rounds allowed per alias-sampled tracker reply before the
#: reply is returned short (candidates are rejected when offline, already
#: known, self, or duplicate within the reply).
_ALIAS_MAX_ROUNDS = 8


def _approx_latency(same_subnet: bool, same_as: bool, same_cc: bool) -> float:
    """One-way latency estimate used for protocol timing.

    Coarse on purpose: serialisation dominates transfer time, and the
    analysis consumes byte counts and packet dispersion, not latencies.
    """
    if same_subnet:
        return 0.001
    if same_as:
        return 0.005
    if same_cc:
        return 0.02
    return 0.08


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Run-level engine parameters (profile-independent)."""

    duration_s: float = 600.0
    seed: int = 7
    demand_rebalance_s: float = 20.0
    max_backlog_s: float = 4.0
    #: Hop threshold for the ``near`` selection feature (only consulted when
    #: a profile sets a nonzero hop weight).
    hop_near_threshold: int = 19
    #: Per-tick budget of candidate-less chunks examined before giving up.
    max_probe_attempts: int = 24
    #: Probability that a chunk request fails because the provider's
    #: advertised buffer map was stale.  Failed chunks age and get retried,
    #: which is how slower peers (whose chunks arrive late) ever get picked.
    stale_buffermap_prob: float = 0.2
    #: Outstanding chunk requests allowed per provider.  Pipelining caps
    #: force request spreading: when the preferred providers are busy the
    #: scheduler falls back to less-preferred (often slower) partners —
    #: the mechanism that keeps low-bandwidth peers in the contributor set
    #: while they receive few bytes.
    max_outstanding_per_provider: int = 2
    #: Probability that a chunk request datagram is lost in the network
    #: (the request is recorded — the capture saw it leave — but no
    #: response ever comes; the chunk is retried at a later tick).
    #: Default 0: loss is an opt-in robustness knob.
    request_loss_prob: float = 0.0
    #: Probability that a *firewalled* probe drops an unsolicited remote
    #: downloader attachment (Table I's FW column given teeth).
    firewall_attach_drop_prob: float = 0.8
    #: Optional time-varying request loss: any object with a
    #: ``prob_at(t) -> float`` method (see
    #: :class:`repro.faults.loss.LossSchedule`).  When set it *replaces*
    #: ``request_loss_prob`` — impairment plans fold the scalar in as the
    #: schedule's GOOD-state floor.
    request_loss_schedule: object | None = None
    #: Optional churn post-transform ``(ChurnProcess, rng) -> ChurnProcess``
    #: applied to the generated remote-peer sessions, drawing from the
    #: engine's ``fault_churn`` RNG stream (churn storms / flash crowds —
    #: see :mod:`repro.faults.churn`).
    churn_transform: object | None = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.demand_rebalance_s <= 0:
            raise ConfigurationError("rebalance interval must be positive")


class _RemapCounts:
    """Per-provider outstanding-request counters, touched-peers only.

    Drop-in for the dense ``busy`` list: reads of never-contacted ids
    answer 0 without allocating, writes allocate a dense slot through an
    :class:`~repro.population.sparse.IndexRemap` on first contact.  A
    probe contacts a few thousand peers over a run, so this replaces an
    O(swarm) int list per probe with O(touched) state.
    """

    __slots__ = ("_remap", "_vals")

    def __init__(self) -> None:
        self._remap = IndexRemap()
        self._vals: list[int] = []

    def __len__(self) -> int:
        return len(self._vals)

    def __getitem__(self, g: int) -> int:
        s = self._remap.slot(g)
        return self._vals[s] if s is not None else 0

    def __setitem__(self, g: int, v: int) -> None:
        s = self._remap.ensure(g)
        if s == len(self._vals):
            self._vals.append(v)
        else:
            self._vals[s] = v


class _RemapLatRow:
    """One probe's latency row, materialised per touched peer.

    Computes :func:`_approx_latency` from the static directory columns on
    first read of each peer and memoises it behind an
    :class:`~repro.population.sparse.IndexRemap` — the same doubles, in
    the same subnet → AS → CC precedence, as the eager ``np.where`` row.
    """

    __slots__ = ("_remap", "_vals", "_subnet", "_asn", "_cc", "_my_subnet", "_my_asn", "_my_cc")

    def __init__(
        self, subnet: np.ndarray, asn: np.ndarray, cc: np.ndarray, gidx: int
    ) -> None:
        self._remap = IndexRemap()
        self._vals: list[float] = []
        self._subnet = subnet
        self._asn = asn
        self._cc = cc
        self._my_subnet = int(subnet[gidx])
        self._my_asn = int(asn[gidx])
        self._my_cc = int(cc[gidx])

    def __len__(self) -> int:
        return len(self._vals)

    def __getitem__(self, g: int) -> float:
        s = self._remap.slot(g)
        if s is not None:
            return self._vals[s]
        if self._subnet[g] == self._my_subnet:
            v = 0.001
        elif self._asn[g] == self._my_asn:
            v = 0.005
        elif self._cc[g] == self._my_cc:
            v = 0.02
        else:
            v = 0.08
        self._remap.ensure(g)
        self._vals.append(v)
        return v


class _PeerState:
    """Discovery / partner-management state shared by both engine cores.

    ``known`` and ``partners`` stay Python sets — set iteration order is
    part of the deterministic trace (it decides candidate ordering and the
    per-partner RNG draw sequence) — but the hot path reads them through
    cached ``np.fromiter`` materialisations refreshed only at mutation
    points, where the original code rebuilt the arrays on every event.
    Since an unmutated set iterates in a stable order, the cached arrays
    are element-for-element identical to per-event rebuilds.

    Buffer / in-flight representation lives in the subclasses: the object
    engine's :class:`_ProbeState` carries a :class:`PlayoutBuffer` and a
    Python in-flight set, the struct-of-arrays engine's
    :class:`repro.streaming.soa.SoAProbe` holds a row index into shared
    bitmap arrays.
    """

    __slots__ = (
        "gidx",
        "known",
        "known_mask",
        "partners",
        "partners_arr",
        "lat_row",
        "busy",
        "busy_over",
        "_known_arr",
        "_known_len",
        "_filt",
        "_filt_key",
        "_filt_src",
    )

    def __init__(self, gidx: int, n_peers: int, lazy: bool = False) -> None:
        self.gidx = gidx
        self.known: set[int] = set()
        #: Dense mirror of ``known`` (discovery filters against it without
        #: the O(pool × known) set-probing of np.isin).
        self.known_mask: np.ndarray = np.zeros(n_peers, dtype=bool)
        self.partners: set[int] = set()
        self.partners_arr: np.ndarray = np.zeros(0, dtype=np.int64)
        #: This probe's one-way latency row (filled in by the engine once
        #: the latency model is built; static thereafter).
        self.lat_row: list[float] = []
        #: Outstanding chunk requests per provider gidx (pipelining cap).
        #: Dense list under the eager peer-state policy; a touched-peers
        #: remap under the lazy one (identical reads/writes either way).
        self.busy: "list[int] | _RemapCounts" = (
            _RemapCounts() if lazy else [0] * n_peers
        )
        #: Providers currently at/over the pipelining cap — the tiny
        #: (usually empty) complement the vectorised kernels subtract
        #: instead of re-checking ``busy`` per advertised pair.
        self.busy_over: set[int] = set()
        self._known_arr: np.ndarray = np.zeros(0, dtype=np.int64)
        self._known_len = 0
        # Online-filtered partners_arr, valid for one (mask epoch, partner
        # array) combination — see Engine._on_tick.
        self._filt: np.ndarray = self.partners_arr
        self._filt_key = -1
        self._filt_src: np.ndarray | None = None

    def add_known(self, g: int) -> None:
        """Record peer ``g`` as discovered."""
        self.known.add(g)
        self.known_mask[g] = True

    def known_array(self) -> np.ndarray:
        """``known`` as an int64 array (cached; ``known`` is grow-only)."""
        if self._known_len != len(self.known):
            self._known_arr = np.fromiter(self.known, dtype=np.int64, count=len(self.known))
            self._known_len = len(self.known)
        return self._known_arr

    def set_partners(self, partners: set[int]) -> None:
        """Replace the partner set and refresh its array materialisation."""
        self.partners = partners
        self.partners_arr = np.fromiter(partners, dtype=np.int64, count=len(partners))

    def online_partners(self, online: np.ndarray, mask_key: int) -> np.ndarray:
        """``partners_arr`` filtered to online peers, memoised per epoch."""
        if self._filt_key != mask_key or self._filt_src is not self.partners_arr:
            arr = self.partners_arr
            self._filt = arr[online[arr]]
            self._filt_key = mask_key
            self._filt_src = arr
        return self._filt


class _ProbeState(_PeerState):
    """Object-engine probe: a per-probe :class:`PlayoutBuffer` plus a
    Python in-flight set.  The differential reference representation."""

    __slots__ = ("buffer", "chunks", "inflight")

    def __init__(
        self, gidx: int, buffer: PlayoutBuffer, n_peers: int, lazy: bool = False
    ) -> None:
        super().__init__(gidx, n_peers, lazy)
        self.buffer = buffer
        #: Borrowed reference to the buffer's live chunk set (mutated in
        #: place, never reassigned) — saves a property hop per remote pull.
        self.chunks = buffer.chunk_set
        self.inflight: set[int] = set()


@dataclass
class SimulationResult:
    """Everything a run produces.

    ``transfers`` and ``signaling`` are the raw log; ``hosts`` is the
    ground-truth host table; downstream code turns these into probe-side
    flow tables and packet traces.
    """

    transfers: np.ndarray
    signaling: np.ndarray
    hosts: HostTable
    testbed: Testbed
    world: World
    profile: AppProfile
    config: EngineConfig
    events_processed: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def probe_ips(self) -> np.ndarray:
        return self.hosts.probe_ips

    @property
    def duration_s(self) -> float:
        return self.config.duration_s


class _BiasedSampler:
    """Exact O(1)-per-draw sampler for the two-valued discovery weights.

    The AS-biased discovery distribution ``w_i = 1 + bias·[asn_i = a]``
    is a mixture: uniform over all ``n`` peers with probability
    ``n / (n + bias·k)``, uniform over the ``k`` same-AS peers otherwise
    — algebraically identical to the alias table over those weights, but
    built from one ``flatnonzero`` instead of an O(n) Vose construction
    per chooser AS.

    Draw order (fixed, documented for determinism): the global index
    draw ``j = integers(n, size)`` first, then the mixture coin
    ``u = random(size)``, then the same-AS index draw
    ``integers(k, size)``; the last two are skipped when the bias is
    inactive (``bias·k = 0``), matching the unbiased uniform sampler.
    """

    __slots__ = ("n", "same", "q")

    def __init__(self, n: int, same: np.ndarray, bias: float) -> None:
        self.n = n
        self.same = same
        k = len(same)
        self.q = bias * k / (n + bias * k) if n else 0.0

    def draw(self, rng: np.random.Generator, size: int) -> np.ndarray:
        j = rng.integers(0, self.n, size=size)
        if self.q <= 0.0:
            return j
        u = rng.random(size)
        boost = self.same[rng.integers(0, len(self.same), size=size)]
        return np.where(u < self.q, boost, j)


class Engine:
    """One experiment: one application profile on one synthetic Internet."""

    #: Engine-mode tag surfaced in result extras / trace metadata; the
    #: struct-of-arrays subclass overrides it (see repro.streaming.soa).
    mode = "object"

    def __init__(
        self,
        world: World,
        testbed: Testbed,
        profile: AppProfile,
        population: list[RemotePeer],
        config: EngineConfig,
    ) -> None:
        self.world = world
        self.testbed = testbed
        self.profile = profile
        self.config = config
        self.clock = profile.video.clock
        self._rngs = RngBundle(config.seed)
        #: The protocol-event stream, bound once (hot-path draws).
        self._rng_engine = self._rngs["engine"]
        self._queue = EventQueue()
        # Pre-bound hot-path callbacks: scheduling via ``self._on_x``
        # creates a fresh bound method per call; these do it once.
        self._cb_tick = self._on_tick
        self._cb_tick_cohort = self._on_tick_cohort
        self._cb_arrival = self._on_chunk_arrival
        self._cb_pull = self._on_remote_pull
        self._recorder = TransferRecorder()
        self._rec_append = self._recorder.append_row
        self._signaling = SignalingBook()

        self._build_directory(population)
        #: Peer-state materialisation policy (profile knob, ``"auto"``
        #: resolved against the directory size): the lazy mode allocates
        #: score rows, latency rows and busy counters on first contact
        #: instead of swarm-wide at build time.  Byte-identical either
        #: way — the differential suites pin it.
        self._lazy = (
            profile.resolved_peer_state(self.n_remote + self.n_probe) == "lazy"
        )
        self._build_protocol_state()
        #: Discovery sampler selection (profile knob, not swarm-format
        #: dependent — sparse and dense runs of one profile draw alike).
        self._alias_tables: dict[int, _BiasedSampler] = {}
        if profile.discovery == "alias":
            self._tracker_sample = self._tracker_sample_alias  # type: ignore[method-assign]
        # The chunk-scheduling policy: which missing chunks to request, in
        # what order, from whom (see repro.streaming.schedulers).  The
        # default mesh-pull strategy is the pre-refactor selection loop
        # verbatim — golden-hash-pinned byte-identical.
        self._scheduler = get_scheduler(profile.scheduler)()
        self._scheduler.bind(self)
        self._sched_requests = self._scheduler.schedule_requests
        self._scan_limit = (
            self.config.max_probe_attempts if self._scheduler.truncate_scan else None
        )
        self._sched_push = self._scheduler.pushes

    # ----------------------------------------------------------- directory
    def _build_directory(self, population: "list[RemotePeer] | SparseSwarm") -> None:
        """Flatten remotes + probes into aligned attribute arrays.

        Global index space: remotes occupy ``[0, R)``, probes ``[R, R+P)``.
        A dense population (list of :class:`RemotePeer`) is flattened
        object-by-object; a :class:`~repro.population.sparse.SparseSwarm`
        contributes its columns directly — no per-remote objects exist at
        any point on that path.
        """
        probes = [h.endpoint for h in self.testbed.hosts]
        self.n_probe = len(probes)
        if self.n_probe == 0:
            raise SimulationError("testbed has no probes")

        if isinstance(population, SparseSwarm):
            cols = population.columns()
            self.n_remote = len(cols)
            n = self.n_remote + self.n_probe
            self._ip = np.concatenate(
                [cols.ip, np.array([e.ip for e in probes], dtype=np.uint32)]
            )
            self._asn = np.concatenate(
                [cols.asn, np.array([e.asn for e in probes], dtype=np.int32)]
            )
            cc_codes = sorted(set(cols.cc.tolist()) | {e.country_code for e in probes})
            self._cc_labels = cc_codes
            labels = np.array(cc_codes, dtype="U2")
            cc_index = {c: i for i, c in enumerate(cc_codes)}
            self._cc = np.concatenate(
                [
                    np.searchsorted(labels, cols.cc).astype(np.int16),
                    np.array([cc_index[e.country_code] for e in probes], dtype=np.int16),
                ]
            )
            self._subnet = np.concatenate(
                [cols.subnet, np.array([e.subnet for e in probes], dtype=np.uint32)]
            )
            self._up = np.concatenate(
                [cols.up_bps, np.array([e.access.up_bps for e in probes])]
            )
            self._down = np.concatenate(
                [cols.down_bps, np.array([e.access.down_bps for e in probes])]
            )
            self._highbw = np.concatenate(
                [cols.highbw, np.array([e.access.is_high_bandwidth for e in probes], dtype=bool)]
            )
            self._firewalled = np.concatenate(
                [cols.firewalled, np.array([e.access.firewall for e in probes], dtype=bool)]
            )
            self._initial_ttl = np.concatenate(
                [cols.initial_ttl, np.array([e.initial_ttl for e in probes], dtype=np.uint8)]
            )
            self._access_depth = np.concatenate(
                [
                    cols.access_depth,
                    np.array([ACCESS_DEPTH[e.access.kind] for e in probes], dtype=np.uint8),
                ]
            )
        else:
            remotes = [r.endpoint for r in population]
            endpoints = remotes + probes
            self.n_remote = len(remotes)
            n = len(endpoints)
            self._ip = np.array([e.ip for e in endpoints], dtype=np.uint32)
            self._asn = np.array([e.asn for e in endpoints], dtype=np.int32)
            cc_codes = sorted({e.country_code for e in endpoints})
            self._cc_labels = cc_codes
            cc_index = {c: i for i, c in enumerate(cc_codes)}
            self._cc = np.array(
                [cc_index[e.country_code] for e in endpoints], dtype=np.int16
            )
            self._subnet = np.array([e.subnet for e in endpoints], dtype=np.uint32)
            self._up = np.array([e.access.up_bps for e in endpoints], dtype=np.float64)
            self._down = np.array([e.access.down_bps for e in endpoints], dtype=np.float64)
            self._highbw = np.array(
                [e.access.is_high_bandwidth for e in endpoints], dtype=bool
            )
            self._firewalled = np.array([e.access.firewall for e in endpoints], dtype=bool)
            self._initial_ttl = np.array([e.initial_ttl for e in endpoints], dtype=np.uint8)
            self._access_depth = np.array(
                [ACCESS_DEPTH[e.access.kind] for e in endpoints], dtype=np.uint8
            )
        self._is_probe = np.zeros(n, dtype=bool)
        self._is_probe[self.n_remote :] = True

        # Sessions: remotes churn, probes stay for the whole experiment.
        self._join = np.full(n, 0.0)
        self._leave = np.full(n, self.config.duration_s)
        if self.config.churn_transform is not None:
            # Fault transforms operate on Session objects; this path stays
            # object-based (impairment studies run at dense scales).
            churn = ChurnProcess.generate(
                list(range(self.n_remote)),
                self.config.duration_s,
                self.profile.churn,
                self._rngs["churn"],
            )
            churn = self.config.churn_transform(churn, self._rngs["fault_churn"])
            for s in churn.sessions:
                self._join[s.peer_id] = s.join
                self._leave[s.peer_id] = s.leave
        else:
            # Columnar draw — same RNG consumption and IEEE values as the
            # Session-object path (ChurnProcess.generate wraps this same
            # function), without 10^5 Session objects at paper scale.
            joins, leaves = draw_session_bounds(
                self.n_remote,
                self.config.duration_s,
                self.profile.churn,
                self._rngs["churn"],
            )
            self._join[: self.n_remote] = joins
            self._leave[: self.n_remote] = leaves

        self.availability = RemoteAvailability(
            self.clock,
            self._highbw[: self.n_remote],
            self._join[: self.n_remote],
            self.profile.availability,
            self._rngs["availability"],
        )
        self.uplink = UplinkScheduler(n, self._up, self.config.max_backlog_s)
        # Borrowed references for the inlined admit() in the request/pull
        # hot paths (same lists the scheduler mutates, never reassigned).
        self._ul_free = self.uplink.free_at
        self._ul_bps = self.uplink.up_bps
        self._ul_max_backlog = self.uplink.max_backlog_s

        # Plain-list mirrors for scalar hot-path reads (numpy int indexing
        # boxes a fresh scalar per access; these are the same values).
        self._ip_list: list[int] = self._ip.tolist()
        self._up_list: list[float] = self._up.tolist()
        self._down_list: list[float] = self._down.tolist()
        self._leave_list: list[float] = self._leave.tolist()
        # Online-mask maintenance: the mask is constant between
        # consecutive join/leave boundaries and event time is
        # non-decreasing, so instead of re-evaluating the n-peer compare
        # at every boundary crossing (O(n) per interval — paper-scale
        # swarms cross a boundary every few events) the boundaries are
        # sorted once and each query flips only the peers whose join or
        # leave was crossed since the previous one: O(Δ) amortised.
        # ``_mask_key`` is the number of crossed boundaries — it changes
        # exactly when the mask content does, which is all the per-probe
        # ``online_partners`` memo needs.
        self._join_order = np.argsort(self._join, kind="stable")
        self._leave_order = np.argsort(self._leave, kind="stable")
        self._join_sorted = self._join[self._join_order]
        self._leave_sorted = self._leave[self._leave_order]
        self._join_ptr = 0
        self._leave_ptr = 0
        self._mask_key = 0
        # Next boundary at/after the cached state; recompute when t
        # reaches it.
        self._mask_t1 = -np.inf
        self._mask: np.ndarray = np.zeros(n, dtype=bool)

    def _make_probes(self, n_peers: int) -> list[_PeerState]:
        """Construct per-probe protocol state — the engine-core seam.

        The object engine builds one :class:`PlayoutBuffer` per probe; the
        SoA engine overrides this to allocate shared bitmap arrays and
        return row-indexed :class:`~repro.streaming.soa.SoAProbe` views.
        """
        video = self.profile.video
        probes: list[_PeerState] = []
        for k in range(self.n_probe):
            gidx = self.n_remote + k
            buffer = PlayoutBuffer(self.clock, video.buffer_window_s, join_time=0.0)
            probes.append(_ProbeState(gidx, buffer, n_peers, self._lazy))
        return probes

    def _build_protocol_state(self) -> None:
        n = self.n_remote + self.n_probe
        self._probes = self._make_probes(n)
        rng_sel = self._rngs["selection"]
        self._partner_policy = SelectionPolicy(
            self.profile.partner_weights, rng_sel, self.profile.selection_temperature
        )
        self._provider_policy = SelectionPolicy(
            self.profile.provider_weights, rng_sel, self.profile.selection_temperature
        )
        self._remote_policy = SelectionPolicy(
            self.profile.remote_weights, rng_sel, self.profile.selection_temperature
        )
        #: (remote gidx, probe gidx) pairs currently attached as downloaders.
        self._attached: set[tuple[int, int]] = set()

        # Whether any policy consults the hop feature — static per profile.
        self._need_hop = any(
            policy.weights.hop
            for policy in (self._partner_policy, self._provider_policy, self._remote_policy)
        )
        # Awareness scores are a pure function of the (chooser, candidate)
        # endpoint pair — every input is fixed at build time — so the score
        # of each pair is precomputed once per policy.  Rows go through the
        # exact same _features → scores pipeline the per-event path used,
        # and softmax is element-independent, so indexing a cached row by a
        # candidate subset yields bit-identical probabilities (and hence an
        # identical RNG draw sequence) to rescoring that subset from scratch.
        # The same element-independence runs the other way: scoring only a
        # candidate *subset* yields the exact doubles a full-row gather
        # would — which is what lets the lazy mode skip the swarm-wide
        # matrices (3 × probes × peers float64) and score on demand.
        if self._lazy:
            self._partner_scores = None
            self._provider_scores = None
            self._remote_scores = None
            #: LRU of full remote-policy rows (the rebalance pass gathers
            #: against all online remotes, so per-probe rows are built
            #: whole on first demand and kept under a byte budget).
            self._remote_rows = ScoreRowCache(
                self._build_remote_row, _SCORE_ROWS_BUDGET
            )
        else:
            all_peers = np.arange(n, dtype=np.int64)
            partner_rows, provider_rows, remote_rows = [], [], []
            for probe in self._probes:
                feats = self._features(probe.gidx, all_peers)
                partner_rows.append(self._partner_policy.scores(feats))
                provider_rows.append(self._provider_policy.scores(feats))
                remote_rows.append(self._remote_policy.scores(feats))
            self._partner_scores = np.vstack(partner_rows)
            self._provider_scores = np.vstack(provider_rows)
            self._remote_scores = np.vstack(remote_rows)
            self._remote_rows = None
        # Tick-loop constants hoisted out of their dataclasses: _on_tick
        # fires tens of thousands of times and these attribute chains are
        # measurable there.
        self._tick_interval = self.profile.tick_interval_s
        self._live_lag = max(0, self.profile.live_lag_chunks)
        self._max_parallel = self.profile.max_parallel_requests
        self._explore_prob = self.profile.explore_prob
        self._max_attempts = self.config.max_probe_attempts
        self._cap_out = self.config.max_outstanding_per_provider
        self._chunk_bytes = self.clock.chunk_bytes
        self._loss_schedule = self.config.request_loss_schedule
        self._loss_prob = self.config.request_loss_prob
        self._stale_prob = self.config.stale_buffermap_prob
        self._av_chunk_interval = self.availability.chunk_interval
        self._av_retention = self.availability.retention_s
        #: The selection policies all draw from this stream; hoisted so the
        #: tick loop can invert cached CDFs with a direct draw (same
        #: generator, same single-uniform consumption as sample_index).
        self._rng_sel = rng_sel
        # Whether the peer directory is too large for Python-list mirrors
        # of O(probes × peers) data (the lists trade ~2x scalar-read speed
        # for a full copy; at paper scale that copy is hundreds of MB).
        # np.float64 elements hash/compare/format equal to plain floats,
        # so traces are unaffected either way.
        list_mirrors = (self.n_remote + self.n_probe) <= _LIST_MIRROR_MAX
        #: Provider score rows as plain floats for cheap per-holder reads
        #: (numpy rows beyond _LIST_MIRROR_MAX peers; absent in lazy mode,
        #: where the partner context carries per-partner score lookups).
        self._provider_scores_list: list | None = (
            None
            if self._lazy
            else (
                self._provider_scores.tolist()
                if list_mirrors
                else list(self._provider_scores)
            )
        )
        #: Per-probe memo of provider-selection CDFs (as sorted float
        #: lists), keyed by the holders' *score* tuple: the CDF is a pure
        #: function of the score sequence, so distinct holder sets with
        #: equal scores share one entry — far fewer softmax evaluations
        #: than holder-tuple keying, with bit-identical CDF values.  One
        #: cache for the whole swarm (not per probe): equal score
        #: sequences yield the same CDF no matter which probe asks.
        self._cdf_cache: dict = {}
        #: Entry budget for the CDF memo, read at the schedulers' insert
        #: sites (they cannot import this module — circular).
        self._cdf_cache_max = _CDF_CACHE_MAX
        #: Per-probe memo of partner-array splits (see _partner_context).
        self._partner_ctx: list[dict[bytes, tuple]] = [{} for _ in self._probes]
        # Per-probe one-way latency rows (the latency model only depends on
        # subnet/AS/CC equality, all static); nested lists for scalar reads
        # at legacy scales, numpy rows beyond _LIST_MIRROR_MAX peers, and
        # touched-peer remap rows in lazy mode (same doubles on read).
        if self._lazy:
            self._lat_rows: list = [
                _RemapLatRow(self._subnet, self._asn, self._cc, p.gidx)
                for p in self._probes
            ]
        else:
            lat_arrays = [
                np.where(
                    self._subnet == self._subnet[p.gidx],
                    0.001,
                    np.where(
                        self._asn == self._asn[p.gidx],
                        0.005,
                        np.where(self._cc == self._cc[p.gidx], 0.02, 0.08),
                    ),
                )
                for p in self._probes
            ]
            self._lat_rows = (
                [row.tolist() for row in lat_arrays] if list_mirrors else lat_arrays
            )
        for pi, p in enumerate(self._probes):
            p.lat_row = self._lat_rows[pi]

    def _build_remote_row(self, pi: int) -> np.ndarray:
        """Probe ``pi``'s full remote-policy score row, built on demand.

        Identical pipeline (``_features`` → ``scores`` over the whole
        directory) to the eager build — the row is bit-for-bit the one
        ``_remote_scores[pi]`` would hold.
        """
        n = self.n_remote + self.n_probe
        cands = np.arange(n, dtype=np.int64)
        return self._remote_policy.scores(
            self._features(self.n_remote + pi, cands)
        )

    def _partner_scores_for(self, probe: _PeerState, cands: np.ndarray) -> np.ndarray:
        """Partner-policy scores of ``cands`` from ``probe``'s viewpoint.

        Row gather when eager, on-demand subset scoring when lazy — the
        score pipeline is element-independent, so both produce the same
        doubles (and hence the same downstream RNG draws).
        """
        if self._lazy:
            return self._partner_policy.scores(self._features(probe.gidx, cands))
        return self._partner_scores[probe.gidx - self.n_remote][cands]

    # ------------------------------------------------------------- features
    def _features(self, chooser: int, cands: np.ndarray) -> CandidateFeatures:
        """Awareness features of ``cands`` from ``chooser``'s viewpoint."""
        if self._need_hop:
            hops = self.world.paths.hops_many(
                np.full(len(cands), self._ip[chooser]),
                np.full(len(cands), self._asn[chooser]),
                np.full(len(cands), self._subnet[chooser]),
                np.full(len(cands), self._access_depth[chooser]),
                self._ip[cands],
                self._asn[cands],
                self._subnet[cands],
                self._access_depth[cands],
            )
            near = hops < self.config.hop_near_threshold
        else:
            near = np.zeros(len(cands), dtype=bool)
        return CandidateFeatures(
            highbw=self._highbw[cands],
            same_as=self._asn[cands] == self._asn[chooser],
            same_cc=self._cc[cands] == self._cc[chooser],
            same_net=self._subnet[cands] == self._subnet[chooser],
            near=near,
        )

    def _online_mask(self, t: float) -> np.ndarray:
        """Who is online at ``t`` (shared cache — callers must not mutate).

        The mask only changes when ``t`` crosses a join/leave boundary;
        queries arrive in non-decreasing time order, so the cached mask
        is advanced by flipping exactly the peers whose boundary was
        crossed since the previous query — bit-for-bit the array
        ``(join <= t) & (t < leave)`` would produce, at O(Δ) cost.
        """
        if t >= self._mask_t1:
            js = self._join_sorted
            ls = self._leave_sorted
            mask = self._mask
            jp = self._join_ptr
            lp = self._leave_ptr
            njp = int(js.searchsorted(t, side="right"))
            nlp = int(ls.searchsorted(t, side="right"))
            if njp > jp:
                mask[self._join_order[jp:njp]] = True
                self._join_ptr = njp
            if nlp > lp:
                # Leaves flip after joins: a peer whose whole session is
                # already behind ``t`` must end up offline.
                mask[self._leave_order[lp:nlp]] = False
                self._leave_ptr = nlp
            self._mask_key = njp + nlp
            nj = js[njp] if njp < len(js) else np.inf
            nl = ls[nlp] if nlp < len(ls) else np.inf
            self._mask_t1 = nj if nj < nl else nl
        return self._mask

    def _latency(self, a: int, b: int) -> float:
        # Every latency query involves at least one probe endpoint; the
        # model is symmetric in (a, b), so one probe-indexed row suffices.
        if a >= self.n_remote:
            return self._lat_rows[a - self.n_remote][b]
        return self._lat_rows[b - self.n_remote][a]

    # ------------------------------------------------------------- recording
    def _record(self, t: float, src: int, dst: int, nbytes: int, kind: PacketKind) -> None:
        up = self._up_list[src]
        dn = self._down_list[dst]
        self._rec_append(
            (
                t,
                self._ip_list[src],
                self._ip_list[dst],
                nbytes,
                int(kind),
                up if up < dn else dn,  # bottleneck_bps, inlined
            )
        )

    # ------------------------------------------------------------- discovery
    def _tracker_sample(self, probe: _ProbeState, k: int, t: float) -> np.ndarray:
        """Sample up to ``k`` new online peers for ``probe``.

        TVAnts-style AS-biased discovery oversamples same-AS peers by
        ``discovery_as_bias``; firewalled candidates often drop the contact.
        """
        # online ∧ ¬known ∧ ¬self, via dense masks: same ascending-index
        # pool (flatnonzero order) the isin-filtered version produced, but
        # without np.isin's per-call sort of the known set.
        avail = self._online_mask(t) & ~probe.known_mask
        avail[probe.gidx] = False  # avail is a fresh array; the shared mask is untouched
        pool = np.flatnonzero(avail)
        if len(pool) == 0:
            return pool
        rng = self._rng_engine
        bias = self.profile.discovery_as_bias
        if bias > 0:
            weights = 1.0 + bias * (self._asn[pool] == self._asn[probe.gidx])
            probs = weights / weights.sum()
        else:
            probs = None
        k = min(k, len(pool))
        picked = rng.choice(pool, size=k, replace=False, p=probs)
        # Firewalled peers drop most unsolicited contacts.
        keep = ~self._firewalled[picked] | (rng.random(len(picked)) >= FIREWALL_DROP_PROB)
        return picked[keep]

    def _alias_table_for(self, asn: int) -> "_BiasedSampler":
        """The discovery sampler seen by a probe in AS ``asn``.

        The scan sampler's weights (1 + bias for same-AS candidates) are
        two-valued, so the alias table over them collapses to an exact
        two-component mixture — uniform over the directory, plus a
        same-AS boost drawn with probability ``bias·k / (n + bias·k)``
        (see :class:`_BiasedSampler`).  Samplers are static per chooser
        AS and built lazily in O(same-AS peers), not O(swarm); probes
        share one per campus/home AS.
        """
        table = self._alias_tables.get(asn)
        if table is None:
            same = np.flatnonzero(self._asn == asn)
            n = self.n_remote + self.n_probe
            table = _BiasedSampler(n, same, self.profile.discovery_as_bias)
            self._alias_tables[asn] = table
        return table

    def _tracker_sample_alias(self, probe: _ProbeState, k: int, t: float) -> np.ndarray:
        """Alias-sampled tracker/gossip reply — O(batch), not O(swarm).

        Draws candidates from a precomputed biased sampler over the whole
        directory and rejects offline / already-known / self / duplicate
        picks, oversampling in bounded rounds.  Sampling is with-rejection
        rather than without-replacement, so replies follow the same biased
        distribution as the scan sampler but are *not* draw-identical to
        it — profiles choose one sampler and keep it (``discovery`` knob).
        """
        rng = self._rng_engine
        online = self._online_mask(t)
        bias = self.profile.discovery_as_bias
        table = (
            self._alias_table_for(int(self._asn[probe.gidx])) if bias > 0 else None
        )
        n = self.n_remote + self.n_probe
        picked: list[int] = []
        seen: set[int] = set()
        for _ in range(_ALIAS_MAX_ROUNDS):
            need = k - len(picked)
            if need <= 0:
                break
            m = max(2 * need, 8)
            cand = table.draw(rng, m) if table is not None else rng.integers(0, n, size=m)
            ok = online[cand] & ~probe.known_mask[cand] & (cand != probe.gidx)
            for g in cand[ok].tolist():
                if g not in seen:
                    seen.add(g)
                    picked.append(g)
                    if len(picked) == k:
                        break
        if not picked:
            return np.zeros(0, dtype=np.int64)
        arr = np.array(picked, dtype=np.int64)
        # Firewalled peers drop most unsolicited contacts (same post-filter
        # as the scan sampler).
        keep = ~self._firewalled[arr] | (rng.random(len(arr)) >= FIREWALL_DROP_PROB)
        return arr[keep]

    def _on_discovery(self, probe: _ProbeState) -> None:
        t = self._queue.now
        found = self._tracker_sample(probe, self.profile.contact_batch, t)
        hs = self.profile.handshake_bytes
        for cand in found:
            c = int(cand)
            probe.add_known(c)
            self._record(t, probe.gidx, c, hs, PacketKind.SIGNALING)
            self._record(t + 2 * self._latency(probe.gidx, c), c, probe.gidx, hs, PacketKind.SIGNALING)
        self._queue.schedule(t + self.profile.contact_interval_s, self._on_discovery, probe)

    # -------------------------------------------------------------- partners
    def _on_partner_refresh(self, probe: _ProbeState) -> None:
        t = self._queue.now
        rng = self._rng_engine
        online = self._online_mask(t)
        # Sticky partnerships: keep most current (online) partners, refill
        # the remaining slots from the known set with the awareness policy.
        kept = {
            g
            for g in probe.partners
            if online[g] and rng.random() < self.profile.partner_stickiness
        }
        known = probe.known_array()
        cands = known[online[known]] if len(known) else known
        if len(kept):
            # Same filter as ~np.isin(cands, kept) in the same order, via
            # set probes instead of isin's per-call sort of both arrays.
            cands = np.array(
                [c for c in cands.tolist() if c not in kept], dtype=np.int64
            )
        slots = self.profile.max_partners - len(kept)
        if len(cands) and slots > 0:
            scores = self._partner_scores_for(probe, cands)
            picked = self._partner_policy.choose_scored(scores, slots)
            new_partners = kept | {int(cands[i]) for i in picked}
        else:
            new_partners = kept
        added = new_partners - probe.partners
        removed = probe.partners - new_partners
        p = self.profile
        me = int(self._ip[probe.gidx])
        for g in added:
            other = int(self._ip[g])
            # Periodic buffer-map exchange runs both ways; keepalives too.
            self._signaling.open(me, other, t, p.buffermap_interval_s, p.buffermap_bytes)
            self._signaling.open(other, me, t, p.buffermap_interval_s, p.buffermap_bytes)
            self._signaling.open(me, other, t, p.keepalive_interval_s, p.keepalive_bytes)
            self._signaling.open(other, me, t, p.keepalive_interval_s, p.keepalive_bytes)
        for g in removed:
            other = int(self._ip[g])
            self._signaling.close(me, other, t)
            self._signaling.close(other, me, t)
        probe.set_partners(new_partners)
        self._queue.schedule(t + p.partner_refresh_s, self._on_partner_refresh, probe)

    # ------------------------------------------------------------- streaming
    def _provider_has(self, g: int, chunk: int, t: float) -> bool:
        """Whether peer ``g`` can serve ``chunk`` at ``t`` (ground truth for
        probes, the availability oracle for remotes)."""
        if g >= self.n_remote:
            return self._probes[g - self.n_remote].buffer.has(chunk)
        return self.availability.has_chunk(g, chunk, t)

    def _partner_context(self, pi: int, partners: np.ndarray) -> tuple:
        """Split a partner array into oracle inputs, memoised per set.

        Partner sets only change at refresh/churn boundaries, so the
        remote/probe split, the fancy-indexed diffusion arrays, and the
        per-column scan plan are reused across the many ticks in between.
        The plan entry for column ``j`` is ``(gidx, remote_index, chunks)``
        where ``chunks`` is the live buffer set for probe partners (None
        for remotes, whose availability comes from the oracle row).  The
        last slot maps a partner gidx to its provider score — the full
        precomputed row when eager, a subset-scored dict when lazy
        (identical doubles; see ``_build_protocol_state``).
        """
        key = partners.tobytes()
        store = self._partner_ctx[pi]
        ctx = store.get(key)
        if ctx is not None:
            thr_cache = ctx[4]
            if len(thr_cache) > _THR_CACHE_MAX:
                # Age out the oldest (lowest-id) half: the tick scan only
                # consults chunks near the live edge, so low ids are dead
                # weight.  Entries are a pure function of (chunk, ctx) and
                # are recomputed bit-identically on miss, so pruning cannot
                # perturb the trace — it only bounds long-run memory.
                for c in sorted(thr_cache)[: len(thr_cache) // 2]:
                    del thr_cache[c]
            return ctx
        is_remote = partners < self.n_remote
        delays_arr, ready_arr = self.availability.subset(partners[is_remote])
        # Plain float lists: the tick loop derives per-chunk arrival
        # thresholds from these with scalar arithmetic (same IEEE adds
        # and compares as the vectorised subset_thresholds).
        delays = delays_arr.tolist()
        ready = ready_arr.tolist()
        plan = []
        probe_plan = []
        k = 0
        for g in partners.tolist():
            if g < self.n_remote:
                plan.append((g, k, None))
                k += 1
            else:
                chunks = self._probes[g - self.n_remote].buffer.chunk_set
                probe_plan.append((len(plan), g, chunks))
                plan.append((g, -1, chunks))
        if self._lazy:
            sarr = self._provider_policy.scores(
                self._features(self.n_remote + pi, partners)
            )
            score_of: "dict | list | np.ndarray" = dict(
                zip(partners.tolist(), sarr.tolist())
            )
        else:
            score_of = self._provider_scores_list[pi]
        # Fifth slot: per-chunk availability-threshold memo (see
        # _on_tick); ``probe_plan`` mirrors the probe-partner columns
        # in ascending column order for the no-remote-holder fast path.
        ctx = (k > 0, delays, ready, plan, {}, probe_plan, score_of)
        if len(store) >= _PARTNER_CTX_MAX:
            # Oldest partner set first (insertion order): sets displaced
            # by churn/refresh rarely return, and when one does the ctx is
            # rebuilt bit-identically from the same static inputs.
            store.pop(next(iter(store)))
        store[key] = ctx
        return ctx

    def _tick_probe(self, probe: _ProbeState, t: float) -> None:
        """One probe's tick body (scan → prune → schedule requests).

        Shared by the staggered per-probe tick event and the cohort tick;
        rescheduling stays with the callers.
        """
        # One combined buffer pass drives eviction, the missing scan and
        # (below) in-flight pruning from the same window arithmetic.  The
        # scan limit is policy-dependent: mesh-pull takes the newest
        # ``max_probe_attempts`` holes, ordering policies (rarest, EDF)
        # need the whole window and budget their attempts themselves.
        floor, lookahead = probe.buffer.tick_scan(
            t, self._live_lag, probe.inflight, self._scan_limit
        )
        # Prune in-flight requests that slid out of the window (rebuild
        # only when something actually fell below the floor; pruned ids
        # are < floor, which the missing scan excluded by range already).
        if probe.inflight and min(probe.inflight) < floor:
            probe.inflight = {c for c in probe.inflight if c >= floor}
        if lookahead and probe.partners:
            online = self._online_mask(t)
            partners = probe.online_partners(online, self._mask_key)
            slots = self._max_parallel - len(probe.inflight)
            if slots > 0 and len(partners):
                self._sched_requests(probe, t, lookahead, partners, slots)

    def _on_tick(self, probe: _ProbeState) -> None:
        t = self._queue.now
        self._tick_probe(probe, t)
        self._queue.schedule(t + self._tick_interval, self._cb_tick, probe)

    def _on_tick_cohort(self) -> None:
        """Tick every probe in one event, ascending probe order.

        Selected by ``profile.tick_cohort``: protocol decisions and RNG
        draws are the ones the staggered path would make at the same
        timestamps — probes do not mutate each other's buffers within a
        tick — but the SoA engine overrides this hook to batch the
        per-probe kernels into single multi-probe array passes.
        """
        t = self._queue.now
        for probe in self._probes:
            self._tick_probe(probe, t)
        self._queue.schedule(t + self._tick_interval, self._cb_tick_cohort)

    def _request_chunk(self, probe: _ProbeState, provider: int, chunk: int, t: float) -> bool:
        """Issue a chunk request; returns True when a transfer was queued.

        Recording and latency lookups are inlined (same rows, same tuples
        as :meth:`_record` / :meth:`_latency`): this runs once per request
        attempt and the call overhead is measurable at that rate.
        """
        pg = probe.gidx
        lat = probe.lat_row[provider]
        ul = self._up_list
        dl = self._down_list
        ipl = self._ip_list
        rng = self._rng_engine
        up = ul[pg]
        dn = dl[provider]
        self._rec_append(
            (t, ipl[pg], ipl[provider], REQUEST_BYTES, _KIND_CONTROL, up if up < dn else dn)
        )
        if self._loss_schedule is not None:
            loss_prob = self._loss_schedule.prob_at(t)
        else:
            loss_prob = self._loss_prob
        if loss_prob > 0 and rng.random() < loss_prob:
            # The request datagram was lost; nothing comes back and the
            # chunk ages until the next tick retries it.
            return False
        if rng.random() < self._stale_prob:
            # Stale buffer map: the provider no longer has (or never had)
            # the chunk and answers with a short decline.
            up = ul[provider]
            dn = dl[pg]
            self._rec_append(
                (
                    t + 2 * lat,
                    ipl[provider],
                    ipl[pg],
                    REQUEST_BYTES,
                    _KIND_CONTROL,
                    up if up < dn else dn,
                )
            )
            return False
        nbytes = self._chunk_bytes
        # Inlined UplinkScheduler.admit (same floats, same compares).
        t_req = t + lat
        free = self._ul_free
        start = free[provider]
        if start < t_req:
            start = t_req
        if start - t_req > self._ul_max_backlog:
            return False
        free[provider] = start + nbytes * BITS_PER_BYTE / self._ul_bps[provider]
        up = ul[provider]
        dn = dl[pg]
        bn = up if up < dn else dn  # bottleneck_bps, inlined
        arrival = start + nbytes * BITS_PER_BYTE / bn + lat
        self._rec_append((start, ipl[provider], ipl[pg], nbytes, _KIND_VIDEO, bn))
        probe.inflight.add(chunk)
        probe.busy[provider] += 1
        if probe.busy[provider] >= self._cap_out:
            probe.busy_over.add(provider)
        self._queue.schedule(arrival, self._cb_arrival, probe, chunk, provider)
        return True

    def _on_chunk_arrival(self, probe: _ProbeState, chunk: int, provider: int) -> None:
        probe.inflight.discard(chunk)
        probe.buffer.add(chunk)
        if probe.busy[provider] > 0:
            probe.busy[provider] -= 1
            if probe.busy[provider] < self._cap_out:
                probe.busy_over.discard(provider)
        if self._sched_push:
            # Push-based policies forward the chunk onwards from here.
            self._scheduler.on_chunk_received(probe, chunk, provider, self._queue.now)

    # ------------------------------------------------------ remote demand
    def _demand_target(self, probe_gidx: int) -> float:
        base = self.profile.remote_demand
        return base if self._highbw[probe_gidx] else base * LOWBW_DEMAND_FACTOR

    def _on_demand_rebalance(self) -> None:
        """Re-sample which remotes download from which probes.

        Runs every ``demand_rebalance_s``: each probe attracts a
        Poisson-distributed number of remote downloaders, sampled with the
        profile's remote-side awareness weights (this is the ground-truth
        mechanism behind the paper's *upload*-direction metrics).
        """
        t = self._queue.now
        rng = self._rng_engine
        online = self._online_mask(t)
        remotes = np.flatnonzero(online[: self.n_remote])
        self._attached.clear()
        if len(remotes):
            for probe in self._probes:
                target = self._demand_target(probe.gidx)
                if self._firewalled[probe.gidx]:
                    # Firewalled probes drop most unsolicited inbound
                    # sessions; only the surviving fraction attaches.
                    target *= 1.0 - self.config.firewall_attach_drop_prob
                k = min(int(rng.poisson(target)), len(remotes))
                if k == 0:
                    continue
                pi = probe.gidx - self.n_remote
                row = (
                    self._remote_rows.row(pi)
                    if self._lazy
                    else self._remote_scores[pi]
                )
                picked = self._remote_policy.choose_scored(row[remotes], k)
                window_end = min(t + self.config.demand_rebalance_s, self.config.duration_s)
                for i in picked:
                    r = int(remotes[i])
                    self._attached.add((r, probe.gidx))
                    probe.add_known(r)
                    self._record(t, r, probe.gidx, self.profile.handshake_bytes, PacketKind.SIGNALING)
                    self._schedule_pulls(r, probe, t, window_end)
        self._queue.schedule(
            t + self.config.demand_rebalance_s, self._on_demand_rebalance
        )

    def _schedule_pulls(self, remote: int, probe: _ProbeState, t0: float, t1: float) -> None:
        """Draw the remote's pull times for one rebalance window, batched.

        The RNG draws (Poisson count, sorted uniform times) are identical
        to the per-pull scheme this replaced.  Instead of pushing one
        queue event per pull, the whole window becomes *one* chained
        array-walking event per (remote, probe) pair: each dispatch
        serves pull ``i`` and schedules pull ``i + 1``, so the pending
        event count per window drops from ~rate × window to one per
        attached pair while the dispatch times — and hence all transport
        interleavings — stay exactly the per-pull floats.

        The remote's *want* (its newest missing chunk, eq. to
        :meth:`RemoteAvailability.newest_missing`) is a pure function of
        the pull time, so the whole window's wants are precomputed here
        as one vectorised arrival-time pass — same truncating divisions,
        same IEEE doubles as the scalar per-event computation.
        """
        rng = self._rng_engine
        rate = self.profile.remote_pull_rate
        if rate <= 0:
            return
        n = rng.poisson(rate * (t1 - t0))
        if n == 0:
            return
        times = np.sort(rng.uniform(t0, t1, size=n))
        delay, ready = self.availability.scalar_view(remote)
        ci = self.availability.chunk_interval
        live = (times / ci).astype(np.int64)
        have_up_to = (np.maximum(0.0, times - delay) / ci).astype(np.int64)
        newest_missing = have_up_to + 1
        wants = np.where(
            times < ready,
            live,
            np.where(newest_missing <= live, newest_missing, -1),
        )
        self._queue.schedule(
            float(times[0]),
            self._cb_pull,
            remote,
            probe,
            delay,
            ready,
            times.tolist(),
            wants.tolist(),
            0,
        )

    def _on_remote_pull(
        self,
        remote: int,
        probe: _ProbeState,
        delay: float,
        ready: float,
        times: list[float],
        wants: list[int],
        i: int,
    ) -> None:
        """Serve pull ``i`` of the window, then chain-schedule pull ``i+1``.

        ``delay``/``ready`` are the remote's (static) availability scalars,
        resolved once per window in :meth:`_schedule_pulls` and carried in
        the chain arguments.  The newest-serveable scan — the newest of
        the ≤ 6 chunks below ``want`` that the probe holds and the remote
        still lacks — is inlined here with the oracle's exact arithmetic
        (``max(gen + delay, ready) > t`` or aged past retention).
        """
        t = times[i]
        pg = probe.gidx
        if (remote, pg) in self._attached and t < self._leave_list[remote]:
            ul = self._up_list
            dl = self._down_list
            ipl = self._ip_list
            up = ul[remote]
            dn = dl[pg]
            self._rec_append(
                (t, ipl[remote], ipl[pg], REQUEST_BYTES, _KIND_CONTROL, up if up < dn else dn)
            )
            want = wants[i]
            if want >= 0:
                held = probe.chunks
                ci = self._av_chunk_interval
                ret = self._av_retention
                lo = want - 6
                if lo < 0:
                    lo = 0
                chunk = want
                while chunk >= lo:
                    if chunk in held:
                        gen = chunk * ci
                        arrival = gen + delay
                        if ready > arrival:
                            arrival = ready
                        if t < arrival or t >= gen + ret:
                            # The remote lacks it → serve this chunk.
                            nbytes = self._chunk_bytes
                            lat = probe.lat_row[remote]
                            # Inlined UplinkScheduler.admit.
                            t_req = t + lat
                            free = self._ul_free
                            start = free[pg]
                            if start < t_req:
                                start = t_req
                            if start - t_req <= self._ul_max_backlog:
                                free[pg] = (
                                    start + nbytes * BITS_PER_BYTE / self._ul_bps[pg]
                                )
                                up = ul[pg]
                                dn = dl[remote]
                                self._rec_append(
                                    (
                                        start,
                                        ipl[pg],
                                        ipl[remote],
                                        nbytes,
                                        _KIND_VIDEO,
                                        up if up < dn else dn,
                                    )
                                )
                            break
                    chunk -= 1
        i += 1
        if i < len(times):
            self._queue.schedule(
                times[i], self._cb_pull, remote, probe, delay, ready, times, wants, i
            )

    # ------------------------------------------------------------------- run
    def run(self) -> SimulationResult:
        """Execute the experiment and return the raw result bundle."""
        t_stagger = self.profile.tick_interval_s / max(1, self.n_probe)
        cohort = self.profile.tick_cohort
        for i, probe in enumerate(self._probes):
            found = self._tracker_sample(probe, self.profile.tracker_initial, 0.0)
            for g in found.tolist():
                probe.add_known(g)
            hs = self.profile.handshake_bytes
            for cand in found:
                self._record(0.0, probe.gidx, int(cand), hs, PacketKind.SIGNALING)
                self._record(0.0, int(cand), probe.gidx, hs, PacketKind.SIGNALING)
            self._queue.schedule(i * t_stagger, self._on_partner_refresh, probe)
            if not cohort:
                self._queue.schedule(0.05 + i * t_stagger, self._on_tick, probe)
            self._queue.schedule(
                0.5 + i * t_stagger * 10, self._on_discovery, probe
            )
        if cohort:
            # All probes tick in one event (ascending probe order) so the
            # SoA kernels can batch across the cohort.
            self._queue.schedule(0.05, self._on_tick_cohort)
        self._queue.schedule(0.0, self._on_demand_rebalance)

        events = self._queue.run_until(self.config.duration_s)
        transfers = self._recorder.finalize()
        signaling = self._signaling.finalize(self.config.duration_s)

        hosts = HostTable.from_columns(
            ip=self._ip,
            asn=self._asn,
            cc=np.array([self._cc_labels[c] for c in self._cc], dtype="U2"),
            subnet=self._subnet,
            up_bps=self._up,
            down_bps=self._down,
            is_probe=self._is_probe,
            highbw=self._highbw,
            initial_ttl=self._initial_ttl,
            access_depth=self._access_depth,
        )
        # Event-loop statistics: vectorised accounting over the finished
        # log, so the hot path pays nothing and determinism is untouched.
        video = transfers["kind"] == int(PacketKind.VIDEO)
        # Per-kind scheduler accounting, keyed by handler name with the
        # ``_on_`` prefix stripped (tick, remote_pull, chunk_arrival, …).
        dispatch_by_kind = {
            name.removeprefix("_on_"): count
            for name, count in sorted(self._queue.dispatched_by_kind.items())
        }
        schedule_by_kind = {
            name.removeprefix("_on_"): count
            for name, count in sorted(self._queue.scheduled_by_kind.items())
        }
        stats = {
            "events": int(events),
            "events_scheduled": int(sum(schedule_by_kind.values())),
            "dispatch_by_kind": dispatch_by_kind,
            "schedule_by_kind": schedule_by_kind,
            "peak_queue_depth": int(self._queue.peak_depth),
            "transfer_records": int(len(transfers)),
            "signaling_intervals": int(len(signaling)),
            "bytes_recorded": int(transfers["bytes"].sum()),
            "video_records": int(video.sum()),
            "video_bytes": int(transfers["bytes"][video].sum()),
            "remote_peers": int(self.n_remote),
            "probes": int(self.n_probe),
            "peer_state": "lazy" if self._lazy else "eager",
        }
        if self._lazy:
            # Residency accounting for the lazy materialisation layer —
            # counts, not floats, and identical across engine cores for a
            # fixed seed (the touch sequence is part of the byte-identity
            # contract).
            stats["lazy"] = {
                "score_rows_cached": int(len(self._remote_rows)),
                "score_row_hits": int(self._remote_rows.hits),
                "score_row_misses": int(self._remote_rows.misses),
                "score_row_evictions": int(self._remote_rows.evictions),
                "max_touched_busy": max(
                    (len(p.busy) for p in self._probes), default=0
                ),
                "max_touched_lat": max(
                    (len(r) for r in self._lat_rows), default=0
                ),
            }
        _log.info(
            "run-complete",
            profile=self.profile.name,
            duration_s=self.config.duration_s,
            seed=self.config.seed,
            **stats,
        )
        return SimulationResult(
            transfers=transfers,
            signaling=signaling,
            hosts=hosts,
            testbed=self.testbed,
            world=self.world,
            profile=self.profile,
            config=self.config,
            events_processed=events,
            extras={"engine_stats": stats, "engine_mode": self.mode},
        )


def simulate(
    profile: AppProfile,
    *,
    duration_s: float = 600.0,
    seed: int = 7,
    world: World | None = None,
    testbed: Testbed | None = None,
    demographics: Demographics | None = None,
    engine_config: EngineConfig | None = None,
    engine: str | None = None,
) -> SimulationResult:
    """Run one complete experiment for ``profile`` — the main entry point.

    Builds (or reuses) the synthetic Internet and Table I testbed,
    generates the profile's audience, runs the engine, and returns the raw
    result.  The audience honours the profile's ``eu_audience_boost`` and
    ``probe_as_fraction`` (channel-popularity effects).

    ``engine`` selects the engine core (``"object"`` or ``"soa"`` — see
    :mod:`repro.streaming.soa`); ``None`` defers to ``REPRO_ENGINE`` and
    then the object default.  Both cores are byte-identical for a fixed
    seed; the SoA core scans all probes with shared-array kernels.
    """
    config = engine_config or EngineConfig(duration_s=duration_s, seed=seed)
    if world is None:
        world = World()
    if testbed is None:
        testbed = build_napa_wine_testbed(world)
    if demographics is None:
        audience = (
            crossswarm_audience if profile.audience == "crossswarm" else cctv1_audience
        )
        base = audience(probe_as_fraction=profile.probe_as_fraction)
        if profile.eu_audience_boost != 1.0:
            weights = dict(base.country_weights)
            for cc in ("IT", "FR", "HU", "PL"):
                weights[cc] = weights.get(cc, 1.0) * profile.eu_audience_boost
            demographics = Demographics(
                country_weights=weights,
                highbw_fraction=base.highbw_fraction,
                default_highbw=base.default_highbw,
                probe_as_fraction=profile.probe_as_fraction,
            )
        else:
            demographics = base
    rngs = RngBundle(config.seed)
    if profile.swarm == "sparse":
        population: "list[RemotePeer] | SparseSwarm" = generate_sparse_swarm(
            world,
            SparseSwarmConfig(size=profile.swarm_size, demographics=demographics),
            rngs["population"],
        )
    else:
        population = generate_population(
            world,
            PopulationConfig(size=profile.swarm_size, demographics=demographics),
            rngs["population"],
        )
    # Late import: repro.streaming.soa imports this module (Engine is its
    # base class), so the registry cannot be bound at import time.
    from repro.streaming.soa import get_engine

    cls = get_engine(engine)
    return cls(world, testbed, profile, population, config).run()
