"""Pluggable chunk-scheduling policies (the ROADMAP's scheduler diversity).

The engine's per-tick chunk-selection decision — *which missing chunks to
request, in what order, from whom* — is a strategy object, so the same
transport, availability oracle and awareness-weighted provider choice can
run under different scheduling disciplines:

* ``mesh-pull`` — the original newest-first pull core (default).  Moved
  here verbatim from :meth:`Engine._on_tick`; the golden trace hashes pin
  it byte-identical to the pre-refactor engine.
* ``rarest``   — rarest-first pull with buffer-map exchange, after the
  p2pstream ``peer_dbs_rarest`` design: missing chunks are requested in
  ascending advertised-availability order, ties broken by chunk id.
* ``edf``      — deadline-driven (earliest-deadline-first) pull, after
  ``peer_dbs_edf``: chunks are requested in playout-deadline order and
  never once their deadline has passed.
* ``push``     — push-based epidemic diffusion after Mathieu & Perino:
  probes seed infection with a couple of live-edge pulls, then forward
  every received chunk to a fanout of partner probes that lack it.

Every policy draws only from the engine's named RNG streams, so a run
remains a pure function of ``(world seed, profile, engine seed)`` under
any scheduler — the per-policy golden hashes in
``tests/golden/scheduler_trace_hashes.json`` pin that down.
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError
from repro.streaming.schedulers.base import ChunkScheduler
from repro.streaming.schedulers.edf import EdfScheduler
from repro.streaming.schedulers.epidemic import PushEpidemicScheduler
from repro.streaming.schedulers.mesh_pull import MeshPullScheduler
from repro.streaming.schedulers.rarest import RarestFirstScheduler

#: Name → scheduler class for every built-in policy.
SCHEDULERS: dict[str, type[ChunkScheduler]] = {
    cls.name: cls
    for cls in (
        MeshPullScheduler,
        RarestFirstScheduler,
        EdfScheduler,
        PushEpidemicScheduler,
    )
}

#: Valid policy names, sorted (CLI choices, error messages).
SCHEDULER_NAMES: tuple[str, ...] = tuple(sorted(SCHEDULERS))

#: The policy every profile uses unless told otherwise.
DEFAULT_SCHEDULER = MeshPullScheduler.name

#: Environment override consumed by :class:`CampaignConfig` — lets CI run
#: whole campaign suites under an alternative policy without code changes.
ENV_SCHEDULER = "REPRO_SCHEDULER"


def get_scheduler(name: str) -> type[ChunkScheduler]:
    """Resolve a policy name to its scheduler class.

    Raises :class:`~repro.errors.ConfigurationError` naming the valid
    choices for anything unknown — config and CLI validation both route
    through here so the error reads the same everywhere.
    """
    try:
        return SCHEDULERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown chunk scheduler {name!r}; valid choices: {list(SCHEDULER_NAMES)}"
        ) from None


def default_scheduler() -> str:
    """The ambient default policy (``REPRO_SCHEDULER`` env, else mesh-pull)."""
    return os.environ.get(ENV_SCHEDULER, DEFAULT_SCHEDULER)


__all__ = [
    "ChunkScheduler",
    "DEFAULT_SCHEDULER",
    "ENV_SCHEDULER",
    "EdfScheduler",
    "MeshPullScheduler",
    "PushEpidemicScheduler",
    "RarestFirstScheduler",
    "SCHEDULERS",
    "SCHEDULER_NAMES",
    "default_scheduler",
    "get_scheduler",
]
