"""The chunk-scheduler strategy interface.

A :class:`ChunkScheduler` owns the per-tick request decision of one
engine run: given a probe's missing chunks (newest first) and its online
partners, it decides which chunks to request, in what order, from which
holders.  Everything else — buffer bookkeeping, uplink queuing, transfer
recording, the availability oracle — stays in the engine and is shared by
every policy.

Determinism contract
--------------------
Policies may draw randomness **only** from the engine's named RNG streams
(``engine._rng_engine`` for protocol jitter, ``engine._rng_sel`` through
the selection-policy CDFs for provider choice).  Candidate orderings must
be pure functions of visible protocol state with deterministic
tie-breaking, so a run is a pure function of ``(world seed, profile,
engine seed)`` under any policy.  The per-policy golden hashes enforce
this; see ``docs/schedulers.md`` for the rules a new policy must follow.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np


class ChunkScheduler:
    """Base strategy: subclasses implement :meth:`schedule_requests`."""

    #: Registry key (also the CLI / profile / campaign-config spelling).
    name = "abstract"

    #: True when the per-tick hole scan should stop after the engine's
    #: ``max_probe_attempts`` newest holes (the mesh-pull behaviour).
    #: Ordering policies that re-sort candidates (rarest, EDF) need the
    #: whole window and cap their *attempts* instead.
    truncate_scan = True

    #: True when the policy reacts to chunk arrivals (push diffusion);
    #: the engine only invokes :meth:`on_chunk_received` when set.
    pushes = False

    def bind(self, engine) -> None:
        """Attach to one engine run (called once, before any event)."""
        self._engine = engine

    # ------------------------------------------------------------- hooks
    def schedule_requests(self, probe, t: float, lookahead, partners, slots: int) -> None:
        """Issue up to ``slots`` chunk requests for one probe tick.

        ``lookahead`` is the probe's missing-chunk list, newest first;
        ``partners`` the online partner array.  Implementations call
        ``engine._request_chunk`` per decision.
        """
        raise NotImplementedError

    def on_chunk_received(self, probe, chunk: int, provider: int, t: float) -> None:
        """Arrival hook (only called when :attr:`pushes` is True)."""

    def schedule_requests_soa(self, probe, t: float, lookahead, partners, slots: int) -> None:
        """Per-tick entry point under the struct-of-arrays engine core.

        Default: run the object-path decision procedure — the SoA probe's
        compatibility views (``chunks``/``inflight``/``buffer``) make it
        correct for any policy, just without the array speedup.  The
        built-in policies override this with vectorised kernels that read
        the shared bitmaps directly; overrides must obey the same
        determinism contract (RNG draw points, ascending-column holder
        order) so both engine cores stay byte-identical.
        """
        self.schedule_requests(probe, t, lookahead, partners, slots)

    # ----------------------------------------------------------- helpers
    def _advertised(self, probe, t: float, chunk: int, ctx) -> list[int]:
        """Partners advertising ``chunk`` at ``t`` (buffer-map ground truth).

        Uses the engine's cached partner context: remote partners through
        the per-chunk diffusion thresholds, probe partners through their
        live buffer sets.  The scan preserves ascending column order, so
        the advertiser list is deterministic for a given partner set.
        """
        has_remotes, delays, ready, plan, thr_cache, _probe_plan, _score_of = ctx
        eng = self._engine
        thr_list = None
        if has_remotes:
            ent = thr_cache.get(chunk)
            if ent is None:
                ci = eng._av_chunk_interval
                gen = chunk * ci
                thr_list = [
                    r if r > (m := gen + d) else m for d, r in zip(delays, ready)
                ]
                ent = (thr_list, min(thr_list), gen + eng._av_retention)
                thr_cache[chunk] = ent
            thr_list, _min_thr, fresh_until = ent
            if t >= fresh_until:
                thr_list = None  # aged out of every remote retention window
        advertisers: list[int] = []
        for g, k, chunks in plan:
            if chunks is None:
                if thr_list is not None and t >= thr_list[k]:
                    advertisers.append(g)
            elif chunk in chunks:
                advertisers.append(g)
        return advertisers

    def _pick_holder(self, probe, holders: list[int], score_of=None) -> int:
        """Awareness-weighted provider choice over ``holders``.

        The exact decision procedure of the mesh-pull core: with the
        profile's ``explore_prob`` pick uniformly (one engine-stream
        draw), otherwise invert the memoised softmax CDF of the holders'
        awareness scores with one selection-stream uniform.  ``score_of``
        maps a holder gidx to its provider score — the partner context
        carries it (full precomputed row when eager, subset-scored dict
        when lazy, identical doubles); ``None`` falls back to the eager
        engine-wide rows.
        """
        eng = self._engine
        rng = eng._rng_engine
        if rng.random() < eng._explore_prob:
            return int(rng.integers(len(holders)))
        if score_of is None:
            score_of = eng._provider_scores_list[probe.gidx - eng.n_remote]
        key = tuple([score_of[g] for g in holders])
        cdf = eng._cdf_cache.get(key)
        if cdf is None:
            cdf = eng._provider_policy.cdf_from_scores(
                np.array(key, dtype=np.float64)
            ).tolist()
            if len(eng._cdf_cache) >= eng._cdf_cache_max:
                # Pure memo past its entry budget: drop it wholesale and
                # warm back up (bit-identical recomputes, memory-only).
                eng._cdf_cache.clear()
            eng._cdf_cache[key] = cdf
        return bisect_right(cdf, eng._rng_sel.random())
