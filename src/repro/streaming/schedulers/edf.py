"""Deadline-driven (earliest-deadline-first) chunk scheduling.

After the p2pstream ``peer_dbs_edf`` design: every missing chunk has a
playout deadline — the moment it slides out of the playout buffer and is
lost to the viewer — and the scheduler requests the chunk whose deadline
expires soonest, instead of the newest one.  A chunk whose deadline has
already passed is *never* requested: the bytes could not arrive in time
to be played, so spending a request slot on it only steals uplink from
chunks that can still make it.

Deadline model: chunk ``c`` is generated at ``c · Δ`` (the chunk-clock
interval) and leaves a ``W``-chunk playout window when the live edge
reaches ``c + W``, i.e. ``deadline(c) = (c + W) · Δ``.  Deadlines are
strictly increasing in the chunk id, so EDF order over a hole set is
simply ascending chunk id — which also makes the within-tick request
sequence monotone in deadline, the invariant the differential suite
checks.
"""

from __future__ import annotations

import numpy as np

from repro.streaming.schedulers.base import ChunkScheduler


def playout_deadline(chunk: int, interval: float, window_chunks: int) -> float:
    """When ``chunk`` slides out of a ``window_chunks``-wide buffer."""
    return (chunk + window_chunks) * interval


class EdfScheduler(ChunkScheduler):
    """Earliest-playout-deadline-first request order."""

    name = "edf"
    #: EDF wants the oldest (most urgent) holes, which a newest-first
    #: truncated scan would drop — take the whole window.
    truncate_scan = False

    @staticmethod
    def order_candidates(
        holes: list[int], now: float, interval: float, window_chunks: int
    ) -> list[int]:
        """Request order: ascending deadline, expired chunks excluded.

        Pure function of its inputs (no RNG, no engine state); the
        property suite pins the subset, ordering and never-past-deadline
        laws directly against this.
        """
        live = sorted(
            c for c in holes if playout_deadline(c, interval, window_chunks) > now
        )
        return live

    def schedule_requests(self, probe, t, lookahead, partners, slots) -> None:
        eng = self._engine
        ctx = eng._partner_context(probe.gidx - eng.n_remote, partners)
        busy = probe.busy
        cap = eng._cap_out
        interval = eng._av_chunk_interval
        window_chunks = probe.buffer.window_chunks
        attempts = 0
        max_attempts = eng._max_attempts
        for chunk in self.order_candidates(lookahead, t, interval, window_chunks):
            if slots <= 0 or attempts >= max_attempts:
                break
            attempts += 1
            holders = [
                g for g in self._advertised(probe, t, chunk, ctx) if busy[g] < cap
            ]
            if not holders:
                continue
            pick = self._pick_holder(probe, holders, ctx[6])
            if eng._request_chunk(probe, holders[pick], chunk, t):
                slots -= 1

    def schedule_requests_soa(self, probe, t, lookahead, partners, slots) -> None:
        """Deadline order against the shared arrays.

        ``(chunk + W) * interval`` over an int64 array is the elementwise
        IEEE twin of the scalar ``playout_deadline``, so the expired-chunk
        filter is exact; deadlines increase strictly with the chunk id, so
        the ascending-id sort *is* the deadline order (unique keys — no
        tie-break ambiguity).  Attempts, busy filtering and the provider
        draw mirror the object loop.
        """
        if not lookahead:
            return
        eng = self._engine
        soa = eng._soa
        window_chunks = soa.window_chunks
        interval = eng._av_chunk_interval
        if lookahead is soa.scan_list:
            chunks_all = soa.scan_arr
        else:
            chunks_all = np.asarray(lookahead, dtype=np.int64)
        sel = ((chunks_all + window_chunks) * interval > t).nonzero()[0]
        if sel.size == 0:
            return
        sel = sel[np.argsort(chunks_all[sel], kind="stable")]
        chunks_arr = chunks_all[sel]
        ctx = eng._soa_partner_ctx(probe.pi, partners)
        # Bounds from the full hole list (newest-first): any superset of
        # the filtered subset's range steers coverage correctly.
        A = eng._soa_availability(
            ctx, chunks_arr, t, cmin=lookahead[-1], cmax=lookahead[0]
        )
        # Flat advertised-pair walk over the plan-order permutation (see
        # the mesh-pull kernel); rows come back in ascending row order,
        # matching the deadline iteration, and holder-less chunks still
        # consume an attempt below.  Holders are C-level slices of the
        # flat partner list minus ``busy_over`` (the at-cap providers) —
        # the same predicate the object loop checks pairwise.
        ri, cj = A[:, ctx["plan_cols"]].nonzero()
        gs_all = ctx["plan_g"][cj].tolist()
        chunks_list = chunks_arr.tolist()
        nrows = len(chunks_list)
        bounds = np.searchsorted(ri, np.arange(nrows + 1)).tolist()
        busy_over = probe.busy_over
        attempts = 0
        max_attempts = eng._max_attempts
        for i in range(nrows):
            if slots <= 0 or attempts >= max_attempts:
                break
            attempts += 1
            s0 = bounds[i]
            s1 = bounds[i + 1]
            if s0 == s1:
                continue
            if busy_over:
                holders = [g for g in gs_all[s0:s1] if g not in busy_over]
            else:
                holders = gs_all[s0:s1]
            if not holders:
                continue
            pick = self._pick_holder(probe, holders, ctx["score_of"])
            if eng._request_chunk(probe, holders[pick], chunks_list[i], t):
                slots -= 1
