"""Rarest-first pull with buffer-map exchange.

After the p2pstream ``peer_dbs_rarest`` design: each peer tracks which
chunks its neighbours advertise (here: the engine's ground-truth partner
context, which *is* the periodically-exchanged buffer map) and requests
the missing chunk with the **lowest advertised availability** first —
spreading rare chunks before they age out instead of chasing the live
edge.  Ties break deterministically by ascending chunk id.

A chunk nobody advertises is never requested (there is no one to serve
it), which is the invariant the differential suite checks: every
delivered chunk was advertised by its provider's buffer map at request
time.
"""

from __future__ import annotations

import numpy as np

from repro.streaming.schedulers.base import ChunkScheduler


class RarestFirstScheduler(ChunkScheduler):
    """Ascending advertised-availability request order."""

    name = "rarest"
    #: Rarity ordering needs the whole window, not just the newest holes.
    truncate_scan = False

    @staticmethod
    def order_candidates(holes: list[int], counts: dict[int, int]) -> list[int]:
        """Request order: rarest first, ties broken by ascending chunk id.

        ``counts`` maps chunk id → number of advertising partners.
        Chunks with no advertiser are dropped (nobody can serve them);
        the sort key ``(count, chunk)`` makes the order a pure function
        of its inputs — the property suite pins both laws.
        """
        return sorted(
            (c for c in holes if counts.get(c, 0) > 0),
            key=lambda c: (counts[c], c),
        )

    def schedule_requests(self, probe, t, lookahead, partners, slots) -> None:
        eng = self._engine
        ctx = eng._partner_context(probe.gidx - eng.n_remote, partners)
        busy = probe.busy
        cap = eng._cap_out
        # Buffer-map pass: advertised availability of every missing chunk.
        advertisers = {c: self._advertised(probe, t, c, ctx) for c in lookahead}
        counts = {c: len(a) for c, a in advertisers.items()}
        attempts = 0
        max_attempts = eng._max_attempts
        for chunk in self.order_candidates(lookahead, counts):
            if slots <= 0 or attempts >= max_attempts:
                break
            attempts += 1
            holders = [g for g in advertisers[chunk] if busy[g] < cap]
            if not holders:
                continue  # every advertiser is pipeline-capped this tick
            pick = self._pick_holder(probe, holders, ctx[6])
            if eng._request_chunk(probe, holders[pick], chunk, t):
                slots -= 1

    def schedule_requests_soa(self, probe, t, lookahead, partners, slots) -> None:
        """Rarest-first against the shared arrays.

        The buffer-map pass becomes one availability-matrix build; the
        advertiser counts are its row sums, and the ``(count, chunk)``
        rarity order is a lexsort over them — the same unique sort keys as
        ``order_candidates``, so the same order.  Attempt accounting and
        the per-turn busy filter match the object loop exactly (advertiser
        counts ignore pipelining caps; the caps apply when a chunk's turn
        comes, against the busy state *at that moment*).
        """
        if not lookahead:
            return
        eng = self._engine
        soa = eng._soa
        ctx = eng._soa_partner_ctx(probe.pi, partners)
        if lookahead is soa.scan_list:
            chunks_arr = soa.scan_arr
        else:
            chunks_arr = np.asarray(lookahead, dtype=np.int64)
        A = eng._soa_availability(
            ctx, chunks_arr, t, cmin=lookahead[-1], cmax=lookahead[0]
        )
        # One flat nonzero over the plan-order column permutation yields
        # both the advertiser counts (bincount over the row ids — the
        # same integers ``A.sum(axis=1)`` gives) and the advertised
        # pairs; grouping the pairs by row keeps each chunk's advertisers
        # in the plan order the object scan produced, without walking
        # silent columns.
        ri, cj = A[:, ctx["plan_cols"]].nonzero()
        if ri.size == 0:
            return
        counts = np.bincount(ri, minlength=A.shape[0])
        sel = (counts > 0).nonzero()[0]
        order = sel[np.lexsort((chunks_arr[sel], counts[sel]))]
        gs_all = ctx["plan_g"][cj].tolist()
        bounds = np.searchsorted(ri, np.arange(A.shape[0] + 1)).tolist()
        busy_over = probe.busy_over
        chunks_list = chunks_arr.tolist()
        attempts = 0
        max_attempts = eng._max_attempts
        for i in order.tolist():
            if slots <= 0 or attempts >= max_attempts:
                break
            attempts += 1
            s0 = bounds[i]
            s1 = bounds[i + 1]
            if busy_over:
                holders = [g for g in gs_all[s0:s1] if g not in busy_over]
            else:
                holders = gs_all[s0:s1]
            if not holders:
                continue  # every advertiser is pipeline-capped this tick
            pick = self._pick_holder(probe, holders, ctx["score_of"])
            if eng._request_chunk(probe, holders[pick], chunks_list[i], t):
                slots -= 1
