"""Rarest-first pull with buffer-map exchange.

After the p2pstream ``peer_dbs_rarest`` design: each peer tracks which
chunks its neighbours advertise (here: the engine's ground-truth partner
context, which *is* the periodically-exchanged buffer map) and requests
the missing chunk with the **lowest advertised availability** first —
spreading rare chunks before they age out instead of chasing the live
edge.  Ties break deterministically by ascending chunk id.

A chunk nobody advertises is never requested (there is no one to serve
it), which is the invariant the differential suite checks: every
delivered chunk was advertised by its provider's buffer map at request
time.
"""

from __future__ import annotations

from repro.streaming.schedulers.base import ChunkScheduler


class RarestFirstScheduler(ChunkScheduler):
    """Ascending advertised-availability request order."""

    name = "rarest"
    #: Rarity ordering needs the whole window, not just the newest holes.
    truncate_scan = False

    @staticmethod
    def order_candidates(holes: list[int], counts: dict[int, int]) -> list[int]:
        """Request order: rarest first, ties broken by ascending chunk id.

        ``counts`` maps chunk id → number of advertising partners.
        Chunks with no advertiser are dropped (nobody can serve them);
        the sort key ``(count, chunk)`` makes the order a pure function
        of its inputs — the property suite pins both laws.
        """
        return sorted(
            (c for c in holes if counts.get(c, 0) > 0),
            key=lambda c: (counts[c], c),
        )

    def schedule_requests(self, probe, t, lookahead, partners, slots) -> None:
        eng = self._engine
        ctx = eng._partner_context(probe.gidx - eng.n_remote, partners)
        busy = probe.busy
        cap = eng._cap_out
        # Buffer-map pass: advertised availability of every missing chunk.
        advertisers = {c: self._advertised(probe, t, c, ctx) for c in lookahead}
        counts = {c: len(a) for c, a in advertisers.items()}
        attempts = 0
        max_attempts = eng._max_attempts
        for chunk in self.order_candidates(lookahead, counts):
            if slots <= 0 or attempts >= max_attempts:
                break
            attempts += 1
            holders = [g for g in advertisers[chunk] if busy[g] < cap]
            if not holders:
                continue  # every advertiser is pipeline-capped this tick
            pick = self._pick_holder(probe, holders)
            if eng._request_chunk(probe, holders[pick], chunk, t):
                slots -= 1
