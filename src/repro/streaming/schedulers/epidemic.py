"""Push-based epidemic chunk diffusion.

After Mathieu & Perino's resource-aware epidemic streaming: chunks spread
like an infection.  A probe *seeds* itself with a small number of pull
requests at the live edge (the injection from the remote swarm — remotes
are modelled statistically and cannot initiate pushes), and every chunk a
probe receives is immediately **forwarded** to a fanout of partner probes
that do not yet hold it.  Diffusion among the full-protocol peers is
therefore provider-initiated: the upload schedule of a chunk is decided
by whoever currently holds it, not by per-chunk polling.

Duplicate suppression is the push analogue of the pull core's in-flight
set: a chunk is pushed to a target only while the target neither holds it
nor has it in flight, and the push marks it in flight — so the
no-duplicate-in-flight invariant holds under push exactly as under pull.

Fanout targets are chosen with the pusher's *partner* awareness weights
(the same ground-truth bias the analysis must recover), drawn from the
engine's selection stream, so the policy stays a pure function of the
run seeds.
"""

from __future__ import annotations

import numpy as np

from repro.streaming.schedulers.mesh_pull import MeshPullScheduler
from repro.trace.records import PacketKind
from repro.units import BITS_PER_BYTE

_KIND_VIDEO = int(PacketKind.VIDEO)


class PushEpidemicScheduler(MeshPullScheduler):
    """Live-edge pull seeding + fanout push forwarding."""

    name = "push"
    truncate_scan = True
    pushes = True

    #: Pull requests per tick that seed the infection from the swarm.
    seed_requests = 2
    #: Partner probes each received chunk is forwarded to (at most).
    push_fanout = 3

    @staticmethod
    def order_candidates(holes: list[int], seed_requests: int = 2) -> list[int]:
        """Seed-pull order: the newest few holes only (live-edge injection)."""
        return list(holes)[: max(0, seed_requests)]

    def schedule_requests(self, probe, t, lookahead, partners, slots) -> None:
        # The pull half *is* the mesh-pull core, restricted to a couple of
        # live-edge chunks; everything else arrives by being pushed.
        budget = min(slots, self.seed_requests)
        if budget <= 0:
            return
        super().schedule_requests(
            probe, t, self.order_candidates(lookahead, budget), partners, budget
        )

    def schedule_requests_soa(self, probe, t, lookahead, partners, slots) -> None:
        # Same live-edge budget slice, routed to the mesh-pull array
        # kernel.  The push half (on_chunk_received) runs unchanged under
        # both engine cores: the SoA probe's buffer/in-flight views answer
        # its membership checks and duplicate suppression exactly.
        budget = min(slots, self.seed_requests)
        if budget <= 0:
            return
        super().schedule_requests_soa(
            probe, t, self.order_candidates(lookahead, budget), partners, budget
        )

    def on_chunk_received(self, probe, chunk: int, provider: int, t: float) -> None:
        """Forward a freshly received chunk to partner probes lacking it."""
        eng = self._engine
        nr = eng.n_remote
        probes = eng._probes
        targets: list[int] = []
        for g in probe.partners:
            if g < nr:
                continue  # remote availability is statistical; no push path
            st = probes[g - nr]
            if chunk in st.chunks or chunk in st.inflight:
                continue
            if chunk < st.buffer.window_range(t).start:
                continue  # already past the target's playout window
            targets.append(g)
        if not targets:
            return
        k = min(self.push_fanout, len(targets))
        cands = np.array(targets, dtype=np.int64)
        scores = eng._partner_scores_for(probe, cands)
        picked = eng._partner_policy.choose_scored(scores, k)
        pg = probe.gidx
        nbytes = eng._chunk_bytes
        free = eng._ul_free
        up_bps = eng._ul_bps
        ul = eng._up_list
        dl = eng._down_list
        ipl = eng._ip_list
        for i in picked:
            g = int(cands[i])
            st = probes[g - nr]
            if chunk in st.inflight:
                continue  # a previous fanout pick of this very push
            # Inlined UplinkScheduler.admit on the pusher's uplink.
            start = free[pg]
            if start < t:
                start = t
            if start - t > eng._ul_max_backlog:
                continue
            free[pg] = start + nbytes * BITS_PER_BYTE / up_bps[pg]
            up = ul[pg]
            dn = dl[g]
            bn = up if up < dn else dn
            lat = probe.lat_row[g]
            eng._rec_append((start, ipl[pg], ipl[g], nbytes, _KIND_VIDEO, bn))
            st.inflight.add(chunk)
            st.busy[pg] += 1
            if st.busy[pg] >= eng._cap_out:
                st.busy_over.add(pg)
            eng._queue.schedule(
                start + nbytes * BITS_PER_BYTE / bn + lat, eng._cb_arrival, st, chunk, pg
            )
