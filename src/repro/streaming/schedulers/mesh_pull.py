"""The original mesh-pull chunk-selection core, as a strategy object.

This is the code that used to live inline in ``Engine._on_tick``, moved
verbatim: the same operations in the same order on the same state, so the
RNG draw sequence — and therefore every byte of the trace — is identical
to the pre-refactor engine.  ``tests/golden/engine_trace_hashes.json``
(generated *before* the extraction) pins that equivalence.

Policy: walk the missing chunks newest-first, find the partners that can
serve each (remotes through the cached per-chunk diffusion thresholds,
probe partners through their live buffers), and pick one provider per
chunk with the awareness-weighted softmax (or a uniform exploration draw).
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.streaming.schedulers.base import ChunkScheduler


class MeshPullScheduler(ChunkScheduler):
    """Newest-first mesh-pull selection (the paper's baseline core)."""

    name = "mesh-pull"
    truncate_scan = True

    @staticmethod
    def order_candidates(holes: list[int]) -> list[int]:
        """Request order over a newest-first hole list: unchanged."""
        return list(holes)

    def schedule_requests(self, probe, t, lookahead, partners, slots) -> None:
        eng = self._engine
        pi = probe.gidx - eng.n_remote
        has_remotes, delays, ready, plan, thr_cache, probe_plan, score_row = (
            eng._partner_context(pi, partners)
        )
        # Outstanding-request counts are read straight off probe.busy:
        # _request_chunk increments it for the picked provider, so the
        # counts this tick sees are exactly the snapshot-plus-local-
        # increments the old copied row held.
        busy = probe.busy
        cap = eng._cap_out
        cdf_cache = eng._cdf_cache
        cdf_cache_max = eng._cdf_cache_max
        rng = eng._rng_engine
        sel_rand = eng._rng_sel.random
        explore_prob = eng._explore_prob
        cache_get = thr_cache.get
        ci = eng._av_chunk_interval
        retention = eng._av_retention
        # Per-chunk availability thresholds are chunk constants
        # (``max(gen + delay, ready)`` per remote, the scalar twin
        # of subset_thresholds); the oracle reduces to direct
        # ``t >= threshold`` compares, with a min-threshold /
        # freshness-deadline fast path that skips the whole
        # candidate scan while no remote can possibly serve.
        for chunk in lookahead:
            if slots <= 0:
                break
            remotes_live = False
            if has_remotes:
                ent = cache_get(chunk)
                if ent is None:
                    gen = chunk * ci
                    thr_list = [
                        r if r > (m := gen + d) else m
                        for d, r in zip(delays, ready)
                    ]
                    ent = (thr_list, min(thr_list), gen + retention)
                    thr_cache[chunk] = ent
                thr_list, min_thr, fresh_until = ent
                # min over the thresholds: some remote serves the
                # chunk iff any threshold ≤ t, i.e. the min is.
                remotes_live = min_thr <= t < fresh_until
            holders: list[int] = []
            if not remotes_live:
                # No remote partner has diffused this chunk yet (or
                # it aged out everywhere): only probe partners can
                # hold it.  Scanning just their columns preserves
                # the ascending column order of the full scan.
                if not probe_plan:
                    continue
                for _j, g, chunks in probe_plan:
                    if busy[g] < cap and chunk in chunks:
                        holders.append(g)
            else:
                # Candidate scan in ascending column order — the
                # same holder ordering the vectorised mask produced.
                for g, k, chunks in plan:
                    if busy[g] >= cap:
                        continue
                    if chunks is None:
                        if t < thr_list[k]:
                            continue
                    elif chunk not in chunks:
                        continue
                    holders.append(g)
            if not holders:
                continue
            if rng.random() < explore_prob:
                pick = int(rng.integers(len(holders)))
            else:
                # The selection CDF is a pure function of the
                # holders' score sequence, so it is memoised by
                # score tuple (computed through the exact softmax
                # pipeline on a miss, stored as a float list); the
                # draw itself still happens per decision — one
                # uniform from the selection stream inverted with a
                # right-bisect, exactly sample_index's consumption.
                key = tuple([score_row[g] for g in holders])
                cdf = cdf_cache.get(key)
                if cdf is None:
                    cdf = eng._provider_policy.cdf_from_scores(
                        np.array(key, dtype=np.float64)
                    ).tolist()
                    if len(cdf_cache) >= cdf_cache_max:
                        cdf_cache.clear()
                    cdf_cache[key] = cdf
                pick = bisect_right(cdf, sel_rand())
            if eng._request_chunk(probe, holders[pick], chunk, t):
                slots -= 1

    def schedule_requests_soa(self, probe, t, lookahead, partners, slots) -> None:
        """The same newest-first selection against the shared arrays.

        One availability-matrix build replaces the per-chunk per-partner
        threshold scans (the object path's dominant cost); the decision
        loop then walks precomputed boolean rows.  Holder order stays the
        ascending partner-column order of the object scan, empty candidate
        sets are skipped without touching an RNG, and the provider draw is
        the identical explore/CDF code — byte-identical traces.
        """
        if not lookahead:
            return
        eng = self._engine
        soa = eng._soa
        ctx = eng._soa_partner_ctx(probe.pi, partners)
        # The tick scan's own array is reused when the engine hands its
        # hole list straight through (identity ⇒ same scan, same order);
        # sliced/custom lookaheads (the push seeding path) convert.
        if lookahead is soa.scan_list:
            chunks_arr = soa.scan_arr
        else:
            chunks_arr = np.asarray(lookahead, dtype=np.int64)
        # The hole list is newest-first, so its ends bound the range.
        A = eng._soa_availability(
            ctx, chunks_arr, t, cmin=lookahead[-1], cmax=lookahead[0]
        )
        # Chunks nobody advertises are skipped without a draw in the
        # object loop, and silent columns never become holders — so the
        # decision loop only needs the advertised (chunk, partner) pairs.
        # Permuting A's columns into plan order first makes the flat
        # ``nonzero`` walk visit each row's advertisers in plan order —
        # exactly the object scan's holder order.  Each row's holders are
        # then one C-level slice of the flat partner list: the per-pair
        # busy check reduces to subtracting ``busy_over`` (the providers
        # at the pipelining cap — almost always empty), which is the same
        # predicate ``busy[g] < cap`` evaluates pairwise.
        ri, cj = A[:, ctx["plan_cols"]].nonzero()
        if ri.size == 0:
            return
        gs_arr = ctx["plan_g"][cj]
        gs_all = gs_arr.tolist()
        nrows = A.shape[0]
        bounds = np.searchsorted(ri, np.arange(nrows + 1)).tolist()
        busy_over = probe.busy_over
        # Provider scores in plan-column order (the context carries them:
        # a row gather when eager, subset-scored when lazy — identical
        # doubles, so the bytes-keyed CDF memo sees identical keys).
        plan_scores = ctx["plan_scores"]
        score_of = ctx["score_of"]
        cdf_cache = eng._cdf_cache
        cdf_cache_max = eng._cdf_cache_max
        rng = eng._rng_engine
        sel_rand = eng._rng_sel.random
        explore_prob = eng._explore_prob
        for r in range(nrows):
            if slots <= 0:
                break
            s0 = bounds[r]
            s1 = bounds[r + 1]
            if s0 == s1:
                continue
            if busy_over:
                holders = [g for g in gs_all[s0:s1] if g not in busy_over]
                if not holders:
                    continue
                n_h = len(holders)
            else:
                holders = None
                n_h = s1 - s0
            chunk = lookahead[r]
            if rng.random() < explore_prob:
                pick = int(rng.integers(n_h))
            else:
                # One vectorised score gather replaces the per-holder
                # list walk; the CDF memo keys on the scores' IEEE bytes
                # — the same distinctions the object path's score-tuple
                # key draws, producing bit-identical CDF lists.
                if holders is None:
                    scores = plan_scores[cj[s0:s1]]
                else:
                    scores = np.array(
                        [score_of[g] for g in holders], dtype=np.float64
                    )
                key = scores.tobytes()
                cdf = cdf_cache.get(key)
                if cdf is None:
                    cdf = eng._provider_policy.cdf_from_scores(scores).tolist()
                    if len(cdf_cache) >= cdf_cache_max:
                        cdf_cache.clear()
                    cdf_cache[key] = cdf
                pick = bisect_right(cdf, sel_rand())
            g = holders[pick] if holders is not None else gs_all[s0 + pick]
            if eng._request_chunk(probe, g, chunk, t):
                slots -= 1
