"""Peer-selection policy: where network awareness enters the protocol.

A :class:`SelectionPolicy` scores candidate peers from the point of view of
a chooser, combining the network properties the paper studies:

* ``bw``  — candidate behind a high-bandwidth uplink;
* ``as_``— candidate in the chooser's Autonomous System;
* ``cc``  — candidate in the chooser's country;
* ``net`` — candidate on the chooser's subnet;
* ``hop`` — candidate closer than a hop threshold.

Scores feed an exponential-weight (softmax) sampler, so a weight of 0 gives
uniform choice, and increasing weights shift probability mass smoothly —
letting experiments dial awareness up and down per application and letting
ablation benches isolate each term.

The weights are *ground truth*: the analysis framework never sees them; it
must recover their presence from traffic alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class SelectionWeights:
    """Log-preference weights for the five network properties.

    A weight ``w`` multiplies the candidate's (0/1 or [0,1]) feature; the
    sampling probability is proportional to ``exp(Σ w·feature / T)``.
    ``w = ln(k)`` with temperature 1 makes a feature-holding candidate
    ``k×`` more likely than an otherwise-equal candidate.
    """

    bw: float = 0.0
    as_: float = 0.0
    cc: float = 0.0
    net: float = 0.0
    hop: float = 0.0

    def any_awareness(self) -> bool:
        """True when any property influences selection."""
        return any((self.bw, self.as_, self.cc, self.net, self.hop))


@dataclass(frozen=True, slots=True)
class CandidateFeatures:
    """Feature columns for a batch of candidates (aligned arrays)."""

    highbw: np.ndarray    # bool — candidate uplink > 10 Mb/s
    same_as: np.ndarray   # bool
    same_cc: np.ndarray   # bool
    same_net: np.ndarray  # bool
    near: np.ndarray      # bool — hop distance below threshold

    def __len__(self) -> int:
        return len(self.highbw)


class SelectionPolicy:
    """Softmax sampler over awareness-scored candidates."""

    def __init__(
        self,
        weights: SelectionWeights,
        rng: np.random.Generator,
        temperature: float = 1.0,
    ) -> None:
        if temperature <= 0:
            raise ConfigurationError("selection temperature must be positive")
        self.weights = weights
        self.temperature = temperature
        self._rng = rng

    def scores(self, feats: CandidateFeatures) -> np.ndarray:
        """Raw awareness scores for a candidate batch."""
        w = self.weights
        score = np.zeros(len(feats), dtype=np.float64)
        if w.bw:
            score += w.bw * feats.highbw
        if w.as_:
            score += w.as_ * feats.same_as
        if w.cc:
            score += w.cc * feats.same_cc
        if w.net:
            score += w.net * feats.same_net
        if w.hop:
            score += w.hop * feats.near
        return score

    def probabilities(self, feats: CandidateFeatures) -> np.ndarray:
        """Softmax selection probabilities for a candidate batch."""
        if len(feats) == 0:
            return np.zeros(0)
        logits = self.scores(feats) / self.temperature
        logits -= logits.max()  # numerical stability
        p = np.exp(logits)
        return p / p.sum()

    def choose(self, feats: CandidateFeatures, k: int = 1) -> np.ndarray:
        """Sample ``k`` distinct candidate indices (≤ batch size)."""
        n = len(feats)
        if n == 0 or k <= 0:
            return np.zeros(0, dtype=np.int64)
        k = min(k, n)
        p = self.probabilities(feats)
        return self._rng.choice(n, size=k, replace=False, p=p)

    def choose_one(self, feats: CandidateFeatures) -> int:
        """Sample a single candidate index; -1 when the batch is empty."""
        picked = self.choose(feats, 1)
        return int(picked[0]) if len(picked) else -1
