"""Peer-selection policy: where network awareness enters the protocol.

A :class:`SelectionPolicy` scores candidate peers from the point of view of
a chooser, combining the network properties the paper studies:

* ``bw``  — candidate behind a high-bandwidth uplink;
* ``as_``— candidate in the chooser's Autonomous System;
* ``cc``  — candidate in the chooser's country;
* ``net`` — candidate on the chooser's subnet;
* ``hop`` — candidate closer than a hop threshold.

Scores feed an exponential-weight (softmax) sampler, so a weight of 0 gives
uniform choice, and increasing weights shift probability mass smoothly —
letting experiments dial awareness up and down per application and letting
ablation benches isolate each term.

The weights are *ground truth*: the analysis framework never sees them; it
must recover their presence from traffic alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class SelectionWeights:
    """Log-preference weights for the five network properties.

    A weight ``w`` multiplies the candidate's (0/1 or [0,1]) feature; the
    sampling probability is proportional to ``exp(Σ w·feature / T)``.
    ``w = ln(k)`` with temperature 1 makes a feature-holding candidate
    ``k×`` more likely than an otherwise-equal candidate.
    """

    bw: float = 0.0
    as_: float = 0.0
    cc: float = 0.0
    net: float = 0.0
    hop: float = 0.0

    def any_awareness(self) -> bool:
        """True when any property influences selection."""
        return any((self.bw, self.as_, self.cc, self.net, self.hop))


@dataclass(frozen=True, slots=True)
class CandidateFeatures:
    """Feature columns for a batch of candidates (aligned arrays)."""

    highbw: np.ndarray    # bool — candidate uplink > 10 Mb/s
    same_as: np.ndarray   # bool
    same_cc: np.ndarray   # bool
    same_net: np.ndarray  # bool
    near: np.ndarray      # bool — hop distance below threshold

    def __len__(self) -> int:
        return len(self.highbw)


class SelectionPolicy:
    """Softmax sampler over awareness-scored candidates."""

    def __init__(
        self,
        weights: SelectionWeights,
        rng: np.random.Generator,
        temperature: float = 1.0,
    ) -> None:
        if temperature <= 0:
            raise ConfigurationError("selection temperature must be positive")
        self.weights = weights
        self.temperature = temperature
        self._rng = rng

    def scores(self, feats: CandidateFeatures) -> np.ndarray:
        """Raw awareness scores for a candidate batch."""
        w = self.weights
        score = np.zeros(len(feats), dtype=np.float64)
        if w.bw:
            score += w.bw * feats.highbw
        if w.as_:
            score += w.as_ * feats.same_as
        if w.cc:
            score += w.cc * feats.same_cc
        if w.net:
            score += w.net * feats.same_net
        if w.hop:
            score += w.hop * feats.near
        return score

    def probabilities_from_scores(self, scores: np.ndarray) -> np.ndarray:
        """Softmax selection probabilities for precomputed raw scores.

        This is the cache-friendly entry point: the engine precomputes the
        (static) awareness score of every (chooser, candidate) pair once
        and feeds score *rows* here, skipping feature construction and
        rescoring entirely.  The arithmetic is identical to
        :meth:`probabilities`, so cached and uncached paths produce
        bit-equal probabilities — and therefore identical RNG draws.
        """
        if len(scores) == 0:
            return np.zeros(0)
        logits = scores / self.temperature
        logits -= logits.max()  # numerical stability (logits is a fresh array)
        p = np.exp(logits)
        return p / p.sum()

    def probabilities(self, feats: CandidateFeatures) -> np.ndarray:
        """Softmax selection probabilities for a candidate batch."""
        if len(feats) == 0:
            return np.zeros(0)
        return self.probabilities_from_scores(self.scores(feats))

    def cdf_from_scores(self, scores: np.ndarray) -> np.ndarray:
        """Normalised selection CDF for a score row (memoisation target).

        The CDF is a pure function of the scores, so the engine caches it
        per recurring candidate set; :meth:`sample_index` then consumes one
        uniform against it.  Computed through the exact probability
        pipeline the uncached path uses, hence bit-identical.
        """
        cdf = self.probabilities_from_scores(scores).cumsum()
        cdf /= cdf[-1]
        return cdf

    def sample_index(self, cdf: np.ndarray) -> int:
        """Draw one candidate index by inverting a precomputed CDF.

        Consumes exactly one uniform from the policy RNG — the same draw,
        against the same CDF values, as :meth:`choose_one_scored` — so
        cached-CDF sampling reproduces the uncached draw sequence exactly
        (``Generator.random()`` and ``Generator.random(1)[0]`` yield the
        same double and the same post-call state).
        """
        return int(cdf.searchsorted(self._rng.random(), side="right"))

    def _sample(self, n: int, k: int, p: np.ndarray) -> np.ndarray:
        """``rng.choice(n, size=k, replace=False, p=p)``, minus the overhead.

        For ``k == 1`` numpy's ``Generator.choice`` consumes exactly one
        uniform and inverts the CDF of ``p`` — but spends ~35 µs/call on
        argument validation.  This replays the same computation directly
        (one ``rng.random(1)`` draw, cumsum, renormalise, right-bisect),
        which is bit-identical in both the returned index and the
        post-call generator state; ``tests/streaming/test_selection.py``
        asserts that equivalence against ``Generator.choice`` itself.
        """
        if k == 1:
            cdf = p.cumsum()
            cdf /= cdf[-1]
            x = self._rng.random()
            return np.array([cdf.searchsorted(x, side="right")], dtype=np.int64)
        return self._rng.choice(n, size=k, replace=False, p=p)

    def choose(self, feats: CandidateFeatures, k: int = 1) -> np.ndarray:
        """Sample ``k`` distinct candidate indices (≤ batch size)."""
        n = len(feats)
        if n == 0 or k <= 0:
            return np.zeros(0, dtype=np.int64)
        k = min(k, n)
        return self._sample(n, k, self.probabilities(feats))

    def choose_scored(self, scores: np.ndarray, k: int = 1) -> np.ndarray:
        """:meth:`choose` over a precomputed score row (cache hot path)."""
        n = len(scores)
        if n == 0 or k <= 0:
            return np.zeros(0, dtype=np.int64)
        k = min(k, n)
        return self._sample(n, k, self.probabilities_from_scores(scores))

    def choose_one(self, feats: CandidateFeatures) -> int:
        """Sample a single candidate index; -1 when the batch is empty."""
        picked = self.choose(feats, 1)
        return int(picked[0]) if len(picked) else -1

    def choose_one_scored(self, scores: np.ndarray) -> int:
        """:meth:`choose_one` over a precomputed score row (cache hot path)."""
        picked = self.choose_scored(scores, 1)
        return int(picked[0]) if len(picked) else -1
