"""Sliding playout buffer for full-protocol (probe) peers.

A live-streaming peer tries to hold every chunk inside a window trailing
the live edge; chunks older than the window are evicted (played out).  The
buffer also answers "which chunks am I missing" for the request scheduler
and serves as the ground-truth buffer map advertised to partners.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.streaming.chunk import ChunkClock


class PlayoutBuffer:
    """Set of held chunk ids inside a sliding window."""

    def __init__(self, clock: ChunkClock, window_s: float, join_time: float = 0.0) -> None:
        if window_s <= 0:
            raise SimulationError("buffer window must be positive")
        self._clock = clock
        self._window_s = window_s
        self._join_time = join_time
        self._chunks: set[int] = set()
        self._received_bytes = 0

    @property
    def window_chunks(self) -> int:
        """Window width in chunks."""
        return max(1, int(self._window_s / self._clock.chunk_interval))

    def window_range(self, t: float) -> range:
        """Chunk ids inside the window at time ``t`` (oldest → live edge).

        The lower edge never precedes the peer's join time: a live viewer
        has no use for content streamed before it tuned in.
        """
        live = self._clock.latest_chunk(t)
        oldest = max(live - self.window_chunks + 1, self._clock.latest_chunk(self._join_time), 0)
        return range(oldest, live + 1)

    def add(self, chunk_id: int) -> bool:
        """Insert a received chunk; returns False for duplicates."""
        if chunk_id in self._chunks:
            return False
        self._chunks.add(chunk_id)
        self._received_bytes += self._clock.chunk_bytes
        return True

    def evict_before(self, t: float) -> int:
        """Drop chunks that slid out of the window; returns count dropped."""
        floor = self.window_range(t).start
        stale = [c for c in self._chunks if c < floor]
        for c in stale:
            self._chunks.remove(c)
        return len(stale)

    def has(self, chunk_id: int) -> bool:
        return chunk_id in self._chunks

    def missing(
        self, t: float, exclude: set[int] | None = None, live_lag: int = 0
    ) -> list[int]:
        """Window chunks not held (and not in ``exclude``), newest first.

        Newest-first matches the latest-useful-chunk scheduling that live
        systems favour: recent chunks are both most valuable to playback
        and most available at partners.  ``live_lag`` skips the newest few
        chunks — real players keep a small offset from the live edge so
        that requested chunks have had time to diffuse to some providers.
        """
        exclude = exclude or set()
        window = self.window_range(t)
        newest = window.stop - 1 - max(0, live_lag)
        return [
            c
            for c in range(newest, window.start - 1, -1)
            if c not in self._chunks and c not in exclude
        ]

    def continuity(self, t: float) -> float:
        """Fraction of the current window held — a playback-quality proxy."""
        window = self.window_range(t)
        n = len(window)
        if n == 0:
            return 1.0
        held = sum(1 for c in window if c in self._chunks)
        return held / n

    @property
    def received_bytes(self) -> int:
        """Total video payload accepted (duplicates excluded)."""
        return self._received_bytes

    def __len__(self) -> int:
        return len(self._chunks)
