"""Sliding playout buffer for full-protocol (probe) peers.

A live-streaming peer tries to hold every chunk inside a window trailing
the live edge; chunks older than the window are evicted (played out).  The
buffer also answers "which chunks am I missing" for the request scheduler
and serves as the ground-truth buffer map advertised to partners.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import SimulationError
from repro.streaming.chunk import ChunkClock


class PlayoutBuffer:
    """Set of held chunk ids inside a sliding window."""

    def __init__(self, clock: ChunkClock, window_s: float, join_time: float = 0.0) -> None:
        if window_s <= 0:
            raise SimulationError("buffer window must be positive")
        self._clock = clock
        self._window_s = window_s
        self._join_time = join_time
        self._chunks: set[int] = set()
        self._received_bytes = 0
        # Eviction frontier: every chunk below this floor has been evicted,
        # except late arrivals parked in _low_adds (see add/evict_below).
        self._evicted_to = 0
        self._low_adds: set[int] = set()
        # Constants of the clock/window, precomputed: window_range runs on
        # every engine tick and the dataclass-property recomputation cost
        # dwarfs the arithmetic.  Same doubles, so identical results.
        self._interval = clock.chunk_interval
        self._window_chunks = max(1, int(window_s / self._interval))
        self._join_floor = clock.latest_chunk(join_time)
        # Known holes: ids ≤ _holes_top that are not held.  missing_in
        # extends the frontier by the few ids the window advanced by and
        # reads the (small) hole set instead of rescanning the window.
        # ``_holes_asc`` mirrors the set as an ascending-sorted list kept
        # exactly in sync (add() bisects the filled id out — holes are
        # few and filled ones cluster near the live edge, so the delete
        # touches a short tail), so the newest-first sweep walks a
        # ready-sorted run of live holes with no per-entry liveness test.
        self._holes: set[int] = set()
        self._holes_asc: list[int] = []
        self._holes_top = self._join_floor - 1

    @property
    def window_chunks(self) -> int:
        """Window width in chunks."""
        return self._window_chunks

    def window_range(self, t: float) -> range:
        """Chunk ids inside the window at time ``t`` (oldest → live edge).

        The lower edge never precedes the peer's join time: a live viewer
        has no use for content streamed before it tuned in.
        """
        live = int(t / self._interval)
        oldest = max(live - self._window_chunks + 1, self._join_floor, 0)
        return range(oldest, live + 1)

    def add(self, chunk_id: int) -> bool:
        """Insert a received chunk; returns False for duplicates."""
        if chunk_id in self._chunks:
            return False
        self._chunks.add(chunk_id)
        if chunk_id in self._holes:
            self._holes.remove(chunk_id)
            asc = self._holes_asc
            i = bisect_left(asc, chunk_id)
            del asc[i]
        if chunk_id < self._evicted_to:
            # Arrived after its window position was already swept; remember
            # it so the incremental eviction scan still finds it.
            self._low_adds.add(chunk_id)
        self._received_bytes += self._clock.chunk_bytes
        return True

    def evict_before(self, t: float) -> int:
        """Drop chunks that slid out of the window; returns count dropped."""
        return self.evict_below(self.window_range(t).start)

    def evict_below(self, floor: int) -> int:
        """:meth:`evict_before` with the window floor already computed.

        The engine tick computes the window once and drives eviction,
        in-flight pruning, and the missing scan from the same range.
        Incremental: only the ids between the previous floor and the new
        one (plus any late re-adds below the frontier) can be stale, so the
        scan is O(floor advance), not O(buffer size) — evicting the exact
        same chunks a full scan would.
        """
        prev = self._evicted_to
        if floor <= prev:
            return 0
        chunks = self._chunks
        dropped = 0
        for c in range(prev, floor):
            if c in chunks:
                chunks.remove(c)
                dropped += 1
        if self._low_adds:
            stale = [c for c in self._low_adds if c < floor]
            for c in stale:
                self._low_adds.remove(c)
                if c in chunks:
                    chunks.remove(c)
                    dropped += 1
        asc = self._holes_asc
        if asc and asc[0] < floor:
            holes = self._holes
            cut = bisect_left(asc, floor)
            for c in asc[:cut]:
                holes.remove(c)
            del asc[:cut]
        self._evicted_to = floor
        return dropped

    def has(self, chunk_id: int) -> bool:
        return chunk_id in self._chunks

    @property
    def chunk_set(self) -> set[int]:
        """The live set of held chunk ids (read-only by convention).

        Hot-path callers test membership directly against this set; it is
        mutated in place by add/evict, never reassigned, so a borrowed
        reference always reflects the current buffer state.
        """
        return self._chunks

    def has_many(self, chunk_ids: list[int]) -> list[bool]:
        """:meth:`has` for a batch (hot-path helper for the engine)."""
        held = self._chunks
        return [c in held for c in chunk_ids]

    def missing(
        self,
        t: float,
        exclude: set[int] | None = None,
        live_lag: int = 0,
        limit: int | None = None,
    ) -> list[int]:
        """Window chunks not held (and not in ``exclude``), newest first.

        Newest-first matches the latest-useful-chunk scheduling that live
        systems favour: recent chunks are both most valuable to playback
        and most available at partners.  ``live_lag`` skips the newest few
        chunks — real players keep a small offset from the live edge so
        that requested chunks have had time to diffuse to some providers.
        ``limit`` truncates the scan once that many missing chunks are
        found (the request scheduler never looks further than its per-tick
        attempt budget).
        """
        window = self.window_range(t)
        return self.missing_in(
            window.stop - 1 - max(0, live_lag), window.start, exclude or set(), limit
        )

    def tick_scan(
        self, t: float, live_lag: int, exclude: set[int], limit: int | None
    ) -> tuple[int, list[int]]:
        """One combined per-tick buffer pass: evict, then missing scan.

        Returns ``(window floor, missing chunks newest-first)``.  The
        engine tick calls this instead of ``window_range`` + ``evict_below``
        + ``missing_in`` — the same window arithmetic drives both halves,
        inlined into a single call into the buffer (this runs once per
        engine tick; the bodies match :meth:`evict_below` and
        :meth:`missing_in` exactly).
        """
        live = int(t / self._interval)
        floor = live - self._window_chunks + 1
        if floor < self._join_floor:
            floor = self._join_floor
        if floor < 0:
            floor = 0
        holes = self._holes
        asc = self._holes_asc
        chunks = self._chunks
        # --- evict_below, inlined -------------------------------------
        prev = self._evicted_to
        if floor > prev:
            for c in range(prev, floor):
                if c in chunks:
                    chunks.remove(c)
            if self._low_adds:
                stale = [c for c in self._low_adds if c < floor]
                for c in stale:
                    self._low_adds.remove(c)
                    chunks.discard(c)
            if asc and asc[0] < floor:
                cut = bisect_left(asc, floor)
                for c in asc[:cut]:
                    holes.remove(c)
                del asc[:cut]
            self._evicted_to = floor
        # --- missing_in, inlined --------------------------------------
        newest = live - live_lag
        if newest > self._holes_top:
            add = holes.add
            append = asc.append
            for c in range(self._holes_top + 1, newest + 1):
                if c not in chunks:
                    add(c)
                    append(c)
            self._holes_top = newest
        out: list[int] = []
        for c in reversed(asc):
            if c < floor:
                break  # ascending mirror: everything further is older
            if c > newest or c in exclude:
                continue
            out.append(c)
            if limit is not None and len(out) >= limit:
                break
        return floor, out

    def missing_in(
        self, newest: int, floor: int, exclude: set[int], limit: int | None
    ) -> list[int]:
        """:meth:`missing` over an explicit ``[floor, newest]`` chunk range
        (the engine tick passes its already-computed window).

        Backed by the incremental hole set: only ids the window gained
        since the last call are tested against the buffer; the descending
        sweep then walks the sorted hole mirror in reverse — stopping at
        the window floor — which yields exactly the chunks the full range
        scan would (holes ∩ [floor, newest] minus ``exclude``,
        descending).
        """
        holes = self._holes
        asc = self._holes_asc
        if newest > self._holes_top:
            held = self._chunks
            add = holes.add
            append = asc.append
            for c in range(self._holes_top + 1, newest + 1):
                if c not in held:
                    add(c)
                    append(c)
            self._holes_top = newest
        out: list[int] = []
        for c in reversed(asc):
            if c < floor:
                break  # ascending mirror: everything further is older
            if c > newest or c in exclude:
                continue
            out.append(c)
            if limit is not None and len(out) >= limit:
                break
        return out

    def continuity(self, t: float) -> float:
        """Fraction of the current window held — a playback-quality proxy."""
        window = self.window_range(t)
        n = len(window)
        if n == 0:
            return 1.0
        held = sum(1 for c in window if c in self._chunks)
        return held / n

    @property
    def received_bytes(self) -> int:
        """Total video payload accepted (duplicates excluded)."""
        return self._received_bytes

    def __len__(self) -> int:
        return len(self._chunks)
