"""Per-application behaviour profiles (the simulator's ground truth).

Each :class:`AppProfile` encodes, for one P2P-TV system, the protocol
parameters that the paper's measurements characterise from the outside:

* **reach** — swarm size seen, discovery aggressiveness (Table II's "all
  peers": PPLive contacts two orders of magnitude more peers than TVAnts);
* **awareness weights** — how candidate peers are preferred by access
  bandwidth / AS / country / subnet / hop distance, at three decision
  points: partner admission, per-chunk provider choice, and the remote
  side's choice of which probes to download from (upload direction);
* **signaling economy** — handshake/buffer-map/keepalive sizes and rates
  (PPLive's larger received rate in Table II is signaling overhead);
* **demand** — how many concurrent remote downloaders a high-bandwidth
  probe attracts (PPLive probes uploaded ~3.4 Mb/s on average).

The numeric values are *not* taken from the paper (the apps are closed);
they are chosen so that applying the paper's own analysis to the simulated
traffic reproduces the qualitative structure of Tables II–IV and
Figs. 1–2.  The analysis framework never reads these weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.population.churn import ChurnConfig
from repro.streaming.availability import AvailabilityConfig
from repro.streaming.schedulers import DEFAULT_SCHEDULER, SCHEDULER_NAMES
from repro.streaming.selection import SelectionWeights
from repro.streaming.video import VideoConfig


#: Swarm size beyond which ``peer_state="auto"`` resolves to lazy
#: materialisation (sparse swarms only).  Set above the napa-scale
#: 1.8×10^5 so the paper-scale profile keeps its benchmarked eager path
#: by default; the 10^6-peer mega-scale profile opts into lazy
#: explicitly anyway.
LAZY_AUTO_MIN = 500_000


@dataclass(frozen=True, slots=True)
class AppProfile:
    """Complete behavioural description of one P2P-TV application."""

    name: str
    video: VideoConfig = field(default_factory=VideoConfig)

    # --- swarm & audience -------------------------------------------------
    swarm_size: int = 1000
    #: Extra weight on probe-country audience share (channel popularity in
    #: Europe); 1.0 = the default CCTV-1 mix.
    eu_audience_boost: float = 1.0
    #: Fraction of probe-country remotes placed inside campus ASes.
    probe_as_fraction: float = 0.25
    #: Swarm representation: ``"dense"`` materialises one RemotePeer object
    #: per remote (the legacy directory, pinned by the golden hashes);
    #: ``"sparse"`` holds the population as numpy columns generated in
    #: seeded blocks (:mod:`repro.population.sparse`) — required beyond
    #: ~10^4 peers.
    swarm: str = "dense"
    #: Audience demographics: ``"cctv1"`` (the paper's CN-dominated channel)
    #: or ``"crossswarm"`` (the Western-centric cross-swarm-study mix).
    audience: str = "cctv1"
    #: Per-remote state materialisation: ``"eager"`` precomputes the
    #: swarm-wide score rows, latency rows and busy counters up front
    #: (O(swarm) bytes per probe — fine to ~2×10^5 peers); ``"lazy"``
    #: materialises them on first contact so the resident set scales with
    #: *touched* peers (required at 10^6).  ``"auto"`` picks lazy for
    #: sparse swarms beyond :data:`LAZY_AUTO_MIN` peers.  Either choice is
    #: byte-identical for a fixed seed — the lazy kernels compute the very
    #: same IEEE-754 values on demand.
    peer_state: str = "auto"

    # --- discovery ---------------------------------------------------------
    tracker_initial: int = 60
    contact_interval_s: float = 2.0
    contact_batch: int = 2
    #: Multiplicative sampling weight for same-AS peers in tracker/gossip
    #: replies (TVAnts discovers same-AS peers far more efficiently).
    discovery_as_bias: float = 0.0
    #: Tracker/gossip reply sampling: ``"scan"`` draws without replacement
    #: over a dense candidate mask (O(swarm) per reply, exact); ``"alias"``
    #: draws from a precomputed alias table with rejection of
    #: offline/known peers (O(batch) per reply — paper-scale swarms).
    discovery: str = "scan"

    # --- partner management --------------------------------------------
    max_partners: int = 25
    partner_refresh_s: float = 20.0
    partner_weights: SelectionWeights = field(default_factory=SelectionWeights)
    #: Probability of keeping an existing partner across a refresh.  Sticky
    #: partnerships concentrate bytes on few, long-lived pairs (what the
    #: paper's heavy probe-probe flows show); low stickiness spreads bytes
    #: across many short-lived contributors.
    partner_stickiness: float = 0.75

    # --- per-chunk provider choice --------------------------------------
    provider_weights: SelectionWeights = field(default_factory=SelectionWeights)
    #: Per-fetch probability of ignoring the weights and picking a holder
    #: uniformly — the random exploration all mesh-pull systems do, and the
    #: reason low-bandwidth peers appear in the contributor set at all
    #: while receiving few bytes.
    explore_prob: float = 0.1
    selection_temperature: float = 1.0
    tick_interval_s: float = 0.4
    max_parallel_requests: int = 8
    #: Chunk-scheduling policy (see :mod:`repro.streaming.schedulers`):
    #: which missing chunks to request, in what order, from whom.  The
    #: measured systems are all mesh-pull; the alternatives exist for
    #: what-if studies and to prove the awareness analysis is
    #: scheduler-independent.
    scheduler: str = DEFAULT_SCHEDULER
    #: Chunks of head-room kept behind the live edge when requesting, so
    #: that targets have had time to diffuse to remote providers too.
    live_lag_chunks: int = 3
    #: When true, all probes tick in one cohort event (ascending probe
    #: order) instead of 46 staggered per-probe events, letting the SoA
    #: engine batch its per-tick kernels across the whole cohort.  Trace
    #: semantics are unchanged — only event grouping differs — but cohort
    #: and staggered runs of the same profile are *different* experiments.
    tick_cohort: bool = False

    # --- upload direction (remote downloaders) ---------------------------
    #: Mean concurrent remote downloaders attracted by a high-bw probe.
    remote_demand: float = 1.5
    #: How remotes choose probes to download from.
    remote_weights: SelectionWeights = field(default_factory=SelectionWeights)
    #: Chunk pulls per second per attached remote downloader.
    remote_pull_rate: float = 3.0

    # --- signaling economy ------------------------------------------------
    handshake_bytes: int = 120
    buffermap_interval_s: float = 2.0
    buffermap_bytes: int = 120
    keepalive_interval_s: float = 10.0
    keepalive_bytes: int = 60

    # --- population dynamics ---------------------------------------------
    churn: ChurnConfig = field(default_factory=ChurnConfig)
    availability: AvailabilityConfig = field(default_factory=AvailabilityConfig)

    def __post_init__(self) -> None:
        if self.swarm_size < 0:
            raise ConfigurationError("swarm_size must be >= 0")
        if self.contact_interval_s <= 0 or self.tick_interval_s <= 0:
            raise ConfigurationError("intervals must be positive")
        if self.max_partners < 1:
            raise ConfigurationError("need at least one partner slot")
        if self.remote_pull_rate < 0 or self.remote_demand < 0:
            raise ConfigurationError("remote demand must be non-negative")
        if self.scheduler not in SCHEDULER_NAMES:
            raise ConfigurationError(
                f"unknown chunk scheduler {self.scheduler!r}; "
                f"valid choices: {list(SCHEDULER_NAMES)}"
            )
        if self.swarm not in ("dense", "sparse"):
            raise ConfigurationError(
                f"unknown swarm representation {self.swarm!r}; "
                "valid choices: ['dense', 'sparse']"
            )
        if self.audience not in ("cctv1", "crossswarm"):
            raise ConfigurationError(
                f"unknown audience {self.audience!r}; "
                "valid choices: ['cctv1', 'crossswarm']"
            )
        if self.discovery not in ("scan", "alias"):
            raise ConfigurationError(
                f"unknown discovery sampler {self.discovery!r}; "
                "valid choices: ['scan', 'alias']"
            )
        if self.peer_state not in ("auto", "eager", "lazy"):
            raise ConfigurationError(
                f"unknown peer_state {self.peer_state!r}; "
                "valid choices: ['auto', 'eager', 'lazy']"
            )

    def scaled(self, factor: float) -> "AppProfile":
        """A copy with the swarm (and discovery reach) scaled by ``factor``.

        Used by quick tests and benches; relative magnitudes across
        applications are preserved.  Legacy dense profiles keep their
        historical silent floors (pinned by downstream fixtures); sparse
        paper-scale profiles route through the validating
        :meth:`scaled_swarm` instead, where a scale that breaks discovery
        assumptions is an error, not a clamp.
        """
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        if self.swarm == "sparse":
            return self.scaled_swarm(int(round(self.swarm_size * factor)))
        return replace(
            self,
            swarm_size=max(10, int(self.swarm_size * factor)),
            tracker_initial=max(5, int(self.tracker_initial * factor)),
            contact_batch=max(1, int(round(self.contact_batch * factor))),
        )

    def scaled_swarm(self, size: int) -> "AppProfile":
        """A copy resized to exactly ``size`` remote peers, validated.

        Unlike :meth:`scaled` this never silently clamps: the requested
        size must be positive and large enough to honour the profile's
        discovery reach (``tracker_initial``) — a tracker cannot seed more
        peers than the swarm holds.  Discovery parameters saturate rather
        than scale: ``tracker_initial`` and ``contact_batch`` stay fixed,
        matching how real trackers answer the same reply size regardless
        of swarm size.
        """
        if size < 1:
            raise ConfigurationError(
                f"swarm size must be >= 1, got {size}"
            )
        reach = self.tracker_initial
        if size < reach:
            raise ConfigurationError(
                f"profile {self.name!r}: swarm size {size} below the "
                f"profile's discovery reach of {reach} peers "
                f"(tracker_initial={self.tracker_initial} sets the limit: a "
                f"tracker reply must fit inside the swarm, so size >= {reach} "
                "is required); shrink the profile explicitly instead of "
                "overflowing tracker replies"
            )
        return replace(self, swarm_size=size)

    def resolved_peer_state(self, n_peers: int) -> str:
        """Resolve ``peer_state`` for a swarm of ``n_peers`` total peers.

        ``"auto"`` becomes ``"lazy"`` only for sparse swarms at or beyond
        :data:`LAZY_AUTO_MIN` — everything the goldens and benches pin
        today stays on the eager path unless a profile opts in.
        """
        if self.peer_state != "auto":
            return self.peer_state
        if self.swarm == "sparse" and n_peers >= LAZY_AUTO_MIN:
            return "lazy"
        return "eager"


def pplive() -> AppProfile:
    """PPLive: huge reach, heavy signaling, strong BW + AS preference.

    Paper signatures: ~23 k contacted peers per probe-hour (two orders of
    magnitude above TVAnts); mean upload ~3.4 Mb/s; download byte
    preference 10× the peer preference for same-AS peers; largest received
    rate due to signaling overhead.
    """
    return AppProfile(
        name="pplive",
        swarm_size=4000,
        probe_as_fraction=0.35,
        tracker_initial=300,
        contact_interval_s=1.0,
        contact_batch=6,
        discovery_as_bias=0.0,
        max_partners=40,
        partner_refresh_s=15.0,
        partner_weights=SelectionWeights(bw=1.8, as_=0.8),
        provider_weights=SelectionWeights(bw=2.6, as_=1.4),
        explore_prob=0.15,
        live_lag_chunks=5,
        max_parallel_requests=10,
        remote_demand=12.0,
        remote_weights=SelectionWeights(bw=2.4, as_=0.3),
        handshake_bytes=200,
        buffermap_interval_s=1.0,
        buffermap_bytes=220,
        keepalive_interval_s=5.0,
    )


def sopcast() -> AppProfile:
    """SopCast: medium reach, strong BW preference, location-blind."""
    return AppProfile(
        name="sopcast",
        swarm_size=900,
        probe_as_fraction=0.35,
        tracker_initial=80,
        contact_interval_s=4.0,
        contact_batch=2,
        discovery_as_bias=0.0,
        max_partners=25,
        partner_refresh_s=20.0,
        partner_weights=SelectionWeights(bw=1.8),
        provider_weights=SelectionWeights(bw=2.6),
        max_parallel_requests=8,
        remote_demand=1.0,
        remote_weights=SelectionWeights(bw=2.2),
        handshake_bytes=120,
        buffermap_interval_s=2.0,
        buffermap_bytes=120,
    )


def tvants() -> AppProfile:
    """TVAnts: small swarm, strong BW + strongest AS locality.

    Paper signatures: discovers same-AS peers very efficiently (13.5 % of
    contributors vs PPLive's 1.3 %), exchanges ~2× more traffic with
    intra-AS peers (Fig. 2 ratio R = 1.93), upload ≈ download rate.
    """
    return AppProfile(
        name="tvants",
        swarm_size=260,
        probe_as_fraction=0.35,
        tracker_initial=40,
        contact_interval_s=12.0,
        contact_batch=1,
        discovery_as_bias=5.0,
        max_partners=15,
        partner_refresh_s=30.0,
        partner_weights=SelectionWeights(bw=1.8, as_=1.0),
        provider_weights=SelectionWeights(bw=2.2, as_=1.9),
        max_parallel_requests=6,
        remote_demand=1.6,
        remote_weights=SelectionWeights(bw=1.6, as_=2.2),
        handshake_bytes=120,
        buffermap_interval_s=2.0,
        buffermap_bytes=120,
    )


def pplive_popular() -> AppProfile:
    """PPLive tuned to a channel popular in Europe (Fig. 2 variant).

    More local audience ⇒ many same-AS and same-LAN peers are online, so
    intra-AS (mostly hop-0) traffic dominates the probe-to-probe matrix.
    """
    base = pplive()
    return replace(
        base,
        name="pplive-popular",
        eu_audience_boost=4.0,
        probe_as_fraction=0.4,
        provider_weights=SelectionWeights(bw=2.6, as_=3.2),
    )


def napa_wine() -> AppProfile:
    """A *next-generation* network-aware client (the paper's conclusion).

    Not a measured system: this profile embodies what the paper says
    future P2P-TV applications should do — keep the bandwidth awareness
    that makes streaming work, but aggressively localise traffic by AS,
    subnet and path length ("better localizing the traffic the network
    has to carry, seeking shorter paths, exploiting topology knowledge").
    Used by the what-if evaluation in :mod:`repro.friendliness`.
    """
    return AppProfile(
        name="napa-wine",
        swarm_size=900,
        probe_as_fraction=0.35,
        tracker_initial=80,
        contact_interval_s=4.0,
        contact_batch=2,
        discovery_as_bias=5.0,
        max_partners=25,
        partner_refresh_s=20.0,
        partner_weights=SelectionWeights(bw=1.6, as_=1.6, net=1.0, hop=0.8),
        provider_weights=SelectionWeights(bw=2.2, as_=2.2, net=1.2, hop=1.0),
        max_parallel_requests=8,
        remote_demand=1.0,
        remote_weights=SelectionWeights(bw=1.6, as_=2.0, hop=0.8),
        handshake_bytes=120,
        buffermap_interval_s=2.0,
        buffermap_bytes=120,
    )


def napa_scale() -> AppProfile:
    """The network-aware client at the paper's *measured* swarm scale.

    The paper's CCTV-1 swarms held ~1.8×10^5 concurrent peers; every other
    profile subsamples that population by two to three orders of magnitude
    so the object-per-peer directory stays affordable.  This profile runs
    the napa-wine awareness policy against the full-size swarm on the
    sparse column representation: audience demographics follow the
    BitTorrent cross-swarm study mix, tracker/gossip replies are
    alias-sampled (O(batch), not O(swarm)), and all probes tick in one
    cohort so the SoA engine can batch its kernels across probes.

    The channel is the paper's HD case: 1 Mbps video in 16 kB chunks
    (a 128 ms chunk clock, ~7.8 chunks/s), the rate class the paper
    reports as the hardest for chunk retrieval at scale.  Partner lists
    are wide (200) — at 1.8×10^5 peers the neighbourhood a tracker reply
    can cover is a tiny swarm fraction, so clients hold every contact —
    with correspondingly slower buffer-map and gossip clocks to keep
    signaling per-link at the measured order.
    """
    return AppProfile(
        name="napa-scale",
        swarm_size=180_000,
        swarm="sparse",
        audience="crossswarm",
        discovery="alias",
        tick_cohort=True,
        probe_as_fraction=0.005,
        tracker_initial=200,
        contact_interval_s=4.0,
        contact_batch=4,
        discovery_as_bias=5.0,
        max_partners=200,
        partner_refresh_s=20.0,
        partner_weights=SelectionWeights(bw=1.6, as_=1.6, net=1.0, hop=0.8),
        provider_weights=SelectionWeights(bw=2.2, as_=2.2, net=1.2, hop=1.0),
        max_parallel_requests=16,
        remote_demand=1.0,
        remote_weights=SelectionWeights(bw=1.6, as_=2.0, hop=0.8),
        handshake_bytes=120,
        buffermap_interval_s=5.0,
        buffermap_bytes=120,
        video=VideoConfig(
            rate_bps=1_000_000.0,
            chunk_bytes=16000,
            buffer_window_s=30.0,
            playout_delay_s=10.0,
        ),
    )


def mega_scale() -> AppProfile:
    """napa-scale stretched a decade past the paper: a 10^6-peer swarm.

    Identical protocol knobs to :func:`napa_scale` — same awareness
    weights, same HD channel, same cohort ticking — resized to one
    million remote peers and pinned to ``peer_state="lazy"``: the
    swarm-wide score rows alone would cost ~1.1 GB eager at this size,
    so per-remote state (score rows, latency rows, busy counters, the
    remote threshold matrix) is materialised blockwise / on first
    contact instead.  Lazy materialisation is byte-identical for a
    fixed seed, so the differential suites gate this profile's kernels
    at test scale while the CI mega-smoke job exercises the full size.
    """
    base = napa_scale()
    return replace(base, name="mega-scale", peer_state="lazy").scaled_swarm(
        1_000_000
    )


def random_baseline() -> AppProfile:
    """A network-oblivious strawman: uniform selection everywhere.

    Not one of the measured systems — the control the framework must score
    at ≈ no preference for every metric (used by tests and ablations).
    """
    return AppProfile(
        name="random",
        swarm_size=900,
        probe_as_fraction=0.35,
        tracker_initial=80,
        contact_interval_s=4.0,
        contact_batch=2,
        max_partners=25,
        partner_refresh_s=20.0,
        partner_weights=SelectionWeights(),
        provider_weights=SelectionWeights(),
        remote_demand=1.0,
        remote_weights=SelectionWeights(),
    )


#: Name → factory for every built-in profile.
PROFILES = {
    "pplive": pplive,
    "sopcast": sopcast,
    "tvants": tvants,
    "pplive-popular": pplive_popular,
    "napa-wine": napa_wine,
    "napa-scale": napa_scale,
    "mega-scale": mega_scale,
    "random": random_baseline,
}


def get_profile(name: str) -> AppProfile:
    """Instantiate a built-in profile by name."""
    try:
        return PROFILES[name]()
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from exc
