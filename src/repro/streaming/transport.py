"""Transport model: uplink serialisation, latency, and transfer recording.

The transport layer is where access capacities become *observable*:

* a sender's uplink serialises transfers one at a time (its ``tx_free_at``
  horizon), so a 0.384 Mb/s DSL uplink physically cannot sustain more than
  one stream — the capacity constraint behind the BW findings;
* the path bottleneck ``min(src.up, dst.down)`` paces the packets of each
  chunk train, which is what the receiver-side min-IPG estimator measures;
* every exchange lands in a columnar :class:`TransferRecorder` (compact
  ``array`` columns, finalised into one structured numpy array).
"""

from __future__ import annotations

from array import array

import numpy as np

from repro.errors import SimulationError
from repro.trace.records import SIGNALING_DTYPE, TRANSFER_DTYPE, PacketKind
from repro.units import BITS_PER_BYTE

#: Payload bytes per video packet (the paper's 1250 B reference packet,
#: whose serialisation at 10 Mb/s takes exactly 1 ms — the BW threshold).
PACKET_PAYLOAD_BYTES = 1250

#: Base propagation latency plus per-hop forwarding delay.
BASE_LATENCY_S = 0.004
PER_HOP_LATENCY_S = 0.002


def path_latency(hops: int) -> float:
    """One-way latency of a path with ``hops`` router hops."""
    return BASE_LATENCY_S + PER_HOP_LATENCY_S * hops


def bottleneck_bps(src_up_bps: float, dst_down_bps: float) -> float:
    """The path bottleneck seen by a transfer ``src → dst``."""
    return min(src_up_bps, dst_down_bps)


class TransferRecorder:
    """Columnar accumulator for the engine's transfer log."""

    def __init__(self) -> None:
        self._ts = array("d")
        self._src = array("L")
        self._dst = array("L")
        self._bytes = array("L")
        self._kind = array("B")
        self._bottleneck = array("d")

    def record(
        self,
        ts: float,
        src_ip: int,
        dst_ip: int,
        nbytes: int,
        kind: PacketKind,
        bottleneck: float,
    ) -> None:
        """Append one exchange."""
        self._ts.append(ts)
        self._src.append(src_ip)
        self._dst.append(dst_ip)
        self._bytes.append(nbytes)
        self._kind.append(int(kind))
        self._bottleneck.append(bottleneck)

    def __len__(self) -> int:
        return len(self._ts)

    def finalize(self) -> np.ndarray:
        """Materialise the log as a time-sorted structured array."""
        n = len(self._ts)
        out = np.empty(n, dtype=TRANSFER_DTYPE)
        out["ts"] = np.frombuffer(self._ts, dtype=np.float64, count=n)
        out["src"] = np.frombuffer(self._src, dtype=f"u{self._src.itemsize}", count=n)
        out["dst"] = np.frombuffer(self._dst, dtype=f"u{self._dst.itemsize}", count=n)
        out["bytes"] = np.frombuffer(self._bytes, dtype=f"u{self._bytes.itemsize}", count=n)
        out["kind"] = np.frombuffer(self._kind, dtype=np.uint8, count=n)
        out["bottleneck"] = np.frombuffer(self._bottleneck, dtype=np.float64, count=n)
        return out[np.argsort(out["ts"], kind="stable")]


class SignalingBook:
    """Open/close periodic signaling relationships between peer pairs.

    Buffer-map and keepalive exchanges are periodic and dynamically inert
    (tiny packets), so instead of clogging the event queue the engine logs
    *intervals*; :func:`repro.trace.packets.expand_signaling` later expands
    them to timestamped transfers, vectorised.
    """

    def __init__(self) -> None:
        self._open: dict[tuple[int, int, float, int], float] = {}
        self._closed: list[tuple[int, int, float, float, float, int]] = []

    def open(self, src_ip: int, dst_ip: int, t: float, interval: float, nbytes: int) -> None:
        """Start a periodic exchange ``src → dst`` at time ``t``."""
        if interval <= 0:
            raise SimulationError("signaling interval must be positive")
        key = (src_ip, dst_ip, interval, nbytes)
        # Re-opening an already-open relationship keeps the earlier start.
        self._open.setdefault(key, t)

    def close(self, src_ip: int, dst_ip: int, t: float) -> None:
        """Stop every periodic exchange ``src → dst`` at time ``t``."""
        for key in [k for k in self._open if k[0] == src_ip and k[1] == dst_ip]:
            start = self._open.pop(key)
            if t > start:
                self._closed.append((key[0], key[1], start, t, key[2], key[3]))

    def finalize(self, t_end: float) -> np.ndarray:
        """Close everything still open and return the interval table."""
        for key, start in list(self._open.items()):
            if t_end > start:
                self._closed.append((key[0], key[1], start, t_end, key[2], key[3]))
        self._open.clear()
        out = np.empty(len(self._closed), dtype=SIGNALING_DTYPE)
        for i, (src, dst, start, stop, interval, nbytes) in enumerate(self._closed):
            out[i] = (src, dst, start, stop, interval, nbytes)
        return out


class UplinkScheduler:
    """Per-peer uplink serialisation with bounded queueing.

    ``admit`` answers: if ``src`` starts serialising ``nbytes`` now (or when
    its uplink frees up), when does transmission start — or is the backlog
    already too deep to accept the request?
    """

    def __init__(self, n_peers: int, up_bps: np.ndarray, max_backlog_s: float = 4.0) -> None:
        if len(up_bps) != n_peers:
            raise SimulationError("up_bps must have one entry per peer")
        self._free_at = np.zeros(n_peers, dtype=np.float64)
        self._up_bps = np.asarray(up_bps, dtype=np.float64)
        self._max_backlog_s = max_backlog_s

    def admit(self, peer_idx: int, t: float, nbytes: int) -> float | None:
        """Try to enqueue ``nbytes`` on ``peer_idx``'s uplink at time ``t``.

        Returns the serialisation start time, or None when the uplink
        backlog exceeds the bound (the request is declined — the requester
        will try another provider at its next tick).
        """
        start = max(t, self._free_at[peer_idx])
        if start - t > self._max_backlog_s:
            return None
        duration = nbytes * BITS_PER_BYTE / self._up_bps[peer_idx]
        self._free_at[peer_idx] = start + duration
        return float(start)

    def backlog(self, peer_idx: int, t: float) -> float:
        """Seconds of queued serialisation work at ``t``."""
        return max(0.0, float(self._free_at[peer_idx]) - t)
