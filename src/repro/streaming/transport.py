"""Transport model: uplink serialisation, latency, and transfer recording.

The transport layer is where access capacities become *observable*:

* a sender's uplink serialises transfers one at a time (its ``tx_free_at``
  horizon), so a 0.384 Mb/s DSL uplink physically cannot sustain more than
  one stream — the capacity constraint behind the BW findings;
* the path bottleneck ``min(src.up, dst.down)`` paces the packets of each
  chunk train, which is what the receiver-side min-IPG estimator measures;
* every exchange lands in a columnar :class:`TransferRecorder` (compact
  ``array`` columns, finalised into one structured numpy array).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.trace.records import SIGNALING_DTYPE, TRANSFER_DTYPE, PacketKind
from repro.units import BITS_PER_BYTE

#: Payload bytes per video packet (the paper's 1250 B reference packet,
#: whose serialisation at 10 Mb/s takes exactly 1 ms — the BW threshold).
PACKET_PAYLOAD_BYTES = 1250

#: Base propagation latency plus per-hop forwarding delay.
BASE_LATENCY_S = 0.004
PER_HOP_LATENCY_S = 0.002


def path_latency(hops: int) -> float:
    """One-way latency of a path with ``hops`` router hops."""
    return BASE_LATENCY_S + PER_HOP_LATENCY_S * hops


def bottleneck_bps(src_up_bps: float, dst_down_bps: float) -> float:
    """The path bottleneck seen by a transfer ``src → dst``."""
    return min(src_up_bps, dst_down_bps)


class TransferRecorder:
    """Row accumulator for the engine's transfer log.

    Rows are buffered as plain tuples — one list append per logged packet,
    the cheapest thing the hot path can do — and pivoted into the columnar
    structured array once, at :meth:`finalize`.  ``append_row`` is the
    bound list-append itself; the engine calls it directly with a
    ``(ts, src_ip, dst_ip, nbytes, kind, bottleneck)`` tuple.
    """

    def __init__(self) -> None:
        self._rows: list[tuple[float, int, int, int, int, float]] = []
        #: Hot-path entry point (the bound ``list.append``).
        self.append_row = self._rows.append

    def record(
        self,
        ts: float,
        src_ip: int,
        dst_ip: int,
        nbytes: int,
        kind: PacketKind,
        bottleneck: float,
    ) -> None:
        """Append one exchange."""
        self._rows.append((ts, src_ip, dst_ip, nbytes, int(kind), bottleneck))

    def __len__(self) -> int:
        return len(self._rows)

    def finalize(self) -> np.ndarray:
        """Materialise the log as a time-sorted structured array.

        One C-level pass converts the row tuples into a (n, 6) float64
        matrix whose columns are cast into the structured dtype.  Every
        integer column (IPv4 addresses, byte counts, packet kinds) is far
        below 2^53, so the float64 round-trip is exact and the output is
        byte-identical to the per-column zip transpose it replaced.
        """
        n = len(self._rows)
        out = np.empty(n, dtype=TRANSFER_DTYPE)
        if n:
            cols = np.array(self._rows, dtype=np.float64)
            out["ts"] = cols[:, 0]
            out["src"] = cols[:, 1]
            out["dst"] = cols[:, 2]
            out["bytes"] = cols[:, 3]
            out["kind"] = cols[:, 4]
            out["bottleneck"] = cols[:, 5]
        return out[np.argsort(out["ts"], kind="stable")]


class SignalingBook:
    """Open/close periodic signaling relationships between peer pairs.

    Buffer-map and keepalive exchanges are periodic and dynamically inert
    (tiny packets), so instead of clogging the event queue the engine logs
    *intervals*; :func:`repro.trace.packets.expand_signaling` later expands
    them to timestamped transfers, vectorised.
    """

    def __init__(self) -> None:
        self._open: dict[tuple[int, int, float, int], float] = {}
        self._closed: list[tuple[int, int, float, float, float, int]] = []
        #: (src, dst) → open keys of that pair, in first-open order — the
        #: same order a scan of ``_open`` (insertion-ordered) would yield,
        #: so close() emits identical interval sequences without the scan.
        self._pair_keys: dict[tuple[int, int], list[tuple[int, int, float, int]]] = {}

    def open(self, src_ip: int, dst_ip: int, t: float, interval: float, nbytes: int) -> None:
        """Start a periodic exchange ``src → dst`` at time ``t``."""
        if interval <= 0:
            raise SimulationError("signaling interval must be positive")
        key = (src_ip, dst_ip, interval, nbytes)
        # Re-opening an already-open relationship keeps the earlier start.
        if key not in self._open:
            self._open[key] = t
            pair = (src_ip, dst_ip)
            keys = self._pair_keys.get(pair)
            if keys is None:
                self._pair_keys[pair] = [key]
            else:
                keys.append(key)

    def close(self, src_ip: int, dst_ip: int, t: float) -> None:
        """Stop every periodic exchange ``src → dst`` at time ``t``."""
        for key in self._pair_keys.pop((src_ip, dst_ip), ()):
            start = self._open.pop(key, None)
            if start is not None and t > start:
                self._closed.append((key[0], key[1], start, t, key[2], key[3]))

    def finalize(self, t_end: float) -> np.ndarray:
        """Close everything still open and return the interval table."""
        for key, start in list(self._open.items()):
            if t_end > start:
                self._closed.append((key[0], key[1], start, t_end, key[2], key[3]))
        self._open.clear()
        self._pair_keys.clear()
        out = np.empty(len(self._closed), dtype=SIGNALING_DTYPE)
        for i, (src, dst, start, stop, interval, nbytes) in enumerate(self._closed):
            out[i] = (src, dst, start, stop, interval, nbytes)
        return out


class UplinkScheduler:
    """Per-peer uplink serialisation with bounded queueing.

    ``admit`` answers: if ``src`` starts serialising ``nbytes`` now (or when
    its uplink frees up), when does transmission start — or is the backlog
    already too deep to accept the request?
    """

    def __init__(self, n_peers: int, up_bps: np.ndarray, max_backlog_s: float = 4.0) -> None:
        if len(up_bps) != n_peers:
            raise SimulationError("up_bps must have one entry per peer")
        # Plain Python floats: admit() runs once per queued transfer, and
        # scalar indexing of numpy arrays would box a fresh numpy scalar
        # per call.  Same IEEE doubles either way — arithmetic is
        # bit-identical to the previous array-backed implementation.
        # Public on purpose: the engine's per-request hot path reads these
        # directly (inlined admit), so they are part of the class contract.
        self.free_at: list[float] = [0.0] * n_peers
        self.up_bps: list[float] = np.asarray(up_bps, dtype=np.float64).tolist()
        self.max_backlog_s = max_backlog_s

    def admit(self, peer_idx: int, t: float, nbytes: int) -> float | None:
        """Try to enqueue ``nbytes`` on ``peer_idx``'s uplink at time ``t``.

        Returns the serialisation start time, or None when the uplink
        backlog exceeds the bound (the request is declined — the requester
        will try another provider at its next tick).
        """
        start = max(t, self.free_at[peer_idx])
        if start - t > self.max_backlog_s:
            return None
        duration = nbytes * BITS_PER_BYTE / self.up_bps[peer_idx]
        self.free_at[peer_idx] = start + duration
        return start

    def backlog(self, peer_idx: int, t: float) -> float:
        """Seconds of queued serialisation work at ``t``."""
        return max(0.0, self.free_at[peer_idx] - t)
