"""repro.obs — observability: structured logging, telemetry, run manifests.

A campaign that fails or crawls should never be a black box.  This
package is the self-instrumentation layer of the reproduction — the same
per-stage accounting a passive measurement study keeps for its captures,
applied to our own pipeline:

* :mod:`repro.obs.log` — structured, dependency-free logging (human or
  JSON lines; ``REPRO_LOG_LEVEL`` / ``--log-level``);
* :mod:`repro.obs.telemetry` — :class:`StageTimer`-style nested timers,
  counters and peak gauges collected into one picklable
  :class:`Telemetry` per unit of work;
* :mod:`repro.obs.manifest` — the JSON :class:`RunManifest` written next
  to campaign outputs (config hash, seeds, shard outcomes, stage
  timings, engine/capture counters).

Invariant: observability must never perturb results.  Nothing in here
draws RNG or mutates scientific state, and the serial ≡ process
determinism suite runs with telemetry enabled.
"""

from repro.obs.log import configure, get_logger
from repro.obs.manifest import (
    RunManifest,
    manifest_from_campaign,
    read_manifest,
    render_manifest_summary,
    write_manifest,
)
from repro.obs.telemetry import (
    Counter,
    Gauge,
    GaugeStats,
    StageStats,
    StageTimer,
    Telemetry,
)

__all__ = [
    "configure",
    "get_logger",
    "RunManifest",
    "manifest_from_campaign",
    "read_manifest",
    "render_manifest_summary",
    "write_manifest",
    "Counter",
    "Gauge",
    "GaugeStats",
    "StageStats",
    "StageTimer",
    "Telemetry",
]
