"""Telemetry primitives: stage timers, counters and gauges.

One :class:`Telemetry` object accompanies one unit of work (a shard, a
campaign, an analysis pass) and collects three kinds of measurements:

* **stage timers** — wall-clock and CPU time per named pipeline stage,
  with automatic nesting (``with tel.timer("shard"): with
  tel.timer("simulate")`` records under ``shard`` and ``shard/simulate``);
* **counters** — monotonically increasing integer tallies (events
  processed, records captured, contributors classified);
* **gauges** — sampled magnitudes where the *peak* matters (event-queue
  depth, uplink backlog).

Everything is plain-data and picklable: a worker process fills a
Telemetry during :func:`~repro.exec.worker.run_shard` and ships it back
inside the :class:`~repro.exec.shards.ShardOutcome`; the parent merges
shard telemetries in shard order with :meth:`Telemetry.merge`.  Counter
and timer merging is a plain sum, so merged *totals* are associative and
commutative — the reduction cannot depend on executor scheduling.

The cardinal rule, enforced by ``tests/obs/test_parity.py``: telemetry
observes, never perturbs.  No RNG draws, no mutation of scientific state,
no behavioural branches on collected values.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class StageStats:
    """Accumulated timings of one pipeline stage."""

    calls: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0

    def add(self, wall_s: float, cpu_s: float) -> None:
        self.calls += 1
        self.wall_s += wall_s
        self.cpu_s += cpu_s

    def as_dict(self) -> dict:
        return {"calls": self.calls, "wall_s": self.wall_s, "cpu_s": self.cpu_s}

    @classmethod
    def from_dict(cls, d: dict) -> "StageStats":
        return cls(
            calls=int(d.get("calls", 0)),
            wall_s=float(d.get("wall_s", 0.0)),
            cpu_s=float(d.get("cpu_s", 0.0)),
        )


@dataclass
class GaugeStats:
    """Peak-tracking gauge: the maximum (and count) of sampled values."""

    peak: float = float("-inf")
    samples: int = 0

    def sample(self, value: float) -> None:
        self.samples += 1
        if value > self.peak:
            self.peak = value

    def as_dict(self) -> dict:
        return {"peak": self.peak, "samples": self.samples}

    @classmethod
    def from_dict(cls, d: dict) -> "GaugeStats":
        return cls(peak=float(d.get("peak", float("-inf"))), samples=int(d.get("samples", 0)))


@dataclass
class Counter:
    """A named monotone tally, usable standalone or via :class:`Telemetry`."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> int:
        self.value += int(n)
        return self.value


@dataclass
class Gauge:
    """A named sampled magnitude; tracks its peak."""

    name: str
    stats: GaugeStats = field(default_factory=GaugeStats)

    def set(self, value: float) -> None:
        self.stats.sample(value)

    @property
    def peak(self) -> float:
        return self.stats.peak


class StageTimer:
    """Standalone wall + CPU stage timer (context manager).

    ``Telemetry.timer`` is the accumulating form; this one measures a
    single stretch and exposes ``wall_s`` / ``cpu_s`` afterwards —
    benchmarks use it in place of ad-hoc ``perf_counter()`` pairs.
    """

    __slots__ = ("name", "wall_s", "cpu_s", "_wall0", "_cpu0")

    def __init__(self, name: str = "stage") -> None:
        self.name = name
        self.wall_s = 0.0
        self.cpu_s = 0.0

    def __enter__(self) -> "StageTimer":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0


@dataclass
class Telemetry:
    """Per-run collection of timers, counters and gauges.

    Stage names use ``/`` as a hierarchy separator; the :meth:`timer`
    context manager prefixes nested stages automatically.
    """

    timers: dict[str, StageStats] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, GaugeStats] = field(default_factory=dict)
    _stack: list[str] = field(default_factory=list, repr=False, compare=False)

    # ------------------------------------------------------------- counters
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never touched)."""
        return self.counters.get(name, 0)

    # --------------------------------------------------------------- gauges
    def gauge(self, name: str, value: float) -> None:
        """Sample ``value`` into gauge ``name`` (tracks the peak)."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = GaugeStats()
        g.sample(float(value))

    def peak(self, name: str) -> float:
        """Peak of gauge ``name`` (``-inf`` if never sampled)."""
        g = self.gauges.get(name)
        return g.peak if g is not None else float("-inf")

    # --------------------------------------------------------------- timers
    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """Time a pipeline stage (wall + CPU); nests under open timers."""
        path = "/".join(self._stack + [stage])
        self._stack.append(stage)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - wall0
            cpu = time.process_time() - cpu0
            self._stack.pop()
            stats = self.timers.get(path)
            if stats is None:
                stats = self.timers[path] = StageStats()
            stats.add(wall, cpu)

    def stage(self, path: str) -> StageStats:
        """Stats of one stage path (zeros if never timed)."""
        return self.timers.get(path, StageStats())

    # ---------------------------------------------------------------- merge
    def merge(self, other: "Telemetry", prefix: str = "") -> "Telemetry":
        """Fold ``other`` into this telemetry (in place) and return self.

        Counters and timer totals add; gauges keep the maximum peak and
        add sample counts.  Addition and max are associative and
        commutative, so merged totals are independent of merge order —
        the property that lets a parallel campaign merge shard telemetry
        without caring how the executor scheduled the shards.
        """
        for name, value in other.counters.items():
            self.count(prefix + name, value)
        for path, stats in other.timers.items():
            mine = self.timers.get(prefix + path)
            if mine is None:
                mine = self.timers[prefix + path] = StageStats()
            mine.calls += stats.calls
            mine.wall_s += stats.wall_s
            mine.cpu_s += stats.cpu_s
        for name, g in other.gauges.items():
            mine_g = self.gauges.get(prefix + name)
            if mine_g is None:
                mine_g = self.gauges[prefix + name] = GaugeStats()
            mine_g.samples += g.samples
            if g.peak > mine_g.peak:
                mine_g.peak = g.peak
        return self

    # ------------------------------------------------------------ transport
    def as_dict(self) -> dict:
        """JSON-ready plain-dict form (used by the run manifest)."""
        return {
            "timers": {k: v.as_dict() for k, v in sorted(self.timers.items())},
            "counters": dict(sorted(self.counters.items())),
            "gauges": {k: v.as_dict() for k, v in sorted(self.gauges.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Telemetry":
        tel = cls()
        tel.timers = {
            k: StageStats.from_dict(v) for k, v in d.get("timers", {}).items()
        }
        tel.counters = {k: int(v) for k, v in d.get("counters", {}).items()}
        tel.gauges = {
            k: GaugeStats.from_dict(v) for k, v in d.get("gauges", {}).items()
        }
        return tel

    def __bool__(self) -> bool:
        return bool(self.timers or self.counters or self.gauges)
