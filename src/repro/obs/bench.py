"""Machine-readable benchmark summaries (``BENCH_engine.json``).

``pytest-benchmark`` writes a verbose raw JSON (per-round timings, full
machine info).  This module distils it into the few numbers the project
actually tracks over time — wall time, events/s, transfers/s, wall time
per simulated minute — optionally annotated with a speedup against a
baseline raw file.  CI runs the engine benchmarks, writes the summary
with :func:`write_bench_summary`, and uploads it as an artifact so the
performance trajectory of the engine is recorded per commit; the repo
root carries the before/after snapshot of the last optimisation pass.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_simulator.py \
        --benchmark-only --benchmark-json=bench_raw.json
    PYTHONPATH=src python -m repro.obs.bench bench_raw.json -o BENCH_engine.json

The summary derives throughput from the ``extra_info`` counters the
benchmarks attach (``events``, ``transfers``, ``simulated_s``); entries
without a counter simply omit the derived metric.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.errors import TraceError

#: Summary layout version; bump on incompatible changes.
BENCH_SCHEMA_VERSION = 1


def _load_raw(path: str | Path) -> dict:
    path = Path(path)
    if not path.exists():
        raise TraceError(f"benchmark results not found: {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path}: not a pytest-benchmark JSON: {exc}") from exc
    if not isinstance(data, dict) or "benchmarks" not in data:
        raise TraceError(f"{path}: missing 'benchmarks' key")
    return data


def summarize_benchmark(bench: dict, baseline: dict | None = None) -> dict:
    """Summary entry for one pytest-benchmark record.

    ``baseline`` is the matching record from an earlier run; when given,
    the entry carries the baseline wall time and the speedup ratio.
    """
    stats = bench["stats"]
    extra = bench.get("extra_info", {})
    wall = float(stats["min"])
    entry: dict = {
        "name": bench["name"],
        "wall_s_min": wall,
        "wall_s_mean": float(stats["mean"]),
        "rounds": stats.get("rounds"),
    }
    events = extra.get("events")
    if events:
        entry["events"] = int(events)
        entry["events_per_s"] = events / wall
    transfers = extra.get("transfers")
    if transfers:
        entry["transfers"] = int(transfers)
        entry["transfers_per_s"] = transfers / wall
    simulated_s = extra.get("simulated_s")
    if simulated_s:
        entry["simulated_s"] = float(simulated_s)
        entry["wall_s_per_simulated_minute"] = wall * 60.0 / simulated_s
    if baseline is not None:
        base_wall = float(baseline["stats"]["min"])
        entry["baseline_wall_s_min"] = base_wall
        entry["speedup_vs_baseline"] = base_wall / wall
    return entry


def summarize(raw: dict, baseline: dict | None = None) -> dict:
    """Summary document for a raw pytest-benchmark JSON."""
    base_index = (
        {b["name"]: b for b in baseline.get("benchmarks", [])} if baseline else {}
    )
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "datetime": raw.get("datetime"),
        "benchmarks": [
            summarize_benchmark(b, base_index.get(b["name"]))
            for b in raw["benchmarks"]
        ],
    }


def write_bench_summary(
    results_path: str | Path,
    out_path: str | Path = "BENCH_engine.json",
    baseline_path: str | Path | None = None,
) -> Path:
    """Summarise ``results_path`` into ``out_path``; returns the path."""
    raw = _load_raw(results_path)
    baseline = _load_raw(baseline_path) if baseline_path else None
    out = Path(out_path)
    out.write_text(json.dumps(summarize(raw, baseline), indent=2, sort_keys=True) + "\n")
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="Distil a pytest-benchmark JSON into BENCH_engine.json",
    )
    parser.add_argument("results", help="raw pytest-benchmark JSON")
    parser.add_argument(
        "-o", "--output", default="BENCH_engine.json", help="summary output path"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="earlier raw pytest-benchmark JSON to compute speedups against",
    )
    args = parser.parse_args(argv)
    path = write_bench_summary(args.results, args.output, args.baseline)
    summary = json.loads(path.read_text())
    for entry in summary["benchmarks"]:
        line = f"{entry['name']}: {entry['wall_s_min']:.3f}s"
        if "events_per_s" in entry:
            line += f", {entry['events_per_s']:,.0f} events/s"
        if "speedup_vs_baseline" in entry:
            line += f", {entry['speedup_vs_baseline']:.2f}x vs baseline"
        print(line)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
