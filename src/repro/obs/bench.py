"""Machine-readable benchmark summaries (``BENCH_engine.json``).

``pytest-benchmark`` writes a verbose raw JSON (per-round timings, full
machine info).  This module distils it into the few numbers the project
actually tracks over time — wall time, events/s, transfers/s, wall time
per simulated minute — optionally annotated with a speedup against a
baseline raw file.  CI runs the engine benchmarks, writes the summary
with :func:`write_bench_summary`, and uploads it as an artifact so the
performance trajectory of the engine is recorded per commit; the repo
root carries the running history of optimisation passes.

Schema v2 makes the summary an *append-only log*: every entry carries the
``recorded`` timestamp of its run, ``--append`` keeps earlier entries and
adds the new run's, and appended entries report ``speedup_vs_previous``
against the most recent earlier entry of the same benchmark.  v1 files
(one run, file-level timestamp only) migrate transparently — each legacy
entry inherits the file-level ``datetime`` as its ``recorded`` stamp.

``--check-against`` turns the tool into a regression gate: the new run's
events/s are compared per benchmark with the *latest* entry of a
committed summary, and any drop beyond ``--max-regression`` (default
20 %) fails with exit status 2 — the CI guard against performance
backsliding that plain unit tests cannot see.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_simulator.py \
        --benchmark-only --benchmark-json=bench_raw.json
    PYTHONPATH=src python -m repro.obs.bench bench_raw.json -o BENCH_engine.json \
        --append --check-against BENCH_engine.json

The summary derives throughput from the ``extra_info`` counters the
benchmarks attach (``events``, ``transfers``, ``simulated_s``); entries
without a counter simply omit the derived metric.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.errors import TraceError

#: Summary layout version; bump on incompatible changes.
BENCH_SCHEMA_VERSION = 2

#: Default tolerated events/s drop before the regression gate trips.
DEFAULT_MAX_REGRESSION = 0.20

#: Default tolerated fractional ``peak_rss_mb`` growth.  Wider than the
#: throughput tolerance: RSS quantises to whole pages and inherits
#: allocator noise, but a lazy-materialisation regression (score rows or
#: remote state going resident swarm-wide again) multiplies it — far
#: outside any plausible jitter.
DEFAULT_MAX_RSS_REGRESSION = 0.25


def _load_raw(path: str | Path) -> dict:
    path = Path(path)
    if not path.exists():
        raise TraceError(f"benchmark results not found: {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path}: not a pytest-benchmark JSON: {exc}") from exc
    if not isinstance(data, dict) or "benchmarks" not in data:
        raise TraceError(f"{path}: missing 'benchmarks' key")
    return data


def load_summary(path: str | Path) -> dict:
    """Load (and migrate) an existing summary document."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"benchmark summary not found: {path}")
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path}: not a benchmark summary: {exc}") from exc
    if not isinstance(doc, dict) or "benchmarks" not in doc:
        raise TraceError(f"{path}: missing 'benchmarks' key")
    return migrate_summary(doc)


def migrate_summary(doc: dict) -> dict:
    """Upgrade a summary document in place to the current schema.

    v1 carried one run with a single file-level ``datetime``; its entries
    inherit that stamp as their ``recorded`` time, which preserves the
    information v1 actually had — when that one run happened.
    """
    version = doc.get("schema_version", 1)
    if version == BENCH_SCHEMA_VERSION:
        return doc
    if version == 1:
        stamp = doc.get("datetime")
        for entry in doc["benchmarks"]:
            entry.setdefault("recorded", stamp)
        doc["schema_version"] = BENCH_SCHEMA_VERSION
        return doc
    raise TraceError(f"unsupported benchmark summary schema: {version}")


def latest_by_name(doc: dict) -> dict[str, dict]:
    """Most recent entry per benchmark name (last occurrence wins —
    entries are appended in run order)."""
    out: dict[str, dict] = {}
    for entry in doc.get("benchmarks", []):
        out[entry["name"]] = entry
    return out


def summarize_benchmark(bench: dict, baseline: dict | None = None) -> dict:
    """Summary entry for one pytest-benchmark record.

    ``baseline`` is the matching record from an earlier run; when given,
    the entry carries the baseline wall time and the speedup ratio.
    """
    stats = bench["stats"]
    extra = bench.get("extra_info", {})
    wall = float(stats["min"])
    entry: dict = {
        "name": bench["name"],
        "wall_s_min": wall,
        "wall_s_mean": float(stats["mean"]),
        "rounds": stats.get("rounds"),
    }
    events = extra.get("events")
    if events:
        entry["events"] = int(events)
        entry["events_per_s"] = events / wall
    transfers = extra.get("transfers")
    if transfers:
        entry["transfers"] = int(transfers)
        entry["transfers_per_s"] = transfers / wall
    simulated_s = extra.get("simulated_s")
    if simulated_s:
        entry["simulated_s"] = float(simulated_s)
        entry["wall_s_per_simulated_minute"] = wall * 60.0 / simulated_s
    # Scale-benchmark annotations: which core ran, how large the swarm
    # was, and the process RSS high-water mark (the bounded-memory record
    # for the paper-scale entries).
    if "engine" in extra:
        entry["engine"] = str(extra["engine"])
    if "swarm" in extra:
        entry["swarm"] = int(extra["swarm"])
    if "peer_state" in extra:
        entry["peer_state"] = str(extra["peer_state"])
    if "peak_rss_mb" in extra:
        entry["peak_rss_mb"] = float(extra["peak_rss_mb"])
    if baseline is not None:
        base_wall = float(baseline["stats"]["min"])
        entry["baseline_wall_s_min"] = base_wall
        entry["speedup_vs_baseline"] = base_wall / wall
    return entry


def summarize(raw: dict, baseline: dict | None = None, previous: dict | None = None) -> dict:
    """Summary document for a raw pytest-benchmark JSON.

    ``previous`` is an existing (migrated) summary document to append to:
    its entries are kept verbatim ahead of the new run's, and each new
    entry that has an earlier same-name entry reports
    ``speedup_vs_previous`` against it (wall-time ratio — > 1 is faster).
    """
    base_index = (
        {b["name"]: b for b in baseline.get("benchmarks", [])} if baseline else {}
    )
    prev_latest = latest_by_name(previous) if previous else {}
    stamp = raw.get("datetime")
    entries = []
    for bench in raw["benchmarks"]:
        entry = summarize_benchmark(bench, base_index.get(bench["name"]))
        entry["recorded"] = stamp
        prev = prev_latest.get(entry["name"])
        if prev is not None and prev.get("wall_s_min"):
            entry["speedup_vs_previous"] = prev["wall_s_min"] / entry["wall_s_min"]
        entries.append(entry)
    kept = list(previous["benchmarks"]) if previous else []
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "datetime": stamp,
        "benchmarks": kept + entries,
    }


def check_regressions(
    doc: dict,
    against: dict,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    max_rss_regression: float = DEFAULT_MAX_RSS_REGRESSION,
) -> list[str]:
    """Compare the latest entries of ``doc`` against ``against``.

    Returns one human-readable failure line per benchmark whose events/s
    dropped by more than ``max_regression``, or whose ``peak_rss_mb``
    grew by more than ``max_rss_regression``, relative to the committed
    summary.  Benchmarks present on only one side, or without the
    compared figure, are skipped — each gate guards the metrics both
    summaries track (only the scale benchmarks record RSS, so the memory
    gate covers exactly the entries where memory is the claim).
    """
    failures = []
    reference = latest_by_name(against)
    for name, entry in latest_by_name(doc).items():
        ref = reference.get(name)
        if ref is None:
            continue
        new_eps = entry.get("events_per_s")
        ref_eps = ref.get("events_per_s")
        if new_eps and ref_eps:
            drop = 1.0 - new_eps / ref_eps
            if drop > max_regression:
                failures.append(
                    f"{name}: events/s fell {drop:.1%} "
                    f"({ref_eps:,.0f} -> {new_eps:,.0f}, "
                    f"tolerated {max_regression:.0%})"
                )
        new_rss = entry.get("peak_rss_mb")
        ref_rss = ref.get("peak_rss_mb")
        if new_rss and ref_rss:
            growth = new_rss / ref_rss - 1.0
            if growth > max_rss_regression:
                failures.append(
                    f"{name}: peak RSS grew {growth:.1%} "
                    f"({ref_rss:,.0f} MB -> {new_rss:,.0f} MB, "
                    f"tolerated {max_rss_regression:.0%})"
                )
    return failures


def write_bench_summary(
    results_path: str | Path,
    out_path: str | Path = "BENCH_engine.json",
    baseline_path: str | Path | None = None,
    append: bool = False,
) -> Path:
    """Summarise ``results_path`` into ``out_path``; returns the path.

    With ``append``, an existing summary at ``out_path`` is kept (after
    schema migration) and the new run's entries are added to its log.
    """
    raw = _load_raw(results_path)
    baseline = _load_raw(baseline_path) if baseline_path else None
    out = Path(out_path)
    previous = load_summary(out) if append and out.exists() else None
    doc = summarize(raw, baseline, previous)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="Distil a pytest-benchmark JSON into BENCH_engine.json",
    )
    parser.add_argument("results", help="raw pytest-benchmark JSON")
    parser.add_argument(
        "-o", "--output", default="BENCH_engine.json", help="summary output path"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="earlier raw pytest-benchmark JSON to compute speedups against",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="keep existing entries in the output summary and append this run",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        metavar="SUMMARY",
        help="committed summary to compare events/s against; regressions beyond "
        "--max-regression exit with status 2",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="tolerated fractional events/s drop for --check-against "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--max-rss-regression",
        type=float,
        default=DEFAULT_MAX_RSS_REGRESSION,
        help="tolerated fractional peak_rss_mb growth for --check-against "
        "(default %(default)s)",
    )
    args = parser.parse_args(argv)
    # Load the reference before writing: --check-against may name the very
    # file being (re)written, and the gate must compare against its
    # pre-run state, not the freshly appended one.
    against = load_summary(args.check_against) if args.check_against else None
    path = write_bench_summary(args.results, args.output, args.baseline, args.append)
    summary = json.loads(path.read_text())
    shown = latest_by_name(summary)
    for entry in shown.values():
        line = f"{entry['name']}: {entry['wall_s_min']:.3f}s"
        if "events_per_s" in entry:
            line += f", {entry['events_per_s']:,.0f} events/s"
        if "speedup_vs_baseline" in entry:
            line += f", {entry['speedup_vs_baseline']:.2f}x vs baseline"
        if "speedup_vs_previous" in entry:
            line += f", {entry['speedup_vs_previous']:.2f}x vs previous"
        print(line)
    print(f"wrote {path}")
    if against is not None:
        failures = check_regressions(
            summary, against, args.max_regression, args.max_rss_regression
        )
        for line in failures:
            print(f"REGRESSION {line}")
        if failures:
            return 2
        print("regression gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
