"""Structured, dependency-free logging for the reproduction stack.

Every subsystem gets a named logger (``get_logger("streaming.engine")``)
and emits *events with fields* rather than prose::

    log.info("run-complete", events=152_031, wall_s=4.2)

Two output formats, selected by :func:`configure` or the
``REPRO_LOG_FORMAT`` environment variable:

* ``human`` (default) — ``repro INFO  streaming.engine run-complete
  events=152031 wall_s=4.2`` on stderr;
* ``json`` — one JSON object per line (machine-ingestable; the same
  key/value fields the manifest carries).

The threshold comes from :func:`configure`, the ``--log-level`` CLI flag
(which calls it), or the ``REPRO_LOG_LEVEL`` environment variable;
default ``warning``, so library use is silent unless something is wrong.
Level ``off`` disables everything.

Loggers hold no state beyond their name: level and format are resolved
per call, so tests can flip ``REPRO_LOG_LEVEL`` with ``monkeypatch``
without touching logger objects.  Logging never changes simulation
state — it draws no RNG and only ever formats values it is handed.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, TextIO

#: Recognised level names, in increasing severity.  ``off`` silences all.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}

#: Environment variables consulted when nothing was configured explicitly.
ENV_LEVEL = "REPRO_LOG_LEVEL"
ENV_FORMAT = "REPRO_LOG_FORMAT"

DEFAULT_LEVEL = "warning"
DEFAULT_FORMAT = "human"

#: Explicit overrides installed by :func:`configure`; None falls through
#: to the environment, then the defaults.
_config: dict[str, Any] = {"level": None, "format": None, "stream": None}

_loggers: dict[str, "Logger"] = {}


def configure(
    level: str | None = None,
    fmt: str | None = None,
    stream: TextIO | None = None,
) -> None:
    """Install process-wide logging overrides (the CLI flags land here).

    Any argument left ``None`` keeps its current override; pass
    :func:`reset` to drop everything back to environment resolution.
    """
    if level is not None:
        _validate_level(level)
        _config["level"] = level.lower()
    if fmt is not None:
        _validate_format(fmt)
        _config["format"] = fmt.lower()
    if stream is not None:
        _config["stream"] = stream


def reset() -> None:
    """Drop all explicit overrides (tests use this)."""
    _config.update({"level": None, "format": None, "stream": None})


def _validate_level(name: str) -> None:
    if name.lower() not in LEVELS:
        raise ValueError(f"unknown log level {name!r}; choose from {sorted(LEVELS)}")


def _validate_format(name: str) -> None:
    if name.lower() not in ("human", "json"):
        raise ValueError(f"unknown log format {name!r}; choose 'human' or 'json'")


def resolve_level() -> int:
    """The numeric threshold currently in effect."""
    name = _config["level"] or os.environ.get(ENV_LEVEL, "").strip().lower()
    return LEVELS.get(name, LEVELS[DEFAULT_LEVEL])


def resolve_format() -> str:
    """The output format currently in effect ('human' or 'json')."""
    name = _config["format"] or os.environ.get(ENV_FORMAT, "").strip().lower()
    return name if name in ("human", "json") else DEFAULT_FORMAT


def _stream() -> TextIO:
    return _config["stream"] or sys.stderr


class Logger:
    """A named emitter of structured log events."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def enabled_for(self, level: str) -> bool:
        """Whether events at ``level`` currently pass the threshold."""
        return LEVELS[level] >= resolve_level()

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Emit one event if ``level`` passes the current threshold."""
        if not self.enabled_for(level):
            return
        stream = _stream()
        if resolve_format() == "json":
            record = {
                "ts": round(time.time(), 3),
                "level": level,
                "logger": self.name,
                "event": event,
            }
            record.update(fields)
            line = json.dumps(record, default=str, separators=(",", ":"))
        else:
            parts = [f"repro {level.upper():7s} {self.name} {event}"]
            parts.extend(f"{k}={_fmt(v)}" for k, v in fields.items())
            line = " ".join(parts)
        print(line, file=stream)

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def get_logger(name: str) -> Logger:
    """The (cached) logger for one dotted subsystem name."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = Logger(name)
    return logger
