"""Run manifests: the provenance record written next to campaign outputs.

A manifest answers, after the fact, every question a failed or slow
campaign raises: what configuration ran (and its hash), under which
seeds, how each shard fared (checkpoint resume? retries? which stage
failed?), how long each pipeline stage took in wall and CPU time, and
what the engine/capture counters measured (events processed, peak
event-queue depth, records and bytes synthesized).  It is the
reproduction's equivalent of the per-capture accounting a passive
measurement study keeps for its traces.

Manifests are plain JSON with a schema version; :func:`write_manifest` /
:func:`read_manifest` round-trip losslessly (asserted by
``tests/obs/test_manifest.py``) and the ``repro-p2ptv stats`` subcommand
renders one as a summary table.  See ``docs/observability.md`` for the
full schema.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TraceError
from repro.obs.telemetry import Telemetry

#: Manifest layout version; bump on incompatible changes.
MANIFEST_SCHEMA_VERSION = 1


def config_digest(config: dict) -> str:
    """Stable short hash of a JSON-able configuration dict.

    Canonical-JSON SHA-256, truncated to 12 hex chars — enough to tell
    two campaign configurations apart at a glance in a directory of
    manifests.
    """
    canonical = json.dumps(config, sort_keys=True, default=str, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


@dataclass
class RunManifest:
    """Everything recorded about one campaign run."""

    schema_version: int = MANIFEST_SCHEMA_VERSION
    kind: str = "campaign"
    created_unix: float = 0.0
    command: str | list | None = None
    config: dict = field(default_factory=dict)
    config_hash: str = ""
    seeds: dict = field(default_factory=dict)
    impairment: dict | None = None
    shards: list = field(default_factory=list)
    failures: list = field(default_factory=list)
    telemetry: dict = field(default_factory=dict)
    #: Paths of auxiliary files produced alongside the run (e.g. the
    #: ``--profile`` cProfile dump), keyed by artifact kind.  Optional —
    #: absent in older manifests, ignored by older readers.
    artifacts: dict = field(default_factory=dict)
    #: Campaign-level quality flags (``exec-quarantined`` etc.) — present
    #: when the supervised runtime completed the campaign degraded.
    #: Additive field: absent in older manifests.
    quality_flags: list = field(default_factory=list)
    #: Process-level resource accounting (``peak_rss_mb``: the peak
    #: resident set across all shards, from ``getrusage`` at shard
    #: finalize).  Additive field: absent in older manifests and on
    #: platforms without the ``resource`` module; the CI mega-smoke job
    #: gates its memory ceiling on this entry.
    resources: dict = field(default_factory=dict)

    # ------------------------------------------------------------ transport
    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "RunManifest":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})

    @property
    def ok(self) -> bool:
        """Every shard completed and nothing hit the failure ledger."""
        return not self.failures and all(s.get("ok") for s in self.shards)


def _resources_summary(telemetry: Telemetry) -> dict:
    """Resource section from the run's peak-merged gauges.

    ``resources/*`` gauges are sampled by the shard worker (one
    ``getrusage`` per shard finalize) and peak-merged across shards, so
    the campaign-level peak is the run's true high-water mark regardless
    of backend.
    """
    out = {}
    for name, g in telemetry.gauges.items():
        if name.startswith("resources/") and g.samples:
            out[name.removeprefix("resources/")] = round(g.peak, 1)
    return out


def _impairment_summary(plan) -> dict | None:
    """JSON summary of an :class:`~repro.faults.plan.ImpairmentPlan`."""
    if plan is None:
        return None
    return {
        "seed": plan.seed,
        "is_noop": plan.is_noop,
        "loss": dataclasses.asdict(plan.loss) if plan.loss else None,
        "storms": len(plan.storms),
        "flash_crowds": len(plan.flash_crowds),
        "capture_outages": dataclasses.asdict(plan.capture) if plan.capture else None,
        "clock_skew": dataclasses.asdict(plan.clock) if plan.clock else None,
    }


def manifest_from_campaign(
    campaign, *, command: str | list | None = None
) -> RunManifest:
    """Build a manifest from a finished :class:`~repro.experiments.
    campaign.Campaign` (duck-typed to avoid an import cycle).

    Pure read-only accounting: walking a campaign twice produces the same
    manifest (modulo the ``created_unix`` stamp).
    """
    cfg = campaign.config
    config_dict = dataclasses.asdict(cfg)
    impairment = config_dict.pop("impairment", None)
    # The nested plan is summarised separately; hash covers the full dict.
    config_hash = config_digest({**config_dict, "impairment": impairment})
    # Normalise to JSON-native types (tuples → lists) so a manifest
    # written to disk reads back equal to the in-memory original.
    config_dict = json.loads(json.dumps(config_dict, default=str))

    supervision = getattr(campaign, "supervision", {}) or {}
    shards = []
    for i, app in enumerate(cfg.apps):
        run = campaign.runs.get(app)
        app_failures = [f for f in campaign.failures if f.app == app]
        tel = campaign.shard_telemetry.get(app)
        shards.append(
            {
                "app": app,
                "index": i,
                "base_seed": cfg.seed + i,
                "ok": run is not None,
                "from_checkpoint": bool(run.from_checkpoint) if run else False,
                "engine_seed": int(run.result.config.seed) if run else None,
                "retries": sum(1 for f in app_failures if f.stage == "simulate"),
                "failed_stages": sorted({f.stage for f in app_failures}),
                "telemetry": tel.as_dict() if tel else {},
                # Supervised-runtime record: per-attempt status, the
                # deadline the shard ran under, and the outcome class
                # (ok / quarantined / interrupted).  None on the plain
                # serial/process backends.
                "supervision": supervision.get(app),
            }
        )

    return RunManifest(
        created_unix=round(time.time(), 3),
        command=command,
        config=config_dict,
        config_hash=config_hash,
        seeds={
            "campaign": cfg.seed,
            "world": int(campaign.world.config.seed),
            "engine": {s["app"]: s["engine_seed"] for s in shards},
        },
        impairment=_impairment_summary(cfg.impairment),
        shards=shards,
        failures=[
            {
                "app": f.app,
                "stage": f.stage,
                "attempt": f.attempt,
                "seed": f.seed,
                "error": f.error,
            }
            for f in campaign.failures
        ],
        telemetry=campaign.telemetry.as_dict(),
        resources=_resources_summary(campaign.telemetry),
        quality_flags=[
            {"code": fl.code, "detail": fl.detail}
            for fl in getattr(campaign, "flags", ()) or ()
        ],
    )


def write_manifest(path: str | Path, manifest: RunManifest) -> Path:
    """Write a manifest as pretty-printed JSON; returns the final path."""
    path = Path(path)
    if path.suffix != ".json":
        path = path.with_suffix(path.suffix + ".json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def read_manifest(path: str | Path) -> RunManifest:
    """Read a manifest written by :func:`write_manifest`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"manifest not found: {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path}: not a JSON manifest: {exc}") from exc
    if not isinstance(data, dict):
        raise TraceError(f"{path}: manifest must be a JSON object")
    version = data.get("schema_version")
    if version != MANIFEST_SCHEMA_VERSION:
        raise TraceError(
            f"{path}: unsupported manifest schema {version!r} "
            f"(expected {MANIFEST_SCHEMA_VERSION})"
        )
    return RunManifest.from_dict(data)


def render_manifest_summary(manifest: RunManifest) -> str:
    """Human-readable summary (the ``repro-p2ptv stats`` output)."""
    from repro.report.tables import render_table

    tel = Telemetry.from_dict(manifest.telemetry)
    lines = [
        f"run manifest — {manifest.kind}, config {manifest.config_hash or '?'}"
        f", {'ok' if manifest.ok else 'FAILURES'}",
    ]

    shard_rows = []
    for s in manifest.shards:
        shard_tel = Telemetry.from_dict(s.get("telemetry", {}))
        wall = shard_tel.stage("shard").wall_s
        sup = s.get("supervision") or {}
        shard_rows.append(
            [
                s.get("app", "?"),
                "ok" if s.get("ok") else "FAILED",
                "yes" if s.get("from_checkpoint") else "no",
                str(s.get("engine_seed")),
                str(s.get("retries", 0)),
                str(len(sup["attempts"])) if sup.get("attempts") else "-",
                str(sup.get("outcome") or "-"),
                f"{wall:.2f}" if wall else "-",
            ]
        )
    if shard_rows:
        lines.append(
            render_table(
                ["app", "status", "ckpt", "seed", "retries", "exec att", "exec", "wall s"],
                shard_rows,
                title="SHARDS",
            )
        )

    timer_rows = [
        [path, str(st.calls), f"{st.wall_s:.3f}", f"{st.cpu_s:.3f}"]
        for path, st in sorted(tel.timers.items())
    ]
    if timer_rows:
        lines.append(
            render_table(
                ["stage", "calls", "wall s", "cpu s"], timer_rows, title="STAGE TIMERS"
            )
        )

    counter_rows = [[name, str(v)] for name, v in sorted(tel.counters.items())]
    for name, g in sorted(tel.gauges.items()):
        counter_rows.append([f"{name} (peak)", f"{g.peak:g}"])
    if counter_rows:
        lines.append(render_table(["counter", "value"], counter_rows, title="COUNTERS"))

    if manifest.resources:
        resource_rows = [
            [name, f"{value:g}" if isinstance(value, (int, float)) else str(value)]
            for name, value in sorted(manifest.resources.items())
        ]
        lines.append(
            render_table(["resource", "peak"], resource_rows, title="RESOURCES")
        )

    if manifest.failures:
        lines.append("failures:")
        lines.extend(
            f"  {f.get('app')}/{f.get('stage')} (attempt {f.get('attempt')}, "
            f"seed {f.get('seed')}): {f.get('error')}"
            for f in manifest.failures
        )
    if manifest.quality_flags:
        lines.append("quality flags:")
        lines.extend(
            f"  [{fl.get('code')}] {fl.get('detail', '')}".rstrip()
            for fl in manifest.quality_flags
        )
    return "\n\n".join(lines)


def _flatten_config(config: dict, prefix: str = "") -> dict:
    """Flatten a nested config dict to dotted-path → value."""
    out: dict = {}
    for key, value in config.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(_flatten_config(value, path))
        else:
            out[path] = value
    return out


def render_manifest_diff(a: RunManifest, b: RunManifest) -> str:
    """Side-by-side comparison of two run manifests.

    Reports whether the configurations hash identically (callers that
    gate on comparability — e.g. ``repro-p2ptv stats --diff`` — exit
    nonzero on a mismatch), which config keys diverge, and how stage
    timings and engine counters moved between the runs.  A/B here means
    first/second argument order, typically baseline/candidate.
    """
    from repro.report.tables import render_table

    match = a.config_hash == b.config_hash
    lines = [
        f"manifest diff — A {a.config_hash or '?'} vs B {b.config_hash or '?'}: "
        f"{'configs match' if match else 'CONFIG MISMATCH'}"
    ]

    if not match:
        flat_a = _flatten_config(a.config)
        flat_b = _flatten_config(b.config)
        rows = [
            [key, repr(flat_a.get(key, "<absent>")), repr(flat_b.get(key, "<absent>"))]
            for key in sorted(set(flat_a) | set(flat_b))
            if flat_a.get(key, "<absent>") != flat_b.get(key, "<absent>")
        ]
        if rows:
            lines.append(render_table(["key", "A", "B"], rows, title="CONFIG CHANGES"))

    tel_a = Telemetry.from_dict(a.telemetry)
    tel_b = Telemetry.from_dict(b.telemetry)

    timer_rows = []
    for stage in sorted(set(tel_a.timers) | set(tel_b.timers)):
        wa = tel_a.timers[stage].wall_s if stage in tel_a.timers else None
        wb = tel_b.timers[stage].wall_s if stage in tel_b.timers else None
        if wa is not None and wb is not None and wb > 0:
            delta, speedup = f"{wb - wa:+.3f}", f"{wa / wb:.2f}x"
        else:
            delta, speedup = "-", "-"
        timer_rows.append(
            [
                stage,
                f"{wa:.3f}" if wa is not None else "-",
                f"{wb:.3f}" if wb is not None else "-",
                delta,
                speedup,
            ]
        )
    if timer_rows:
        lines.append(
            render_table(
                ["stage", "A wall s", "B wall s", "Δ", "A/B"],
                timer_rows,
                title="STAGE TIMERS",
            )
        )

    counter_rows = []
    names = sorted(set(tel_a.counters) | set(tel_b.counters))
    for name in names:
        ca, cb = tel_a.counters.get(name), tel_b.counters.get(name)
        delta = f"{cb - ca:+d}" if ca is not None and cb is not None else "-"
        counter_rows.append(
            [
                name,
                str(ca) if ca is not None else "-",
                str(cb) if cb is not None else "-",
                delta,
            ]
        )
    for name in sorted(set(tel_a.gauges) | set(tel_b.gauges)):
        pa = tel_a.gauges[name].peak if name in tel_a.gauges else None
        pb = tel_b.gauges[name].peak if name in tel_b.gauges else None
        delta = f"{pb - pa:+g}" if pa is not None and pb is not None else "-"
        counter_rows.append(
            [
                f"{name} (peak)",
                f"{pa:g}" if pa is not None else "-",
                f"{pb:g}" if pb is not None else "-",
                delta,
            ]
        )
    if counter_rows:
        lines.append(
            render_table(["counter", "A", "B", "Δ"], counter_rows, title="COUNTERS")
        )

    status_rows = [
        ["kind", a.kind, b.kind],
        ["status", "ok" if a.ok else "FAILURES", "ok" if b.ok else "FAILURES"],
        ["shards", str(len(a.shards)), str(len(b.shards))],
        ["failures", str(len(a.failures)), str(len(b.failures))],
    ]
    lines.append(render_table(["", "A", "B"], status_rows, title="RUN STATUS"))
    return "\n\n".join(lines)
