"""Benchmark: regenerate Table III (NAPA-WINE self-induced bias)."""

from benchmarks.conftest import write_artifact
from repro.experiments.table3 import build_table3
from repro.report.paper import PAPER_TABLE3
from repro.report.tables import render_table3


def test_table3_regeneration(benchmark, campaign, output_dir):
    table = benchmark(build_table3, campaign)
    write_artifact(output_dir, "table3.txt", render_table3(table))

    # Paper shape: self-bias magnitude TVAnts > SopCast > PPLive.
    assert (
        table.row("tvants").contrib_byte_pct
        > table.row("sopcast").contrib_byte_pct
        > table.row("pplive").contrib_byte_pct
    )
    # Probes are preferentially contributors, not just contacts.
    for app in ("pplive", "sopcast", "tvants"):
        row = table.row(app)
        assert row.contrib_peer_pct >= row.all_peer_pct

    for app, paper in PAPER_TABLE3.items():
        row = table.row(app)
        benchmark.extra_info[app] = (
            f"contrib bytes {row.contrib_byte_pct:.1f}% "
            f"(paper {paper['contrib_byte_pct']}%), "
            f"contrib peers {row.contrib_peer_pct:.1f}% "
            f"(paper {paper['contrib_peer_pct']}%)"
        )
