"""Benchmark: regenerate Table IV (network awareness — the headline table).

Measures the full awareness-analysis pass (contributor views, all five
partitions, preference indices, probe-bias control) over the three
applications' flow tables, and records the paper-vs-measured cells for the
decisive entries.
"""

from benchmarks.conftest import write_artifact
from repro.experiments.table4 import build_table4
from repro.report.paper import PAPER_TABLE4
from repro.report.tables import render_table4


def _regenerate(campaign):
    # Re-run the analysis itself, not just the flattening: this is the
    # paper's methodology cost on captured traffic.
    from repro.core.framework import AwarenessAnalyzer
    from repro.heuristics.registry import IpRegistry

    registry = IpRegistry.from_world(campaign.world)
    for run in campaign.runs.values():
        run.report = AwarenessAnalyzer(registry).analyze(run.flows)
    return build_table4(campaign)


def test_table4_regeneration(benchmark, campaign, output_dir):
    table = benchmark(_regenerate, campaign)
    write_artifact(output_dir, "table4.txt", render_table4(table))

    # The paper's headline findings, as assertions.
    for app in ("pplive", "sopcast", "tvants"):
        assert table.cell("BW", app, "download").B > 90
    pp = table.cell("AS", "pplive", "download")
    assert pp.B_prime > 2 * pp.P_prime          # PPLive AS byte bias
    sc = table.cell("AS", "sopcast", "download")
    assert abs(sc.B_prime - sc.P_prime) < 2.0   # SopCast AS-blind
    tv = table.cell("AS", "tvants", "download")
    assert tv.P > pp.P                          # TVAnts discovers same-AS better

    for metric, app in (("BW", "tvants"), ("AS", "pplive"), ("AS", "tvants"),
                        ("AS", "sopcast"), ("HOP", "pplive")):
        cell = table.cell(metric, app, "download")
        paper = PAPER_TABLE4[(metric, app, "download")]
        benchmark.extra_info[f"{metric}/{app}"] = (
            f"B'={cell.B_prime:.1f} (paper {paper['B_prime']}), "
            f"P'={cell.P_prime:.1f} (paper {paper['P_prime']}), "
            f"B={cell.B:.1f} (paper {paper['B']}), "
            f"P={cell.P:.1f} (paper {paper['P']})"
        )
