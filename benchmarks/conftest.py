"""Shared benchmark fixtures.

The campaign simulation is the expensive part (minutes); it runs once per
benchmark session and every table/figure bench measures its *regeneration*
step (aggregation + analysis + rendering) on top of it, writing the
rendered artifact to ``benchmarks/output/`` for inspection alongside the
published values.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.campaign import Campaign, CampaignConfig, run_campaign
from repro.streaming.engine import EngineConfig, simulate
from repro.streaming.profiles import get_profile

#: Capture length for benchmark campaigns.  The preference indices are
#: stable well before the paper's 3600 s; 240 s keeps the one-off
#: simulation cost at a few minutes for all four experiments.
BENCH_DURATION_S = 240.0
BENCH_SEED = 42

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def campaign() -> Campaign:
    """The three-application campaign at full profile scale."""
    return run_campaign(
        CampaignConfig(duration_s=BENCH_DURATION_S, seed=BENCH_SEED)
    )


@pytest.fixture(scope="session")
def pplive_popular_run():
    """The PPLive-Popular variant used by Fig. 2's fourth panel."""
    return simulate(
        get_profile("pplive-popular"),
        engine_config=EngineConfig(duration_s=BENCH_DURATION_S, seed=BENCH_SEED + 9),
    )


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_artifact(output_dir: Path, name: str, text: str) -> None:
    """Persist a rendered table/figure next to the benchmark results."""
    (output_dir / name).write_text(text + "\n")
