"""Benchmark: regenerate Figure 2 (AS×AS traffic among high-bw probes).

Covers all four panels of the paper's figure: the three campaign
applications plus the PPLive-Popular variant, whose intra-AS traffic is
dominated by hop-0 (same-LAN) exchange.
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.experiments.figure2 import build_figure2, _probe_matrix
from repro.report.figures import render_figure2
from repro.report.paper import PAPER_FIG2_RATIOS
from repro.trace.flows import build_flow_table


def test_figure2_regeneration(benchmark, campaign, output_dir):
    figure = benchmark(build_figure2, campaign)
    write_artifact(output_dir, "figure2.txt", render_figure2(figure))

    ratios = {m.app: m.ratio_intra_inter for m in figure.matrices}
    # Paper ordering: TVAnts (1.93) > PPLive (0.98) > SopCast (0.2).
    assert ratios["tvants"] > ratios["pplive"] > ratios["sopcast"]
    for app, r in ratios.items():
        benchmark.extra_info[app] = (
            f"R = {r:.2f} (paper {PAPER_FIG2_RATIOS[app]})"
        )


def test_figure2_pplive_popular_panel(benchmark, pplive_popular_run, output_dir):
    result = pplive_popular_run

    def regenerate():
        flows = build_flow_table(
            result.transfers, result.signaling, result.hosts, result.world.paths
        )
        return _probe_matrix(flows)

    matrix = benchmark(regenerate)
    matrix.app = "pplive-popular"
    # Paper: "most of the intra-AS traffic is in this case local traffic
    # (hop count equal to zero)".
    assert matrix.local_share_intra > 0.5
    assert np.trace(matrix.mean_bytes) > 0
    write_artifact(
        output_dir,
        "figure2_pplive_popular.txt",
        f"PPLive-Popular: R = {matrix.ratio_intra_inter:.2f}, "
        f"hop-0 share of intra-AS traffic = {matrix.local_share_intra:.0%}",
    )
    benchmark.extra_info["pplive-popular"] = (
        f"R = {matrix.ratio_intra_inter:.2f}, "
        f"local share = {matrix.local_share_intra:.0%} "
        "(paper: intra-AS dominated by hop-0 traffic)"
    )
