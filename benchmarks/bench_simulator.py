"""Performance benchmarks: the discrete-event engine itself.

These are throughput benchmarks (events/second, wall time per simulated
minute), not paper artifacts — they track the cost of the substrate so
regressions in the hot loops are visible.
"""

import pytest

from repro.streaming.engine import EngineConfig, simulate
from repro.streaming.profiles import get_profile


@pytest.mark.parametrize("app", ["tvants", "sopcast"])
def test_engine_one_minute(benchmark, app):
    """Simulate one minute of one application (full profile scale)."""

    def run():
        return simulate(
            get_profile(app), engine_config=EngineConfig(duration_s=60.0, seed=11)
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["transfers"] = len(result.transfers)
    benchmark.extra_info["simulated_s"] = 60.0


def test_engine_scaling_with_swarm(benchmark):
    """Engine cost at 4× the TVAnts swarm (probe-centric design keeps the
    growth mild — discovery scans dominate, not per-peer protocol)."""
    profile = get_profile("tvants").scaled(4.0)

    def run():
        return simulate(profile, engine_config=EngineConfig(duration_s=30.0, seed=11))

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["swarm"] = profile.swarm_size
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["transfers"] = len(result.transfers)
    benchmark.extra_info["simulated_s"] = 30.0
