"""Benchmark: regenerate Figure 1 (geographical breakdown)."""

from benchmarks.conftest import write_artifact
from repro.experiments.figure1 import build_figure1
from repro.report.figures import render_figure1


def test_figure1_regeneration(benchmark, campaign, output_dir):
    figure = benchmark(build_figure1, campaign)
    write_artifact(output_dir, "figure1.txt", render_figure1(figure))

    for app in ("pplive", "sopcast", "tvants"):
        bars = figure.bar(app)
        # China is the predominant country in every bar (paper §II).
        assert bars.peers["CN"] > 40
        # "A non negligible fraction of the data is exchanged within
        # European countries": EU byte share visible and above zero.
        eu_rx = sum(bars.rx_bytes[c] for c in ("HU", "IT", "FR", "PL"))
        assert eu_rx > 1.0
        benchmark.extra_info[app] = (
            f"CN peers {bars.peers['CN']:.0f}%, EU RX bytes {eu_rx:.0f}%, "
            f"observed peers {bars.total_peers}"
        )

    # Swarm-reach ordering visible in the observed-peer totals.
    assert (
        figure.bar("pplive").total_peers
        > figure.bar("sopcast").total_peers
        > figure.bar("tvants").total_peers
    )
