"""Benchmark: regenerate Table II (stream rates, peers, contributors).

The campaign simulation is session-shared; the bench measures the Table II
aggregation (per-probe rates, distinct-peer counts, contributor counts)
and records paper-vs-measured rows.
"""

from benchmarks.conftest import write_artifact
from repro.experiments.table2 import build_table2
from repro.report.paper import PAPER_TABLE2
from repro.report.tables import render_table2


def test_table2_regeneration(benchmark, campaign, output_dir):
    table = benchmark(build_table2, campaign)
    write_artifact(output_dir, "table2.txt", render_table2(table))

    # Shape assertions mirroring the paper's Table II structure.
    pp, sc, tv = table.row("pplive"), table.row("sopcast"), table.row("tvants")
    assert pp.all_peers_mean > sc.all_peers_mean > tv.all_peers_mean
    assert pp.tx_kbps_mean > 2 * pp.rx_kbps_mean
    assert sc.tx_kbps_mean < sc.rx_kbps_mean

    for app in ("pplive", "sopcast", "tvants"):
        row = table.row(app)
        paper = PAPER_TABLE2[app]
        benchmark.extra_info[app] = (
            f"RX {row.rx_kbps_mean:.0f} kb/s (paper {paper['rx_kbps_mean']}), "
            f"TX {row.tx_kbps_mean:.0f} (paper {paper['tx_kbps_mean']}), "
            f"peers {row.all_peers_mean:.0f} (paper {paper['all_peers_mean']})"
        )
