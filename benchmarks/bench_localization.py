"""Benchmark: the localization extension (paper's future-work section).

Regenerates the per-application network-cost table over the shared
campaign and runs the baseline-vs-aware what-if comparison, asserting the
headline extension result: a network-aware client localises traffic
substantially at preserved streaming quality.
"""

from benchmarks.conftest import write_artifact
from repro.experiments.localization import build_localization, render_localization
from repro.friendliness.whatif import compare_profiles
from repro.streaming.profiles import get_profile, napa_wine


def test_localization_table(benchmark, campaign, output_dir):
    report = benchmark(build_localization, campaign)
    write_artifact(output_dir, "localization.txt", render_localization(report))
    # The AS-aware measured system localises best among the three.
    assert (
        report.row("tvants").cost.as_localization
        > report.row("sopcast").cost.as_localization
    )
    for r in report.rows:
        benchmark.extra_info[r.app] = (
            f"{r.cost.mean_hops_per_byte:.1f} hops/byte, "
            f"intra-AS {100 * r.cost.as_localization:.1f}%"
        )


def test_whatif_aware_client(benchmark, output_dir):
    def run():
        return compare_profiles(
            get_profile("sopcast"), napa_wine(), duration_s=120.0, seed=23
        )

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.hop_reduction > 0.15
    assert outcome.transit_reduction > 0.15
    assert outcome.quality_preserved
    write_artifact(
        output_dir,
        "whatif.txt",
        f"{outcome.baseline.profile} → {outcome.candidate.profile}: "
        f"hops/byte −{100 * outcome.hop_reduction:.0f}%, "
        f"transit −{100 * outcome.transit_reduction:.0f}%, "
        f"quality preserved: {outcome.quality_preserved}",
    )
    benchmark.extra_info["hop_reduction"] = f"{100 * outcome.hop_reduction:.0f}%"
    benchmark.extra_info["transit_reduction"] = (
        f"{100 * outcome.transit_reduction:.0f}%"
    )
