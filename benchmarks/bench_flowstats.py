"""Benchmark: regenerate the related-work flow-level statistics.

Not a table/figure of the paper itself, but the comparative views of its
closest prior work ([12]: mean-packet-size/duration clusters and top-10
contributor shares), recomputed on the same campaign traffic.
"""

from benchmarks.conftest import write_artifact
from repro.experiments.flowstats import build_flowstats, render_flowstats


def test_flowstats_regeneration(benchmark, campaign, output_dir):
    report = benchmark(build_flowstats, campaign)
    write_artifact(output_dir, "flowstats.txt", render_flowstats(report))

    for app in ("pplive", "sopcast", "tvants"):
        scatter = report.scatter(app)
        # Two clusters: MTU-sized video flows and small signaling flows.
        assert 0 < scatter.video_cluster_fraction() < 1
        benchmark.extra_info[app] = (
            f"video-cluster {100 * scatter.video_cluster_fraction():.0f}%, "
            f"top-10 share {100 * report.top(app).mean_share:.0f}%"
        )
    # Concentration ordering mirrors the contributor counts: TVAnts's few
    # providers dominate, PPLive famously spreads across many peers ([12]).
    assert (
        report.top("tvants").mean_share
        > report.top("sopcast").mean_share
        > report.top("pplive").mean_share
        > 0.15
    )
