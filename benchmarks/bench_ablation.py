"""Ablation benches: isolate the design choices DESIGN.md calls out.

Each ablation flips one ground-truth mechanism and measures the awareness
indices, demonstrating which knob produces which published signature:

* AS selection weight     → the B′/P′ byte-over-peer AS ratio;
* BW selection weight     → the 96–98 % byte concentration on fast peers;
* discovery AS bias       → TVAnts-style same-AS *peer* share (P′);
* partner stickiness      → heavy few-pair vs light many-pair traffic.
"""

from dataclasses import replace


from repro import analyze_experiment
from repro.streaming import SelectionWeights, get_profile, simulate

DURATION = 100.0
SEED = 17


def _run(profile):
    result = simulate(profile, duration_s=DURATION, seed=SEED)
    return analyze_experiment(result)


def _base():
    return get_profile("random")


def test_ablation_as_weight(benchmark):
    """Provider AS weight on/off: drives the byte-wise AS preference."""
    aware = replace(
        _base(),
        name="ablate-as-on",
        partner_weights=SelectionWeights(bw=1.8, as_=0.8),
        provider_weights=SelectionWeights(bw=2.2, as_=2.2),
    )
    report_on = benchmark.pedantic(_run, args=(aware,), rounds=1, iterations=1)
    report_off = _run(_base())
    on = report_on["AS"].download
    off = report_off["AS"].download
    assert on.B_prime > off.B_prime + 3
    benchmark.extra_info["B_prime_on"] = round(on.B_prime, 2)
    benchmark.extra_info["B_prime_off"] = round(off.B_prime, 2)


def test_ablation_bw_weight(benchmark):
    """Provider BW weight on/off: drives byte concentration on fast peers."""
    aware = replace(
        _base(),
        name="ablate-bw-on",
        partner_weights=SelectionWeights(bw=2.0),
        provider_weights=SelectionWeights(bw=2.6),
    )
    report_on = benchmark.pedantic(_run, args=(aware,), rounds=1, iterations=1)
    report_off = _run(_base())
    on = report_on["BW"].download
    off = report_off["BW"].download
    assert on.B > off.B + 5
    benchmark.extra_info["B_on"] = round(on.B, 2)
    benchmark.extra_info["B_off"] = round(off.B, 2)


def test_ablation_discovery_bias(benchmark):
    """Tracker AS bias on/off: drives the same-AS *peer* share, the
    TVAnts-vs-PPLive discovery difference."""
    aware = replace(_base(), name="ablate-disc-on", discovery_as_bias=6.0)
    report_on = benchmark.pedantic(_run, args=(aware,), rounds=1, iterations=1)
    report_off = _run(_base())
    on = report_on["AS"].download
    off = report_off["AS"].download
    assert on.P_prime > off.P_prime * 1.5
    benchmark.extra_info["P_prime_on"] = round(on.P_prime, 2)
    benchmark.extra_info["P_prime_off"] = round(off.P_prime, 2)


def test_ablation_partner_stickiness(benchmark):
    """Sticky vs churning partnerships: per-pair byte concentration."""
    sticky = replace(_base(), name="ablate-sticky", partner_stickiness=0.95)
    churny = replace(_base(), name="ablate-churny", partner_stickiness=0.0)

    def run_both():
        return _run(sticky), _run(churny)

    rep_sticky, rep_churny = benchmark.pedantic(run_both, rounds=1, iterations=1)
    v_sticky = rep_sticky.views.download
    v_churny = rep_churny.views.download
    bytes_per_pair_sticky = v_sticky.total_bytes / max(len(v_sticky), 1)
    bytes_per_pair_churny = v_churny.total_bytes / max(len(v_churny), 1)
    assert bytes_per_pair_sticky > bytes_per_pair_churny
    benchmark.extra_info["bytes_per_pair_sticky"] = int(bytes_per_pair_sticky)
    benchmark.extra_info["bytes_per_pair_churny"] = int(bytes_per_pair_churny)
