"""Performance benchmarks: the engine cores at paper swarm scale.

The napa-scale profile runs the measured CCTV-1 population (1.8×10^5
concurrent peers) on the sparse column swarm with alias discovery,
cohort ticking and the 1 Mbps HD channel.  Two benchmark families track
it:

* ``test_engine_crossover_throughput`` — the same profile resized to
  4×10^3 and 4×10^4 peers, under both cores: the crossover axis the
  performance docs tabulate (the object core wins small swarms, the
  batched SoA kernels win at scale).
* ``test_engine_scale_throughput`` — the full 1.8×10^5-peer swarm.  The
  paired object/soa entries in ``BENCH_engine.json`` are the acceptance
  record for the SoA core's scale advantage, and ``peak_rss_mb`` pins
  the bounded-memory claim (the sparse swarm holds columns, not an
  object per peer).

A third family rides the lazy peer-state layer:

* ``test_engine_scale_lazy_throughput`` — napa-scale (1.8×10^5) on the
  SoA core with ``peer_state="lazy"``: the paired entry against the
  eager ``test_engine_scale_throughput[soa]`` record.  The committed
  pair is the acceptance record that lazy materialisation costs ≤10 %
  wall-clock at the paper's measured scale, and the CI gate holds the
  lazy entry to that line (``--max-regression 0.10``).
* ``test_engine_mega_throughput`` — the mega-scale swarm at 5×10^5 and
  10^6 peers, eager vs lazy (``REPRO_SCALE_MEGA=1`` to enable): the
  memory crossover the performance docs tabulate.

Wall-clock here includes world construction and population generation
(both cheap next to the event loop at these horizons), matching the
other engine benchmarks.

``peak_rss_mb`` reads ``ru_maxrss`` — a *process-lifetime* high-water
mark.  Record each scale/peer-state cell in its own pytest process
(``-k`` one bench per invocation); cells sharing a process inherit the
largest earlier footprint and over-report.
"""

import os
import resource
from dataclasses import replace

import pytest

from repro.streaming.engine import EngineConfig, simulate
from repro.streaming.profiles import get_profile
from repro.streaming.soa import ENGINE_NAMES

#: Short horizons keep the full-scale pair affordable (the 1.8×10^5-peer
#: object run costs tens of seconds per simulated five minutes).
CROSSOVER_DURATION_S = 120.0
SCALE_DURATION_S = 300.0
#: The mega swarms amortise less: one simulated minute is enough to pin
#: throughput and residency while keeping the 10^6-peer cells tractable.
MEGA_DURATION_S = 60.0
SCALE_SEED = 42


def _peak_rss_mb() -> float:
    """Process high-water RSS in MiB (ru_maxrss is kilobytes on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@pytest.mark.parametrize("engine", sorted(ENGINE_NAMES))
@pytest.mark.parametrize("swarm", [4000, 40_000])
def test_engine_crossover_throughput(benchmark, swarm, engine):
    """napa-scale resized across the object/SoA crossover region."""
    profile = get_profile("napa-scale").scaled_swarm(swarm)
    config = EngineConfig(duration_s=CROSSOVER_DURATION_S, seed=SCALE_SEED)

    def run():
        return simulate(profile, engine_config=config, engine=engine)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["swarm"] = swarm
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["transfers"] = len(result.transfers)
    benchmark.extra_info["simulated_s"] = CROSSOVER_DURATION_S


@pytest.mark.parametrize("engine", sorted(ENGINE_NAMES))
def test_engine_scale_throughput(benchmark, engine):
    """Both cores on the full paper-scale swarm (1.8×10^5 peers)."""
    profile = get_profile("napa-scale")
    config = EngineConfig(duration_s=SCALE_DURATION_S, seed=SCALE_SEED)

    def run():
        return simulate(profile, engine_config=config, engine=engine)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["swarm"] = profile.swarm_size
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["transfers"] = len(result.transfers)
    benchmark.extra_info["simulated_s"] = SCALE_DURATION_S
    benchmark.extra_info["peak_rss_mb"] = round(_peak_rss_mb(), 1)


def test_engine_scale_lazy_throughput(benchmark):
    """napa-scale on the SoA core with lazy peer-state materialisation.

    The paired entry for ``test_engine_scale_throughput[soa]``: identical
    run, ``peer_state="lazy"`` — on-demand score rows, first-contact
    busy/latency state, blockwise availability.  Byte-identical traces
    (the differential suite pins that); this entry records what the lazy
    indirection costs where it is *not* needed.
    """
    profile = replace(get_profile("napa-scale"), peer_state="lazy")
    config = EngineConfig(duration_s=SCALE_DURATION_S, seed=SCALE_SEED)

    def run():
        return simulate(profile, engine_config=config, engine="soa")

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["engine"] = "soa"
    benchmark.extra_info["swarm"] = profile.swarm_size
    benchmark.extra_info["peer_state"] = "lazy"
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["transfers"] = len(result.transfers)
    benchmark.extra_info["simulated_s"] = SCALE_DURATION_S
    benchmark.extra_info["peak_rss_mb"] = round(_peak_rss_mb(), 1)


@pytest.mark.skipif(
    not os.environ.get("REPRO_SCALE_MEGA"),
    reason="10^5.7-10^6-peer runs; set REPRO_SCALE_MEGA=1 to enable",
)
@pytest.mark.parametrize("peer_state", ["eager", "lazy"])
@pytest.mark.parametrize("swarm", [500_000, 1_000_000])
def test_engine_mega_throughput(benchmark, swarm, peer_state):
    """The mega-scale swarm, eager vs lazy, across the memory crossover.

    One simulated minute on the SoA core.  The lazy cells are the
    acceptance record for the 10^6 memory envelope; the eager cells pin
    what swarm-proportional state costs at the same sizes (score rows
    alone are ~1.1 GB at 10^6).  Run each cell in its own process — see
    the module docstring on ``ru_maxrss``.
    """
    profile = replace(
        get_profile("mega-scale").scaled_swarm(swarm), peer_state=peer_state
    )
    config = EngineConfig(duration_s=MEGA_DURATION_S, seed=SCALE_SEED)

    def run():
        return simulate(profile, engine_config=config, engine="soa")

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["engine"] = "soa"
    benchmark.extra_info["swarm"] = swarm
    benchmark.extra_info["peer_state"] = peer_state
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["transfers"] = len(result.transfers)
    benchmark.extra_info["simulated_s"] = MEGA_DURATION_S
    benchmark.extra_info["peak_rss_mb"] = round(_peak_rss_mb(), 1)


@pytest.mark.skipif(
    not os.environ.get("REPRO_SCALE_HOUR"),
    reason="hour-long acceptance run; set REPRO_SCALE_HOUR=1 to enable",
)
def test_engine_scale_hour(benchmark):
    """One full simulated hour of napa-scale on the SoA core.

    The acceptance run behind the profile: a paper-length capture at the
    paper's swarm size must complete in bounded memory.  ``peak_rss_mb``
    in its ``BENCH_engine.json`` entry is that record — the sparse swarm
    and the sliding SoA windows keep residency flat while chunk ids grow
    without bound over the hour.
    """
    profile = get_profile("napa-scale")
    config = EngineConfig(duration_s=3600.0, seed=SCALE_SEED)

    def run():
        return simulate(profile, engine_config=config, engine="soa")

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["engine"] = "soa"
    benchmark.extra_info["swarm"] = profile.swarm_size
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["transfers"] = len(result.transfers)
    benchmark.extra_info["simulated_s"] = 3600.0
    benchmark.extra_info["peak_rss_mb"] = round(_peak_rss_mb(), 1)
