"""Performance benchmarks: the event-queue schedulers in isolation.

Schedule/dispatch throughput of the calendar queue (:class:`EventQueue`)
against the binary-heap reference (:class:`HeapEventQueue`) it replaced,
on a workload shaped like the engine's: a steady population of periodic
ticks interleaved with short-horizon one-shot events (chunk arrivals,
remote pulls).  The summary in ``BENCH_engine.json`` tracks both, so the
calendar queue's advantage — and any future regression of it — is
visible without running the full engine.

The per-policy engine benchmark below records event throughput under
each chunk scheduler.  Those entries are *recorded, not gated*: the CI
regression gate compares only benchmarks present in the committed
``BENCH_engine.json``, so the alternative policies' numbers accumulate
in the summary artifact without being held to the mesh-pull baseline.
"""

from dataclasses import replace

import pytest

from repro.streaming.engine import EngineConfig, simulate
from repro.streaming.events import EventQueue, HeapEventQueue
from repro.streaming.profiles import get_profile
from repro.streaming.schedulers import SCHEDULER_NAMES
from repro.streaming.soa import ENGINE_NAMES

#: Workload shape, roughly the tvants engine mix: ~100 periodic sources
#: ticking at 0.3 s, each tick scheduling ~1.5 one-shot follow-ups that
#: fire within a second.
N_SOURCES = 100
TICK_INTERVAL_S = 0.3
HORIZON_S = 120.0


def _drive(queue) -> int:
    """Run the synthetic tick/follow-up workload to the horizon."""
    fired = [0, 0]

    def on_arrival(i: int) -> None:
        fired[1] += 1

    def on_tick(i: int) -> None:
        fired[0] += 1
        t = queue.now
        # Deterministic pseudo-jitter (no RNG in the inner loop): two
        # follow-ups on most ticks, one on every third.
        queue.schedule(t + 0.05 + 0.001 * (i % 7), on_arrival, i)
        if i % 3:
            queue.schedule(t + 0.4 + 0.002 * (i % 11), on_arrival, i)
        queue.schedule(t + TICK_INTERVAL_S, on_tick, i)

    for i in range(N_SOURCES):
        queue.schedule(0.001 * i, on_tick, i)
    events = queue.run_until(HORIZON_S)
    assert events == fired[0] + fired[1]
    return events


@pytest.mark.parametrize(
    "impl", [EventQueue, HeapEventQueue], ids=["calendar", "heap"]
)
def test_event_queue_throughput(benchmark, impl):
    """Events dispatched per second through each scheduler."""

    def run():
        return _drive(impl())

    events = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["events"] = events
    benchmark.extra_info["simulated_s"] = HORIZON_S


#: Shared workload for the per-policy engine benchmark: small enough to
#: afford one run per scheduler, large enough that the policies' extra
#: work (rarest's counting scan, push's forwarding) actually shows.
SCHEDULER_BENCH_DURATION_S = 30.0
SCHEDULER_BENCH_SCALE = 0.5


@pytest.mark.parametrize("scheduler", sorted(SCHEDULER_NAMES))
def test_engine_scheduler_throughput(benchmark, scheduler):
    """Engine event throughput under each chunk-scheduling policy.

    Recorded for trend-watching only — new policies are not gated
    against the mesh-pull baseline (see module docstring).
    """
    profile = replace(
        get_profile("tvants").scaled(SCHEDULER_BENCH_SCALE), scheduler=scheduler
    )
    config = EngineConfig(duration_s=SCHEDULER_BENCH_DURATION_S, seed=42)

    def run():
        return simulate(profile, engine_config=config)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    benchmark.extra_info["scheduler"] = scheduler
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["transfers"] = len(result.transfers)
    benchmark.extra_info["simulated_s"] = SCHEDULER_BENCH_DURATION_S


#: Engine-core comparison: every paper application at full profile scale
#: (pplive's 4000-peer swarm is the largest population benchmarked here),
#: under both the object reference core and the struct-of-arrays core.
#: The two are byte-identical for this seed (the differential suite pins
#: it), so the entries measure pure representation cost.  See
#: ``docs/engine-internals.md`` for why SoA trails the object core at
#: NAPA-WINE partner widths.
ENGINE_BENCH_DURATION_S = 30.0
ENGINE_BENCH_APPS = ("pplive", "sopcast", "tvants")


@pytest.mark.parametrize("engine", sorted(ENGINE_NAMES))
@pytest.mark.parametrize("app", ENGINE_BENCH_APPS)
def test_engine_mode_throughput(benchmark, app, engine):
    """Engine event throughput per engine core, per application."""
    profile = get_profile(app)
    config = EngineConfig(duration_s=ENGINE_BENCH_DURATION_S, seed=42)

    def run():
        return simulate(profile, engine_config=config, engine=engine)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["transfers"] = len(result.transfers)
    benchmark.extra_info["simulated_s"] = ENGINE_BENCH_DURATION_S
