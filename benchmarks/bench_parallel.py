"""Benchmark: sharded campaign execution, serial vs. process pool.

Measures the same three-application campaign through both executor
backends and reports the speedup as ``extra_info``.  The shards are
embarrassingly parallel (one app per shard), so on a machine with at
least as many cores as apps the process backend should approach the
slowest single app's runtime — empirically >1.5x over serial at 4
workers on 4+ physical cores.  On starved runners (CI containers with
one core) the pool degrades gracefully to roughly serial speed plus
fork/pickle overhead; the parity of the *results* is asserted here and
the speedup is recorded rather than gated.
"""

import os

import numpy as np

from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.experiments.table4 import build_table4
from repro.report.tables import render_table4

#: Shorter than the shared bench campaign: this file runs the campaign
#: several times (rounds x backends), not once per session.
PARALLEL_BENCH_CONFIG = CampaignConfig(duration_s=60.0, seed=42, scale=0.5)


def _run(backend: str, workers: int | None = None):
    return run_campaign(PARALLEL_BENCH_CONFIG, backend=backend, workers=workers)


def _record_telemetry(benchmark, campaign) -> None:
    """Surface the campaign's own stage timers as benchmark extra_info.

    The same :class:`~repro.obs.telemetry.Telemetry` the run manifest
    reports — no ad-hoc clocks around the benchmark body.
    """
    tel = campaign.telemetry
    benchmark.extra_info["stage_wall_s"] = {
        path: round(stats.wall_s, 4) for path, stats in sorted(tel.timers.items())
    }
    benchmark.extra_info["engine_events"] = tel.counter("engine/events")
    benchmark.extra_info["peak_queue_depth"] = tel.peak("engine/peak_queue_depth")


def test_campaign_serial(benchmark):
    campaign = benchmark.pedantic(_run, args=("serial",), rounds=2, iterations=1)
    assert campaign.ok
    benchmark.extra_info["backend"] = "serial"
    _record_telemetry(benchmark, campaign)


def test_campaign_process_pool(benchmark):
    campaign = benchmark.pedantic(
        _run, args=("process", 4), rounds=2, iterations=1
    )
    assert campaign.ok
    benchmark.extra_info["backend"] = "process"
    benchmark.extra_info["workers"] = 4
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    _record_telemetry(benchmark, campaign)

    # The speedup claim is only meaningful when results are identical:
    # assert parity against a serial run before reporting numbers.
    serial = _run("serial")
    assert render_table4(build_table4(campaign)) == render_table4(
        build_table4(serial)
    )
    for app in serial.runs:
        assert np.array_equal(
            serial[app].result.transfers, campaign[app].result.transfers
        )
