"""Benchmark: sharded campaign execution, serial vs. process pool.

Measures the same three-application campaign through both executor
backends and reports the speedup as ``extra_info``.  The shards are
embarrassingly parallel (one app per shard), so on a machine with at
least as many cores as apps the process backend should approach the
slowest single app's runtime — empirically >1.5x over serial at 4
workers on 4+ physical cores.  On starved runners (CI containers with
one core) the pool degrades gracefully to roughly serial speed plus
fork/pickle overhead; the parity of the *results* is asserted here and
the speedup is recorded rather than gated.
"""

import os
import time

import numpy as np
import pytest

from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.streaming.schedulers import SCHEDULER_NAMES
from repro.experiments.table4 import build_table4
from repro.report.tables import render_table4

#: Tolerated supervised-over-raw wall-time overhead on a clean campaign.
#: Supervision adds an event loop, deadlines and telemetry around the
#: same worker function; with no faults to handle it must stay cheap.
MAX_SUPERVISION_OVERHEAD = 0.05

#: Shorter than the shared bench campaign: this file runs the campaign
#: several times (rounds x backends), not once per session.
PARALLEL_BENCH_CONFIG = CampaignConfig(duration_s=60.0, seed=42, scale=0.5)

#: Single-app campaign for the per-policy entries below — one per
#: scheduler, so kept deliberately small.
SCHEDULER_BENCH_CONFIG = dict(
    apps=("tvants",), duration_s=30.0, seed=42, scale=0.5
)


def _run(backend: str, workers: int | None = None):
    return run_campaign(PARALLEL_BENCH_CONFIG, backend=backend, workers=workers)


def _record_telemetry(benchmark, campaign) -> None:
    """Surface the campaign's own stage timers as benchmark extra_info.

    The same :class:`~repro.obs.telemetry.Telemetry` the run manifest
    reports — no ad-hoc clocks around the benchmark body.
    """
    tel = campaign.telemetry
    benchmark.extra_info["stage_wall_s"] = {
        path: round(stats.wall_s, 4) for path, stats in sorted(tel.timers.items())
    }
    benchmark.extra_info["engine_events"] = tel.counter("engine/events")
    benchmark.extra_info["peak_queue_depth"] = tel.peak("engine/peak_queue_depth")


def test_campaign_serial(benchmark):
    campaign = benchmark.pedantic(_run, args=("serial",), rounds=2, iterations=1)
    assert campaign.ok
    benchmark.extra_info["backend"] = "serial"
    _record_telemetry(benchmark, campaign)


def test_campaign_process_pool(benchmark):
    campaign = benchmark.pedantic(
        _run, args=("process", 4), rounds=2, iterations=1
    )
    assert campaign.ok
    benchmark.extra_info["backend"] = "process"
    benchmark.extra_info["workers"] = 4
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    _record_telemetry(benchmark, campaign)

    # The speedup claim is only meaningful when results are identical:
    # assert parity against a serial run before reporting numbers.
    serial = _run("serial")
    assert render_table4(build_table4(campaign)) == render_table4(
        build_table4(serial)
    )
    for app in serial.runs:
        assert np.array_equal(
            serial[app].result.transfers, campaign[app].result.transfers
        )


@pytest.mark.parametrize("scheduler", sorted(SCHEDULER_NAMES))
def test_campaign_scheduler(benchmark, scheduler):
    """Campaign wall time under each chunk-scheduling policy.

    Recorded, not gated: these entries land in the summary artifact for
    trend-watching but are absent from the committed baseline, so the
    regression gate never compares the alternative policies against
    mesh-pull throughput.
    """
    config = CampaignConfig(scheduler=scheduler, **SCHEDULER_BENCH_CONFIG)

    def run():
        return run_campaign(config, backend="serial")

    campaign = benchmark.pedantic(run, rounds=2, iterations=1)
    assert campaign.ok
    assert campaign["tvants"].result.profile.scheduler == scheduler
    benchmark.extra_info["backend"] = "serial"
    benchmark.extra_info["scheduler"] = scheduler
    _record_telemetry(benchmark, campaign)


def test_campaign_supervised_overhead(benchmark):
    """Supervision tax on a clean campaign: supervised pool vs raw pool.

    With no faults injected, the supervised runtime's extra machinery
    (hand-rolled pool, deadline bookkeeping, digest validation) must cost
    less than :data:`MAX_SUPERVISION_OVERHEAD` of the raw process
    backend's wall time — resilience is not allowed to tax the happy
    path.  Both minima come from the same number of rounds so the
    comparison is symmetric.
    """
    campaign = benchmark.pedantic(
        _run, args=("supervised", 4), rounds=2, iterations=1
    )
    assert campaign.ok
    assert not campaign.flags  # clean run: no degradation marks
    benchmark.extra_info["backend"] = "supervised"
    benchmark.extra_info["workers"] = 4
    _record_telemetry(benchmark, campaign)

    raw_walls = []
    for _ in range(2):
        start = time.perf_counter()
        raw = _run("process", 4)
        raw_walls.append(time.perf_counter() - start)
    assert raw.ok
    supervised_wall = benchmark.stats.stats.min
    overhead = supervised_wall / min(raw_walls) - 1.0
    benchmark.extra_info["raw_process_wall_s_min"] = round(min(raw_walls), 4)
    benchmark.extra_info["supervision_overhead"] = round(overhead, 4)
    assert overhead < MAX_SUPERVISION_OVERHEAD, (
        f"supervised pool is {overhead:.1%} slower than the raw process "
        f"pool on a clean campaign (tolerated {MAX_SUPERVISION_OVERHEAD:.0%})"
    )

    # Supervision must also not *change* anything on the happy path.
    for app in raw.runs:
        assert np.array_equal(
            raw[app].result.transfers, campaign[app].result.transfers
        )
