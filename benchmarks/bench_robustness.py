"""Benchmark: fault-injection severity sweep.

Measures the cost of the impaired-simulation pipeline (Gilbert–Elliott
loss schedule, churn storms, sniffer outages, clock skew, then the full
analysis per severity point) and records how far the headline indices
drift from the pristine baseline — the robustness claim of DESIGN.md in
number form.
"""

from benchmarks.conftest import write_artifact
from repro.experiments.robustness import render_robustness, sweep_robustness


def test_robustness_sweep(benchmark, output_dir):
    report = benchmark(
        sweep_robustness,
        "tvants",
        severities=(0.0, 0.5, 1.0),
        duration_s=120.0,
        seed=7,
    )
    write_artifact(output_dir, "robustness.txt", render_robustness(report))

    # The pristine point must be undamaged and flag-free.
    base = report.baseline
    assert base.dropped_fraction == 0.0
    assert base.bad_time_fraction == 0.0
    assert not base.flags
    # The qualitative verdict (strong BW preference) survives full severity.
    assert all(p.bw_byte_pct > 80 for p in report.points)
    benchmark.extra_info["bw_drift"] = round(report.drift("bw_byte_pct"), 2)
    benchmark.extra_info["as_drift"] = round(
        report.drift("as_byte_pct_nonprobe"), 2
    )
