"""Performance benchmarks: the measurement/analysis pipeline.

Tracks the vectorised trace-processing throughput: flow aggregation from
the transfer log, packet-trace expansion, and the full awareness analysis
— the operations a user runs repeatedly over saved captures.
"""

import pytest

from repro.core.framework import AwarenessAnalyzer
from repro.heuristics.registry import IpRegistry
from repro.trace.flows import FlowTable, build_flow_table
from repro.trace.packets import PacketSynthesizer


@pytest.fixture(scope="module")
def pplive_run(campaign):
    return campaign["pplive"]


def test_flow_aggregation(benchmark, pplive_run, campaign):
    """Transfer log → flow table (the fast analysis path)."""
    result = pplive_run.result
    table = benchmark(
        build_flow_table,
        result.transfers,
        result.signaling,
        result.hosts,
        campaign.world.paths,
    )
    benchmark.extra_info["transfers"] = len(result.transfers)
    benchmark.extra_info["flows"] = len(table)


def test_awareness_analysis(benchmark, pplive_run, campaign):
    """Flow table → full Table IV row group (the paper's methodology)."""
    registry = IpRegistry.from_world(campaign.world)
    analyzer = AwarenessAnalyzer(registry)
    report = benchmark(analyzer.analyze, pplive_run.flows)
    benchmark.extra_info["flows"] = len(pplive_run.flows)
    benchmark.extra_info["metrics"] = len(report.metric_names)


def test_packet_expansion(benchmark, pplive_run, campaign):
    """Transfer log → packet trace (the pcap-equivalent path), on one
    probe's slice of the PPLive experiment."""
    result = pplive_run.result
    probe = int(result.probe_ips[0])
    mask = (result.transfers["src"] == probe) | (result.transfers["dst"] == probe)
    transfers = result.transfers[mask]
    synth = PacketSynthesizer(result.hosts, campaign.world.paths)
    packets = benchmark(synth.expand, transfers)
    benchmark.extra_info["transfers"] = len(transfers)
    benchmark.extra_info["packets"] = len(packets)


def test_flow_table_from_packets(benchmark, pplive_run, campaign):
    """Packet trace → flow table (the slow pcap-analyst path)."""
    result = pplive_run.result
    probe = int(result.probe_ips[0])
    mask = (result.transfers["src"] == probe) | (result.transfers["dst"] == probe)
    transfers = result.transfers[mask][:5000]
    synth = PacketSynthesizer(result.hosts, campaign.world.paths)
    packets = synth.expand(transfers)
    table = benchmark(FlowTable.from_packets, packets, result.hosts)
    benchmark.extra_info["packets"] = len(packets)
    benchmark.extra_info["flows"] = len(table)
