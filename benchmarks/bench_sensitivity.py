"""Benchmark: threshold-sensitivity sweep and temporal convergence.

Robustness extensions of the paper's methodology (DESIGN.md §5): sweep
the heuristics' constants over one experiment's capture and verify the
headline verdicts survive; measure how quickly the windowed indices
converge to their aggregate values.
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.core.partitions import BWPartition
from repro.core.timeseries import windowed_from_flows
from repro.experiments.sensitivity import render_sensitivity, sweep_sensitivity
from repro.heuristics.registry import IpRegistry


def test_sensitivity_sweep(benchmark, campaign, output_dir):
    run = campaign["tvants"]
    registry = IpRegistry.from_world(campaign.world)
    report = benchmark(sweep_sensitivity, run.flows, registry)
    write_artifact(output_dir, "sensitivity.txt", render_sensitivity(report))

    # Verdict robustness across the contributor-threshold sweeps.
    bw = [p.bw_byte_pct for p in report.points if p.parameter.startswith("contributor")]
    assert min(bw) > 90
    benchmark.extra_info["bw_excursion_contrib"] = round(
        report.excursion("bw_byte_pct", "contributor_volume"), 2
    )
    benchmark.extra_info["as_excursion_contrib"] = round(
        report.excursion("as_byte_pct_nonprobe", "contributor_volume"), 2
    )


def test_temporal_convergence(benchmark, campaign, output_dir):
    run = campaign["tvants"]
    duration = run.result.duration_s

    def regenerate():
        return windowed_from_flows(
            run.flows, BWPartition(), window_s=20.0, t_end=duration
        )

    scores = benchmark(regenerate)
    finite = scores.byte_percent[np.isfinite(scores.byte_percent)]
    # BW preference present in every window, converged early.
    assert np.all(finite > 85)
    settle = scores.stabilisation_window(tolerance=5.0)
    assert settle is not None and settle * scores.window_s <= duration / 2
    write_artifact(
        output_dir,
        "convergence.txt",
        "BW byte-preference per 20s window:\n"
        + "  ".join(f"{b:5.1f}" for b in scores.byte_percent)
        + f"\nsettles at window {settle} (t={settle * scores.window_s:.0f}s)",
    )
    benchmark.extra_info["settle_time_s"] = settle * scores.window_s
