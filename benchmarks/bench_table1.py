"""Benchmark: regenerate Table I (testbed summary).

Table I is static configuration, so the bench measures deploying the
Table I testbed onto a fresh synthetic Internet and compressing it back
into the paper's rows — the full provisioning path.
"""

from benchmarks.conftest import write_artifact
from repro.experiments.table1 import build_table1
from repro.report.tables import render_table1
from repro.topology.testbed import build_napa_wine_testbed
from repro.topology.world import World


def _regenerate():
    world = World()
    testbed = build_napa_wine_testbed(world)
    return build_table1(testbed)


def test_table1_regeneration(benchmark, output_dir):
    table = benchmark(_regenerate)
    assert table.total_hosts == 46
    assert table.campus_ases == 6 and table.home_ases == 7
    write_artifact(output_dir, "table1.txt", render_table1(table))
    benchmark.extra_info["paper"] = "44 peers: 37 institution PCs + 7 home PCs"
    benchmark.extra_info["measured"] = (
        f"{table.total_hosts} hosts: {table.institution_hosts} institution "
        f"+ {table.home_hosts} home (Table I as printed)"
    )
