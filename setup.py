"""Legacy setuptools shim.

Exists so ``pip install -e .`` works in offline environments lacking the
``wheel`` package (see the note at the top of ``pyproject.toml``).  All
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
