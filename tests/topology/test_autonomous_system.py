"""AS registry and prefix ownership."""

import pytest

from repro.errors import AllocationError, TopologyError
from repro.topology.autonomous_system import ASRegistry, ASTier, AutonomousSystem
from repro.topology.ip import IPv4Prefix


class TestAutonomousSystem:
    def test_create(self):
        asys = AutonomousSystem(asn=1, name="AS1", country_code="HU")
        assert asys.tier is ASTier.ACCESS

    def test_nonpositive_asn_rejected(self):
        with pytest.raises(TopologyError):
            AutonomousSystem(asn=0, name="x", country_code="IT")

    def test_add_prefix_and_owns(self):
        asys = AutonomousSystem(asn=5, name="x", country_code="FR")
        asys.add_prefix(IPv4Prefix.parse("10.0.0.0/16"))
        assert asys.owns(IPv4Prefix.parse("10.0.5.0/24").network)
        assert not asys.owns(IPv4Prefix.parse("10.1.0.0/16").network)

    def test_overlapping_prefix_rejected(self):
        asys = AutonomousSystem(asn=5, name="x", country_code="FR")
        asys.add_prefix(IPv4Prefix.parse("10.0.0.0/16"))
        with pytest.raises(AllocationError):
            asys.add_prefix(IPv4Prefix.parse("10.0.128.0/17"))


class TestASRegistry:
    def test_create_and_get(self):
        reg = ASRegistry()
        reg.create(1, "AS1", "HU", ASTier.CAMPUS)
        assert reg.get(1).tier is ASTier.CAMPUS

    def test_duplicate_asn_rejected(self):
        reg = ASRegistry()
        reg.create(1, "a", "HU")
        with pytest.raises(TopologyError):
            reg.create(1, "b", "IT")

    def test_unknown_asn_raises(self):
        with pytest.raises(TopologyError):
            ASRegistry().get(99)

    def test_global_prefix_disjointness(self):
        reg = ASRegistry()
        reg.create(1, "a", "HU")
        reg.create(2, "b", "IT")
        reg.assign_prefix(1, IPv4Prefix.parse("10.0.0.0/16"))
        with pytest.raises(AllocationError):
            reg.assign_prefix(2, IPv4Prefix.parse("10.0.64.0/18"))

    def test_owner_of(self):
        reg = ASRegistry()
        reg.create(1, "a", "HU")
        reg.assign_prefix(1, IPv4Prefix.parse("10.0.0.0/16"))
        owner = reg.owner_of(IPv4Prefix.parse("10.0.3.0/24").network)
        assert owner is not None and owner.asn == 1
        assert reg.owner_of(IPv4Prefix.parse("11.0.0.0/16").network) is None

    def test_iteration_and_len(self):
        reg = ASRegistry()
        reg.create(1, "a", "HU")
        reg.create(2, "b", "IT")
        assert len(reg) == 2
        assert reg.asns == [1, 2]
        assert 1 in reg and 3 not in reg
