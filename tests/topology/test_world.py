"""Synthetic-Internet assembly."""

import pytest

from repro.errors import TopologyError
from repro.topology.access import dsl, lan
from repro.topology.autonomous_system import ASTier
from repro.topology.world import HOME_AS_BASE, PROBE_AS_NUMBERS, World, WorldConfig


class TestConstruction:
    def test_probe_ases_registered(self, world):
        for name, (asn, cc) in PROBE_AS_NUMBERS.items():
            asys = world.registry.get(asn)
            assert asys.country_code == cc
            assert asys.tier is ASTier.CAMPUS

    def test_cn_isps(self, world):
        assert len(world.access_isps("CN")) == world.config.cn_access_isps

    def test_every_probe_country_has_isp(self, world):
        for cc in ("IT", "FR", "HU", "PL"):
            assert world.access_isps(cc)

    def test_graph_covers_registry(self, world):
        for asys in world.registry:
            assert asys.asn in world.asgraph

    def test_deterministic(self):
        w1, w2 = World(WorldConfig(seed=9)), World(WorldConfig(seed=9))
        assert w1.registry.asns == w2.registry.asns
        assert sorted(w1.asgraph.graph.edges) == sorted(w2.asgraph.graph.edges)

    def test_seed_changes_wiring(self):
        w1, w2 = World(WorldConfig(seed=1)), World(WorldConfig(seed=2))
        assert sorted(w1.asgraph.graph.edges) != sorted(w2.asgraph.graph.edges)

    def test_invalid_config_rejected(self):
        with pytest.raises(Exception):
            WorldConfig(tier1_count=0)


class TestEndpoints:
    def test_endpoint_in_as_prefix(self):
        w = World()
        asn = w.access_isps("CN")[0]
        e = w.new_endpoint(asn, dsl(4, 0.5))
        assert w.registry.get(asn).owns(e.ip)

    def test_endpoint_country_follows_as(self):
        w = World()
        asn = w.access_isps("JP")[0]
        assert w.new_endpoint(asn, lan()).country_code == "JP"

    def test_remote_subnets_recycled_then_rotated(self):
        w = World()
        asn = w.access_isps("CN")[0]
        first = [w.new_endpoint(asn, dsl(4, 0.5)) for _ in range(3)]
        assert len({e.subnet for e in first}) == 1  # packed into one subnet
        for _ in range(120):
            w.new_endpoint(asn, dsl(4, 0.5))
        later = w.new_endpoint(asn, dsl(4, 0.5))
        assert later.subnet != first[0].subnet  # rolled to a fresh subnet

    def test_explicit_subnet_must_match_as(self):
        w = World()
        a1, a2 = w.access_isps("CN")[:2]
        sub = w.new_subnet(a1)
        with pytest.raises(TopologyError):
            w.new_endpoint(a2, dsl(4, 0.5), subnet=sub)

    def test_unique_addresses(self):
        w = World()
        asn = w.access_isps("CN")[0]
        ips = {w.new_endpoint(asn, dsl(4, 0.5)).ip for _ in range(300)}
        assert len(ips) == 300


class TestHomeAS:
    def test_add_home_as(self):
        w = World()
        asys = w.add_home_as(HOME_AS_BASE, "IT")
        assert asys.asn == HOME_AS_BASE
        assert HOME_AS_BASE in w.asgraph  # attached to the graph
        # Paths reach it.
        e = w.new_endpoint(HOME_AS_BASE, dsl(6, 0.5))
        probe_as = PROBE_AS_NUMBERS["AS2"][0]
        sub = w.new_subnet(probe_as)
        p = w.new_endpoint(probe_as, lan(), subnet=sub)
        assert w.paths.hops(e, p) > 0

    def test_idempotent(self):
        w = World()
        a = w.add_home_as(HOME_AS_BASE, "IT")
        b = w.add_home_as(HOME_AS_BASE, "IT")
        assert a is b

    def test_conflicting_country_rejected(self):
        w = World()
        w.add_home_as(HOME_AS_BASE, "IT")
        with pytest.raises(TopologyError):
            w.add_home_as(HOME_AS_BASE, "FR")
