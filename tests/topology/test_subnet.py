"""Subnet allocation and host addressing."""

import pytest

from repro.errors import AllocationError
from repro.topology.autonomous_system import ASRegistry
from repro.topology.ip import IPv4Prefix
from repro.topology.subnet import SubnetAllocator


@pytest.fixture()
def registry() -> ASRegistry:
    reg = ASRegistry()
    reg.create(1, "a", "HU")
    reg.assign_prefix(1, IPv4Prefix.parse("10.0.0.0/22"))
    return reg


class TestSubnetAllocation:
    def test_sequential_disjoint_subnets(self, registry):
        alloc = SubnetAllocator(registry, 24)
        subs = [alloc.new_subnet(1) for _ in range(4)]
        prefixes = [s.prefix for s in subs]
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1 :]:
                assert not a.overlaps(b)

    def test_exhaustion_raises(self, registry):
        alloc = SubnetAllocator(registry, 24)
        for _ in range(4):  # /22 holds exactly four /24s
            alloc.new_subnet(1)
        with pytest.raises(AllocationError):
            alloc.new_subnet(1)

    def test_no_prefix_as_raises(self, registry):
        registry.create(2, "empty", "IT")
        alloc = SubnetAllocator(registry, 24)
        with pytest.raises(AllocationError):
            alloc.new_subnet(2)

    def test_spans_multiple_prefixes(self, registry):
        registry.assign_prefix(1, IPv4Prefix.parse("10.1.0.0/23"))
        alloc = SubnetAllocator(registry, 24)
        subs = [alloc.new_subnet(1) for _ in range(6)]  # 4 + 2
        assert str(subs[4].prefix) == "10.1.0.0/24"

    def test_site_label_recorded(self, registry):
        alloc = SubnetAllocator(registry, 24)
        s = alloc.new_subnet(1, site="PoliTO")
        assert s.site == "PoliTO"

    def test_bad_prefixlen_rejected(self, registry):
        with pytest.raises(AllocationError):
            SubnetAllocator(registry, 31)

    def test_subnets_property_tracks_all(self, registry):
        alloc = SubnetAllocator(registry, 24)
        alloc.new_subnet(1)
        alloc.new_subnet(1)
        assert len(alloc.subnets) == 2


class TestHostAllocation:
    def test_sequential_addresses_inside_subnet(self, registry):
        alloc = SubnetAllocator(registry, 24)
        sub = alloc.new_subnet(1)
        a, b = alloc.new_host(sub), alloc.new_host(sub)
        assert b == a + 1
        assert sub.prefix.contains(a) and sub.prefix.contains(b)

    def test_skips_network_address(self, registry):
        alloc = SubnetAllocator(registry, 24)
        sub = alloc.new_subnet(1)
        assert alloc.new_host(sub) == sub.prefix.network + 1

    def test_subnet_exhaustion(self, registry):
        alloc = SubnetAllocator(registry, 24)
        sub = alloc.new_subnet(1)
        for _ in range(sub.capacity):
            alloc.new_host(sub)
        with pytest.raises(AllocationError):
            alloc.new_host(sub)

    def test_allocated_counter(self, registry):
        alloc = SubnetAllocator(registry, 24)
        sub = alloc.new_subnet(1)
        assert sub.allocated == 0
        alloc.new_host(sub)
        assert sub.allocated == 1
