"""Access-link classes and the high-bandwidth threshold."""

import pytest

from repro.errors import ConfigurationError
from repro.topology.access import (
    AccessClass,
    AccessLink,
    catv,
    dsl,
    dsl_kbps,
    ftth,
    lan,
)
from repro.units import mbps


class TestFactories:
    def test_lan_symmetric(self):
        link = lan()
        assert link.down_bps == link.up_bps == mbps(100)
        assert link.kind is AccessClass.LAN

    def test_dsl_asymmetric(self):
        link = dsl(6, 0.512)
        assert link.down_bps == mbps(6)
        assert link.up_bps == mbps(0.512)

    def test_catv(self):
        assert catv(6, 0.512).kind is AccessClass.CATV

    def test_ftth_defaults_nat(self):
        assert ftth().nat is True

    def test_dsl_kbps(self):
        link = dsl_kbps(4000, 384)
        assert link.up_bps == 384_000

    def test_flags(self):
        link = dsl(8, 0.384, nat=True, firewall=True)
        assert link.nat and link.firewall

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            AccessLink(AccessClass.DSL, 0, 1)


class TestHighBandwidthClassification:
    """Ground truth must match the paper's 10 Mb/s uplink threshold."""

    def test_lan_is_high(self):
        assert lan().is_high_bandwidth

    @pytest.mark.parametrize(
        "link",
        [dsl(6, 0.512), dsl(4, 0.384), dsl(8, 0.384), dsl(22, 1.8),
         dsl(2.5, 0.384), catv(6, 0.512)],
    )
    def test_every_table1_home_link_is_low(self, link):
        # None of Table I's home accesses exceeds 10 Mb/s upstream.
        assert not link.is_high_bandwidth

    def test_threshold_is_strict(self):
        at_threshold = AccessLink(AccessClass.FTTH, mbps(100), mbps(10))
        above = AccessLink(AccessClass.FTTH, mbps(100), mbps(10.1))
        assert not at_threshold.is_high_bandwidth
        assert above.is_high_bandwidth

    def test_classification_uses_uplink_not_downlink(self):
        fast_down = AccessLink(AccessClass.DSL, mbps(50), mbps(1))
        assert not fast_down.is_high_bandwidth


class TestLabels:
    def test_lan_label(self):
        assert lan().label == "high-bw"

    def test_dsl_label_matches_table1_style(self):
        assert dsl(6, 0.512).label == "DSL 6/0.512"

    def test_catv_label(self):
        assert catv(6, 0.512).label == "CATV 6/0.512"
