"""End-to-end path model: hops, asymmetry, TTL."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.access import dsl, lan
from repro.topology.host import INITIAL_TTL_UNIX
from repro.topology.paths import ACCESS_DEPTH, access_depth
from repro.topology.testbed import build_napa_wine_testbed
from repro.topology.world import World


@pytest.fixture(scope="module")
def setup():
    world = World()
    testbed = build_napa_wine_testbed(world)
    cn_isps = world.access_isps("CN")
    remotes = [world.new_endpoint(cn_isps[0], dsl(4, 0.5)) for _ in range(5)]
    remotes += [world.new_endpoint(cn_isps[1], lan()) for _ in range(5)]
    return world, testbed, remotes


class TestScalarHops:
    def test_self_is_zero(self, setup):
        world, tb, _ = setup
        e = tb.host("BME-1").endpoint
        assert world.paths.hops(e, e) == 0

    def test_same_subnet_is_zero(self, setup):
        world, tb, _ = setup
        assert world.paths.hops(tb.host("PoliTO-1").endpoint, tb.host("PoliTO-2").endpoint) == 0

    def test_cross_site_positive(self, setup):
        world, tb, _ = setup
        h = world.paths.hops(tb.host("PoliTO-1").endpoint, tb.host("BME-1").endpoint)
        assert h >= 3

    def test_deterministic(self, setup):
        world, tb, remotes = setup
        a, b = remotes[0], tb.host("WUT-1").endpoint
        assert world.paths.hops(a, b) == world.paths.hops(a, b)

    def test_asymmetry_bounded_by_jitter(self, setup):
        world, tb, remotes = setup
        span = world.paths.config.jitter_span
        for r in remotes:
            for h in list(tb)[:6]:
                fwd = world.paths.hops(r, h.endpoint)
                rev = world.paths.hops(h.endpoint, r)
                assert abs(fwd - rev) <= span - 1

    def test_intercontinental_longer_than_regional(self, setup):
        world, tb, remotes = setup
        eu_pair = world.paths.hops(
            tb.host("PoliTO-1").endpoint, tb.host("BME-1").endpoint
        )
        cn_eu = world.paths.hops(remotes[0], tb.host("PoliTO-1").endpoint)
        assert cn_eu > eu_pair


class TestTTL:
    def test_windows_initial(self, setup):
        world, tb, remotes = setup
        dst = tb.host("MT-1").endpoint
        ttl = world.paths.ttl_at_receiver(remotes[0], dst)
        assert ttl == 128 - world.paths.hops(remotes[0], dst)

    def test_unix_initial(self, setup):
        world, tb, _ = setup
        cn = world.access_isps("CN")[0]
        src = world.new_endpoint(cn, dsl(4, 0.5), initial_ttl=INITIAL_TTL_UNIX)
        dst = tb.host("MT-1").endpoint
        assert world.paths.ttl_at_receiver(src, dst) == 64 - world.paths.hops(src, dst)

    def test_positive(self, setup):
        world, tb, remotes = setup
        for r in remotes:
            assert world.paths.ttl_at_receiver(r, tb.host("ENST-1").endpoint) > 0


class TestVectorised:
    def test_matches_scalar(self, setup):
        world, tb, remotes = setup
        probes = [h.endpoint for h in tb][:10]
        src = remotes[:5] * 2
        pairs = list(zip(src, probes))
        hops_vec = world.paths.hops_many(
            np.array([a.ip for a, _ in pairs], dtype=np.uint32),
            np.array([a.asn for a, _ in pairs]),
            np.array([a.subnet for a, _ in pairs], dtype=np.uint32),
            np.array([access_depth(a) for a, _ in pairs]),
            np.array([b.ip for _, b in pairs], dtype=np.uint32),
            np.array([b.asn for _, b in pairs]),
            np.array([b.subnet for _, b in pairs], dtype=np.uint32),
            np.array([access_depth(b) for _, b in pairs]),
        )
        for (a, b), h in zip(pairs, hops_vec):
            assert world.paths.hops(a, b) == int(h)

    def test_same_subnet_zero(self, setup):
        world, tb, _ = setup
        a = tb.host("PoliTO-1").endpoint
        b = tb.host("PoliTO-3").endpoint
        out = world.paths.hops_many(
            np.array([a.ip], dtype=np.uint32), np.array([a.asn]),
            np.array([a.subnet], dtype=np.uint32), np.array([access_depth(a)]),
            np.array([b.ip], dtype=np.uint32), np.array([b.asn]),
            np.array([b.subnet], dtype=np.uint32), np.array([access_depth(b)]),
        )
        assert out[0] == 0


class TestConfigAndErrors:
    def test_unknown_as_raises(self, setup):
        world, _, _ = setup
        with pytest.raises(TopologyError):
            world.paths.ensure_asns([999_999])

    def test_access_depth_mapping_complete(self):
        from repro.topology.access import AccessClass

        assert set(ACCESS_DEPTH) == set(AccessClass)

    def test_seeded_paths_reproducible(self):
        w1, w2 = World(), World()
        t1, t2 = build_napa_wine_testbed(w1), build_napa_wine_testbed(w2)
        a1, b1 = t1.host("BME-1").endpoint, t1.host("WUT-9").endpoint
        a2, b2 = t2.host("BME-1").endpoint, t2.host("WUT-9").endpoint
        assert w1.paths.hops(a1, b1) == w2.paths.hops(a2, b2)
