"""The Table I testbed, instantiated literally."""

import pytest

from repro.topology.testbed import SITE_COUNTRIES
from repro.topology.world import HOME_AS_BASE


class TestStructure:
    def test_seven_sites(self, testbed):
        assert len(testbed.sites) == 7
        assert {s.name for s in testbed.sites} == set(SITE_COUNTRIES)

    def test_host_counts_match_table1(self, testbed):
        # Table I as printed: 39 institution + 7 home = 46 hosts.
        assert len(testbed) == 46
        assert len(testbed.institution_hosts) == 39
        assert len(testbed.home_hosts) == 7

    def test_four_countries(self, testbed):
        assert {s.country for s in testbed.sites} == {"HU", "IT", "FR", "PL"}

    def test_site_sizes(self, testbed):
        sizes = {s.name: len(s.hosts) for s in testbed.sites}
        assert sizes == {
            "BME": 5, "PoliTO": 12, "MT": 4, "FFT": 3,
            "ENST": 5, "UniTN": 8, "WUT": 9,
        }

    def test_high_bandwidth_set_is_the_39_lan_hosts(self, testbed):
        assert len(testbed.high_bandwidth_hosts) == 39
        assert all(h.is_institution for h in testbed.high_bandwidth_hosts)


class TestAddressing:
    def test_unique_ips(self, testbed):
        assert len(testbed.probe_ips) == len(testbed)

    def test_campus_as_assignment(self, testbed):
        assert testbed.host("BME-1").endpoint.asn == 1
        assert testbed.host("PoliTO-1").endpoint.asn == 2
        assert testbed.host("UniTN-1").endpoint.asn == 2  # shared AS2
        assert testbed.host("MT-1").endpoint.asn == 3
        assert testbed.host("ENST-1").endpoint.asn == 4
        assert testbed.host("FFT-1").endpoint.asn == 5
        assert testbed.host("WUT-1").endpoint.asn == 6

    def test_home_hosts_each_own_as(self, testbed):
        home_asns = [h.endpoint.asn for h in testbed.home_hosts]
        assert len(set(home_asns)) == 7
        assert all(a >= HOME_AS_BASE for a in home_asns)

    def test_same_site_shares_subnet(self, testbed):
        a = testbed.host("WUT-1").endpoint
        b = testbed.host("WUT-8").endpoint
        assert a.same_subnet(b)

    def test_polito_unitn_different_subnets_same_as(self, testbed):
        a = testbed.host("PoliTO-1").endpoint
        b = testbed.host("UniTN-1").endpoint
        assert a.asn == b.asn == 2
        assert not a.same_subnet(b)


class TestAccessDetails:
    """Spot-check Table I rows."""

    @pytest.mark.parametrize(
        "label,down_mbps,up_mbps,nat,fw",
        [
            ("BME-5", 6, 0.512, False, False),
            ("PoliTO-10", 4, 0.384, False, False),
            ("PoliTO-11", 8, 0.384, True, False),
            ("PoliTO-12", 8, 0.384, True, False),
            ("ENST-5", 22, 1.8, True, False),
            ("UniTN-8", 2.5, 0.384, True, True),
            ("WUT-9", 6, 0.512, False, False),
        ],
    )
    def test_home_rows(self, testbed, label, down_mbps, up_mbps, nat, fw):
        acc = testbed.host(label).endpoint.access
        assert acc.down_bps == pytest.approx(down_mbps * 1e6)
        assert acc.up_bps == pytest.approx(up_mbps * 1e6)
        assert acc.nat == nat and acc.firewall == fw

    def test_enst_lan_firewalled(self, testbed):
        for i in range(1, 5):
            assert testbed.host(f"ENST-{i}").endpoint.access.firewall

    def test_unitn_nat_rows(self, testbed):
        assert testbed.host("UniTN-6").endpoint.access.nat
        assert testbed.host("UniTN-7").endpoint.access.nat
        assert not testbed.host("UniTN-5").endpoint.access.nat

    def test_lookup_unknown_label(self, testbed):
        with pytest.raises(KeyError):
            testbed.host("MIT-1")

    def test_wut9_is_catv(self, testbed):
        from repro.topology.access import AccessClass

        assert testbed.host("WUT-9").endpoint.access.kind is AccessClass.CATV
