"""AS-level graph construction and hop distances."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.asgraph import ASGraph, ASGraphConfig, INTERNAL_HOPS
from repro.topology.autonomous_system import ASRegistry, ASTier


def _registry_and_regions():
    reg = ASRegistry()
    regions = {}
    for asn, tier, region in [
        (10, ASTier.TIER1, "NA"), (11, ASTier.TIER1, "EU"),
        (20, ASTier.TRANSIT, "EU"), (21, ASTier.TRANSIT, "EU"),
        (22, ASTier.TRANSIT, "AS"),
        (30, ASTier.ACCESS, "EU"), (31, ASTier.ACCESS, "AS"),
        (40, ASTier.CAMPUS, "EU"),
    ]:
        cc = {"NA": "US", "EU": "IT", "AS": "CN"}[region]
        reg.create(asn, f"AS{asn}", cc, tier)
        regions[asn] = region
    return reg, regions


@pytest.fixture()
def graph(rng) -> ASGraph:
    reg, regions = _registry_and_regions()
    return ASGraph.build(reg, regions, rng, ASGraphConfig())


class TestBuild:
    def test_connected(self, graph):
        import networkx as nx

        assert nx.is_connected(graph.graph)

    def test_tier1_mesh(self, graph):
        assert graph.graph.has_edge(10, 11)

    def test_every_edge_as_has_uplink(self, graph):
        for asn in (30, 31, 40):
            assert graph.degree(asn) >= 1

    def test_requires_tier1(self, rng):
        reg = ASRegistry()
        reg.create(1, "x", "IT", ASTier.ACCESS)
        with pytest.raises(TopologyError):
            ASGraph.build(reg, {1: "EU"}, rng)

    def test_deterministic_given_rng(self):
        reg1, regions = _registry_and_regions()
        reg2, _ = _registry_and_regions()
        g1 = ASGraph.build(reg1, regions, np.random.default_rng(7))
        g2 = ASGraph.build(reg2, regions, np.random.default_rng(7))
        assert sorted(g1.graph.edges) == sorted(g2.graph.edges)


class TestPaths:
    def test_same_as_path(self, graph):
        assert graph.as_path(30, 30) == [30]

    def test_path_endpoints(self, graph):
        path = graph.as_path(30, 31)
        assert path[0] == 30 and path[-1] == 31

    def test_unknown_as_raises(self, graph):
        with pytest.raises(TopologyError):
            graph.as_path(30, 999)

    def test_internal_hops_by_tier(self, graph):
        assert graph.internal_hops(10) == INTERNAL_HOPS[ASTier.TIER1]
        assert graph.internal_hops(40) == INTERNAL_HOPS[ASTier.CAMPUS]


class TestTransitHops:
    def test_same_as(self, graph):
        assert graph.transit_hops(30, 30) == graph.internal_hops(30)

    def test_symmetric(self, graph):
        for a in (30, 31, 40):
            for b in (30, 31, 40):
                assert graph.transit_hops(a, b) == graph.transit_hops(b, a)

    def test_triangle_inequality_via_shortest_path(self, graph):
        # transit_hops uses shortest paths, so going "via" any AS can't be
        # cheaper than the direct value (minus double-counted internals).
        direct = graph.transit_hops(30, 31)
        via = (
            graph.transit_hops(30, 20)
            + graph.transit_hops(20, 31)
            - graph.internal_hops(20)
        )
        assert direct <= via + graph.internal_hops(20)

    def test_matches_as_path_cost(self, graph):
        path = graph.as_path(30, 31)
        cost = graph.internal_hops(path[0]) + sum(
            1 + graph.internal_hops(asn) for asn in path[1:]
        )
        assert graph.transit_hops(30, 31) == cost

    def test_cache_consistency(self, graph):
        first = graph.transit_hops(30, 31)
        assert graph.transit_hops(30, 31) == first

    def test_unknown_as_raises(self, graph):
        with pytest.raises(TopologyError):
            graph.transit_hops(999, 30)
