"""Country registry."""

import pytest

from repro.errors import TopologyError
from repro.topology.geography import (
    FIGURE1_LABELS,
    PROBE_COUNTRIES,
    WORLD,
    Country,
    CountryRegistry,
)


class TestCountry:
    def test_valid(self):
        c = Country("IT", "Italy", "EU")
        assert c.code == "IT"

    @pytest.mark.parametrize("bad", ["it", "ITA", "I", ""])
    def test_invalid_codes_rejected(self, bad):
        with pytest.raises(TopologyError):
            Country(bad, "x", "EU")


class TestRegistry:
    def test_add_and_get(self):
        reg = CountryRegistry()
        reg.add(Country("IT", "Italy", "EU"))
        assert reg.get("IT").name == "Italy"

    def test_idempotent_add(self):
        reg = CountryRegistry()
        c = Country("IT", "Italy", "EU")
        reg.add(c)
        reg.add(c)
        assert len(reg) == 1

    def test_conflicting_add_rejected(self):
        reg = CountryRegistry([Country("IT", "Italy", "EU")])
        with pytest.raises(TopologyError):
            reg.add(Country("IT", "Italia", "EU"))

    def test_unknown_get_raises(self):
        with pytest.raises(TopologyError):
            CountryRegistry().get("XX")

    def test_contains_and_iter(self):
        reg = CountryRegistry([Country("IT", "Italy", "EU")])
        assert "IT" in reg and "FR" not in reg
        assert [c.code for c in reg] == ["IT"]


class TestWorldDefaults:
    def test_probe_countries_present(self):
        for code in PROBE_COUNTRIES:
            assert code in WORLD

    def test_china_present(self):
        assert WORLD.get("CN").region == "AS"

    def test_figure1_labels_cover_paper(self):
        assert set(FIGURE1_LABELS) == {"CN", "HU", "IT", "FR", "PL"}

    def test_probe_countries_are_european(self):
        for code in PROBE_COUNTRIES:
            assert WORLD.get(code).region == "EU"

    def test_reasonable_world_size(self):
        assert len(WORLD) >= 15
