"""IPv4 address arithmetic."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError
from repro.topology.ip import (
    IPv4Prefix,
    format_ip,
    format_ips,
    parse_ip,
    parse_ips,
    subnet_key,
)

addresses = st.integers(min_value=0, max_value=2**32 - 1)


class TestParseFormat:
    def test_parse_basic(self):
        assert parse_ip("10.0.0.1") == (10 << 24) + 1

    def test_format_basic(self):
        assert format_ip((192 << 24) + (168 << 16) + 5) == "192.168.0.5"

    @given(addresses)
    def test_roundtrip(self, value):
        assert parse_ip(format_ip(value)) == value

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "-1.0.0.0", "a.b.c.d", ""]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            parse_ip(bad)

    def test_format_out_of_range_rejected(self):
        with pytest.raises(AddressError):
            format_ip(2**32)

    def test_vector_roundtrip(self):
        texts = ["1.2.3.4", "255.255.255.255", "0.0.0.0"]
        assert format_ips(parse_ips(texts)) == texts


class TestPrefix:
    def test_parse(self):
        p = IPv4Prefix.parse("10.1.0.0/16")
        assert p.prefixlen == 16
        assert format_ip(p.network) == "10.1.0.0"

    def test_host_bits_cleared(self):
        p = IPv4Prefix(parse_ip("10.1.2.3"), 24)
        assert format_ip(p.network) == "10.1.2.0"

    def test_num_addresses(self):
        assert IPv4Prefix.parse("10.0.0.0/24").num_addresses == 256
        assert IPv4Prefix.parse("10.0.0.0/16").num_addresses == 65536

    def test_host_range_excludes_network_and_broadcast(self):
        p = IPv4Prefix.parse("10.0.0.0/24")
        assert p.first_host == p.network + 1
        assert p.last_host == p.network + 254
        assert p.num_hosts == 254

    def test_contains(self):
        p = IPv4Prefix.parse("10.1.0.0/16")
        assert p.contains(parse_ip("10.1.200.3"))
        assert not p.contains(parse_ip("10.2.0.1"))

    def test_contains_many_matches_scalar(self):
        p = IPv4Prefix.parse("172.16.0.0/12")
        ips = np.array(
            [parse_ip(t) for t in ["172.16.0.1", "172.31.255.9", "172.32.0.1", "8.8.8.8"]],
            dtype=np.uint32,
        )
        mask = p.contains_many(ips)
        assert mask.tolist() == [p.contains(int(ip)) for ip in ips]

    def test_overlap_detection(self):
        a = IPv4Prefix.parse("10.0.0.0/8")
        b = IPv4Prefix.parse("10.5.0.0/16")
        c = IPv4Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_subnets_enumeration(self):
        p = IPv4Prefix.parse("10.0.0.0/22")
        subs = p.subnets(24)
        assert len(subs) == 4
        assert [str(s) for s in subs] == [
            "10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24",
        ]

    def test_subnets_disjoint_and_covering(self):
        p = IPv4Prefix.parse("10.0.0.0/20")
        subs = p.subnets(24)
        assert sum(s.num_addresses for s in subs) == p.num_addresses
        for i, a in enumerate(subs):
            for b in subs[i + 1 :]:
                assert not a.overlaps(b)

    def test_cannot_split_upward(self):
        with pytest.raises(AddressError):
            IPv4Prefix.parse("10.0.0.0/24").subnets(16)

    def test_bad_prefixlen_rejected(self):
        with pytest.raises(AddressError):
            IPv4Prefix(0, 33)

    def test_str(self):
        assert str(IPv4Prefix.parse("10.0.0.0/8")) == "10.0.0.0/8"

    @given(addresses, st.integers(min_value=0, max_value=32))
    def test_prefix_contains_own_network(self, addr, plen):
        p = IPv4Prefix(addr, plen)
        assert p.contains(p.network)


class TestSubnetKey:
    def test_same_slash24(self):
        a, b = parse_ip("10.1.2.3"), parse_ip("10.1.2.250")
        assert subnet_key(np.array([a]))[0] == subnet_key(np.array([b]))[0]

    def test_different_slash24(self):
        a, b = parse_ip("10.1.2.3"), parse_ip("10.1.3.3")
        assert subnet_key(np.array([a]))[0] != subnet_key(np.array([b]))[0]

    @given(addresses)
    def test_key_is_contained_prefix(self, addr):
        key = int(subnet_key(np.array([addr], dtype=np.uint32), 24)[0])
        assert IPv4Prefix(key, 24).contains(addr)
