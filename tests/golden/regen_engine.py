"""Regenerate the golden engine trace hashes.

``engine_trace_hashes.json`` pins the byte-exact output of
:func:`repro.streaming.engine.simulate` (transfers, signaling intervals,
host table) per application at one fixed seed.  Any change to the engine,
topology, population or transport layers that shifts a single byte — an
extra RNG draw, a reordered set iteration, a float computed differently —
fails the determinism test, by design.

**Never regenerate these hashes in the same PR as an engine refactor**:
the whole point is that the fixture is produced by the code *before* the
refactor, so passing the test proves the refactor is byte-identical.  Only
regenerate when the behaviour change is intentional:

    PYTHONPATH=src python tests/golden/regen_engine.py
"""

from __future__ import annotations

import json
import pathlib
import sys

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent
HASHES_PATH = GOLDEN_DIR / "engine_trace_hashes.json"
SCHEDULER_HASHES_PATH = GOLDEN_DIR / "scheduler_trace_hashes.json"

#: One run per application, full profile scale, fixed seed.  All three
#: paper applications are pinned so scheduler/engine refactors are
#: byte-checked against every protocol parameterisation.
ENGINE_GOLDEN_APPS = ("pplive", "sopcast", "tvants")
ENGINE_GOLDEN_KWARGS = dict(duration_s=30.0, seed=1234)

#: One run per chunk-scheduling policy (``--schedulers``): the smallest
#: paper app at a reduced scale keeps the fixture quick while still
#: exercising remotes, churn and every request path.  The ``mesh-pull``
#: entry is redundant with ``engine_trace_hashes.json`` by construction
#: (same engine, different run length) — it pins the *policy dispatch*
#: layer the same way the legacy fixture pins the engine underneath.
SCHEDULER_GOLDEN_APP = "tvants"
SCHEDULER_GOLDEN_SCALE = 0.4
SCHEDULER_GOLDEN_KWARGS = dict(duration_s=20.0, seed=1234)


def compute_hashes() -> dict:
    from repro.streaming.engine import EngineConfig, simulate
    from repro.streaming.profiles import get_profile
    from repro.trace.store import trace_digest

    hashes = {}
    for app in ENGINE_GOLDEN_APPS:
        result = simulate(
            get_profile(app), engine_config=EngineConfig(**ENGINE_GOLDEN_KWARGS)
        )
        hashes[app] = {
            "transfers": trace_digest(result.transfers),
            "signaling": trace_digest(result.signaling),
            "hosts": trace_digest(result.hosts.rows),
            "events": result.events_processed,
        }
    return {"config": dict(ENGINE_GOLDEN_KWARGS), "hashes": hashes}


def compute_scheduler_hashes() -> dict:
    from dataclasses import replace

    from repro.streaming.engine import EngineConfig, simulate
    from repro.streaming.profiles import get_profile
    from repro.streaming.schedulers import SCHEDULER_NAMES
    from repro.trace.store import trace_digest

    base = get_profile(SCHEDULER_GOLDEN_APP).scaled(SCHEDULER_GOLDEN_SCALE)
    hashes = {}
    for name in SCHEDULER_NAMES:
        result = simulate(
            replace(base, scheduler=name),
            engine_config=EngineConfig(**SCHEDULER_GOLDEN_KWARGS),
        )
        hashes[name] = {
            "transfers": trace_digest(result.transfers),
            "signaling": trace_digest(result.signaling),
            "hosts": trace_digest(result.hosts.rows),
            "events": result.events_processed,
        }
    return {
        "app": SCHEDULER_GOLDEN_APP,
        "scale": SCHEDULER_GOLDEN_SCALE,
        "config": dict(SCHEDULER_GOLDEN_KWARGS),
        "hashes": hashes,
    }


def regenerate() -> pathlib.Path:
    HASHES_PATH.write_text(json.dumps(compute_hashes(), indent=2, sort_keys=True) + "\n")
    return HASHES_PATH


def regenerate_schedulers() -> pathlib.Path:
    SCHEDULER_HASHES_PATH.write_text(
        json.dumps(compute_scheduler_hashes(), indent=2, sort_keys=True) + "\n"
    )
    return SCHEDULER_HASHES_PATH


if __name__ == "__main__":
    if "--schedulers" in sys.argv[1:]:
        print(f"wrote {regenerate_schedulers()}")
    else:
        print(f"wrote {regenerate()}")
