"""Regenerate the golden fixtures.

The golden suite pins the *rendered* output of every paper artifact
(Tables I-IV, Figures 1-2) for one fixed campaign.  Any change to the
simulator, the analysis framework, the partitions, or the renderers that
shifts a single character fails the diff test — by design.  If the change
is intentional, regenerate and commit the diff:

    PYTHONPATH=src python tests/golden/regen.py

The configuration matches the session-scoped ``campaign_small`` fixture
(``tests/conftest.py``) so the diff test adds no extra campaign run.
"""

from __future__ import annotations

import pathlib

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

#: Must stay in lockstep with ``campaign_small`` in tests/conftest.py.
GOLDEN_CONFIG_KWARGS = dict(duration_s=90.0, seed=42, scale=0.5)


def render_artifacts(campaign) -> dict[str, str]:
    """Every golden artifact name -> rendered text, for one campaign."""
    from repro.experiments import (
        build_figure1,
        build_figure2,
        build_table1,
        build_table2,
        build_table3,
        build_table4,
    )
    from repro.report.figures import render_figure1, render_figure2
    from repro.report.tables import (
        render_table1,
        render_table2,
        render_table3,
        render_table4,
    )

    return {
        "table1": render_table1(build_table1(campaign.testbed)),
        "table2": render_table2(build_table2(campaign)),
        "table3": render_table3(build_table3(campaign)),
        "table4": render_table4(build_table4(campaign)),
        "figure1": render_figure1(build_figure1(campaign)),
        "figure2": render_figure2(build_figure2(campaign)),
    }


def regenerate() -> list[pathlib.Path]:
    from repro.experiments.campaign import CampaignConfig, run_campaign

    campaign = run_campaign(CampaignConfig(**GOLDEN_CONFIG_KWARGS))
    if not campaign.ok:
        raise RuntimeError(f"golden campaign failed: {campaign.failures}")
    written = []
    for name, text in render_artifacts(campaign).items():
        path = GOLDEN_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        written.append(path)
    return written


if __name__ == "__main__":
    for path in regenerate():
        print(f"wrote {path}")
