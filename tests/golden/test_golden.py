"""Golden regression diff: rendered artifacts vs. committed fixtures.

Reuses the session-scoped ``campaign_small`` fixture — its configuration
is asserted identical to the regeneration helper's, so the pinned text
always corresponds to what this test renders.
"""

import difflib

import pytest

from repro.experiments.campaign import CampaignConfig

from tests.golden.regen import GOLDEN_CONFIG_KWARGS, GOLDEN_DIR, render_artifacts

ARTIFACTS = ("table1", "table2", "table3", "table4", "figure1", "figure2")


def test_golden_config_matches_shared_fixture():
    """regen.py and conftest.campaign_small must describe the same run."""
    assert CampaignConfig(**GOLDEN_CONFIG_KWARGS) == CampaignConfig(
        duration_s=90.0, seed=42, scale=0.5
    )


def test_all_fixtures_committed():
    missing = [n for n in ARTIFACTS if not (GOLDEN_DIR / f"{n}.txt").exists()]
    assert not missing, (
        f"golden fixtures missing: {missing} — run "
        f"`PYTHONPATH=src python tests/golden/regen.py`"
    )


@pytest.mark.parametrize("name", ARTIFACTS)
def test_rendered_output_matches_golden(name, campaign_small):
    expected = (GOLDEN_DIR / f"{name}.txt").read_text()
    actual = render_artifacts(campaign_small)[name] + "\n"
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                actual.splitlines(),
                fromfile=f"golden/{name}.txt",
                tofile="rendered",
                lineterm="",
            )
        )
        pytest.fail(
            f"{name} drifted from its golden fixture.\n{diff}\n\n"
            f"If this change is intentional, regenerate with "
            f"`PYTHONPATH=src python tests/golden/regen.py` and commit."
        )
