"""Deterministic pair hashing (the stateless jitter source)."""

import numpy as np
from hypothesis import given, strategies as st

from repro._hashing import mix64, pair_hash, pair_randint, pair_uniform

u32 = st.integers(min_value=0, max_value=2**32 - 1)
seeds = st.integers(min_value=0, max_value=2**63 - 1)


class TestMix64:
    def test_deterministic(self):
        assert int(mix64(12345)) == int(mix64(12345))

    def test_vector_matches_scalar(self):
        xs = np.array([0, 1, 2, 2**40, 2**63], dtype=np.uint64)
        vec = mix64(xs)
        for x, v in zip(xs, vec):
            assert int(mix64(int(x))) == int(v)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_bijective_on_samples(self, x):
        # splitmix64's finaliser is a bijection; distinct inputs in a small
        # neighbourhood never collide.
        assert int(mix64(x)) != int(mix64(x ^ 1))

    def test_avalanche(self):
        # Flipping one input bit flips roughly half the output bits.
        a = int(mix64(0xDEADBEEF))
        b = int(mix64(0xDEADBEEE))
        assert 16 <= bin(a ^ b).count("1") <= 48


class TestPairHash:
    @given(u32, u32, seeds)
    def test_deterministic(self, a, b, seed):
        assert int(pair_hash(a, b, seed)) == int(pair_hash(a, b, seed))

    @given(u32, u32)
    def test_ordered(self, a, b):
        if a != b:
            assert int(pair_hash(a, b)) != int(pair_hash(b, a))

    @given(u32, u32, seeds, seeds)
    def test_seed_sensitivity(self, a, b, s1, s2):
        if s1 != s2:
            assert int(pair_hash(a, b, s1)) != int(pair_hash(a, b, s2))

    def test_vectorised_matches_scalar(self):
        a = np.array([1, 2, 3], dtype=np.uint32)
        b = np.array([9, 8, 7], dtype=np.uint32)
        vec = pair_hash(a, b, 5)
        for i in range(3):
            assert int(pair_hash(int(a[i]), int(b[i]), 5)) == int(vec[i])


class TestPairUniform:
    @given(u32, u32, seeds)
    def test_in_unit_interval(self, a, b, seed):
        u = float(pair_uniform(a, b, seed))
        assert 0.0 <= u < 1.0

    def test_roughly_uniform(self):
        a = np.arange(10_000, dtype=np.uint32)
        u = pair_uniform(a, a + 1, 7)
        assert abs(u.mean() - 0.5) < 0.02
        assert abs(np.quantile(u, 0.25) - 0.25) < 0.02


class TestPairRandint:
    @given(u32, u32, st.integers(min_value=1, max_value=1000), seeds)
    def test_in_range(self, a, b, bound, seed):
        v = int(pair_randint(a, b, bound, seed))
        assert 0 <= v < bound

    def test_zero_bound_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            pair_randint(1, 2, 0)

    def test_covers_all_values(self):
        a = np.arange(3000, dtype=np.uint32)
        v = pair_randint(a, a * 7 + 1, 3, 11)
        assert set(np.unique(v)) == {0, 1, 2}
