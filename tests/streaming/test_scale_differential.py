"""Paper-scale differential suite: representation and engine invariance.

Two independence claims make the napa-scale profile trustworthy:

* **Representation independence** — a :class:`SparseSwarm` and its own
  ``peers()`` object view describe the same population, so an engine fed
  either must emit byte-identical traces.  This is the sparse ≡ dense
  contract at a size where the object directory is still affordable.
* **Engine independence** — under the full napa-scale feature set
  (sparse columns, cross-swarm audience, alias-sampled discovery, cohort
  ticking, the 1 Mbps HD channel) the object and SoA cores must stay
  byte-identical, mid-scale, for every digest the goldens pin.

Both are checked through full digests: transfer rows, signaling rows,
host rows, total events processed and the per-kind dispatch counters.
"""

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.population.demographics import crossswarm_audience
from repro.population.sparse import SparseSwarmConfig, generate_sparse_swarm
from repro.streaming.engine import EngineConfig, simulate
from repro.streaming.profiles import get_profile
from repro.streaming.soa import get_engine
from repro.topology.testbed import build_napa_wine_testbed
from repro.config import RngBundle
from repro.topology.world import World
from repro.trace.store import trace_digest


def _digest(res):
    return {
        "transfers": trace_digest(res.transfers),
        "signaling": trace_digest(res.signaling),
        "hosts": trace_digest(res.hosts.rows),
        "events": res.events_processed,
        "dispatch": res.extras["engine_stats"]["dispatch_by_kind"],
    }


def _napa(size):
    return get_profile("napa-scale").scaled_swarm(size)


def _run_with_population(profile, representation, *, engine, seed, duration_s):
    """Simulate with the population passed as columns or as objects.

    Rebuilds :func:`simulate`'s plumbing with the population step made
    explicit, so the two representations of one drawn swarm can be fed to
    otherwise-identical engines.  Worlds are rebuilt per run — IP
    assignment advances per-AS cursors, so sharing one would entangle the
    populations.
    """
    world = World()
    testbed = build_napa_wine_testbed(world)
    demo = crossswarm_audience(probe_as_fraction=profile.probe_as_fraction)
    swarm = generate_sparse_swarm(
        world,
        SparseSwarmConfig(size=profile.swarm_size, demographics=demo),
        RngBundle(seed)["population"],
    )
    population = swarm if representation == "sparse" else swarm.peers()
    cls = get_engine(engine)
    config = EngineConfig(duration_s=duration_s, seed=seed)
    return cls(world, testbed, profile, population, config).run()


class TestRepresentationIndependence:
    """SparseSwarm columns ≡ its RemotePeer view, byte for byte."""

    @pytest.mark.parametrize("engine", ["object", "soa"])
    def test_sparse_equals_dense_small_n(self, engine):
        profile = _napa(800)
        kw = dict(engine=engine, seed=7, duration_s=60.0)
        sparse = _digest(_run_with_population(profile, "sparse", **kw))
        dense = _digest(_run_with_population(profile, "dense", **kw))
        assert sparse == dense

    def test_representations_share_population_identity(self):
        """Both views come from one draw — same IPs, same link plans."""
        world = World()
        demo = crossswarm_audience(probe_as_fraction=0.005)
        swarm = generate_sparse_swarm(
            world,
            SparseSwarmConfig(size=500, demographics=demo),
            RngBundle(7)["population"],
        )
        cols = swarm.columns()
        peers = swarm.peers()
        assert [p.endpoint.ip for p in peers] == cols.ip.tolist()
        assert [p.endpoint.access.up_bps for p in peers] == cols.up_bps.tolist()


class TestEngineIndependenceAtScale:
    """Object ≡ SoA under the full napa-scale feature set, mid-scale."""

    def test_napa_scale_mid_swarm_byte_identity(self):
        profile = _napa(2500)
        a = _digest(simulate(profile, seed=7, duration_s=90.0, engine="object"))
        b = _digest(simulate(profile, seed=7, duration_s=90.0, engine="soa"))
        assert a == b

    def test_napa_scale_alias_discovery_survives_reseed(self):
        profile = _napa(1200)
        for seed in (3, 19):
            a = _digest(simulate(profile, seed=seed, duration_s=45.0, engine="object"))
            b = _digest(simulate(profile, seed=seed, duration_s=45.0, engine="soa"))
            assert a == b, seed

    @pytest.mark.parametrize("cohort", [True, False])
    def test_engines_agree_under_either_tick_schedule(self, cohort):
        """Cohort ticking changes *when* probes tick (one shared clock vs
        staggered offsets) — a profile-level behaviour both cores must
        reproduce identically.  The SoA core's multi-probe batching only
        exists under the cohort schedule, so the ``False`` leg pins the
        fallback path too."""
        profile = replace(_napa(1200), tick_cohort=cohort)
        a = _digest(simulate(profile, seed=7, duration_s=45.0, engine="object"))
        b = _digest(simulate(profile, seed=7, duration_s=45.0, engine="soa"))
        assert a == b


class TestLazyPeerState:
    """Lazy materialisation ≡ eager precompute, byte for byte.

    The mega-scale kernels (on-demand score rows, first-contact busy and
    latency state, blockwise availability) must compute the very same
    IEEE doubles the eager path precomputes up front — checked at test
    scale across both engine cores and both population representations,
    including the mega-scale profile's own configuration resized down.
    """

    @pytest.mark.parametrize("engine", ["object", "soa"])
    def test_lazy_equals_eager_both_engines(self, engine):
        base = _napa(1200)
        kw = dict(seed=7, duration_s=45.0, engine=engine)
        a = _digest(simulate(replace(base, peer_state="eager"), **kw))
        b = _digest(simulate(replace(base, peer_state="lazy"), **kw))
        assert a == b

    @pytest.mark.parametrize("engine", ["object", "soa"])
    def test_mega_scale_config_matches_eager_at_test_scale(self, engine):
        lazy = get_profile("mega-scale").scaled_swarm(2500)
        assert lazy.peer_state == "lazy"
        kw = dict(seed=7, duration_s=60.0, engine=engine)
        a = _digest(simulate(lazy, **kw))
        b = _digest(simulate(replace(lazy, peer_state="eager"), **kw))
        assert a == b

    @pytest.mark.parametrize("engine", ["object", "soa"])
    def test_lazy_sparse_equals_dense(self, engine):
        profile = replace(_napa(800), peer_state="lazy")
        kw = dict(engine=engine, seed=7, duration_s=60.0)
        sparse = _digest(_run_with_population(profile, "sparse", **kw))
        dense = _digest(_run_with_population(profile, "dense", **kw))
        assert sparse == dense

    @pytest.mark.parametrize("engine", ["object", "soa"])
    def test_lazy_stats_report_touched_subsets(self, engine):
        """The lazy counters expose the point of the whole layer: the
        resident per-remote state covers a strict subset of the swarm.
        They count protocol-level contacts, so both cores must agree."""
        profile = replace(_napa(1200), peer_state="lazy")
        res = simulate(profile, seed=7, duration_s=45.0, engine=engine)
        stats = res.extras["engine_stats"]
        assert stats["peer_state"] == "lazy"
        lazy = stats["lazy"]
        n = profile.swarm_size
        assert 0 < lazy["max_touched_busy"] < n
        assert 0 < lazy["max_touched_lat"] < n
        assert lazy["score_row_misses"] >= lazy["score_rows_cached"] > 0

    def test_lazy_counters_engine_agnostic(self):
        profile = replace(_napa(1200), peer_state="lazy")
        a = simulate(profile, seed=7, duration_s=45.0, engine="object")
        b = simulate(profile, seed=7, duration_s=45.0, engine="soa")
        assert (
            a.extras["engine_stats"]["lazy"] == b.extras["engine_stats"]["lazy"]
        )


class TestScaleValidation:
    def test_full_size_profile_is_sparse_and_cohorted(self):
        prof = get_profile("napa-scale")
        assert prof.swarm == "sparse"
        assert prof.discovery == "alias"
        assert prof.tick_cohort
        assert prof.swarm_size == 180_000

    def test_scaled_swarm_rejects_discovery_overflow(self):
        with pytest.raises(ConfigurationError, match="discovery reach"):
            _napa(100)
