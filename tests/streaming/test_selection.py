"""Awareness-weighted peer selection."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.streaming.selection import (
    CandidateFeatures,
    SelectionPolicy,
    SelectionWeights,
)


def feats(highbw, same_as=None, same_cc=None, same_net=None, near=None):
    n = len(highbw)
    z = np.zeros(n, dtype=bool)
    return CandidateFeatures(
        highbw=np.asarray(highbw, dtype=bool),
        same_as=np.asarray(same_as, dtype=bool) if same_as is not None else z,
        same_cc=np.asarray(same_cc, dtype=bool) if same_cc is not None else z.copy(),
        same_net=np.asarray(same_net, dtype=bool) if same_net is not None else z.copy(),
        near=np.asarray(near, dtype=bool) if near is not None else z.copy(),
    )


class TestWeights:
    def test_no_awareness(self):
        assert not SelectionWeights().any_awareness()

    def test_any_awareness(self):
        assert SelectionWeights(bw=1.0).any_awareness()
        assert SelectionWeights(hop=0.5).any_awareness()


class TestScores:
    def test_zero_weights_flat(self, rng):
        policy = SelectionPolicy(SelectionWeights(), rng)
        s = policy.scores(feats([True, False, True]))
        assert np.all(s == 0)

    def test_additive(self, rng):
        policy = SelectionPolicy(SelectionWeights(bw=1.0, as_=2.0), rng)
        f = feats([True, False], same_as=[True, False])
        s = policy.scores(f)
        assert s[0] == pytest.approx(3.0)
        assert s[1] == pytest.approx(0.0)


class TestProbabilities:
    def test_sum_to_one(self, rng):
        policy = SelectionPolicy(SelectionWeights(bw=2.0), rng)
        p = policy.probabilities(feats([True, False, False, True]))
        assert p.sum() == pytest.approx(1.0)

    def test_uniform_when_weightless(self, rng):
        policy = SelectionPolicy(SelectionWeights(), rng)
        p = policy.probabilities(feats([True, False, True, False]))
        assert np.allclose(p, 0.25)

    def test_weight_ratio_is_exponential(self, rng):
        w = 1.5
        policy = SelectionPolicy(SelectionWeights(bw=w), rng)
        p = policy.probabilities(feats([True, False]))
        assert p[0] / p[1] == pytest.approx(math.exp(w))

    def test_temperature_flattens(self, rng):
        sharp = SelectionPolicy(SelectionWeights(bw=2.0), rng, temperature=0.5)
        flat = SelectionPolicy(SelectionWeights(bw=2.0), rng, temperature=4.0)
        f = feats([True, False])
        assert sharp.probabilities(f)[0] > flat.probabilities(f)[0]

    def test_empty_batch(self, rng):
        policy = SelectionPolicy(SelectionWeights(bw=1.0), rng)
        assert len(policy.probabilities(feats([]))) == 0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.booleans(), min_size=1, max_size=30),
        st.floats(min_value=0.0, max_value=5.0),
    )
    def test_property_valid_distribution(self, flags, w):
        policy = SelectionPolicy(
            SelectionWeights(bw=w), np.random.default_rng(0)
        )
        p = policy.probabilities(feats(flags))
        assert np.all(p >= 0)
        assert p.sum() == pytest.approx(1.0)


class TestChoose:
    def test_choose_distinct(self, rng):
        policy = SelectionPolicy(SelectionWeights(bw=1.0), rng)
        picked = policy.choose(feats([True] * 10), k=5)
        assert len(set(picked.tolist())) == 5

    def test_choose_caps_at_batch(self, rng):
        policy = SelectionPolicy(SelectionWeights(), rng)
        assert len(policy.choose(feats([True, False]), k=10)) == 2

    def test_choose_empty(self, rng):
        policy = SelectionPolicy(SelectionWeights(), rng)
        assert len(policy.choose(feats([]), k=3)) == 0
        assert policy.choose_one(feats([])) == -1

    def test_bias_observable_in_sampling(self):
        policy = SelectionPolicy(
            SelectionWeights(bw=2.5), np.random.default_rng(0)
        )
        f = feats([True] * 30 + [False] * 70)
        hits = sum(int(policy.choose_one(f)) < 30 for _ in range(800))
        # e^2.5 ≈ 12.2 weight: expected high-bw pick share ≈ 0.84.
        assert hits / 800 > 0.7

    def test_zero_temperature_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            SelectionPolicy(SelectionWeights(), rng, temperature=0.0)

    def test_deterministic_given_rng(self):
        f = feats([True, False] * 10)
        a = SelectionPolicy(SelectionWeights(bw=1.0), np.random.default_rng(5))
        b = SelectionPolicy(SelectionWeights(bw=1.0), np.random.default_rng(5))
        assert a.choose(f, 5).tolist() == b.choose(f, 5).tolist()


class TestCachedPathBitEquivalence:
    """The engine's cached selection paths must replay numpy's draws exactly.

    Byte-identical simulation output hinges on three equivalences, each
    checked here for both the returned index *and* the post-call RNG
    state: the k=1 fast path vs ``Generator.choice``, the memoised-CDF
    path vs the uncached one, and score-row sampling vs feature sampling.
    """

    @staticmethod
    def _scores(seed, n):
        return np.random.default_rng(seed ^ 0xA5).normal(0.0, 2.0, size=n)

    @given(seed=st.integers(0, 2**20), n=st.integers(1, 12))
    @settings(max_examples=80, deadline=None)
    def test_k1_fast_path_matches_generator_choice(self, seed, n):
        scores = self._scores(seed, n)
        a, b = np.random.default_rng(seed), np.random.default_rng(seed)
        policy = SelectionPolicy(SelectionWeights(bw=1.0), a)
        p = policy.probabilities_from_scores(scores)
        got = policy._sample(n, 1, p)
        want = b.choice(n, size=1, replace=False, p=p)
        assert got.tolist() == want.tolist()
        assert a.bit_generator.state == b.bit_generator.state

    @given(seed=st.integers(0, 2**20), n=st.integers(1, 12))
    @settings(max_examples=80, deadline=None)
    def test_cached_cdf_matches_uncached_choose(self, seed, n):
        scores = self._scores(seed, n)
        a, b = np.random.default_rng(seed), np.random.default_rng(seed)
        cached = SelectionPolicy(SelectionWeights(bw=1.0), a)
        uncached = SelectionPolicy(SelectionWeights(bw=1.0), b)
        cdf = cached.cdf_from_scores(scores)  # consumes no draws
        assert cached.sample_index(cdf) == uncached.choose_one_scored(scores)
        assert a.bit_generator.state == b.bit_generator.state

    @given(seed=st.integers(0, 2**20), n=st.integers(1, 10), k=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_score_row_matches_feature_path(self, seed, n, k):
        rng_feats = np.random.default_rng(seed ^ 0x3C)
        f = feats(
            rng_feats.random(n) < 0.5,
            same_as=rng_feats.random(n) < 0.5,
            near=rng_feats.random(n) < 0.5,
        )
        a, b = np.random.default_rng(seed), np.random.default_rng(seed)
        by_row = SelectionPolicy(SelectionWeights(bw=1.0, as_=0.7, hop=0.3), a)
        by_feats = SelectionPolicy(SelectionWeights(bw=1.0, as_=0.7, hop=0.3), b)
        row = by_row.scores(f)  # precomputed score row, as the engine caches
        assert by_row.choose_scored(row, k).tolist() == by_feats.choose(f, k).tolist()
        assert a.bit_generator.state == b.bit_generator.state
