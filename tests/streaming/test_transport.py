"""Transport: uplink serialisation, recording, signaling book."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.streaming.transport import (
    SignalingBook,
    TransferRecorder,
    UplinkScheduler,
    bottleneck_bps,
    path_latency,
)
from repro.trace.records import SIGNALING_DTYPE, TRANSFER_DTYPE, PacketKind
from repro.units import kbps, mbps


class TestHelpers:
    def test_bottleneck(self):
        assert bottleneck_bps(mbps(100), mbps(4)) == mbps(4)
        assert bottleneck_bps(kbps(384), mbps(100)) == kbps(384)

    def test_latency_grows_with_hops(self):
        assert path_latency(20) > path_latency(2) > 0


class TestRecorder:
    def test_round_trip(self):
        rec = TransferRecorder()
        rec.record(1.0, 10, 20, 16000, PacketKind.VIDEO, mbps(10))
        rec.record(0.5, 11, 21, 80, PacketKind.CONTROL, mbps(1))
        out = rec.finalize()
        assert out.dtype == TRANSFER_DTYPE
        assert len(out) == 2
        # Sorted by time.
        assert out["ts"][0] == 0.5
        assert out["src"][1] == 10 and out["dst"][1] == 20
        assert out["kind"][0] == int(PacketKind.CONTROL)

    def test_empty(self):
        assert len(TransferRecorder().finalize()) == 0

    def test_len(self):
        rec = TransferRecorder()
        assert len(rec) == 0
        rec.record(0, 1, 2, 3, PacketKind.SIGNALING, 1.0)
        assert len(rec) == 1


class TestUplinkScheduler:
    def test_serialisation(self):
        up = np.array([kbps(384)])
        sched = UplinkScheduler(1, up)
        # One 16 kB chunk takes 1/3 s at 384 kb/s.
        s1 = sched.admit(0, 0.0, 16_000)
        s2 = sched.admit(0, 0.0, 16_000)
        assert s1 == 0.0
        assert s2 == pytest.approx(1 / 3)

    def test_backlog_bound(self):
        sched = UplinkScheduler(1, np.array([kbps(384)]), max_backlog_s=1.0)
        admitted = 0
        for _ in range(10):
            if sched.admit(0, 0.0, 16_000) is not None:
                admitted += 1
        # 1 s of backlog holds three 1/3-s chunks (plus the one at t=0).
        assert admitted == 4

    def test_idle_uplink_starts_immediately(self):
        sched = UplinkScheduler(1, np.array([mbps(100)]))
        sched.admit(0, 0.0, 16_000)
        assert sched.admit(0, 10.0, 16_000) == 10.0

    def test_backlog_query(self):
        sched = UplinkScheduler(1, np.array([kbps(384)]))
        sched.admit(0, 0.0, 16_000)
        assert sched.backlog(0, 0.0) == pytest.approx(1 / 3)
        assert sched.backlog(0, 10.0) == 0.0

    def test_independent_peers(self):
        sched = UplinkScheduler(2, np.array([kbps(384), mbps(100)]))
        sched.admit(0, 0.0, 16_000)
        assert sched.admit(1, 0.0, 16_000) == 0.0

    def test_misaligned_capacities_rejected(self):
        with pytest.raises(SimulationError):
            UplinkScheduler(2, np.array([1.0]))


class TestSignalingBook:
    def test_open_close(self):
        book = SignalingBook()
        book.open(1, 2, 10.0, 2.0, 120)
        book.close(1, 2, 30.0)
        out = book.finalize(100.0)
        assert out.dtype == SIGNALING_DTYPE
        assert len(out) == 1
        assert out["start"][0] == 10.0 and out["stop"][0] == 30.0

    def test_finalize_closes_open(self):
        book = SignalingBook()
        book.open(1, 2, 10.0, 2.0, 120)
        out = book.finalize(50.0)
        assert out["stop"][0] == 50.0

    def test_reopen_keeps_earlier_start(self):
        book = SignalingBook()
        book.open(1, 2, 10.0, 2.0, 120)
        book.open(1, 2, 20.0, 2.0, 120)
        out = book.finalize(50.0)
        assert len(out) == 1
        assert out["start"][0] == 10.0

    def test_close_is_directional(self):
        book = SignalingBook()
        book.open(1, 2, 0.0, 2.0, 120)
        book.open(2, 1, 0.0, 2.0, 120)
        book.close(1, 2, 10.0)
        out = book.finalize(20.0)
        stops = {(int(r["src"]), int(r["dst"])): float(r["stop"]) for r in out}
        assert stops[(1, 2)] == 10.0
        assert stops[(2, 1)] == 20.0

    def test_zero_length_interval_dropped(self):
        book = SignalingBook()
        book.open(1, 2, 10.0, 2.0, 120)
        book.close(1, 2, 10.0)
        assert len(book.finalize(20.0)) == 0

    def test_invalid_interval_rejected(self):
        with pytest.raises(SimulationError):
            SignalingBook().open(1, 2, 0.0, 0.0, 10)
