"""Sliding playout buffer."""

import pytest

from repro.errors import SimulationError
from repro.streaming.buffer import PlayoutBuffer
from repro.streaming.chunk import ChunkClock
from repro.units import kbps


@pytest.fixture()
def clock() -> ChunkClock:
    return ChunkClock(rate_bps=kbps(384), chunk_bytes=16_000)


@pytest.fixture()
def buf(clock) -> PlayoutBuffer:
    return PlayoutBuffer(clock, window_s=10.0)


class TestWindow:
    def test_window_chunks(self, buf):
        assert buf.window_chunks == 30  # 10 s at 3 chunks/s

    def test_window_range_at_start(self, buf):
        rng = buf.window_range(1.0)
        assert rng.stop - 1 == 3  # live edge
        assert rng.start == 0  # clipped at join time

    def test_window_slides(self, buf):
        rng = buf.window_range(60.0)
        assert rng.stop - 1 == 180
        assert rng.start == 180 - 30 + 1

    def test_join_time_floor(self, clock):
        buf = PlayoutBuffer(clock, window_s=10.0, join_time=100.0)
        rng = buf.window_range(101.0)
        assert rng.start >= clock.latest_chunk(100.0)

    def test_bad_window_rejected(self, clock):
        with pytest.raises(SimulationError):
            PlayoutBuffer(clock, window_s=0.0)


class TestAddEvict:
    def test_add_and_has(self, buf):
        assert buf.add(5)
        assert buf.has(5)
        assert not buf.has(6)

    def test_duplicate_add_rejected(self, buf):
        assert buf.add(5)
        assert not buf.add(5)
        assert len(buf) == 1

    def test_received_bytes_counts_once(self, buf, clock):
        buf.add(1)
        buf.add(1)
        buf.add(2)
        assert buf.received_bytes == 2 * clock.chunk_bytes

    def test_evict_before(self, buf):
        for c in range(10):
            buf.add(c)
        dropped = buf.evict_before(60.0)  # window floor is now 151
        assert dropped == 10
        assert len(buf) == 0


class TestMissing:
    def test_newest_first(self, buf):
        missing = buf.missing(2.0)
        assert missing[0] == 6  # live edge at t=2
        assert missing == sorted(missing, reverse=True)

    def test_excludes_held_and_inflight(self, buf):
        buf.add(6)
        missing = buf.missing(2.0, exclude={5})
        assert 6 not in missing and 5 not in missing

    def test_live_lag_skips_newest(self, buf):
        missing = buf.missing(2.0, live_lag=2)
        assert missing[0] == 4

    def test_live_lag_zero_default(self, buf):
        assert buf.missing(2.0)[0] == 6

    def test_empty_when_all_held(self, buf):
        for c in buf.window_range(2.0):
            buf.add(c)
        assert buf.missing(2.0) == []


class TestContinuity:
    def test_empty_buffer(self, buf):
        assert buf.continuity(5.0) == 0.0

    def test_full_window(self, buf):
        for c in buf.window_range(5.0):
            buf.add(c)
        assert buf.continuity(5.0) == 1.0

    def test_partial(self, buf):
        window = list(buf.window_range(5.0))
        for c in window[: len(window) // 2]:
            buf.add(c)
        assert 0.3 < buf.continuity(5.0) < 0.7
