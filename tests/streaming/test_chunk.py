"""Chunk clock arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.streaming.chunk import ChunkClock
from repro.units import kbps


@pytest.fixture()
def clock() -> ChunkClock:
    # The paper's channel: 384 kb/s cut into 16 kB chunks = 3 chunks/s.
    return ChunkClock(rate_bps=kbps(384), chunk_bytes=16_000)


class TestBasics:
    def test_chunk_interval(self, clock):
        assert clock.chunk_interval == pytest.approx(1 / 3)

    def test_chunks_per_second(self, clock):
        assert clock.chunks_per_second == pytest.approx(3.0)

    def test_generation_time(self, clock):
        assert clock.generation_time(0) == 0.0
        assert clock.generation_time(9) == pytest.approx(3.0)

    def test_latest_chunk(self, clock):
        assert clock.latest_chunk(0.0) == 0
        assert clock.latest_chunk(1.0) == 3
        assert clock.latest_chunk(0.99) == 2

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ChunkClock(rate_bps=0, chunk_bytes=100)
        with pytest.raises(ConfigurationError):
            ChunkClock(rate_bps=100, chunk_bytes=0)


class TestChunkRange:
    def test_basic(self, clock):
        assert list(clock.chunk_range(0.0, 1.0)) == [1, 2, 3]

    def test_empty(self, clock):
        assert list(clock.chunk_range(1.0, 1.0)) == []

    @given(st.floats(min_value=0, max_value=1e4), st.floats(min_value=0, max_value=100))
    def test_latest_consistent_with_generation(self, t, dt):
        clock = ChunkClock(rate_bps=kbps(384), chunk_bytes=16_000)
        latest = clock.latest_chunk(t)
        eps = 1e-9 * max(1.0, t)  # float division at exact boundaries
        assert clock.generation_time(latest) <= t + eps
        assert clock.generation_time(latest + 1) > t - eps

    @given(
        st.floats(min_value=0, max_value=1000),
        st.floats(min_value=0, max_value=1000),
    )
    def test_range_is_consecutive(self, a, b):
        clock = ChunkClock(rate_bps=kbps(384), chunk_bytes=16_000)
        lo, hi = min(a, b), max(a, b)
        ids = list(clock.chunk_range(lo, hi))
        if ids:
            assert ids == list(range(ids[0], ids[-1] + 1))
            eps = 1e-9 * max(1.0, hi)  # float rounding at chunk boundaries
            assert all(
                lo - eps < clock.generation_time(c) <= hi + eps for c in ids
            )
