"""Application profiles (simulator ground truth)."""

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.streaming.profiles import (
    LAZY_AUTO_MIN,
    PROFILES,
    AppProfile,
    get_profile,
    pplive,
    pplive_popular,
    random_baseline,
    sopcast,
    tvants,
)


class TestRegistry:
    def test_all_profiles_instantiate(self):
        for name in PROFILES:
            assert get_profile(name).name == name

    def test_unknown_profile(self):
        with pytest.raises(ConfigurationError):
            get_profile("bittorrent")

    def test_paper_apps_present(self):
        assert {"pplive", "sopcast", "tvants"} <= set(PROFILES)


class TestPaperSignatures:
    """The profiles must encode the paper's qualitative app differences."""

    def test_reach_ordering(self):
        assert pplive().swarm_size > sopcast().swarm_size > tvants().swarm_size

    def test_pplive_contacts_most_aggressively(self):
        pp, tv = pplive(), tvants()
        pp_rate = pp.contact_batch / pp.contact_interval_s
        tv_rate = tv.contact_batch / tv.contact_interval_s
        assert pp_rate > 10 * tv_rate

    def test_all_apps_bandwidth_aware(self):
        for name in ("pplive", "sopcast", "tvants"):
            assert get_profile(name).provider_weights.bw > 1.0

    def test_sopcast_location_blind(self):
        p = sopcast()
        assert p.partner_weights.as_ == 0
        assert p.provider_weights.as_ == 0
        assert p.discovery_as_bias == 0

    def test_tvants_strongest_as_discovery(self):
        assert tvants().discovery_as_bias > pplive().discovery_as_bias
        assert tvants().discovery_as_bias > sopcast().discovery_as_bias

    def test_pplive_heaviest_demand(self):
        assert pplive().remote_demand > 3 * sopcast().remote_demand
        assert pplive().remote_demand > 3 * tvants().remote_demand

    def test_pplive_heaviest_signaling(self):
        assert pplive().buffermap_bytes / pplive().buffermap_interval_s > \
            sopcast().buffermap_bytes / sopcast().buffermap_interval_s

    def test_no_profile_has_hop_awareness(self):
        # The paper found none; our ground truth must embed none.
        for name in ("pplive", "sopcast", "tvants"):
            p = get_profile(name)
            assert p.partner_weights.hop == 0
            assert p.provider_weights.hop == 0

    def test_random_baseline_is_oblivious(self):
        p = random_baseline()
        assert not p.partner_weights.any_awareness()
        assert not p.provider_weights.any_awareness()

    def test_popular_variant_boosts_local_audience(self):
        pop = pplive_popular()
        assert pop.eu_audience_boost > 1.0
        assert pop.probe_as_fraction >= pplive().probe_as_fraction


class TestScaling:
    def test_scaled_shrinks(self):
        p = pplive().scaled(0.25)
        assert p.swarm_size == 1000
        assert p.tracker_initial == 75

    def test_scaled_floors(self):
        p = tvants().scaled(0.001)
        assert p.swarm_size >= 10
        assert p.contact_batch >= 1

    def test_bad_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            tvants().scaled(0.0)


class TestPeerState:
    """Lazy-materialisation gating: profile knob, auto rule, mega profile."""

    def test_mega_scale_profile_shape(self):
        p = get_profile("mega-scale")
        assert p.swarm_size == 1_000_000
        assert p.peer_state == "lazy"
        assert p.swarm == "sparse"
        assert p.discovery == "alias"
        assert p.tick_cohort

    def test_bad_peer_state_rejected(self):
        with pytest.raises(ConfigurationError, match="peer_state"):
            AppProfile(name="x", peer_state="mmap")

    def test_auto_resolves_by_scale_and_representation(self):
        sparse = get_profile("napa-scale")
        assert sparse.peer_state == "auto"
        # The benchmarked paper-scale run keeps its eager path...
        assert sparse.resolved_peer_state(180_046) == "eager"
        # ...and auto flips to lazy only at mega scale, sparse only.
        assert sparse.resolved_peer_state(LAZY_AUTO_MIN) == "lazy"
        assert pplive().resolved_peer_state(LAZY_AUTO_MIN) == "eager"

    def test_explicit_choice_overrides_auto_rule(self):
        lazy = replace(get_profile("napa-scale"), peer_state="lazy")
        assert lazy.resolved_peer_state(100) == "lazy"
        eager = replace(get_profile("mega-scale"), peer_state="eager")
        assert eager.resolved_peer_state(10_000_000) == "eager"

    def test_scaled_swarm_error_names_reach_and_limit(self):
        prof = get_profile("napa-scale")
        with pytest.raises(ConfigurationError) as exc_info:
            prof.scaled_swarm(150)
        msg = str(exc_info.value)
        assert "swarm size 150" in msg
        assert "discovery reach of 200" in msg
        assert "tracker_initial=200" in msg
        assert "size >= 200" in msg


class TestValidation:
    def test_negative_swarm_rejected(self):
        with pytest.raises(ConfigurationError):
            AppProfile(name="x", swarm_size=-1)

    def test_zero_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            AppProfile(name="x", contact_interval_s=0)

    def test_zero_partners_rejected(self):
        with pytest.raises(ConfigurationError):
            AppProfile(name="x", max_partners=0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            AppProfile(name="x", remote_demand=-1)
