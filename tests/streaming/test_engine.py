"""Engine integration: physical invariants of the simulated traffic."""

import numpy as np
import pytest

from repro.streaming.engine import EngineConfig, simulate
from repro.streaming.profiles import get_profile
from repro.trace.records import PacketKind
from repro.units import BITS_PER_BYTE


@pytest.fixture(scope="module")
def result():
    return simulate(
        get_profile("tvants"), engine_config=EngineConfig(duration_s=60.0, seed=5)
    )


class TestLogWellFormed:
    def test_timestamps_in_window(self, result):
        ts = result.transfers["ts"]
        assert np.all(ts >= 0.0)
        # Queued uploads may start slightly after the horizon was reached.
        assert np.all(ts <= result.duration_s + 5.0)

    def test_sorted_by_time(self, result):
        ts = result.transfers["ts"]
        assert np.all(np.diff(ts) >= 0)

    def test_no_self_traffic(self, result):
        assert np.all(result.transfers["src"] != result.transfers["dst"])

    def test_all_addresses_known(self, result):
        tr = result.transfers
        for col in ("src", "dst"):
            result.hosts.indices_of(tr[col])  # raises on unknown

    def test_kinds_valid(self, result):
        kinds = set(np.unique(result.transfers["kind"]).tolist())
        assert kinds <= {int(k) for k in PacketKind}

    def test_every_transfer_touches_a_probe(self, result):
        tr = result.transfers
        probes = result.probe_ips
        touches = np.isin(tr["src"], probes) | np.isin(tr["dst"], probes)
        assert np.all(touches)

    def test_signaling_intervals_well_formed(self, result):
        sig = result.signaling
        assert np.all(sig["start"] < sig["stop"])
        assert np.all(sig["stop"] <= result.duration_s)
        assert np.all(sig["interval"] > 0)


class TestStreamingBehaviour:
    def test_probes_receive_roughly_stream_rate(self, result):
        tr = result.transfers
        video = tr[tr["kind"] == int(PacketKind.VIDEO)]
        probes = result.probe_ips
        rx = video[np.isin(video["dst"], probes)]
        per_probe = []
        for ip in probes:
            nbytes = rx["bytes"][rx["dst"] == ip].sum()
            per_probe.append(nbytes * BITS_PER_BYTE / result.duration_s)
        mean_rate = np.mean(per_probe)
        nominal = result.profile.video.rate_bps
        assert 0.75 * nominal < mean_rate < 1.25 * nominal

    def test_uplink_capacity_respected(self, result):
        tr = result.transfers
        video = tr[tr["kind"] == int(PacketKind.VIDEO)]
        for src in np.unique(video["src"]):
            sent = video["bytes"][video["src"] == src].sum()
            cap = float(result.hosts.row_for(int(src))["up_bps"])
            # Average sending rate cannot exceed the uplink (small slack for
            # the tail transfer crossing the horizon).
            assert sent * BITS_PER_BYTE / result.duration_s <= cap * 1.1

    def test_video_flows_from_many_distinct_providers(self, result):
        tr = result.transfers
        video = tr[tr["kind"] == int(PacketKind.VIDEO)]
        probes = result.probe_ips
        rx = video[np.isin(video["dst"], probes)]
        assert len(np.unique(rx["src"])) > 30

    def test_remote_demand_generates_probe_uploads(self, result):
        tr = result.transfers
        video = tr[tr["kind"] == int(PacketKind.VIDEO)]
        probes = result.probe_ips
        tx = video[np.isin(video["src"], probes) & ~np.isin(video["dst"], probes)]
        assert tx["bytes"].sum() > 0

    def test_signaling_present_both_directions(self, result):
        tr = result.transfers
        sig = tr[tr["kind"] == int(PacketKind.SIGNALING)]
        probes = result.probe_ips
        assert np.isin(sig["src"], probes).any()
        assert np.isin(sig["dst"], probes).any()


class TestDeterminism:
    def test_identical_runs_identical_logs(self):
        cfg = EngineConfig(duration_s=20.0, seed=77)
        a = simulate(get_profile("tvants"), engine_config=cfg)
        b = simulate(get_profile("tvants"), engine_config=cfg)
        assert np.array_equal(a.transfers, b.transfers)
        assert np.array_equal(a.signaling, b.signaling)
        assert np.array_equal(a.hosts.rows, b.hosts.rows)

    def test_seed_changes_traffic(self):
        a = simulate(
            get_profile("tvants"), engine_config=EngineConfig(duration_s=20.0, seed=1)
        )
        b = simulate(
            get_profile("tvants"), engine_config=EngineConfig(duration_s=20.0, seed=2)
        )
        assert not np.array_equal(a.transfers, b.transfers)


class TestHostTable:
    def test_probe_count(self, result):
        assert len(result.probe_ips) == 46

    def test_swarm_size(self, result):
        rows = result.hosts.rows
        assert (~rows["is_probe"]).sum() == result.profile.swarm_size

    def test_ground_truth_classes_consistent(self, result):
        rows = result.hosts.rows
        assert np.all(rows["highbw"] == (rows["up_bps"] > 10e6))


class TestEngineConfig:
    def test_bad_duration_rejected(self):
        with pytest.raises(Exception):
            EngineConfig(duration_s=0)

    def test_bad_rebalance_rejected(self):
        with pytest.raises(Exception):
            EngineConfig(demand_rebalance_s=0)
