"""Engine robustness knobs: request loss, firewall enforcement.

These features are opt-in (defaults preserve the calibrated behaviour);
the tests check both that they do nothing when off and that they have
the physically-expected effect when on.
"""

import numpy as np
import pytest

from repro.streaming.engine import EngineConfig, simulate
from repro.streaming.profiles import get_profile
from repro.trace.records import PacketKind
from repro.units import BITS_PER_BYTE
from repro.validation import validate_result


def _probe_rx_rate(result):
    video = result.transfers[result.transfers["kind"] == int(PacketKind.VIDEO)]
    probes = result.probe_ips
    rx = video[np.isin(video["dst"], probes)]
    return rx["bytes"].sum() * BITS_PER_BYTE / result.duration_s / len(probes)


class TestRequestLoss:
    def test_stream_survives_moderate_loss(self):
        lossy = simulate(
            get_profile("tvants"),
            engine_config=EngineConfig(duration_s=40.0, seed=3, request_loss_prob=0.2),
        )
        # Retries absorb 20 % request loss: the stream still arrives.
        assert _probe_rx_rate(lossy) > 0.7 * 384_000

    def test_loss_reduces_goodput_efficiency(self):
        clean = simulate(
            get_profile("tvants"),
            engine_config=EngineConfig(duration_s=40.0, seed=3),
        )
        lossy = simulate(
            get_profile("tvants"),
            engine_config=EngineConfig(duration_s=40.0, seed=3, request_loss_prob=0.5),
        )

        def efficiency(result):
            tr = result.transfers
            video = (tr["kind"] == int(PacketKind.VIDEO)).sum()
            control = (tr["kind"] == int(PacketKind.CONTROL)).sum()
            return video / max(control, 1)

        # Heavy loss means more requests per delivered chunk.
        assert efficiency(lossy) < efficiency(clean)

    def test_lossy_run_still_validates(self):
        lossy = simulate(
            get_profile("tvants"),
            engine_config=EngineConfig(duration_s=30.0, seed=5, request_loss_prob=0.3),
        )
        assert validate_result(lossy) == []


class TestFirewallEnforcement:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate(
            get_profile("sopcast"),
            engine_config=EngineConfig(duration_s=60.0, seed=9),
        )

    def test_firewalled_probes_upload_less_to_remotes(self, result):
        tr = result.transfers
        video = tr[tr["kind"] == int(PacketKind.VIDEO)]
        hosts = result.hosts.rows
        probes = hosts[hosts["is_probe"]]
        remote_ips = hosts[~hosts["is_probe"]]["ip"]
        tx = video[np.isin(video["dst"], remote_ips)]

        def mean_tx(subset):
            vals = [
                tx["bytes"][tx["src"] == ip].sum() for ip in subset["ip"]
            ]
            return np.mean(vals) if len(vals) else 0.0

        # ENST 1–4 are the firewalled high-bw probes.
        fw_ips = set()
        for label in ("ENST-1", "ENST-2", "ENST-3", "ENST-4"):
            fw_ips.add(result.testbed.host(label).endpoint.ip)
        fw = probes[np.isin(probes["ip"], list(fw_ips))]
        open_hb = probes[
            probes["highbw"] & ~np.isin(probes["ip"], list(fw_ips))
        ]
        assert mean_tx(fw) < mean_tx(open_hb)

    def test_disabled_firewall_removes_gap(self):
        result = simulate(
            get_profile("sopcast"),
            engine_config=EngineConfig(
                duration_s=60.0, seed=9, firewall_attach_drop_prob=0.0
            ),
        )
        tr = result.transfers
        video = tr[tr["kind"] == int(PacketKind.VIDEO)]
        hosts = result.hosts.rows
        remote_ips = hosts[~hosts["is_probe"]]["ip"]
        tx = video[np.isin(video["dst"], remote_ips)]
        fw_ips = [
            result.testbed.host(f"ENST-{i}").endpoint.ip for i in range(1, 5)
        ]
        fw_mean = np.mean([tx["bytes"][tx["src"] == ip].sum() for ip in fw_ips])
        hb = hosts[hosts["is_probe"] & hosts["highbw"]]
        open_ips = [ip for ip in hb["ip"] if ip not in fw_ips]
        open_mean = np.mean([tx["bytes"][tx["src"] == ip].sum() for ip in open_ips])
        # With enforcement off, firewalled probes attract comparable demand.
        assert fw_mean > 0.4 * open_mean
