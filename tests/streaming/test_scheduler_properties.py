"""Property-based tests for the scheduler ordering laws.

Each policy's candidate ordering is a pure function (no RNG, no engine
state), so its laws can be pinned directly, for arbitrary hole sets —
not just the ones a simulation happens to produce:

* every policy: the candidate order is a subset of the hole set (the
  request set ⊆ hole set law, at the function level);
* mesh-pull: the newest-first input order is preserved verbatim;
* rarest: ascending advertised-availability, ties broken by ascending
  chunk id, zero-advertiser chunks excluded — and the order is invariant
  under input permutation (determinism of the tie-break);
* edf: ascending playout deadline, expired chunks excluded — EDF *never*
  orders a chunk past its deadline;
* push: the seed-pull order is a prefix of the newest-first hole list.

Runs under hypothesis when available, otherwise over a seeded random
corpus — same properties either way (the pattern of
``tests/core/test_preference_properties.py``).
"""

import numpy as np
import pytest

from repro.streaming.schedulers import (
    EdfScheduler,
    MeshPullScheduler,
    PushEpidemicScheduler,
    RarestFirstScheduler,
)
from repro.streaming.schedulers.edf import playout_deadline

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


def random_holes(rng: np.random.Generator) -> list[int]:
    """A plausible hole list: distinct chunk ids, newest first."""
    n = int(rng.integers(0, 40))
    ids = rng.choice(2000, size=n, replace=False) if n else np.array([], dtype=int)
    return sorted((int(c) for c in ids), reverse=True)


def random_counts(rng: np.random.Generator, holes: list[int]) -> dict[int, int]:
    """Advertiser counts: some chunks unadvertised (0), some missing."""
    counts = {}
    for c in holes:
        draw = int(rng.integers(0, 6))
        if draw == 5:
            continue  # absent from the map entirely (never advertised)
        counts[c] = draw
    return counts


# ------------------------------------------------------------ core checks
def check_mesh(holes: list[int]) -> None:
    assert MeshPullScheduler.order_candidates(holes) == list(holes)


def check_push(holes: list[int], budget: int) -> None:
    order = PushEpidemicScheduler.order_candidates(holes, budget)
    assert order == list(holes)[: max(0, budget)]
    assert set(order) <= set(holes)


def check_rarest(holes: list[int], counts: dict[int, int]) -> None:
    order = RarestFirstScheduler.order_candidates(holes, counts)
    # subset of the holes, zero/unadvertised chunks excluded
    assert set(order) <= set(holes)
    assert all(counts.get(c, 0) > 0 for c in order)
    assert set(order) == {c for c in holes if counts.get(c, 0) > 0}
    # ascending availability, deterministic ascending-id tie-break
    keys = [(counts[c], c) for c in order]
    assert keys == sorted(keys)
    # pure function of the *set*: input permutation cannot change it
    permuted = list(reversed(holes))
    assert RarestFirstScheduler.order_candidates(permuted, counts) == order


def check_edf(
    holes: list[int], now: float, interval: float, window: int
) -> None:
    order = EdfScheduler.order_candidates(holes, now, interval, window)
    assert set(order) <= set(holes)
    # never past deadline — the law the differential suite re-checks live
    deadlines = [playout_deadline(c, interval, window) for c in order]
    assert all(d > now for d in deadlines)
    # ascending deadline == ascending id (deadline strictly increasing in c)
    assert order == sorted(order)
    assert deadlines == sorted(deadlines)
    # nothing with a live deadline was dropped
    assert set(order) == {
        c for c in holes if playout_deadline(c, interval, window) > now
    }


# ------------------------------------------------------------- hypothesis
if HAVE_HYPOTHESIS:
    holes_st = st.lists(
        st.integers(min_value=0, max_value=5000), unique=True, max_size=60
    ).map(lambda ids: sorted(ids, reverse=True))

    @given(holes=holes_st)
    @settings(max_examples=200, deadline=None)
    def test_mesh_preserves_newest_first_order(holes):
        check_mesh(holes)

    @given(holes=holes_st, budget=st.integers(min_value=-2, max_value=10))
    @settings(max_examples=200, deadline=None)
    def test_push_seed_order_is_a_prefix(holes, budget):
        check_push(holes, budget)

    @given(
        holes=holes_st,
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_rarest_order_laws(holes, data):
        counts = {
            c: data.draw(st.integers(min_value=0, max_value=5))
            for c in holes
            if data.draw(st.booleans())
        }
        check_rarest(holes, counts)

    @given(
        holes=holes_st,
        now=st.floats(min_value=0.0, max_value=2000.0),
        interval=st.floats(min_value=0.05, max_value=2.0),
        window=st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=200, deadline=None)
    def test_edf_order_laws(holes, now, interval, window):
        check_edf(holes, now, interval, window)

else:  # pragma: no cover - seeded-corpus fallback

    @pytest.mark.parametrize("seed", range(50))
    def test_ordering_laws_seeded_corpus(seed):
        rng = np.random.default_rng(seed)
        holes = random_holes(rng)
        check_mesh(holes)
        check_push(holes, int(rng.integers(-1, 8)))
        check_rarest(holes, random_counts(rng, holes))
        check_edf(
            holes,
            float(rng.uniform(0.0, 1500.0)),
            float(rng.uniform(0.05, 2.0)),
            int(rng.integers(1, 100)),
        )
