"""Deterministic event queue."""

import pytest

from repro.errors import SimulationError
from repro.streaming.events import EventQueue


class TestScheduling:
    def test_fifo_within_same_time(self):
        q = EventQueue()
        order = []
        q.schedule(1.0, order.append, "a")
        q.schedule(1.0, order.append, "b")
        q.schedule(1.0, order.append, "c")
        q.run_until(2.0)
        assert order == ["a", "b", "c"]

    def test_time_ordering(self):
        q = EventQueue()
        order = []
        q.schedule(3.0, order.append, 3)
        q.schedule(1.0, order.append, 1)
        q.schedule(2.0, order.append, 2)
        q.run_until(10.0)
        assert order == [1, 2, 3]

    def test_past_scheduling_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        q.run_until(5.0)
        with pytest.raises(SimulationError):
            q.schedule(4.0, lambda: None)

    def test_run_until_boundary_inclusive(self):
        q = EventQueue()
        fired = []
        q.schedule(5.0, fired.append, True)
        q.run_until(5.0)
        assert fired == [True]

    def test_events_beyond_horizon_stay_queued(self):
        q = EventQueue()
        fired = []
        q.schedule(5.0, fired.append, 1)
        q.schedule(7.0, fired.append, 2)
        assert q.run_until(6.0) == 1
        assert fired == [1]
        assert len(q) == 1

    def test_now_advances_to_horizon(self):
        q = EventQueue()
        q.run_until(12.5)
        assert q.now == 12.5

    def test_events_can_reschedule(self):
        q = EventQueue()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5:
                q.schedule(q.now + 1.0, tick)

        q.schedule(0.0, tick)
        q.run_until(100.0)
        assert count[0] == 5

    def test_processed_count(self):
        q = EventQueue()
        for i in range(7):
            q.schedule(float(i), lambda: None)
        assert q.run_until(10.0) == 7
