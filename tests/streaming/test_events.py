"""Deterministic event queue."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.streaming.events import DEFAULT_BUCKET_WIDTH_S, EventQueue, HeapEventQueue


class TestScheduling:
    def test_fifo_within_same_time(self):
        q = EventQueue()
        order = []
        q.schedule(1.0, order.append, "a")
        q.schedule(1.0, order.append, "b")
        q.schedule(1.0, order.append, "c")
        q.run_until(2.0)
        assert order == ["a", "b", "c"]

    def test_time_ordering(self):
        q = EventQueue()
        order = []
        q.schedule(3.0, order.append, 3)
        q.schedule(1.0, order.append, 1)
        q.schedule(2.0, order.append, 2)
        q.run_until(10.0)
        assert order == [1, 2, 3]

    def test_past_scheduling_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        q.run_until(5.0)
        with pytest.raises(SimulationError):
            q.schedule(4.0, lambda: None)

    def test_run_until_boundary_inclusive(self):
        q = EventQueue()
        fired = []
        q.schedule(5.0, fired.append, True)
        q.run_until(5.0)
        assert fired == [True]

    def test_events_beyond_horizon_stay_queued(self):
        q = EventQueue()
        fired = []
        q.schedule(5.0, fired.append, 1)
        q.schedule(7.0, fired.append, 2)
        assert q.run_until(6.0) == 1
        assert fired == [1]
        assert len(q) == 1

    def test_now_advances_to_horizon(self):
        q = EventQueue()
        q.run_until(12.5)
        assert q.now == 12.5

    def test_events_can_reschedule(self):
        q = EventQueue()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5:
                q.schedule(q.now + 1.0, tick)

        q.schedule(0.0, tick)
        q.run_until(100.0)
        assert count[0] == 5

    def test_processed_count(self):
        q = EventQueue()
        for i in range(7):
            q.schedule(float(i), lambda: None)
        assert q.run_until(10.0) == 7


class TestCalendarBuckets:
    """Edge cases specific to the bucketed (calendar) implementation."""

    def test_invalid_bucket_width_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue(bucket_width_s=0.0)
        with pytest.raises(SimulationError):
            EventQueue(bucket_width_s=-1.0)

    def test_horizon_splits_a_bucket(self):
        # Two events in the same 50 ms bucket; the horizon falls between
        # them, so the bucket's remainder must be pushed back and served
        # first by the next drain.
        q = EventQueue()
        fired = []
        q.schedule(1.000, fired.append, "a")
        q.schedule(1.049, fired.append, "b")
        assert q.run_until(1.01) == 1
        assert fired == ["a"]
        assert len(q) == 1
        assert q.run_until(2.0) == 1
        assert fired == ["a", "b"]

    def test_reschedule_into_active_bucket(self):
        # A callback that schedules another event into the *currently
        # draining* bucket: the insort lands behind the cursor and fires
        # within the same run_until call.
        q = EventQueue()
        order = []

        def first():
            order.append("first")
            q.schedule(q.now + DEFAULT_BUCKET_WIDTH_S / 10, second)

        def second():
            order.append("second")

        q.schedule(1.0, first)
        assert q.run_until(2.0) == 2
        assert order == ["first", "second"]

    def test_reschedule_at_exact_now_fires_after_peers(self):
        # Zero-delay reschedules must fire after already-queued events at
        # the same time (larger sequence number), exactly as the heap did.
        q = EventQueue()
        order = []

        def a():
            order.append("a")
            q.schedule(q.now, c)

        def b():
            order.append("b")

        def c():
            order.append("c")

        q.schedule(1.0, a)
        q.schedule(1.0, b)
        q.run_until(2.0)
        assert order == ["a", "b", "c"]

    def test_multiple_run_until_calls_resume_cleanly(self):
        q = EventQueue()
        fired = []
        for i in range(10):
            q.schedule(i * 0.3, fired.append, i)
        total = sum(q.run_until(t) for t in (0.7, 1.5, 1.5, 99.0))
        assert total == 10
        assert fired == list(range(10))

    def test_negative_times_allowed_before_start(self):
        q = EventQueue()
        fired = []
        q.schedule(0.0, fired.append, 0)
        q.run_until(0.0)
        assert fired == [0]


class TestKindCounters:
    def test_dispatched_by_kind(self):
        q = EventQueue()

        def tick():
            pass

        def arrival():
            pass

        for t in (0.1, 0.2, 0.3):
            q.schedule(t, tick)
        q.schedule(0.15, arrival)
        q.run_until(1.0)
        assert q.dispatched_by_kind == {"tick": 3, "arrival": 1}

    def test_scheduled_is_dispatched_plus_pending(self):
        q = EventQueue()

        def tick():
            pass

        for t in (0.1, 0.2, 5.0, 6.0):
            q.schedule(t, tick)
        q.run_until(1.0)
        assert q.dispatched_by_kind == {"tick": 2}
        assert q.scheduled_by_kind == {"tick": 4}

    def test_anonymous_callbacks_counted(self):
        q = EventQueue()
        from functools import partial

        q.schedule(0.1, partial(int, "7"))
        q.run_until(1.0)
        assert q.dispatched_by_kind == {"<anonymous>": 1}


class TestDifferentialVsHeap:
    """Randomized workloads must dispatch identically on both queues."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("width", [DEFAULT_BUCKET_WIDTH_S, 0.013, 1.7])
    def test_same_dispatch_order(self, seed, width):
        def drive(queue):
            rng = np.random.default_rng(seed)
            order = []

            def fire(tag):
                order.append((round(queue.now, 9), tag))
                # Occasionally chain-schedule, including zero delay.
                if rng.random() < 0.3:
                    delay = float(rng.choice([0.0, 0.001, 0.05, 0.4]))
                    queue.schedule(queue.now + delay, fire, tag + 1000)

            for i in range(200):
                queue.schedule(float(rng.uniform(0.0, 10.0)), fire, i)
            horizons = [2.5, 2.5, 7.0, 50.0]
            processed = [queue.run_until(h) for h in horizons]
            return order, processed, len(queue)

        heap_run = drive(HeapEventQueue())
        calendar_run = drive(EventQueue(bucket_width_s=width))
        assert calendar_run == heap_run
